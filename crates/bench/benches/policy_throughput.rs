//! Single-thread request-processing throughput of every eviction policy
//! (the simulator's hot path; libCacheSim reports ~20M req/s per core).

use cache_policies::registry;
use cache_trace::gen::WorkloadSpec;
use cache_types::{Eviction, Request};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_policies(c: &mut Criterion) {
    let trace = WorkloadSpec::zipf("bench", 30_000, 3_000, 1.0, 1).generate();
    let reqs: Vec<Request> = trace.requests.clone();
    let capacity = 1000u64;
    let mut group = c.benchmark_group("policy_throughput");
    group.throughput(Throughput::Elements(reqs.len() as u64));
    for name in [
        "FIFO",
        "LRU",
        "CLOCK",
        "SIEVE",
        "S3-FIFO",
        "S3-FIFO-D",
        "2Q",
        "SLRU",
        "ARC",
        "LIRS",
        "TinyLFU",
        "LRU-2",
        "LeCaR",
        "CACHEUS",
        "LHD",
        "B-LRU",
        "FIFO-Merge",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                let mut p = registry::build(name, capacity, Some(&reqs)).expect("build");
                let mut evs: Vec<Eviction> = Vec::new();
                for r in &reqs {
                    evs.clear();
                    p.request(r, &mut evs);
                }
                p.stats().misses
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_policies
}
criterion_main!(benches);

//! Microbenchmarks of the core data structures: the intrusive list every
//! LRU-family policy pays for on hits, the lock-free ring S3-FIFO uses
//! instead, and the sketch/ghost structures.

use cache_ds::{CountMinSketch, DList, GhostTable, MpmcRing, SplitMix64};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_dlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlist");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop", |b| {
        let mut l = DList::with_capacity(1024);
        for i in 0..512u64 {
            l.push_front(i);
        }
        b.iter(|| {
            l.push_front(1);
            l.pop_back()
        });
    });
    group.bench_function("move_to_front", |b| {
        let mut l = DList::with_capacity(1024);
        let handles: Vec<_> = (0..512u64).map(|i| l.push_front(i)).collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 231) % handles.len();
            l.move_to_front(handles[i])
        });
    });
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpmc_ring");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_single_thread", |b| {
        let q: MpmcRing<u64> = MpmcRing::new(1024);
        for i in 0..512 {
            q.push(i).expect("room");
        }
        b.iter(|| {
            q.push(1).expect("room");
            q.pop()
        });
    });
    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch");
    group.throughput(Throughput::Elements(1));
    group.bench_function("cms_increment", |b| {
        let mut s = CountMinSketch::new(1 << 16);
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let k = rng.next_u64() & 0xFFFFF;
            s.increment(k);
        });
    });
    group.bench_function("cms_estimate", |b| {
        let mut s = CountMinSketch::new(1 << 16);
        for i in 0..10_000u64 {
            s.increment(i);
        }
        let mut rng = SplitMix64::new(2);
        b.iter(|| s.estimate(rng.next_u64() & 0xFFFF));
    });
    group.finish();
}

fn bench_ghost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghost_table");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert", |b| {
        let mut g = GhostTable::new(1 << 14);
        let mut rng = SplitMix64::new(3);
        b.iter(|| g.insert(rng.next_u64()));
    });
    group.bench_function("contains", |b| {
        let mut g = GhostTable::new(1 << 14);
        for i in 0..(1 << 14) as u64 {
            g.insert(i);
        }
        let mut rng = SplitMix64::new(4);
        b.iter(|| g.contains(rng.next_u64() & 0x7FFF));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dlist, bench_ring, bench_sketch, bench_ghost
}
criterion_main!(benches);

//! Shared helpers for the benchmark binaries that regenerate every table
//! and figure of the paper's evaluation.
//!
//! Each binary prints the same rows/series the paper reports, plus the
//! paper's published values where applicable, so the *shape* comparison
//! (who wins, by roughly what factor, where crossovers fall) can be read
//! off directly. See `EXPERIMENTS.md` at the workspace root for the
//! recorded paper-vs-measured comparison.
//!
//! Environment knobs (all optional):
//!
//! - `CORPUS_TRACES` — traces per dataset (default 3);
//! - `CORPUS_REQUESTS` — requests per trace (default 150 000);
//! - `BENCH_THREADS` — sweep worker threads (default: all cores).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cache_trace::corpus::CorpusConfig;

/// Reads the corpus scale from the environment (see crate docs).
pub fn corpus_config_from_env() -> CorpusConfig {
    let traces = std::env::var("CORPUS_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let requests = std::env::var("CORPUS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000);
    CorpusConfig {
        traces_per_dataset: traces,
        requests_per_trace: requests,
        seed: 0xC0FFEE,
    }
}

/// Sweep worker threads from the environment (0 = all cores).
pub fn threads_from_env() -> usize {
    std::env::var("BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Prints an ASCII table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        s
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let cfg = corpus_config_from_env();
        assert!(cfg.traces_per_dataset >= 1);
        assert!(cfg.requests_per_trace >= 1000);
    }

    #[test]
    fn formatting() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(0.12345), "0.12");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        banner("test");
    }
}

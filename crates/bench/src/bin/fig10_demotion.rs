//! Fig. 10: normalized quick-demotion speed and precision for ARC, TinyLFU,
//! and S3-FIFO (the latter two swept over S sizes), on the Twitter-like and
//! MSR-like traces at large and small cache sizes.
//!
//! Run: `cargo run --release -p cache-bench --bin fig10_demotion`

use cache_bench::{banner, f2, f3, f4, print_table};
use cache_sim::demotion::{demotion_metrics, lru_mean_eviction_age};
use cache_sim::{NextAccessOracle, SimConfig};
use cache_trace::corpus::{msr_like, twitter_like};
use cache_trace::Trace;

const S_SIZES: &[f64] = &[0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40];

fn run(trace: &Trace, cfg: SimConfig, label: &str) {
    banner(&format!("Fig. 10: {} ({label})", trace.name));
    let capacity = cfg.capacity_for(trace);
    let oracle = NextAccessOracle::new(&trace.requests);
    let lru_age = lru_mean_eviction_age(trace, capacity);
    println!("cache = {capacity} objects, LRU eviction age = {lru_age:.0}");
    let mut rows = Vec::new();
    let arc = demotion_metrics("ARC", trace, capacity, lru_age, &oracle).expect("ARC");
    rows.push(vec![
        "ARC".into(),
        "adaptive".into(),
        f2(arc.speed),
        f3(arc.precision),
        f4(arc.miss_ratio),
    ]);
    for family in ["TinyLFU", "S3-FIFO"] {
        for s in S_SIZES {
            let name = format!("{family}({s})");
            let m = demotion_metrics(&name, trace, capacity, lru_age, &oracle).expect("algo");
            rows.push(vec![
                family.to_string(),
                format!("S={s}"),
                f2(m.speed),
                f3(m.precision),
                f4(m.miss_ratio),
            ]);
        }
    }
    print_table(
        &[
            "algorithm",
            "S size",
            "demotion speed",
            "precision",
            "miss ratio",
        ],
        &rows,
    );
}

fn main() {
    let tw = twitter_like(400_000, 17);
    let msr = msr_like(400_000, 17);
    run(&tw, SimConfig::large(), "large cache, 10%");
    run(&tw, SimConfig::small(), "small cache, 0.1%");
    run(&msr, SimConfig::large(), "large cache, 10%");
    run(&msr, SimConfig::small(), "small cache, 0.1%");
    println!("(paper: smaller S -> monotonically faster demotion; precision peaks at");
    println!(" an intermediate S; at equal speed S3-FIFO is more precise than TinyLFU;");
    println!(" higher precision at similar speed tracks lower miss ratio)");
}

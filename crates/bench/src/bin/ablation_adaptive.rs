//! §6.2.2: S3-FIFO (static 10 % small queue) vs S3-FIFO-D (adaptive queue
//! sizes) across the corpus, plus the adversarial trace where adaptation is
//! supposed to help.
//!
//! Run: `cargo run --release -p cache-bench --bin ablation_adaptive`

use cache_bench::{banner, corpus_config_from_env, f3, f4, print_table, threads_from_env};
use cache_sim::{run_sweep, simulate_named, summarize_reductions, SimConfig, SweepSpec};
use cache_trace::corpus::datasets;
use cache_trace::gen::two_request_adversarial_mixed;

fn main() {
    let corpus_cfg = corpus_config_from_env();
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&corpus_cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    banner("S3-FIFO vs S3-FIFO-D across the corpus (large cache)");
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms: vec!["FIFO".into(), "S3-FIFO".into(), "S3-FIFO-D".into()],
        config: SimConfig::large(),
        threads: threads_from_env(),
    };
    let records = run_sweep(&spec).expect("sweep");
    let sums = summarize_reductions(&records, false);
    let rows: Vec<Vec<String>> = sums
        .iter()
        .map(|(a, s)| vec![a.clone(), f3(s.p10), f3(s.p50), f3(s.p90), f3(s.mean)])
        .collect();
    print_table(&["algorithm", "P10", "P50", "P90", "mean"], &rows);
    println!("(paper: static S3-FIFO beats S3-FIFO-D on most traces; the adaptive");
    println!(" variant only wins on the ~2% adversarial tail)");

    banner("Adversarial two-request trace (second request falls out of S)");
    // Hot background keeps M populated so S is really squeezed to 10%; the
    // gap of 400 pairs (~1600 requests) exceeds S residency but not LRU's.
    let adv = two_request_adversarial_mixed("two-request", 50_000, 400, 1800);
    let cfg = SimConfig {
        size: cache_sim::CacheSizeSpec::Bytes(2000),
        ignore_size: true,
        min_objects: 0,
        floor_objects: 0,
    };
    let mut rows = Vec::new();
    for algo in ["FIFO", "LRU", "S3-FIFO", "S3-FIFO-D", "TinyLFU-0.1", "2Q"] {
        let r = simulate_named(algo, &adv, &cfg).unwrap().unwrap();
        rows.push(vec![algo.to_string(), f4(r.miss_ratio)]);
    }
    print_table(&["algorithm", "miss ratio"], &rows);
    println!("(paper: partitioned algorithms suffer here because the second request");
    println!(" misses the probationary region; plain FIFO/LRU can serve it)");
}

//! Thread-sweep scaling benchmark over the concurrent cache variants —
//! the paper's multicore argument (§5.3, Fig. 8) as a reproducible
//! artifact: FIFO-family hit paths scale with threads because a hit is
//! lock-free bookkeeping, while strict LRU flattens because every hit
//! serializes on the promotion lock.
//!
//! ## Why a measured-cost model instead of real threads
//!
//! This harness runs on whatever machine CI gives it — typically one
//! vCPU. Timing 16 real threads there measures the scheduler, not the
//! cache design. Instead, per (workload, cache) the harness runs:
//!
//! 1. a **bulk measured pass** (profiling off): true single-thread per-op
//!    cost `t_op` plus a sampled p99 op latency (every 64th op is timed
//!    individually, corrected for calibrated timer overhead);
//! 2. a **profiled pass** (profiling on): the measured-cost
//!    synchronization counters from `cache_concurrent::profile` — global
//!    lock hold nanoseconds and section count, writes to globally shared
//!    cache lines (ring heads/tails, CLOCK hand, occupancy counters),
//!    and writes to per-entry/per-shard lines;
//! 3. a **modeled sweep**: the two passes combine with two calibrated
//!    hardware numbers (uncontended RMW cost, `Instant::now` overhead)
//!    into a first-order Amdahl + MESI contention model.
//!
//! ## The model
//!
//! ```text
//! ramp(N)   = min(N-1, RMW_CONTENTION_FACTOR)
//! sat(N, m) = 1 - (1 - m)^(N-1)
//! t_eff(N)  = t_op                                        measured work
//!           + (N-1) * (lock_ns/op                         serialized
//!                      + 2*rmw_base*ramp(N)*sections/op)
//!           + shared/op * rmw_base * ramp(N)              always-hot lines
//!           + entry/op  * t_rmw * sat(N, p_coll)          key-homed lines
//! ```
//!
//! - Critical sections serialize (Amdahl): every other thread's hold time
//!   queues in front of an op, plus two lock-word line transfers per
//!   section once the lock ping-pongs between cores.
//! - A write to a line every thread writes (`shared`: ring heads/tails,
//!   occupancy counters) pays a transfer whose latency grows with the
//!   number of peers racing for the line — `ramp(N)` — and saturates
//!   once transfers pipeline, at [`RMW_CONTENTION_FACTOR`] peers. At
//!   `N=1` the ramp is zero: the uncontended cost is already in `t_op`.
//! - A write to a key-homed line (`entry`: an object's frequency byte,
//!   its shard's lock word) pays a full contended transfer (`t_rmw`)
//!   only when some concurrent op lands on the same line: `sat(N, p_coll)`
//!   with `p_coll = Σ p_i²` over the workload's Zipf key distribution
//!   (two independent draws colliding). Shard-level aggregation
//!   concentrates more mass per line than the key-level bound; the
//!   contention factor absorbs that slack.
//! - `t_rmw` = measured uncontended `fetch_add` × [`RMW_CONTENTION_FACTOR`]:
//!   a dirty-line cross-core hop costs roughly an order of magnitude more
//!   than an L1-hit RMW on commodity x86 (~6 ns vs ~50 ns).
//!
//! Throughput `X(N) = N / t_eff(N)`; scaling efficiency
//! `X(N) / (N·X(1)) = t_op / t_eff(N)`; modeled `p99(N)` stretches the
//! measured single-thread p99 by `t_eff(N)/t_op`.
//!
//! The model is deliberately first-order; what makes the comparison fair
//! is that every variant is scored by the *same* formula on *measured*
//! per-op costs. The Fig. 8 shape falls out, not in: nothing in the
//! harness knows that strict LRU holds its lock on every hit — the
//! profiled pass measures it.
//!
//! ## Output
//!
//! `BENCH_concurrent.json` (repo root on a full run, `target/` with
//! `--smoke`) with the per-cache measured costs and the modeled sweep,
//! plus the acceptance summary: FIFO-family speedup at max threads,
//! strict-LRU speedup (must stay < 2×), batched-vs-direct S3-FIFO hit
//! throughput ratio, and the batched cache's miss-ratio delta against
//! the simulation-grade serial S3-FIFO on the same trace.
//!
//! Env knobs: `CT_REQUESTS`, `CT_CAPACITY`, `CT_OBJECTS` override the
//! trace scale.

use bytes::Bytes;
use cache_bench::{banner, f2, f3, print_table};
use cache_concurrent::clock::ConcurrentClock;
use cache_concurrent::lru::MutexLru;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::segcache::SegcacheLike;
use cache_concurrent::ConcurrentCache;
use cache_ds::SplitMix64;
use cache_trace::zipf::ZipfSampler;
use cache_types::{Policy, Request};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cross-core dirty-line transfer cost relative to an L1-hit RMW (see
/// module docs). Applied to the calibrated uncontended `fetch_add`.
const RMW_CONTENTION_FACTOR: f64 = 8.0;

/// Every Nth op of the measured pass is individually timed for the p99.
const P99_SAMPLE_EVERY: usize = 64;

const OP_GET: u8 = 0;
const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;

/// One synthetic workload: Zipf skew plus an op mix (the remainder after
/// gets and sets is deletes). Skews ladder from hot (read-heavy, CDN-like
/// α=1.2) to mild (write-heavy, α=0.8) so the hit-path comparison runs
/// where it matters and the write paths are exercised where they matter.
struct Workload {
    name: &'static str,
    alpha: f64,
    get_pct: u64,
    set_pct: u64,
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "read-heavy",
        alpha: 1.2,
        get_pct: 95,
        set_pct: 5,
    },
    Workload {
        name: "mixed",
        alpha: 1.0,
        get_pct: 75,
        set_pct: 20,
    },
    Workload {
        name: "write-heavy",
        alpha: 0.8,
        get_pct: 50,
        set_pct: 40,
    },
];

struct Config {
    requests: usize,
    capacity: usize,
    objects: u64,
    threads: Vec<usize>,
    smoke: bool,
}

/// Calibrated host costs feeding the model.
struct Calibration {
    /// One `Instant::now()` call, ns.
    timer_ns: f64,
    /// Uncontended relaxed `fetch_add`, ns.
    rmw_base_ns: f64,
    /// Modeled contended RMW: `rmw_base_ns * RMW_CONTENTION_FACTOR`.
    t_rmw: f64,
}

struct SweepPoint {
    threads: usize,
    mops: f64,
    p99_us: f64,
    efficiency: f64,
}

struct CacheRow {
    name: String,
    t_op_ns: f64,
    p99_ns: f64,
    miss_ratio: f64,
    /// Per-op profiled costs.
    lock_ns: f64,
    lock_sections: f64,
    shared_writes: f64,
    entry_writes: f64,
    sweep: Vec<SweepPoint>,
}

struct WorkloadResult {
    name: &'static str,
    alpha: f64,
    get_pct: u64,
    set_pct: u64,
    collision_p: f64,
    rows: Vec<CacheRow>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn builders(capacity: usize) -> Vec<(&'static str, Arc<dyn ConcurrentCache>)> {
    vec![
        ("S3-FIFO", Arc::new(ConcurrentS3Fifo::new(capacity))),
        ("S3-FIFO-direct", Arc::new(ConcurrentS3Fifo::direct(capacity))),
        ("LRU-strict", Arc::new(MutexLru::strict(capacity))),
        ("LRU-optimized", Arc::new(MutexLru::optimized(capacity))),
        ("CLOCK", Arc::new(ConcurrentClock::new(capacity))),
        ("Segcache", Arc::new(SegcacheLike::new(capacity))),
    ]
}

/// Fixed-seed op/key trace for one workload. Keys are Zipf ranks.
fn gen_trace(w: &Workload, cfg: &Config, seed: u64) -> Vec<(u8, u64)> {
    let zipf = ZipfSampler::new(cfg.objects, w.alpha);
    let mut rng = SplitMix64::new(seed);
    (0..cfg.requests)
        .map(|_| {
            let key = zipf.sample(&mut rng);
            let dice = rng.next_below(100);
            let op = if dice < w.get_pct {
                OP_GET
            } else if dice < w.get_pct + w.set_pct {
                OP_SET
            } else {
                OP_DEL
            };
            (op, key)
        })
        .collect()
}

/// Key-level line-collision probability: chance two independent draws from
/// the workload's Zipf distribution pick the same key.
fn collision_probability(objects: u64, alpha: f64) -> f64 {
    let zipf = ZipfSampler::new(objects, alpha);
    (1..=objects)
        .map(|rank| {
            let p = zipf.probability(rank);
            p * p
        })
        .sum()
}

fn calibrate_timer() -> f64 {
    let n = 200_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(Instant::now());
    }
    t0.elapsed().as_nanos() as f64 / f64::from(n)
}

// ORDERING: Relaxed — a calibration loop measuring the latency of the
// RMW instruction itself; no cross-thread communication exists.
fn calibrate_rmw() -> f64 {
    let counter = AtomicU64::new(0);
    let n = 1_000_000u64;
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(counter.fetch_add(1, Ordering::Relaxed));
    }
    let per_op = t0.elapsed().as_nanos() as f64 / n as f64;
    black_box(counter.load(Ordering::Relaxed));
    per_op
}

/// Replays the trace once. When `samples` is given, every
/// [`P99_SAMPLE_EVERY`]th op is individually timed into it. Returns
/// (elapsed ns, gets, get-misses).
fn replay(
    cache: &dyn ConcurrentCache,
    trace: &[(u8, u64)],
    payload: &Bytes,
    mut samples: Option<&mut Vec<u64>>,
) -> (u64, u64, u64) {
    let mut gets = 0u64;
    let mut get_misses = 0u64;
    let t0 = Instant::now();
    for (i, &(op, key)) in trace.iter().enumerate() {
        let sampled = match &mut samples {
            Some(_) if i % P99_SAMPLE_EVERY == 0 => Some(Instant::now()),
            _ => None,
        };
        match op {
            OP_GET => {
                gets += 1;
                match cache.get(key) {
                    Some(v) => {
                        black_box(v);
                    }
                    None => {
                        get_misses += 1;
                        // Demand fill, as a real cache client would.
                        cache.insert(key, payload.clone());
                    }
                }
            }
            OP_SET => cache.insert(key, payload.clone()),
            _ => {
                cache.remove(key);
            }
        }
        if let (Some(t), Some(out)) = (sampled, &mut samples) {
            out.push(t.elapsed().as_nanos() as u64);
        }
    }
    (t0.elapsed().as_nanos() as u64, gets, get_misses)
}

fn percentile(samples: &mut [u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx.min(samples.len() - 1)] as f64
}

/// `sat(N, m)`: probability at least one of `N-1` peer ops lands on the
/// same line (see module docs).
fn sat(threads: usize, mass: f64) -> f64 {
    1.0 - (1.0 - mass).powi(threads as i32 - 1)
}

/// `ramp(N)`: hot-line transfer latency multiplier — grows with peer
/// count, saturates when transfers pipeline (see module docs).
fn ramp(threads: usize) -> f64 {
    ((threads - 1) as f64).min(RMW_CONTENTION_FACTOR)
}

fn model_sweep(row_t_op: f64, p99_ns: f64, row: &CacheRow, cal: &Calibration, collision_p: f64, threads: &[usize]) -> Vec<SweepPoint> {
    threads
        .iter()
        .map(|&n| {
            let serialized =
                row.lock_ns + 2.0 * cal.rmw_base_ns * ramp(n) * row.lock_sections;
            let t_eff = row_t_op
                + (n as f64 - 1.0) * serialized
                + row.shared_writes * cal.rmw_base_ns * ramp(n)
                + row.entry_writes * cal.t_rmw * sat(n, collision_p);
            SweepPoint {
                threads: n,
                mops: n as f64 * 1e3 / t_eff,
                p99_us: p99_ns * (t_eff / row_t_op) / 1e3,
                efficiency: row_t_op / t_eff,
            }
        })
        .collect()
}

/// Runs warmup + measured + profiled passes for one cache on one trace.
fn run_cache(
    name: &str,
    cache: &dyn ConcurrentCache,
    trace: &[(u8, u64)],
    cal: &Calibration,
) -> CacheRow {
    let payload = Bytes::from_static(b"concurrent-throughput-payload");
    // Warmup: reach steady-state occupancy before timing anything.
    replay(cache, trace, &payload, None);

    // Measured pass: profiling off (hooks cost one relaxed load each).
    // Best of three replays — the minimum elapsed is the least
    // scheduler-disturbed run, the standard noise filter on a shared host.
    cache.sync_profile().set_enabled(false);
    let mut samples = Vec::new();
    let mut best: Option<(u64, u64, u64)> = None;
    for _ in 0..3 {
        let mut pass_samples = Vec::with_capacity(trace.len() / P99_SAMPLE_EVERY + 1);
        let pass = replay(cache, trace, &payload, Some(&mut pass_samples));
        if best.map(|b| pass.0 < b.0).unwrap_or(true) {
            best = Some(pass);
            samples = pass_samples;
        }
    }
    // Invariant: the loop above ran at least once.
    let (elapsed_ns, gets, get_misses) = best.expect("at least one measured pass");
    let n = trace.len() as f64;
    // Back out the sampling timers from the bulk elapsed time, and the
    // timer-pair overhead from each individual sample.
    let timer_pair = 2.0 * cal.timer_ns;
    let t_op_ns = (elapsed_ns as f64 - samples.len() as f64 * timer_pair).max(1.0) / n;
    for s in &mut samples {
        *s = (*s as f64 - timer_pair).max(1.0) as u64;
    }
    let p99_ns = percentile(&mut samples, 0.99);
    let miss_ratio = if gets > 0 {
        get_misses as f64 / gets as f64
    } else {
        0.0
    };

    // Profiled pass: same trace again, hooks on.
    let profile = cache.sync_profile();
    profile.reset();
    profile.set_enabled(true);
    replay(cache, trace, &payload, None);
    profile.set_enabled(false);
    let snap = profile.snapshot();
    // Each timed section pays one Instant call inside the measured hold.
    let lock_ns = (snap.lock_ns as f64 - snap.lock_sections as f64 * cal.timer_ns).max(0.0) / n;

    CacheRow {
        name: name.to_string(),
        t_op_ns,
        p99_ns,
        miss_ratio,
        lock_ns,
        lock_sections: snap.lock_sections as f64 / n,
        shared_writes: snap.shared_writes as f64 / n,
        entry_writes: snap.entry_writes as f64 / n,
        sweep: Vec::new(),
    }
}

/// Miss-ratio fidelity of the batched concurrent S3-FIFO against the
/// simulation-grade serial policy: the same get-only key stream, both
/// sides cold, both demand-filling on a miss. This isolates what the
/// acceptance criterion is about — whether deferred frequency increments
/// change eviction decisions — from op-mix semantics the two
/// implementations define differently (a Set re-enqueues in the
/// concurrent cache, updates in place in the simulator).
fn fidelity_delta(trace: &[(u8, u64)], capacity: usize) -> (f64, f64) {
    // Invariant: capacity > 0 by construction of Config.
    let mut policy = s3fifo::S3Fifo::new(capacity as u64).expect("capacity is positive");
    let mut evictions = Vec::new();
    let mut serial_misses = 0u64;
    for (t, &(_, key)) in trace.iter().enumerate() {
        if policy
            .request(&Request::get(key, t as u64), &mut evictions)
            .is_miss()
        {
            serial_misses += 1;
        }
        evictions.clear();
    }
    let cache = ConcurrentS3Fifo::new(capacity);
    let payload = Bytes::from_static(b"fidelity-probe");
    let mut conc_misses = 0u64;
    for &(_, key) in trace {
        if cache.get(key).is_none() {
            conc_misses += 1;
            cache.insert(key, payload.clone());
        }
    }
    let n = trace.len() as f64;
    (serial_misses as f64 / n, conc_misses as f64 / n)
}

fn write_json(
    path: &str,
    cfg: &Config,
    cal: &Calibration,
    results: &[WorkloadResult],
    fidelity: (f64, f64),
) -> std::io::Result<()> {
    let mut s = String::new();
    let push = |s: &mut String, line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    push(&mut s, "{");
    push(&mut s, "  \"bench\": \"concurrent_throughput\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if cfg.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"requests\": {},", cfg.requests);
    let _ = writeln!(s, "  \"capacity\": {},", cfg.capacity);
    let _ = writeln!(s, "  \"objects\": {},", cfg.objects);
    let _ = writeln!(
        s,
        "  \"threads\": [{}],",
        cfg.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"timer_ns\": {:.3},", cal.timer_ns);
    let _ = writeln!(s, "  \"rmw_base_ns\": {:.3},", cal.rmw_base_ns);
    let _ = writeln!(s, "  \"rmw_contention_factor\": {RMW_CONTENTION_FACTOR},");
    let _ = writeln!(s, "  \"t_rmw_ns\": {:.3},", cal.t_rmw);
    push(&mut s, "  \"workloads\": [");
    for (wi, w) in results.iter().enumerate() {
        push(&mut s, "    {");
        let _ = writeln!(s, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(s, "      \"alpha\": {},", w.alpha);
        let _ = writeln!(s, "      \"get_percent\": {},", w.get_pct);
        let _ = writeln!(s, "      \"set_percent\": {},", w.set_pct);
        let _ = writeln!(
            s,
            "      \"delete_percent\": {},",
            100 - w.get_pct - w.set_pct
        );
        let _ = writeln!(s, "      \"collision_p\": {:.6},", w.collision_p);
        push(&mut s, "      \"caches\": [");
        for (ci, row) in w.rows.iter().enumerate() {
            push(&mut s, "        {");
            let _ = writeln!(s, "          \"name\": \"{}\",", row.name);
            let _ = writeln!(s, "          \"t_op_ns\": {:.2},", row.t_op_ns);
            let _ = writeln!(s, "          \"p99_op_ns_1t\": {:.1},", row.p99_ns);
            let _ = writeln!(s, "          \"miss_ratio\": {:.5},", row.miss_ratio);
            let _ = writeln!(s, "          \"lock_ns_per_op\": {:.3},", row.lock_ns);
            let _ = writeln!(
                s,
                "          \"lock_sections_per_op\": {:.4},",
                row.lock_sections
            );
            let _ = writeln!(
                s,
                "          \"shared_writes_per_op\": {:.4},",
                row.shared_writes
            );
            let _ = writeln!(
                s,
                "          \"entry_writes_per_op\": {:.4},",
                row.entry_writes
            );
            push(&mut s, "          \"sweep\": [");
            for (si, p) in row.sweep.iter().enumerate() {
                let comma = if si + 1 == row.sweep.len() { "" } else { "," };
                let _ = writeln!(
                    s,
                    "            {{\"threads\": {}, \"mops\": {:.3}, \"p99_us\": {:.3}, \"efficiency\": {:.4}}}{comma}",
                    p.threads, p.mops, p.p99_us, p.efficiency
                );
            }
            push(&mut s, "          ]");
            push(&mut s, if ci + 1 == w.rows.len() { "        }" } else { "        }," });
        }
        push(&mut s, "      ]");
        push(&mut s, if wi + 1 == results.len() { "    }" } else { "    }," });
    }
    push(&mut s, "  ],");
    // Acceptance summary, computed on the read-heavy workload.
    let rh = &results[0];
    let speedup = |name: &str| -> f64 {
        rh.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| {
                let first = r.sweep.first().map(|p| p.mops).unwrap_or(1.0);
                let last = r.sweep.last().map(|p| p.mops).unwrap_or(1.0);
                last / first
            })
            .unwrap_or(0.0)
    };
    let mops_at_max = |name: &str| -> f64 {
        rh.rows
            .iter()
            .find(|r| r.name == name)
            .and_then(|r| r.sweep.last().map(|p| p.mops))
            .unwrap_or(0.0)
    };
    push(&mut s, "  \"summary\": {");
    let _ = writeln!(
        s,
        "    \"max_threads\": {},",
        cfg.threads.last().copied().unwrap_or(1)
    );
    let _ = writeln!(
        s,
        "    \"fifo_speedup_max_threads\": {:.3},",
        speedup("S3-FIFO")
    );
    let _ = writeln!(
        s,
        "    \"lru_strict_speedup_max_threads\": {:.3},",
        speedup("LRU-strict")
    );
    let _ = writeln!(
        s,
        "    \"batched_vs_direct_max_threads\": {:.4},",
        mops_at_max("S3-FIFO") / mops_at_max("S3-FIFO-direct").max(1e-12)
    );
    let _ = writeln!(s, "    \"serial_miss_ratio\": {:.5},", fidelity.0);
    let _ = writeln!(s, "    \"batched_miss_ratio\": {:.5},", fidelity.1);
    let _ = writeln!(
        s,
        "    \"miss_ratio_delta_vs_serial\": {:.5}",
        (fidelity.1 - fidelity.0).abs()
    );
    push(&mut s, "  }");
    push(&mut s, "}");
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "target/BENCH_concurrent.json".to_string()
            } else {
                "BENCH_concurrent.json".to_string()
            }
        });

    let cfg = Config {
        requests: env_usize("CT_REQUESTS", if smoke { 120_000 } else { 600_000 }),
        capacity: env_usize("CT_CAPACITY", if smoke { 2_000 } else { 10_000 }),
        objects: env_usize("CT_OBJECTS", if smoke { 20_000 } else { 100_000 }) as u64,
        threads: if smoke {
            vec![1, 2]
        } else {
            vec![1, 2, 4, 8, 16]
        },
        smoke,
    };

    banner("concurrent thread-sweep: calibration");
    let timer_ns = calibrate_timer();
    let rmw_base_ns = calibrate_rmw();
    let cal = Calibration {
        timer_ns,
        rmw_base_ns,
        t_rmw: rmw_base_ns * RMW_CONTENTION_FACTOR,
    };
    println!(
        "timer {:.2} ns/call, uncontended RMW {:.2} ns, modeled contended RMW {:.2} ns (x{})",
        cal.timer_ns, cal.rmw_base_ns, cal.t_rmw, RMW_CONTENTION_FACTOR
    );
    println!(
        "{} requests, capacity {}, {} objects, threads {:?}{}",
        cfg.requests,
        cfg.capacity,
        cfg.objects,
        cfg.threads,
        if smoke { " [SMOKE — numbers not meaningful]" } else { "" }
    );

    let mut results = Vec::new();
    let mut fidelity = (0.0, 0.0);
    for (wi, w) in WORKLOADS.iter().enumerate() {
        let trace = gen_trace(w, &cfg, 0x5EED_C0DE + wi as u64);
        let collision_p = collision_probability(cfg.objects, w.alpha);
        banner(&format!(
            "{} (zipf {}, {}% get / {}% set / {}% delete, p_coll {:.4})",
            w.name,
            w.alpha,
            w.get_pct,
            w.set_pct,
            100 - w.get_pct - w.set_pct,
            collision_p
        ));
        let mut rows = Vec::new();
        for (name, cache) in builders(cfg.capacity) {
            let mut row = run_cache(name, cache.as_ref(), &trace, &cal);
            row.sweep = model_sweep(row.t_op_ns, row.p99_ns, &row, &cal, collision_p, &cfg.threads);
            rows.push(row);
        }
        if wi == 0 {
            fidelity = fidelity_delta(&trace, cfg.capacity);
            println!(
                "fidelity (get-only, cold): serial {:.4} vs batched {:.4} (delta {:.4})",
                fidelity.0,
                fidelity.1,
                (fidelity.1 - fidelity.0).abs()
            );
        }

        let mut headers = vec!["cache", "t_op ns", "p99 ns", "miss"];
        let thread_cols: Vec<String> = cfg
            .threads
            .iter()
            .map(|t| format!("Mops@{t}"))
            .collect();
        headers.extend(thread_cols.iter().map(|c| c.as_str()));
        headers.push("speedup");
        headers.push("eff@max");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut cells = vec![
                    r.name.clone(),
                    f2(r.t_op_ns),
                    f2(r.p99_ns),
                    f3(r.miss_ratio),
                ];
                cells.extend(r.sweep.iter().map(|p| f2(p.mops)));
                let first = r.sweep.first().map(|p| p.mops).unwrap_or(1.0);
                let last = r.sweep.last().map(|p| p.mops).unwrap_or(1.0);
                cells.push(f2(last / first));
                cells.push(f3(r.sweep.last().map(|p| p.efficiency).unwrap_or(1.0)));
                cells
            })
            .collect();
        print_table(&headers, &table);

        results.push(WorkloadResult {
            name: w.name,
            alpha: w.alpha,
            get_pct: w.get_pct,
            set_pct: w.set_pct,
            collision_p,
            rows,
        });
    }

    match write_json(&out, &cfg, &cal, &results, fidelity) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

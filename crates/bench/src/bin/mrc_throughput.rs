//! Miss-ratio-curve throughput: single-pass multi-capacity engines vs the
//! per-capacity sweep.
//!
//! One fixed-seed Zipf trace, one log-spaced capacity grid, every
//! FIFO-family policy. For each policy the *baseline* replays the trace
//! once per grid point through `simulate_named` (what `miss_ratio_curve`
//! does today); the *mrc* path computes the whole grid in ~one pass via
//! `simulate_mrc` (exact insertion-index engine for FIFO, interleaved
//! ganged lanes for the rest). Every grid point is asserted bit-identical
//! across the two paths before any number is timed.
//!
//! Results go to stdout as a table and to a JSON file (repo root
//! `BENCH_mrc.json` by default). The acceptance numbers live in
//! `aggregate`: `speedup` (all policies, whole grid) and
//! `fifo_exact_speedup` (the exact-FIFO engine alone).
//!
//! Run: `cargo run --release -p cache-bench --bin mrc_throughput`
//! Flags: `--smoke` (small trace + 8-point grid, write to
//!        `target/BENCH_mrc.json`), `--out PATH` (override the output path).
//! Env: `MRC_TP_REQUESTS`, `MRC_TP_OBJECTS`, `MRC_TP_REPEATS`,
//!      `MRC_TP_POINTS`, `MRC_TP_ALPHA` (Zipf skew ×100),
//!      `MRC_TP_LO_DIV`/`MRC_TP_HI_DIV` (grid endpoints as universe
//!      divisors).

use cache_bench::{banner, f2, f4, print_table};
use cache_sim::{simulate_mrc, simulate_named, CacheSizeSpec, MrcConfig, MrcEngine, SimConfig};
use cache_trace::gen::WorkloadSpec;
use cache_trace::Trace;
use std::time::Instant;

/// The FIFO-family policies with a multi-capacity engine. FIFO routes to
/// the exact insertion-index engine on this pure-`Get` unit-size trace;
/// the rest go through the ganged lanes.
const POLICIES: &[&str] = &["FIFO", "CLOCK", "CLOCK-2bit", "SIEVE", "S3-FIFO"];

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Log-spaced capacity grid, strictly increasing (rounding collisions are
/// bumped to `prev + 1`), from `lo` to roughly `hi`.
fn log_grid(lo: u64, hi: u64, points: usize) -> Vec<u64> {
    let lo = lo.max(1) as f64;
    let hi = (hi.max(2) as f64).max(lo * 2.0);
    let mut grid = Vec::with_capacity(points);
    let mut prev = 0u64;
    let denom = points.saturating_sub(1).max(1) as f64;
    for i in 0..points {
        let t = i as f64 / denom;
        let v = (lo * (hi / lo).powf(t)).round() as u64;
        let v = v.max(prev + 1);
        grid.push(v);
        prev = v;
    }
    grid
}

/// One measured policy row.
struct Row {
    name: String,
    engine: &'static str,
    baseline_secs: f64,
    mrc_secs: f64,
    points: Vec<(u64, f64)>,
}

fn sweep_config(cap: u64) -> SimConfig {
    SimConfig {
        size: CacheSizeSpec::Bytes(cap),
        ignore_size: true,
        min_objects: 0,
        floor_objects: 0,
    }
}

/// The per-capacity baseline: one full `simulate_named` replay per grid
/// point, exactly what `miss_ratio_curve` does. Returns
/// (requests, misses, evictions, miss-ratio bits) per point.
fn baseline_sweep(name: &str, trace: &Trace, grid: &[u64]) -> Vec<(u64, u64, u64, u64)> {
    grid.iter()
        .map(|&cap| {
            let r = simulate_named(name, trace, &sweep_config(cap))
                .expect("known policy")
                .expect("no size filter");
            (r.requests, r.misses, r.evictions, r.miss_ratio.to_bits())
        })
        .collect()
}

fn measure(name: &str, trace: &Trace, grid: &[u64], repeats: u32) -> Row {
    let cfg = MrcConfig::default();

    // Correctness gate first: every grid point of the single-pass curve
    // must equal the per-capacity replay bit for bit.
    let mrc = simulate_mrc(name, trace, grid, &cfg).expect("known policy and valid grid");
    let base = baseline_sweep(name, trace, grid);
    assert_eq!(mrc.points.len(), base.len());
    for (point, (requests, misses, evictions, ratio_bits)) in mrc.points.iter().zip(base.iter()) {
        assert_eq!(
            (point.requests, point.misses, point.evictions),
            (*requests, *misses, *evictions),
            "{name}@{}: single-pass vs per-capacity counters diverged",
            point.capacity
        );
        assert_eq!(
            point.miss_ratio.to_bits(),
            *ratio_bits,
            "{name}@{}: single-pass vs per-capacity miss ratio diverged",
            point.capacity
        );
    }

    // Timed runs: best of `repeats` for each path.
    let mut baseline_secs = f64::INFINITY;
    let mut mrc_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let b = baseline_sweep(name, trace, grid);
        baseline_secs = baseline_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(b.len());

        let t0 = Instant::now();
        let r = simulate_mrc(name, trace, grid, &cfg).expect("known policy and valid grid");
        mrc_secs = mrc_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(r.points.len());
    }

    let expected = if name == POLICIES[0] {
        MrcEngine::ExactFifo
    } else {
        MrcEngine::Ganged
    };
    assert_eq!(mrc.engine, expected, "{name} routed through the wrong engine");

    Row {
        name: name.to_string(),
        engine: mrc.engine.as_str(),
        baseline_secs,
        mrc_secs,
        points: mrc.points.iter().map(|p| (p.capacity, p.miss_ratio)).collect(),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    mode: &str,
    requests: u64,
    objects: u64,
    grid: &[u64],
    rows: &[Row],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"mrc_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"requests\": {requests},\n"));
    out.push_str(&format!("  \"objects\": {objects},\n"));
    let grid_strs: Vec<String> = grid.iter().map(|c| c.to_string()).collect();
    out.push_str(&format!("  \"grid\": [{}],\n", grid_strs.join(", ")));
    out.push_str("  \"policies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"engine\": \"{}\", \"baseline_secs\": {:.4}, \
             \"mrc_secs\": {:.4}, \"speedup\": {:.4}, \"points\": [\n",
            json_escape(&r.name),
            r.engine,
            r.baseline_secs,
            r.mrc_secs,
            r.baseline_secs / r.mrc_secs,
        ));
        for (j, (cap, ratio)) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"capacity\": {cap}, \"miss_ratio\": {ratio:.6}, \"identical\": true}}{}\n",
                if j + 1 < r.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let baseline_total: f64 = rows.iter().map(|r| r.baseline_secs).sum();
    let mrc_total: f64 = rows.iter().map(|r| r.mrc_secs).sum();
    // Invariant: POLICIES[0] is FIFO, measured through the exact engine.
    let fifo = rows.first().expect("at least one policy row");
    out.push_str(&format!(
        "  \"aggregate\": {{\"metric\": \"mrc\", \"grid_points\": {}, \
         \"baseline_secs\": {:.4}, \"mrc_secs\": {:.4}, \"speedup\": {:.4}, \
         \"fifo_exact_speedup\": {:.4}}}\n",
        grid.len(),
        baseline_total,
        mrc_total,
        baseline_total / mrc_total,
        fifo.baseline_secs / fifo.mrc_secs,
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                // Smoke runs must not clobber the checked-in full-run numbers.
                "target/BENCH_mrc.json".to_string()
            } else {
                "BENCH_mrc.json".to_string()
            }
        });

    let (requests, objects, repeats, points) = if smoke {
        (
            env_u64("MRC_TP_REQUESTS", 200_000),
            env_u64("MRC_TP_OBJECTS", 20_000),
            env_u64("MRC_TP_REPEATS", 1) as u32,
            env_u64("MRC_TP_POINTS", 8) as usize,
        )
    } else {
        (
            env_u64("MRC_TP_REQUESTS", 4_000_000),
            env_u64("MRC_TP_OBJECTS", 600_000),
            env_u64("MRC_TP_REPEATS", 3) as u32,
            env_u64("MRC_TP_POINTS", 32) as usize,
        )
    };

    // Skew 1.4 puts the default grid in the hit-dominated regime a
    // capacity-planning sweep walks (miss ratios ~0.02-0.09 across the
    // curve, the single-digit territory production CDN caches run in);
    // the smoke profile keeps the seed default of 1.0.
    let alpha = env_u64("MRC_TP_ALPHA", if smoke { 100 } else { 140 }) as f64 / 100.0;
    let trace =
        WorkloadSpec::zipf("mrc-throughput", requests as usize, objects, alpha, 0x44C2).generate();
    // Interning is a one-time per-trace cost shared by both paths; trigger
    // it here so the timed runs measure steady-state replay.
    let t0 = Instant::now();
    let slots = trace.dense().ids.len() as u64;
    let intern_secs = t0.elapsed().as_secs_f64();
    // Capacity grid over the working set (log-spaced fractions of the
    // distinct objects actually referenced) — the hit-dominated operating
    // regime a capacity-planning sweep walks.
    let lo_div = env_u64("MRC_TP_LO_DIV", 64).max(2);
    let hi_div = env_u64("MRC_TP_HI_DIV", 2).max(1);
    let grid = log_grid(slots / lo_div, slots / hi_div, points);

    banner(&format!(
        "mrc_throughput{}: {requests} reqs, {slots} objects, {}-point grid [{}..{}] (intern {:.0} ms)",
        if smoke { " (smoke)" } else { "" },
        grid.len(),
        grid[0],
        grid[grid.len() - 1],
        intern_secs * 1e3
    ));

    let rows: Vec<Row> = POLICIES
        .iter()
        .map(|name| measure(name, &trace, &grid, repeats))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let n = (requests * grid.len() as u64) as f64;
            vec![
                r.name.clone(),
                r.engine.to_string(),
                f2(n / r.baseline_secs / 1e6),
                f2(n / r.mrc_secs / 1e6),
                f2(r.baseline_secs / r.mrc_secs),
                f4(r.points[0].1),
                f4(r.points[r.points.len() - 1].1),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "engine",
            "sweep Mpoint-req/s",
            "mrc Mpoint-req/s",
            "speedup",
            "mr@min",
            "mr@max",
        ],
        &table,
    );

    let baseline_total: f64 = rows.iter().map(|r| r.baseline_secs).sum();
    let mrc_total: f64 = rows.iter().map(|r| r.mrc_secs).sum();
    println!();
    println!(
        "aggregate ({} policies x {} grid points, all bit-identical): \
         sweep {:.2} s, single-pass {:.2} s, speedup {:.2}x (exact-FIFO {:.2}x)",
        rows.len(),
        grid.len(),
        baseline_total,
        mrc_total,
        baseline_total / mrc_total,
        rows[0].baseline_secs / rows[0].mrc_secs,
    );

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        requests,
        objects,
        &grid,
        &rows,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");
}

//! Simulator throughput: dense-ID fast path vs the legacy keyed engine.
//!
//! Two measurements on the same Zipf trace:
//!
//! 1. **Per-policy replay** — each policy alone: *legacy* is what
//!    `simulate_named` did before the dense fast path (clone the trace into
//!    unit-size requests, build the HashMap-keyed policy, replay); *dense*
//!    is the current auto path (one-time interned u32 slots, slab-indexed
//!    policy state).
//! 2. **Sweep aggregate** — the acceptance metric: every policy × every
//!    standard cache size, i.e. what `run_sweep` feeds each worker. The
//!    pre-PR engine ran those jobs one at a time; the dense engine gangs
//!    all same-trace jobs into a single pass (`simulate_named_many`), so
//!    one traversal drives eight independent policies' memory streams at
//!    once instead of stalling on each job's misses in sequence.
//!
//! Both paths are asserted bit-identical on miss ratio and evictions before
//! any number is reported. Results go to stdout as tables and to a JSON
//! file (repo root `BENCH_sim.json` by default).
//!
//! Run: `cargo run --release -p cache-bench --bin sim_throughput`
//! Flags: `--smoke` (small trace, write to `target/BENCH_sim.json`),
//!        `--out PATH` (override the output path).
//! Env: `SIM_TP_REQUESTS`, `SIM_TP_OBJECTS`, `SIM_TP_REPEATS`.

use cache_bench::{banner, f2, f4, print_table};
use cache_sim::{
    simulate, simulate_named, simulate_named_keyed, simulate_named_many, CacheSizeSpec, SimConfig,
    SimResult,
};
use cache_trace::gen::WorkloadSpec;
use cache_trace::Trace;
use cache_types::Request;
use std::time::Instant;

/// The policies with a dense fast path (plus the keyed machinery both
/// engines share). This is the set the ≥3× acceptance gate is measured on.
const POLICIES: &[&str] = &[
    "FIFO",
    "LRU",
    "CLOCK",
    "CLOCK-2bit",
    "SIEVE",
    "SLRU",
    "2Q",
    "S3-FIFO",
];

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured policy row.
struct Row {
    name: String,
    legacy_mreqs: f64,
    dense_mreqs: f64,
    miss_ratio: f64,
    legacy_secs: f64,
    dense_secs: f64,
}

/// The pre-PR engine, verbatim: materialize a unit-size copy of the trace,
/// hand it to the keyed registry, replay through HashMap-keyed state.
fn run_legacy(name: &str, trace: &Trace, cfg: &SimConfig) -> SimResult {
    let unit_reqs: Vec<Request> = trace
        .requests
        .iter()
        .map(|r| Request { size: 1, ..*r })
        .collect();
    let mut policy = cache_policies::registry::build(name, cfg.capacity_for(trace), Some(&unit_reqs))
        .expect("known policy");
    simulate(policy.as_mut(), trace, cfg.ignore_size)
}

fn measure(name: &str, trace: &Trace, cfg: &SimConfig, repeats: u32) -> Row {
    let n = trace.requests.len() as f64;

    // Correctness gate first: the fast path must agree with both the forced
    // keyed path and the legacy-emulation path bit for bit.
    let dense_result = simulate_named(name, trace, cfg)
        .expect("known policy")
        .expect("no size filter");
    let keyed_result = simulate_named_keyed(name, trace, cfg)
        .expect("known policy")
        .expect("no size filter");
    let legacy_result = run_legacy(name, trace, cfg);
    for (label, r) in [("keyed", &keyed_result), ("legacy", &legacy_result)] {
        assert_eq!(
            dense_result.miss_ratio.to_bits(),
            r.miss_ratio.to_bits(),
            "{name}: dense vs {label} miss ratio diverged"
        );
        assert_eq!(
            dense_result.evictions, r.evictions,
            "{name}: dense vs {label} evictions diverged"
        );
    }

    // Timed runs: best of `repeats` for each engine.
    let mut legacy_secs = f64::INFINITY;
    let mut dense_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = run_legacy(name, trace, cfg);
        legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(r.misses);

        let t0 = Instant::now();
        let r = simulate_named(name, trace, cfg)
            .expect("known policy")
            .expect("no size filter");
        dense_secs = dense_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(r.misses);
    }

    Row {
        name: name.to_string(),
        legacy_mreqs: n / legacy_secs / 1e6,
        dense_mreqs: n / dense_secs / 1e6,
        miss_ratio: dense_result.miss_ratio,
        legacy_secs,
        dense_secs,
    }
}

/// The sweep's cache sizes, as fractions of the trace footprint: the
/// paper's small (0.1 %) and large (10 %) settings plus a midpoint.
const FRACTIONS: &[f64] = &[0.001, 0.01, 0.1];

/// The sweep-aggregate measurement: all (policy × size) jobs for one trace.
struct SweepNums {
    jobs: usize,
    legacy_secs: f64,
    dense_secs: f64,
}

fn sweep_config(frac: f64) -> SimConfig {
    SimConfig {
        size: CacheSizeSpec::FractionOfObjects(frac),
        ..SimConfig::large()
    }
}

/// Runs the full (policy × size) job grid the pre-PR way — one job at a
/// time through the keyed engine, cloning the trace per job — and returns
/// each job's miss-ratio bits for the equivalence check.
fn legacy_sweep(trace: &Trace) -> Vec<u64> {
    FRACTIONS
        .iter()
        .flat_map(|&f| {
            let cfg = sweep_config(f);
            POLICIES
                .iter()
                .map(move |name| run_legacy(name, trace, &cfg).miss_ratio.to_bits())
                .collect::<Vec<u64>>()
        })
        .collect()
}

/// Runs the same grid through the ganged dense engine: one trace pass per
/// cache size drives all policies simultaneously.
fn dense_sweep(trace: &Trace) -> Vec<u64> {
    // Gang width defaults to the sweep engine's tuned value; SIM_TP_GANG
    // overrides it for experiments (see `cache_sim::MAX_GANG` for why more
    // is not better).
    let gang: usize = std::env::var("SIM_TP_GANG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cache_sim::MAX_GANG)
        .max(1);
    FRACTIONS
        .iter()
        .flat_map(|&f| {
            POLICIES
                .chunks(gang)
                .flat_map(|chunk| {
                    simulate_named_many(chunk, trace, &sweep_config(f))
                        .expect("known policies")
                        .into_iter()
                        .map(|r| r.expect("no size filter").miss_ratio.to_bits())
                        .collect::<Vec<u64>>()
                })
                .collect::<Vec<u64>>()
        })
        .collect()
}

fn measure_sweep(trace: &Trace, repeats: u32) -> SweepNums {
    let legacy_ratios = legacy_sweep(trace);
    let dense_ratios = dense_sweep(trace);
    assert_eq!(
        legacy_ratios, dense_ratios,
        "sweep: ganged dense vs legacy miss ratios diverged"
    );

    let mut legacy_secs = f64::INFINITY;
    let mut dense_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        std::hint::black_box(legacy_sweep(trace));
        legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(dense_sweep(trace));
        dense_secs = dense_secs.min(t0.elapsed().as_secs_f64());
    }
    SweepNums {
        jobs: legacy_ratios.len(),
        legacy_secs,
        dense_secs,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    mode: &str,
    requests: u64,
    objects: u64,
    capacity: u64,
    rows: &[Row],
    sweep: &SweepNums,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sim_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"requests\": {requests},\n"));
    out.push_str(&format!("  \"objects\": {objects},\n"));
    out.push_str(&format!("  \"capacity\": {capacity},\n"));
    out.push_str("  \"policies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"legacy_mreqs\": {:.4}, \"dense_mreqs\": {:.4}, \
             \"speedup\": {:.4}, \"miss_ratio\": {:.6}, \"identical\": true}}{}\n",
            json_escape(&r.name),
            r.legacy_mreqs,
            r.dense_mreqs,
            r.dense_mreqs / r.legacy_mreqs,
            r.miss_ratio,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let legacy_total: f64 = rows.iter().map(|r| r.legacy_secs).sum();
    let dense_total: f64 = rows.iter().map(|r| r.dense_secs).sum();
    let total_reqs = requests as f64 * rows.len() as f64;
    out.push_str(&format!(
        "  \"serial_aggregate\": {{\"legacy_mreqs\": {:.4}, \"dense_mreqs\": {:.4}, \
         \"speedup\": {:.4}}},\n",
        total_reqs / legacy_total / 1e6,
        total_reqs / dense_total / 1e6,
        legacy_total / dense_total
    ));
    // The acceptance metric: aggregate Mreq/s over the full sweep job grid,
    // pre-PR one-job-at-a-time engine vs the ganged dense engine.
    let sweep_reqs = requests as f64 * sweep.jobs as f64;
    out.push_str(&format!(
        "  \"aggregate\": {{\"metric\": \"sweep\", \"jobs\": {}, \"legacy_mreqs\": {:.4}, \
         \"dense_mreqs\": {:.4}, \"speedup\": {:.4}}}\n",
        sweep.jobs,
        sweep_reqs / sweep.legacy_secs / 1e6,
        sweep_reqs / sweep.dense_secs / 1e6,
        sweep.legacy_secs / sweep.dense_secs
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                // Smoke runs must not clobber the checked-in full-run numbers.
                "target/BENCH_sim.json".to_string()
            } else {
                "BENCH_sim.json".to_string()
            }
        });

    let (requests, objects, repeats) = if smoke {
        (
            env_u64("SIM_TP_REQUESTS", 200_000),
            env_u64("SIM_TP_OBJECTS", 20_000),
            env_u64("SIM_TP_REPEATS", 1) as u32,
        )
    } else {
        (
            env_u64("SIM_TP_REQUESTS", 4_000_000),
            env_u64("SIM_TP_OBJECTS", 400_000),
            env_u64("SIM_TP_REPEATS", 3) as u32,
        )
    };

    let trace =
        WorkloadSpec::zipf("throughput", requests as usize, objects, 1.0, 0xBEEF).generate();
    // Cache size as a fraction of the footprint; default is the paper's
    // large-cache setting (10 %). Overridable to explore hit/miss balance.
    let frac = std::env::var("SIM_TP_FRACTION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);
    let cfg = SimConfig {
        size: cache_sim::CacheSizeSpec::FractionOfObjects(frac),
        ..SimConfig::large()
    };
    let capacity = cfg.capacity_for(&trace);
    // Interning is a one-time per-trace cost shared by every sweep job;
    // trigger it here so per-policy numbers reflect steady-state replay.
    let interned = Instant::now();
    let slots = trace.dense().ids.len();
    let intern_secs = interned.elapsed().as_secs_f64();

    banner(&format!(
        "sim_throughput{}: {requests} reqs, {slots} objects, capacity {capacity} (intern {:.0} ms)",
        if smoke { " (smoke)" } else { "" },
        intern_secs * 1e3
    ));

    let rows: Vec<Row> = POLICIES
        .iter()
        .map(|name| measure(name, &trace, &cfg, repeats))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f2(r.legacy_mreqs),
                f2(r.dense_mreqs),
                f2(r.dense_mreqs / r.legacy_mreqs),
                f4(r.miss_ratio),
            ]
        })
        .collect();
    print_table(
        &["policy", "legacy Mreq/s", "dense Mreq/s", "speedup", "miss ratio"],
        &table,
    );

    let legacy_total: f64 = rows.iter().map(|r| r.legacy_secs).sum();
    let dense_total: f64 = rows.iter().map(|r| r.dense_secs).sum();
    println!();
    println!(
        "serial aggregate speedup: {:.2}x ({} policies, miss ratios bit-identical)",
        legacy_total / dense_total,
        rows.len()
    );

    let sweep = measure_sweep(&trace, repeats);
    let sweep_reqs = requests as f64 * sweep.jobs as f64;
    println!();
    println!(
        "sweep aggregate ({} jobs = {} policies x {} sizes): \
         legacy {:.2} Mreq/s, dense {:.2} Mreq/s, speedup {:.2}x",
        sweep.jobs,
        POLICIES.len(),
        FRACTIONS.len(),
        sweep_reqs / sweep.legacy_secs / 1e6,
        sweep_reqs / sweep.dense_secs / 1e6,
        sweep.legacy_secs / sweep.dense_secs
    );

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        requests,
        objects,
        capacity,
        &rows,
        &sweep,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");
}

//! Fig. 9: flash write bytes and miss ratio for different admission
//! policies on two CDN-like traces, as the DRAM fraction varies
//! (0.1 %, 1 %, 10 % of the cache size).
//!
//! Run: `cargo run --release -p cache-bench --bin fig9_flash_admission`

use cache_bench::{banner, f3, print_table};
use cache_flash::{AdmissionKind, FlashCache, FlashCacheConfig};
use cache_trace::corpus::{datasets, CorpusConfig};
use cache_trace::Trace;

fn cdn_like(name: &str, seed: u64) -> Trace {
    let ds = datasets()
        .into_iter()
        .find(|d| d.name == name)
        .expect("dataset exists");
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: 400_000,
        seed,
    };
    ds.trace(&cfg, 0)
}

fn run(trace: &Trace) {
    banner(&format!(
        "Fig. 9: {} (cache = 10% of footprint bytes)",
        trace.name
    ));
    let total = (trace.footprint_bytes() / 10).max(1);
    let unique = trace.footprint_bytes();
    let mut rows = Vec::new();
    for (kind, dram_fracs) in [
        (AdmissionKind::WriteAll, vec![0.01]),
        (AdmissionKind::Probabilistic(0.2), vec![0.001, 0.01, 0.1]),
        (AdmissionKind::BloomSecondAccess, vec![0.001, 0.01, 0.1]),
        (AdmissionKind::FlashieldLike, vec![0.001, 0.01, 0.1]),
        (AdmissionKind::SmallFifoTwoAccess, vec![0.001, 0.01, 0.1]),
    ] {
        for frac in dram_fracs {
            let mut c = FlashCache::new(FlashCacheConfig {
                total_bytes: total,
                dram_fraction: frac,
                admission: kind,
            })
            .expect("valid config");
            let s = c.run(&trace.requests);
            rows.push(vec![
                c.admission_name().to_string(),
                format!("{:.1}%", frac * 100.0),
                f3(s.normalized_write_bytes(unique)),
                f3(s.miss_ratio()),
            ]);
        }
    }
    print_table(
        &[
            "admission",
            "DRAM size",
            "write bytes (norm.)",
            "miss ratio",
        ],
        &rows,
    );
}

fn main() {
    run(&cdn_like("wiki_cdn", 31));
    run(&cdn_like("tencent_photo", 31));
    println!("(paper: the small-FIFO filter reduces BOTH write bytes and miss ratio;");
    println!(" Flashield needs a large DRAM (10%) to work; probabilistic admission");
    println!(" trades miss ratio for writes regardless of DRAM size)");
}

//! Fig. 4: distribution of object frequency (post-insert accesses) at
//! eviction for LRU and Belady at 10 % cache size, on the Twitter-like and
//! MSR-like traces.
//!
//! Run: `cargo run --release -p cache-bench --bin fig4_eviction_freq`

use cache_bench::{banner, f3, print_table};
use cache_sim::{simulate_named, SimConfig};
use cache_trace::corpus::{msr_like, twitter_like};

fn main() {
    banner("Fig. 4: frequency of objects at eviction (cache = 10% of footprint)");
    let cfg = SimConfig::large();
    let mut rows = Vec::new();
    for (trace, paper_lru, paper_belady) in [
        (twitter_like(400_000, 9), 0.26, 0.24),
        (msr_like(400_000, 9), 0.82, 0.68),
    ] {
        for (algo, paper) in [("LRU", paper_lru), ("Belady", paper_belady)] {
            let r = simulate_named(algo, &trace, &cfg)
                .expect("known algorithm")
                .expect("capacity above floor");
            let h = &r.freq_at_eviction;
            rows.push(vec![
                trace.name.clone(),
                algo.to_string(),
                f3(r.one_hit_eviction_fraction),
                format!("{paper:.2}"),
                f3(h.mean()),
                f3(r.miss_ratio),
            ]);
        }
    }
    print_table(
        &[
            "trace",
            "algorithm",
            "P(freq=0 at eviction) ours",
            "paper",
            "mean freq at eviction",
            "miss ratio",
        ],
        &rows,
    );
    println!("(paper: most evicted objects have no post-insert access, even under Belady)");
}

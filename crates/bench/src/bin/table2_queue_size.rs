//! Table 2: miss ratio when using different S sizes, TinyLFU (window) vs
//! S3-FIFO (small queue), with ARC and LRU reference points — on the
//! Twitter-like and MSR-like traces at large and small cache sizes.
//!
//! Run: `cargo run --release -p cache-bench --bin table2_queue_size`

use cache_bench::{banner, f4, print_table};
use cache_sim::{simulate_named, SimConfig};
use cache_trace::corpus::{msr_like, twitter_like};
use cache_trace::Trace;

const S_SIZES: &[f64] = &[0.40, 0.30, 0.20, 0.10, 0.05, 0.02, 0.01];

fn run(trace: &Trace, cfg: SimConfig, label: &str) {
    banner(&format!("Table 2: {} ({label})", trace.name));
    let arc = simulate_named("ARC", trace, &cfg).unwrap().unwrap();
    let lru = simulate_named("LRU", trace, &cfg).unwrap().unwrap();
    println!(
        "ARC miss ratio {}, LRU miss ratio {}",
        f4(arc.miss_ratio),
        f4(lru.miss_ratio)
    );
    let mut header = vec!["algorithm".to_string()];
    for s in S_SIZES {
        header.push(format!("S={s}"));
    }
    let mut rows = Vec::new();
    for (family, pattern) in [("TinyLFU", "TinyLFU({})"), ("S3-FIFO", "S3-FIFO({})")] {
        let mut row = vec![family.to_string()];
        for s in S_SIZES {
            let name = pattern.replace("{}", &s.to_string());
            let r = simulate_named(&name, trace, &cfg).unwrap().unwrap();
            row.push(f4(r.miss_ratio));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(&headers, &rows);
}

fn main() {
    let tw = twitter_like(400_000, 21);
    let msr = msr_like(400_000, 21);
    run(&tw, SimConfig::large(), "large cache, 10% of footprint");
    run(&tw, SimConfig::small(), "small cache, 0.1% of footprint");
    run(&msr, SimConfig::large(), "large cache, 10% of footprint");
    run(&msr, SimConfig::small(), "small cache, 0.1% of footprint");
    println!("(paper: S3-FIFO's miss ratio falls then rises as S shrinks, smoothly;");
    println!(" TinyLFU shows anomalies, e.g. a cliff at S=0.10/0.05 on Twitter-large)");
}

//! Fig. 11: miss-ratio-reduction percentiles for different small-queue
//! sizes (1 %–40 % of the cache), large and small cache sizes.
//!
//! Run: `cargo run --release -p cache-bench --bin fig11_s_size_sweep`

use cache_bench::{banner, corpus_config_from_env, f3, print_table, threads_from_env};
use cache_sim::{run_sweep, summarize_reductions, SimConfig, SweepSpec};
use cache_trace::corpus::datasets;

const S_SIZES: &[f64] = &[0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40];

fn run(label: &str, cfg: SimConfig) {
    let corpus_cfg = corpus_config_from_env();
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&corpus_cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    banner(&format!("Fig. 11 ({label}): reduction vs small-queue size"));
    let mut algorithms = vec!["FIFO".to_string()];
    for s in S_SIZES {
        algorithms.push(format!("S3-FIFO({s})"));
    }
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms,
        config: cfg,
        threads: threads_from_env(),
    };
    let records = run_sweep(&spec).expect("sweep");
    let mut sums = summarize_reductions(&records, false);
    sums.sort_by(|a, b| a.0.cmp(&b.0));
    let rows: Vec<Vec<String>> = sums
        .iter()
        .map(|(a, s)| vec![a.clone(), f3(s.p10), f3(s.p50), f3(s.p90), f3(s.mean)])
        .collect();
    print_table(&["S size", "P10", "P50", "P90", "mean"], &rows);
}

fn main() {
    run("large cache, 10%", SimConfig::large());
    run("small cache, 0.1%", SimConfig::small());
    println!("(paper: smaller S gives larger best-case reductions but a worse tail;");
    println!(" efficiency is stable for S between 5% and 20%)");
}

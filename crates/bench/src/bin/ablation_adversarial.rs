//! §5.2 adversarial workloads: objects requested exactly twice, the second
//! request arriving after the object has left the small queue. Sweeps the
//! gap to locate the crossover where partitioned algorithms start losing.
//!
//! Run: `cargo run --release -p cache-bench --bin ablation_adversarial`

use cache_bench::{banner, f4, print_table};
use cache_sim::{simulate_named, CacheSizeSpec, SimConfig};
use cache_trace::gen::two_request_adversarial_mixed;

fn main() {
    banner("Two-request adversarial pattern: miss ratio vs request gap");
    let cache = 2000u64;
    let cfg = SimConfig {
        size: CacheSizeSpec::Bytes(cache),
        ignore_size: true,
        min_objects: 0,
        floor_objects: 0,
    };
    println!(
        "cache = {cache} objects; S3-FIFO's S = {} objects; hot set = {} objects",
        cache / 10,
        cache * 9 / 10
    );
    let algos = ["FIFO", "LRU", "S3-FIFO", "TinyLFU-0.1", "2Q", "S3-FIFO-D"];
    let mut rows = Vec::new();
    for gap in [25u64, 50, 100, 200, 400, 800, 1600] {
        // A hot set of 90% of the cache keeps M populated so S is actually
        // squeezed to 10% (see cache_trace::gen docs).
        let trace =
            two_request_adversarial_mixed(format!("gap-{gap}"), 40_000, gap, cache * 9 / 10);
        let mut row = vec![gap.to_string()];
        for algo in algos {
            let r = simulate_named(algo, &trace, &cfg).unwrap().unwrap();
            row.push(f4(r.miss_ratio));
        }
        rows.push(row);
    }
    let mut headers = vec!["gap"];
    headers.extend(algos.iter().copied());
    print_table(&headers, &rows);
    println!("(paper: when the gap exceeds the probationary region but not the cache,");
    println!(" the second request hits in FIFO/LRU but misses in partitioned designs;");
    println!(" beyond the cache size everyone misses everything)");
}

//! Fig. 6: miss-ratio reduction (relative to FIFO) percentiles across all
//! corpus traces, for every compared algorithm, at the large (10 %) and
//! small (0.1 %) cache sizes.
//!
//! Run: `cargo run --release -p cache-bench --bin fig6_miss_ratio_percentiles`

use cache_bench::{banner, corpus_config_from_env, f3, print_table, threads_from_env};
use cache_policies::registry::FIG6_ALGORITHMS;
use cache_sim::{run_sweep, summarize_reductions, SimConfig, SweepSpec};
use cache_trace::corpus::datasets;
use cache_trace::Trace;

fn algorithms() -> Vec<String> {
    let mut a: Vec<String> = FIG6_ALGORITHMS.iter().map(|s| s.to_string()).collect();
    a.push("FIFO".into());
    a
}

fn run(label: &str, cfg: SimConfig, traces: &[(String, Trace)]) {
    banner(&format!("Fig. 6 ({label}): miss ratio reduction vs FIFO"));
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms: algorithms(),
        config: cfg,
        threads: threads_from_env(),
    };
    let records = run_sweep(&spec).expect("sweep");
    let sums = summarize_reductions(&records, false);
    let rows: Vec<Vec<String>> = sums
        .iter()
        .map(|(a, s)| {
            vec![
                a.clone(),
                f3(s.p10),
                f3(s.p25),
                f3(s.p50),
                f3(s.p75),
                f3(s.p90),
                f3(s.mean),
                s.n.to_string(),
            ]
        })
        .collect();
    print_table(
        &["algorithm", "P10", "P25", "P50", "P75", "P90", "mean", "n"],
        &rows,
    );
}

fn main() {
    let cfg = corpus_config_from_env();
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    println!("corpus: {} traces", traces.len());
    run("large cache, 10% of footprint", SimConfig::large(), &traces);
    println!("(paper: S3-FIFO has the largest reductions at almost all percentiles;");
    println!(" mean reduction 14%, P90 > 32%; TinyLFU closest but with a negative tail)");
    run(
        "small cache, 0.1% of footprint",
        SimConfig::small(),
        &traces,
    );
    println!("(paper: at the small size TinyLFU is worse than FIFO on ~half the traces)");
}

//! Fig. 2: one-hit-wonder ratio vs sequence length (fraction of unique
//! objects) for synthetic Zipf traces of varying skew and for the two
//! production-like traces (MSR-like block, Twitter-like KV).
//!
//! Run: `cargo run --release -p cache-bench --bin fig2_one_hit_wonder`

use cache_bench::{banner, f3, print_table};
use cache_trace::analysis::{one_hit_wonder_ratio, sampled_window_ohw};
use cache_trace::corpus::{msr_like, twitter_like};
use cache_trace::gen::WorkloadSpec;

const FRACTIONS: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

fn series(name: &str, reqs: &[cache_types::Request]) -> Vec<String> {
    let mut row = vec![name.to_string()];
    for &f in FRACTIONS {
        let v = if f >= 1.0 {
            one_hit_wonder_ratio(reqs)
        } else {
            sampled_window_ohw(reqs, f, 30, 42)
        };
        row.push(f3(v));
    }
    row
}

fn main() {
    let n = 400_000;
    banner("Fig. 2 (a,b): synthetic Zipf, one-hit-wonder ratio vs window");
    let mut rows = Vec::new();
    for &alpha in &[0.6, 0.8, 1.0, 1.2] {
        let t = WorkloadSpec::zipf(format!("zipf-{alpha}"), n, 100_000, alpha, 7).generate();
        rows.push(series(&format!("zipf alpha={alpha}"), &t.requests));
    }
    let mut headers = vec!["trace"];
    let labels: Vec<String> = FRACTIONS
        .iter()
        .map(|f| format!("{:.0}%", f * 100.0))
        .collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    print_table(&headers, &rows);
    println!("(expected shape: OHW falls monotonically with window length;");
    println!(" higher alpha gives lower OHW at the same window length)");

    banner("Fig. 2 (c,d): production-like traces");
    let msr = msr_like(n, 3);
    let tw = twitter_like(n, 3);
    let rows = vec![
        series("msr-like (paper full=0.38@hm_0)", &msr.requests),
        series("twitter-like (paper full=0.13@c52)", &tw.requests),
    ];
    print_table(&headers, &rows);
    println!("(paper: at the 10% window, Twitter ~0.26, MSR ~0.75)");
}

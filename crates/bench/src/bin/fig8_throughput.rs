//! Fig. 8: throughput scaling with threads for the concurrent prototypes,
//! at a large cache (low miss ratio) and a small cache (high miss ratio),
//! on a Zipf(α=1.0) workload with 4 KB objects.
//!
//! Run: `cargo run --release -p cache-bench --bin fig8_throughput`
//! Env: `FIG8_REQUESTS` (per thread, default 2M), `FIG8_OBJECTS`
//! (default 1M), `FIG8_MAX_THREADS` (default: all cores, capped at 16).

use cache_bench::{banner, f2, print_table};
use cache_concurrent::clock::ConcurrentClock;
use cache_concurrent::harness::{generate_keys, run_throughput, ThroughputConfig};
use cache_concurrent::locked::locked_tinylfu;
use cache_concurrent::lru::MutexLru;
use cache_concurrent::s3fifo::ConcurrentS3Fifo;
use cache_concurrent::segcache::SegcacheLike;
use cache_concurrent::ConcurrentCache;
use std::sync::Arc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build(name: &str, capacity: usize) -> Arc<dyn ConcurrentCache> {
    match name {
        "S3-FIFO" => Arc::new(ConcurrentS3Fifo::new(capacity)),
        "LRU-strict" => Arc::new(MutexLru::strict(capacity)),
        "LRU-optimized" => Arc::new(MutexLru::optimized(capacity)),
        "CLOCK" => Arc::new(ConcurrentClock::new(capacity)),
        "TinyLFU-locked" => Arc::new(locked_tinylfu(capacity)),
        "Segcache" => Arc::new(SegcacheLike::new(capacity)),
        other => panic!("unknown cache {other}"),
    }
}

fn run(label: &str, capacity: usize, cfg: &ThroughputConfig, thread_counts: &[usize]) {
    banner(&format!("Fig. 8 ({label}), cache = {capacity} objects"));
    let names = [
        "S3-FIFO",
        "LRU-strict",
        "LRU-optimized",
        "CLOCK",
        "TinyLFU-locked",
        "Segcache",
    ];
    let mut rows = Vec::new();
    for name in names {
        let mut row = vec![name.to_string()];
        let mut hit_ratio = 0.0;
        for &threads in thread_counts {
            let keys = generate_keys(cfg, threads);
            let cache = build(name, capacity);
            let r = run_throughput(cache, &keys, cfg.value_size);
            hit_ratio = r.hit_ratio();
            row.push(f2(r.mops));
        }
        row.push(f2(1.0 - hit_ratio));
        rows.push(row);
    }
    let mut headers = vec!["cache".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t}thr Mops")));
    headers.push("miss ratio".into());
    let h: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&h, &rows);
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let max_threads = env_usize("FIG8_MAX_THREADS", cores.min(16));
    let mut thread_counts = vec![1usize, 2, 4, 8, 16];
    thread_counts.retain(|&t| t <= max_threads);
    let cfg = ThroughputConfig {
        requests_per_thread: env_usize("FIG8_REQUESTS", 2_000_000),
        objects: env_usize("FIG8_OBJECTS", 1_000_000) as u64,
        alpha: 1.0,
        value_size: 4096,
        seed: 0xF18,
    };
    println!(
        "workload: zipf(1.0), {} objects, {} requests/thread, 4KB values",
        cfg.objects, cfg.requests_per_thread
    );
    // Large cache: ~40% of objects (paper's large setting has MR 0.02 with
    // a full-footprint cache; we size to reach a low miss ratio).
    run(
        "large cache, low miss ratio",
        (cfg.objects as usize) * 2 / 5,
        &cfg,
        &thread_counts,
    );
    // Small cache: ~1% of objects (paper MR 0.21).
    run(
        "small cache, high miss ratio",
        (cfg.objects as usize) / 100,
        &cfg,
        &thread_counts,
    );
    println!("(paper: S3-FIFO >6x optimized LRU at 16 threads; strict LRU flat;");
    println!(" optimized LRU stops scaling at 2 cores; Segcache scales but has");
    println!(" lower single-thread throughput than S3-FIFO)");
}

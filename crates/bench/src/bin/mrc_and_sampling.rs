//! §6.2.3 companions: miss-ratio curves (convexity of MRCs, the assumption
//! adaptive algorithms rest on) and SHARDS-style spatial sampling (the
//! paper's recommended way to pick parameters via downsized simulation).
//!
//! Run: `cargo run --release -p cache-bench --bin mrc_and_sampling`

use cache_bench::{banner, f4, print_table};
use cache_sim::miss_ratio_curve;
use cache_trace::corpus::msr_like;
use cache_trace::gen::{loop_trace, WorkloadSpec};
use cache_trace::sampling::spatial_sample;
use cache_types::policy::run_trace;

fn main() {
    banner("Miss-ratio curves: convexity check (§6.2.3)");
    let zipf = WorkloadSpec::zipf("zipf", 200_000, 20_000, 1.0, 3).generate();
    let lp = loop_trace("loop", 2000, 40);
    let msr = msr_like(200_000, 3);
    let caps = [200u64, 500, 1000, 1800, 2500, 4000];
    let mut rows = Vec::new();
    for (trace, label) in [(&zipf, "zipf(1.0)"), (&lp, "loop-2000"), (&msr, "msr-like")] {
        for algo in ["LRU", "S3-FIFO"] {
            let c = miss_ratio_curve(algo, trace, &caps, 1.0).expect("curve");
            let mut row = vec![label.to_string(), algo.to_string()];
            for p in &c.points {
                row.push(f4(p.miss_ratio));
            }
            row.push(if c.is_convex() { "yes" } else { "NO" }.into());
            rows.push(row);
        }
    }
    let mut headers = vec!["trace".to_string(), "algorithm".to_string()];
    headers.extend(caps.iter().map(|c| format!("C={c}")));
    headers.push("convex?".into());
    let h: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&h, &rows);
    println!("(paper: scan/loop-heavy workloads have non-convex MRCs, which is why");
    println!(" gradient-following adaptive algorithms can get stuck)");

    banner("SHARDS spatial sampling: miniature vs full simulation");
    let full_cap = 2000u64;
    let mut rows = Vec::new();
    for algo in ["LRU", "S3-FIFO", "ARC"] {
        let mut full =
            cache_policies::registry::build(algo, full_cap, Some(&zipf.requests)).expect("algo");
        let full_mr = run_trace(full.as_mut(), &zipf.requests).miss_ratio();
        let mut row = vec![algo.to_string(), f4(full_mr)];
        for rate in [0.5, 0.2, 0.1] {
            let s = spatial_sample(&zipf, rate, 0xAB);
            let mut mini = cache_policies::registry::build(algo, s.scale_capacity(full_cap), None)
                .expect("algo");
            let mr = run_trace(mini.as_mut(), &s.trace.requests).miss_ratio();
            row.push(f4(mr));
        }
        rows.push(row);
    }
    print_table(
        &["algorithm", "full MR", "rate 0.5", "rate 0.2", "rate 0.1"],
        &rows,
    );
    println!("(miniature simulations estimate the full miss ratio at a fraction of");
    println!(" the cost — the paper used ~1M core-hours; sampling is the remedy)");
}

//! Out-of-core trace replay: 1B+ requests from disk in bounded memory.
//!
//! Three phases on the paper-shaped streamed workload
//! ([`StreamSpec::paper_mix`]: Zipf(1.0) core, one-hit wonders, scan
//! bursts, 4 popularity phases):
//!
//! 1. **Generate** — stream the trace straight to a `.ctr` file on disk
//!    (the full run writes 10^9 records ≈ 8 GB; the trace is never held in
//!    memory).
//! 2. **Streamed replay** — replay the file through each policy with
//!    [`cache_sim::replay_ctr_path`] and a per-window miss-ratio series,
//!    recording throughput and the peak trace-buffer footprint, which is
//!    asserted to stay bounded by the chunk size (not the trace length).
//! 3. **Calibration** — the acceptance metric: on a trace small enough to
//!    run both ways, replay streamed-from-disk vs dense in-memory, assert
//!    the results bit-identical (counters, f64 bits, every series window),
//!    and report the throughput ratio. The full run requires
//!    streamed ≤ 1.3× the in-memory time.
//!
//! Results go to stdout as tables and to a JSON file (repo root
//! `BENCH_oo_trace.json` by default).
//!
//! Run: `cargo run --release -p cache-bench --bin oo_trace`
//! Flags: `--smoke` (small trace, write to `target/BENCH_oo_trace.json`),
//!        `--out PATH` (override the output path).
//! Env: `OO_REQUESTS`, `OO_OBJECTS`, `OO_CAL_REQUESTS`, `OO_WINDOW`,
//!      `OO_REPEATS`, `OO_SEED`.

use cache_bench::{banner, f2, f4, print_table};
use cache_sim::{
    replay_ctr_path, simulate_named_windowed, CacheSizeSpec, SimConfig, StreamReplay,
    DEFAULT_CHUNK_RECORDS,
};
use cache_trace::ctr::read_trace;
use cache_trace::stream_gen::StreamSpec;
use cache_types::Request;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The replayed policies: the paper's algorithm plus the FIFO baseline.
const POLICIES: &[&str] = &["FIFO", "S3-FIFO"];

/// Cache capacity as a fraction of the trace's id space (the paper's
/// large-cache setting, 10 % of the object footprint).
const CAPACITY_FRACTION: f64 = 0.10;

/// Full-run acceptance bound on streamed-vs-in-memory replay time.
const RATIO_BOUND: f64 = 1.3;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn capacity_for(id_space: u64) -> u64 {
    ((id_space as f64 * CAPACITY_FRACTION) as u64).max(1)
}

/// One streamed replay of the on-disk trace, timed end to end (file I/O
/// included). Panics if the trace buffers ever exceed the chunk-derived
/// bound — that would mean the replay is not actually out-of-core.
struct StreamRow {
    name: String,
    secs: f64,
    mreqs: f64,
    replay: StreamReplay,
}

fn run_streamed(
    name: &str,
    path: &Path,
    capacity: u64,
    window: u64,
    record_bytes: u64,
) -> StreamRow {
    let t0 = Instant::now();
    let replay = replay_ctr_path(
        name,
        path,
        "oo-trace",
        capacity,
        true,
        window,
        DEFAULT_CHUNK_RECORDS,
    )
    .expect("streamed replay");
    let secs = t0.elapsed().as_secs_f64();
    // Raw chunk bytes + decoded requests + dense slots, with 2x slack for
    // Vec growth policy. Independent of the trace's record count.
    let per_record = record_bytes + std::mem::size_of::<Request>() as u64 + 4;
    let bound = 2 * DEFAULT_CHUNK_RECORDS as u64 * per_record;
    assert!(
        replay.peak_buffer_bytes <= bound,
        "{name}: peak trace buffers {} exceed the chunk bound {bound}",
        replay.peak_buffer_bytes
    );
    StreamRow {
        name: name.to_string(),
        secs,
        mreqs: replay.records as f64 / secs / 1e6,
        replay,
    }
}

/// One calibration row: streamed-from-disk vs dense in-memory on the same
/// trace, bit-identity asserted before any number is reported.
struct CalRow {
    name: String,
    streamed_mreqs: f64,
    in_memory_mreqs: f64,
    ratio: f64,
    miss_ratio: f64,
}

fn assert_identical(name: &str, streamed: &StreamReplay, path: &Path, cfg: &SimConfig, window: u64) {
    let file = File::open(path).expect("open calibration trace");
    let (decoded, _) = read_trace("oo-cal", file).expect("decode calibration trace");
    let (mem, mem_series) = simulate_named_windowed(name, &decoded, cfg, window)
        .expect("known policy")
        .expect("no size filter");
    let s = &streamed.result;
    assert_eq!(s.requests, mem.requests, "{name}: request counts diverged");
    assert_eq!(s.misses, mem.misses, "{name}: miss counts diverged");
    assert_eq!(s.evictions, mem.evictions, "{name}: eviction counts diverged");
    assert_eq!(
        s.miss_ratio.to_bits(),
        mem.miss_ratio.to_bits(),
        "{name}: miss ratio diverged"
    );
    assert_eq!(
        s.byte_miss_ratio.to_bits(),
        mem.byte_miss_ratio.to_bits(),
        "{name}: byte miss ratio diverged"
    );
    assert_eq!(
        streamed.series.points().len(),
        mem_series.points().len(),
        "{name}: window counts diverged"
    );
    for (sp, mp) in streamed.series.points().iter().zip(mem_series.points()) {
        assert!(
            sp.requests == mp.requests && sp.misses == mp.misses
                && sp.start_index == mp.start_index,
            "{name}: window {} diverged ({}req/{}miss@{} vs {}req/{}miss@{})",
            sp.window, sp.requests, sp.misses, sp.start_index,
            mp.requests, mp.misses, mp.start_index
        );
    }
}

fn calibrate(name: &str, path: &Path, capacity: u64, window: u64, repeats: u32) -> CalRow {
    let cfg = SimConfig {
        size: CacheSizeSpec::Bytes(capacity),
        ignore_size: true,
        min_objects: 0,
        floor_objects: 0,
    };

    // Correctness gate first: one streamed run diffed bit-for-bit against
    // the in-memory windowed replay of the decoded trace.
    let streamed = replay_ctr_path(name, path, "oo-cal", capacity, true, window, DEFAULT_CHUNK_RECORDS)
        .expect("streamed replay");
    assert_identical(name, &streamed, path, &cfg, window);

    // Timed runs. The in-memory side gets its trace materialized and
    // interned up front (that is the cost the streamed path exists to
    // avoid); the streamed side pays file open + read + decode every run.
    let file = File::open(path).expect("open calibration trace");
    let (decoded, _) = read_trace("oo-cal", file).expect("decode calibration trace");
    let n = decoded.len() as f64;
    decoded.dense();

    let mut streamed_secs = f64::INFINITY;
    let mut mem_secs = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = replay_ctr_path(name, path, "oo-cal", capacity, true, window, DEFAULT_CHUNK_RECORDS)
            .expect("streamed replay");
        streamed_secs = streamed_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(r.result.misses);

        let t0 = Instant::now();
        let (r, _) = simulate_named_windowed(name, &decoded, &cfg, window)
            .expect("known policy")
            .expect("no size filter");
        mem_secs = mem_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(r.misses);
    }

    CalRow {
        name: name.to_string(),
        streamed_mreqs: n / streamed_secs / 1e6,
        in_memory_mreqs: n / mem_secs / 1e6,
        ratio: streamed_secs / mem_secs,
        miss_ratio: streamed.result.miss_ratio,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    mode: &str,
    spec: &StreamSpec,
    id_space: u64,
    trace_bytes: u64,
    record_bytes: u64,
    gen_secs: f64,
    window: u64,
    capacity: u64,
    rows: &[StreamRow],
    cal_requests: u64,
    cal_window: u64,
    cal_capacity: u64,
    repeats: u32,
    cal_rows: &[CalRow],
) -> std::io::Result<()> {
    let max_ratio = cal_rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"oo_trace\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"trace\": {{\"requests\": {}, \"objects\": {}, \"id_space\": {id_space}, \
         \"bytes\": {trace_bytes}, \"record_bytes\": {record_bytes}, \"seed\": {}, \
         \"mix\": \"paper\", \"generate_secs\": {gen_secs:.3}, \"generate_mreqs\": {:.4}}},\n",
        spec.requests,
        spec.objects,
        spec.seed,
        spec.requests as f64 / gen_secs / 1e6
    ));
    out.push_str(&format!("  \"window\": {window},\n"));
    out.push_str(&format!("  \"chunk_records\": {DEFAULT_CHUNK_RECORDS},\n"));
    out.push_str(&format!("  \"capacity\": {capacity},\n"));
    out.push_str("  \"streamed\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.3}, \"mreqs\": {:.4}, \"miss_ratio\": {:.6}, \
             \"misses\": {}, \"evictions\": {}, \"windows\": {}, \"peak_buffer_bytes\": {}}}{}\n",
            r.name,
            r.secs,
            r.mreqs,
            r.replay.result.miss_ratio,
            r.replay.result.misses,
            r.replay.result.evictions,
            r.replay.series.points().len(),
            r.replay.peak_buffer_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The acceptance metric: streamed-from-disk replay within RATIO_BOUND of
    // the dense in-memory replay, results bit-identical.
    out.push_str(&format!(
        "  \"calibration\": {{\"requests\": {cal_requests}, \"window\": {cal_window}, \
         \"capacity\": {cal_capacity}, \"repeats\": {repeats}, \"policies\": [\n"
    ));
    for (i, r) in cal_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"streamed_mreqs\": {:.4}, \"in_memory_mreqs\": {:.4}, \
             \"ratio\": {:.4}, \"miss_ratio\": {:.6}, \"identical\": true}}{}\n",
            r.name,
            r.streamed_mreqs,
            r.in_memory_mreqs,
            r.ratio,
            r.miss_ratio,
            if i + 1 < cal_rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ], \"max_ratio\": {max_ratio:.4}, \"bound\": {RATIO_BOUND}, \"within_bound\": {}}}\n",
        max_ratio <= RATIO_BOUND
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                // Smoke runs must not clobber the checked-in full-run numbers.
                "target/BENCH_oo_trace.json".to_string()
            } else {
                "BENCH_oo_trace.json".to_string()
            }
        });

    let (requests, cal_requests, window, repeats) = if smoke {
        (
            env_u64("OO_REQUESTS", 200_000),
            env_u64("OO_CAL_REQUESTS", 400_000),
            env_u64("OO_WINDOW", 10_000),
            env_u64("OO_REPEATS", 3) as u32,
        )
    } else {
        (
            env_u64("OO_REQUESTS", 1_000_000_000),
            env_u64("OO_CAL_REQUESTS", 50_000_000),
            env_u64("OO_WINDOW", 10_000_000),
            env_u64("OO_REPEATS", 2) as u32,
        )
    };
    let objects = env_u64("OO_OBJECTS", (requests / 10).max(1));
    let seed = env_u64("OO_SEED", 42);

    let mut spec = StreamSpec::paper_mix(requests, objects, seed);
    let mut cal_spec = StreamSpec::paper_mix(cal_requests, (cal_requests / 10).max(1), seed ^ 1);
    if smoke {
        // Keep the satellite id ranges proportionate so smoke slabs stay
        // small (the defaults add ~5M ids regardless of trace length).
        for s in [&mut spec, &mut cal_spec] {
            s.fresh_ring = 4096;
            s.scan_space = 4096;
        }
    }

    std::fs::create_dir_all("target").expect("create target/");
    let trace_path = PathBuf::from("target/oo_main.ctr");
    let cal_path = PathBuf::from("target/oo_cal.ctr");

    banner(&format!(
        "oo_trace{}: {requests} requests over {objects} objects, window {window}",
        if smoke { " (smoke)" } else { "" }
    ));

    // Phase 1: generate the on-disk trace.
    let t0 = Instant::now();
    let info = spec.write_path(&trace_path).expect("generate trace");
    let gen_secs = t0.elapsed().as_secs_f64();
    let trace_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "generated {} records, id space {}, {:.2} GB in {:.1}s ({:.1} M req/s)",
        info.records,
        info.id_space,
        trace_bytes as f64 / 1e9,
        gen_secs,
        info.records as f64 / gen_secs / 1e6
    );

    // Phase 2: streamed replay, never materializing the trace.
    let capacity = capacity_for(info.id_space);
    let rows: Vec<StreamRow> = POLICIES
        .iter()
        .map(|name| {
            let r = run_streamed(name, &trace_path, capacity, window, u64::from(info.record_bytes));
            println!(
                "  {}: {:.1}s, {:.2} M req/s, miss ratio {:.4}, {} windows, peak buffers {:.1} MB",
                r.name,
                r.secs,
                r.mreqs,
                r.replay.result.miss_ratio,
                r.replay.series.points().len(),
                r.replay.peak_buffer_bytes as f64 / 1e6
            );
            r
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f2(r.secs),
                f2(r.mreqs),
                f4(r.replay.result.miss_ratio),
                r.replay.series.points().len().to_string(),
                format!("{:.1}", r.replay.peak_buffer_bytes as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        &["policy", "secs", "Mreq/s", "miss ratio", "windows", "peak buf MB"],
        &table,
    );

    // Phase 3: calibration on a trace that fits in memory.
    let cal_info = cal_spec.write_path(&cal_path).expect("generate calibration trace");
    let cal_capacity = capacity_for(cal_info.id_space);
    let cal_window = (cal_requests / 100).max(1);
    println!();
    println!(
        "calibration: {} requests, capacity {cal_capacity}, window {cal_window}",
        cal_info.records
    );
    let cal_rows: Vec<CalRow> = POLICIES
        .iter()
        .map(|name| calibrate(name, &cal_path, cal_capacity, cal_window, repeats))
        .collect();

    let cal_table: Vec<Vec<String>> = cal_rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f2(r.streamed_mreqs),
                f2(r.in_memory_mreqs),
                f2(r.ratio),
                f4(r.miss_ratio),
            ]
        })
        .collect();
    print_table(
        &["policy", "streamed Mreq/s", "in-memory Mreq/s", "ratio", "miss ratio"],
        &cal_table,
    );

    let max_ratio = cal_rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
    println!();
    println!(
        "calibration max ratio: {max_ratio:.3} (bound {RATIO_BOUND}, results bit-identical)"
    );
    if !smoke {
        // Smoke traces replay in milliseconds, where timing noise dwarfs the
        // engines; the bound is only meaningful at full scale.
        assert!(
            max_ratio <= RATIO_BOUND,
            "streamed replay {max_ratio:.3}x slower than in-memory (bound {RATIO_BOUND})"
        );
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    write_json(
        &out_path,
        if smoke { "smoke" } else { "full" },
        &spec,
        info.id_space,
        trace_bytes,
        u64::from(info.record_bytes),
        gen_secs,
        window,
        capacity,
        &rows,
        cal_info.records,
        cal_window,
        cal_capacity,
        repeats,
        &cal_rows,
    )
    .expect("write benchmark JSON");
    println!("wrote {out_path}");
}

//! Fig. 3: distribution of one-hit-wonder ratios across all corpus traces
//! at full / 50 % / 10 % / 1 % sequence lengths (P10, median, mean, P90).
//!
//! Run: `cargo run --release -p cache-bench --bin fig3_corpus_one_hit`

use cache_bench::{banner, corpus_config_from_env, f3, print_table};
use cache_ds::hist::summarize;
use cache_trace::analysis::{one_hit_wonder_ratio, sampled_window_ohw};
use cache_trace::corpus::datasets;

fn main() {
    let cfg = corpus_config_from_env();
    banner("Fig. 3: one-hit-wonder ratio across all traces");
    let mut full = Vec::new();
    let mut p50 = Vec::new();
    let mut p10 = Vec::new();
    let mut p01 = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&cfg) {
            full.push(one_hit_wonder_ratio(&t.requests));
            p50.push(sampled_window_ohw(&t.requests, 0.5, 15, 1));
            p10.push(sampled_window_ohw(&t.requests, 0.1, 15, 2));
            p01.push(sampled_window_ohw(&t.requests, 0.01, 15, 3));
        }
    }
    let mut rows = Vec::new();
    for (label, vals, paper_median) in [
        ("full trace", &full, 0.26),
        ("50% objects", &p50, 0.38),
        ("10% objects", &p10, 0.72),
        ("1% objects", &p01, 0.78),
    ] {
        let s = summarize(vals);
        rows.push(vec![
            label.to_string(),
            f3(s.p10),
            f3(s.p50),
            f3(s.mean),
            f3(s.p90),
            format!("{paper_median:.2}"),
        ]);
    }
    print_table(
        &["window", "P10", "median", "mean", "P90", "paper median"],
        &rows,
    );
    println!("(expected shape: the median rises steeply as the window shrinks)");
}

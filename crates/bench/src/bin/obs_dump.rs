//! End-to-end exercise of the observability layer, producing the dumps the
//! CI smoke step validates.
//!
//! Four stages, all feeding one [`MetricsRegistry`] and one [`EventTracer`]:
//!
//! 1. **Windowed simulation** — `simulate_named_windowed` over a Zipf trace
//!    (dense fast path) producing a per-window miss-ratio timeseries whose
//!    sums are asserted against the run totals, plus a profiled replay.
//! 2. **Flash degradation ladder** — a faulty device bursts write errors,
//!    trips the error budget, then heals; retries, trips, recoveries and
//!    per-retry latency land in `flash.ladder.*` and the tracer.
//! 3. **Concurrent per-shard stats** — a multi-threaded
//!    [`ConcurrentS3Fifo`] run exported as `cc.*` totals and
//!    `cc.shard-NN.*` gauges.
//! 4. **Lossy trace ingest** — a deliberately corrupt CSV read through
//!    `read_csv_lossy_observed`, skip/parse counts in `trace.io.*`.
//!
//! Output: JSON-lines (metrics + events + series) to `--out` (default
//! `target/OBS_dump.jsonl`) and Prometheus text next to it (`.prom`).
//! Every line of the JSON file must parse as a standalone JSON object —
//! that is what `ci.sh`'s obs smoke step checks.
//!
//! Run: `cargo run --release -p cache-bench --bin obs_dump`
//! `--overhead` instead measures the windowed dense replay against the
//! plain dense replay (the <3 % acceptance number in EXPERIMENTS.md) and
//! skips the dump.
//! `--mrc` instead computes FIFO-family miss-ratio curves through the
//! instrumented front door (`simulate_mrc_recorded`) and dumps them as
//! JSON lines — one `{"type":"mrc",...}` object per curve point, a
//! `MissRatioSeries` view per policy, and the `mrc.*` counters/timing
//! histogram — to `--out` (default `target/OBS_mrc.jsonl`, Prometheus
//! text next to it).

use cache_concurrent::{s3fifo::ConcurrentS3Fifo, ConcurrentCache};
use cache_faults::{
    Backoff, ErrorBudgetConfig, FaultKind, FaultPlan, RetryPolicy, Schedule,
};
use cache_obs::{
    events_to_json_lines, registry_to_json_lines, registry_to_prometheus, series_to_json_lines,
    EventTracer, MetricsRegistry,
};
use cache_sim::{simulate_named_windowed, SimConfig};
use cache_trace::gen::WorkloadSpec;
use std::io::Write as _;

fn out_path(default: &str) -> std::path::PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p.into();
            }
        }
    }
    std::path::PathBuf::from(default)
}

/// `--mrc`: one instrumented single-pass curve per FIFO-family policy on a
/// fixed Zipf trace, dumped as JSON lines plus the `mrc.*` metrics.
fn dump_mrc() {
    use cache_sim::{simulate_mrc_recorded, MrcConfig};
    let registry = MetricsRegistry::new();
    let scope = registry.scope("mrc");
    let trace = WorkloadSpec::zipf("obs-mrc", 200_000, 20_000, 1.0, 21).generate();
    // Log-spaced (powers of two) capacities over the trace footprint — the
    // range a capacity-planning sweep walks.
    let slots = trace.dense().ids.len() as u64;
    let mut grid: Vec<u64> = [64u64, 32, 16, 8, 4, 2, 1]
        .iter()
        .map(|d| (slots / d).max(1))
        .collect();
    grid.dedup();
    let cfg = MrcConfig::default();

    let mut dump = String::new();
    let mut curves = 0usize;
    for algo in ["FIFO", "CLOCK", "SIEVE", "S3-FIFO"] {
        let r = simulate_mrc_recorded(algo, &trace, &grid, &cfg, &scope)
            .expect("known policy and valid grid");
        // Invariant: the algorithm list and grid above are valid by
        // construction.
        for p in &r.points {
            dump.push_str(&format!(
                "{{\"type\":\"mrc\",\"algorithm\":\"{}\",\"trace\":\"{}\",\
                 \"engine\":\"{}\",\"capacity\":{},\"requests\":{},\
                 \"misses\":{},\"evictions\":{},\"miss_ratio\":{:.6}}}\n",
                r.algorithm,
                r.trace,
                r.engine.as_str(),
                p.capacity,
                p.requests,
                p.misses,
                p.evictions,
                p.miss_ratio,
            ));
        }
        dump.push_str(&series_to_json_lines(
            &format!("mrc.{}", r.algorithm),
            &r.series(),
        ));
        curves += 1;
    }
    dump.push_str(&registry_to_json_lines(&registry));

    let path = out_path("target/OBS_mrc.jsonl");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(dump.as_bytes()))
        .expect("write mrc json dump");
    let prom_path = path.with_extension("prom");
    std::fs::write(&prom_path, registry_to_prometheus(&registry)).expect("write prometheus dump");
    println!(
        "obs_dump --mrc: {curves} curves x {} grid points, {} metrics",
        grid.len(),
        registry.len(),
    );
    println!("obs_dump: wrote {} and {}", path.display(), prom_path.display());
}

/// Windowed-vs-plain dense replay overhead: best-of-N wall time for the
/// same policy on the same trace, with a bit-identity assertion first.
fn measure_overhead() {
    use cache_sim::simulate_named;
    let requests = std::env::var("OBS_OVH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000usize);
    let repeats = std::env::var("OBS_OVH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5u32);
    let trace = WorkloadSpec::zipf("ovh", requests, requests as u64 / 10, 1.0, 3).generate();
    let cfg = SimConfig::large();
    let window = 100_000u64;
    println!(
        "windowed dense replay overhead ({requests} reqs, window {window}, best of {repeats}):"
    );
    for name in ["FIFO", "LRU", "SIEVE", "S3-FIFO"] {
        let plain = simulate_named(name, &trace, &cfg)
            .expect("known policy")
            .expect("no size filter");
        let (windowed, series) = simulate_named_windowed(name, &trace, &cfg, window)
            .expect("known policy")
            .expect("no size filter");
        assert_eq!(plain.miss_ratio.to_bits(), windowed.miss_ratio.to_bits());
        assert_eq!(series.total_misses(), plain.misses);

        let mut plain_secs = f64::INFINITY;
        let mut windowed_secs = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = std::time::Instant::now();
            let r = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            plain_secs = plain_secs.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(r.misses);

            let t0 = std::time::Instant::now();
            let (r, s) = simulate_named_windowed(name, &trace, &cfg, window)
                .unwrap()
                .unwrap();
            windowed_secs = windowed_secs.min(t0.elapsed().as_secs_f64());
            std::hint::black_box((r.misses, s.total_misses()));
        }
        let overhead = (windowed_secs / plain_secs - 1.0) * 100.0;
        println!(
            "  {name:<9} plain {:>7.1} ms  windowed {:>7.1} ms  overhead {overhead:+.2}%",
            plain_secs * 1e3,
            windowed_secs * 1e3,
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--overhead") {
        measure_overhead();
        return;
    }
    if std::env::args().any(|a| a == "--mrc") {
        dump_mrc();
        return;
    }
    let registry = MetricsRegistry::new();
    let tracer = EventTracer::new(1 << 14);

    // 1. Windowed dense simulation + miss-ratio timeseries.
    let trace = WorkloadSpec::zipf("obs-zipf", 60_000, 8_000, 1.0, 42).generate();
    let cfg = SimConfig::large();
    let (result, series) = simulate_named_windowed("S3-FIFO", &trace, &cfg, 5_000)
        .expect("known policy")
        .expect("no size filter");
    assert_eq!(
        series.total_misses(),
        result.misses,
        "windowed sums must equal run totals"
    );
    let sim = registry.scope("sim");
    sim.gauge("requests").set(result.requests as i64);
    sim.gauge("misses").set(result.misses as i64);
    sim.gauge("evictions").set(result.evictions as i64);
    sim.gauge("windows").set(series.points().len() as i64);
    let age = sim.histogram("eviction_age");
    age.merge_from(&result.eviction_age);

    // 2. Flash degradation ladder under a deterministic fault burst.
    let plan = FaultPlan::new(13).with(
        FaultKind::TransientWrite,
        Schedule::Burst {
            period: u64::MAX,
            burst_len: 60,
            inside: 1.0,
            outside: 0.0,
        },
    );
    let resilience = cache_flash::ResilienceConfig {
        retry: RetryPolicy::no_retries(),
        budget: ErrorBudgetConfig {
            window_ops: 500,
            max_errors: 5,
            probe_interval: 200,
            recovery_probes: 2,
        },
    };
    let mut fspec = WorkloadSpec::zipf("obs-flash", 60_000, 6_000, 0.8, 7);
    fspec.one_hit_fraction = 0.3;
    fspec.size_model = cache_trace::gen::SizeModel::Uniform { min: 100, max: 2000 };
    let ftrace = fspec.generate();
    let fcfg = cache_flash::FlashCacheConfig {
        total_bytes: ftrace.footprint_bytes() / 10,
        dram_fraction: 0.01,
        admission: cache_flash::AdmissionKind::SmallFifoTwoAccess,
    };
    let mut flash = cache_flash::FlashCache::faulty(fcfg, plan, resilience).expect("flash config");
    flash.attach_obs(&registry.scope("flash.ladder"), tracer.clone());
    let fstats = flash.run(&ftrace.requests);
    assert!(
        fstats.budget_trips >= 1 && fstats.budget_recoveries >= 1,
        "fault plan must exercise the full ladder (trips={}, recoveries={})",
        fstats.budget_trips,
        fstats.budget_recoveries
    );

    // 3. Concurrent per-shard aggregation under real parallelism.
    let cc = std::sync::Arc::new(ConcurrentS3Fifo::new(4_096));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let cc = std::sync::Arc::clone(&cc);
            s.spawn(move || {
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                for _ in 0..50_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 16_384;
                    if cc.get(key).is_none() {
                        cc.insert(key, bytes::Bytes::from_static(b"v"));
                    }
                }
            });
        }
    });
    cc.export_obs(&registry.scope("cc"));

    // 4. Lossy CSV ingest with skip accounting.
    let csv = b"ts,key,op,size\n1,10,get,1\nnot,a,line\n2,11,get,1\n\xff\xfe,3,get\n";
    let (ctrace, report) = cache_trace::io::read_csv_lossy_observed(
        "obs-corrupt",
        &csv[..],
        &registry.scope("trace.io"),
    )
    .expect("lossy read never fails on content");
    assert_eq!(ctrace.len() as u64, report.parsed_lines);
    assert!(report.skipped_lines > 0, "the corrupt lines must be counted");

    // Render. One JSON object per line: metrics, then events, then series.
    let mut dump = registry_to_json_lines(&registry);
    dump.push_str(&events_to_json_lines(&tracer.drain()));
    dump.push_str(&series_to_json_lines("sim.miss_ratio", &series));

    let path = out_path("target/OBS_dump.jsonl");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(dump.as_bytes()))
        .expect("write json dump");
    let prom_path = path.with_extension("prom");
    std::fs::write(&prom_path, registry_to_prometheus(&registry)).expect("write prometheus dump");

    // Keep the backoff type linked so the faults surface stays exercised
    // even when retries are off above.
    let mut backoff = Backoff::new(RetryPolicy::default(), 99);
    let _ = backoff.next_delay();

    println!(
        "obs_dump: {} metrics, {} events ({} dropped), {} windows, \
         flash trips/recoveries {}/{}, csv parsed/skipped {}/{}",
        registry.len(),
        tracer.recorded(),
        tracer.dropped(),
        series.points().len(),
        fstats.budget_trips,
        fstats.budget_recoveries,
        report.parsed_lines,
        report.skipped_lines,
    );
    println!("obs_dump: wrote {} and {}", path.display(), prom_path.display());
}

//! Fig. 7: mean miss-ratio reduction per dataset for selected algorithms,
//! and the "best algorithm per dataset" count the paper headlines
//! (S3-FIFO best on 10 of 14 datasets at the large size).
//!
//! Run: `cargo run --release -p cache-bench --bin fig7_per_dataset`

use cache_bench::{banner, corpus_config_from_env, f3, print_table, threads_from_env};
use cache_sim::sweep::per_dataset_means;
use cache_sim::{run_sweep, SimConfig, SweepSpec};
use cache_trace::corpus::datasets;
use std::collections::BTreeMap;

const ALGOS: &[&str] = &[
    "FIFO",
    "S3-FIFO",
    "TinyLFU",
    "TinyLFU-0.1",
    "LIRS",
    "2Q",
    "ARC",
    "LRU",
    "CLOCK",
];

fn run(label: &str, cfg: SimConfig) {
    let corpus_cfg = corpus_config_from_env();
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&corpus_cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    banner(&format!(
        "Fig. 7 ({label}): mean miss-ratio reduction per dataset"
    ));
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms: ALGOS.iter().map(|s| s.to_string()).collect(),
        config: cfg,
        threads: threads_from_env(),
    };
    let records = run_sweep(&spec).expect("sweep");
    let means = per_dataset_means(&records);
    // dataset -> algo -> mean
    let mut by_ds: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for (ds, algo, m) in means {
        by_ds.entry(ds).or_default().insert(algo, m);
    }
    let algos: Vec<&str> = ALGOS.iter().copied().filter(|a| *a != "FIFO").collect();
    let mut rows = Vec::new();
    let mut best_count: BTreeMap<String, usize> = BTreeMap::new();
    for (ds, per_algo) in &by_ds {
        let mut row = vec![ds.clone()];
        let best = per_algo
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .map(|(a, _)| a.clone())
            .unwrap_or_default();
        *best_count.entry(best.clone()).or_insert(0) += 1;
        for a in &algos {
            let v = per_algo.get(*a).copied().unwrap_or(f64::NAN);
            let marker = if *a == best { "*" } else { "" };
            row.push(format!("{}{}", f3(v), marker));
        }
        rows.push(row);
    }
    let mut headers = vec!["dataset"];
    headers.extend(algos.iter().copied());
    print_table(&headers, &rows);
    println!("best-algorithm count per dataset (*):");
    for (a, c) in best_count {
        println!("  {a}: {c}");
    }
}

fn main() {
    run("large cache, 10%", SimConfig::large());
    println!("(paper: S3-FIFO best on 10/14 datasets, top-3 on 13/14)");
    run("small cache, 0.1%", SimConfig::small());
    println!("(paper: S3-FIFO best on 7/14 datasets at the small size)");
}

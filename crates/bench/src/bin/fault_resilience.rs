//! Fault resilience: replays a synthetic CDN corpus through the two-tier
//! flash cache under escalating device-fault rates and reports the miss
//! ratio and write-amplification deltas against the fault-free baseline,
//! plus the resilience machinery's own counters (retries, budget trips,
//! recoveries, degraded ops).
//!
//! The point of the table: with retry + error-budget degradation in place,
//! low fault rates (<= 1%) should cost close to nothing — miss ratio within
//! a couple of points of fault-free — while high fault rates degrade
//! *gracefully* (DRAM keeps serving; no panics, no corruption served).
//!
//! Run: `cargo run --release -p cache-bench --bin fault_resilience`
//!
//! Knobs: `CORPUS_REQUESTS` (default 150 000) scales the trace length.

use cache_bench::{banner, f3, print_table};
use cache_faults::{FaultKind, FaultPlan, Schedule};
use cache_flash::{AdmissionKind, FlashCache, FlashCacheConfig, ResilienceConfig};
use cache_trace::corpus::{datasets, CorpusConfig};
use cache_trace::Trace;

fn corpus_trace(seed: u64) -> Trace {
    let requests = std::env::var("CORPUS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000);
    let ds = datasets()
        .into_iter()
        .find(|d| d.name == "cdn1")
        .unwrap_or_else(|| {
            datasets()
                .into_iter()
                .next()
                .expect("corpus has at least one dataset")
        });
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: requests,
        seed,
    };
    ds.trace(&cfg, 0)
}

fn plan_for(rate: f64) -> FaultPlan {
    // The escalation mixes the full taxonomy, weighted toward the common
    // case (transient writes), with a burst component so the error budget
    // actually gets exercised at the higher rates.
    FaultPlan::new(0xFA17)
        .with(FaultKind::TransientWrite, Schedule::Constant(rate))
        .with(FaultKind::ReadError, Schedule::Constant(rate / 4.0))
        .with(FaultKind::Corruption, Schedule::Constant(rate / 10.0))
        .with(
            FaultKind::DeviceFull,
            Schedule::Burst {
                period: 50_000,
                burst_len: 2_000,
                inside: rate * 5.0,
                outside: 0.0,
            },
        )
}

fn main() {
    let trace = corpus_trace(0xC0FFEE);
    let cfg = FlashCacheConfig {
        total_bytes: (trace.footprint_bytes() / 10).max(1),
        dram_fraction: 0.01,
        admission: AdmissionKind::SmallFifoTwoAccess,
    };
    let unique = trace.footprint_bytes();

    banner(&format!(
        "Fault resilience: {} ({} requests, S3-FIFO admission, 1% DRAM)",
        trace.name,
        trace.requests.len()
    ));

    let mut base = FlashCache::new(cfg).expect("valid config");
    let baseline = base.run(&trace.requests);
    assert!(base.verify_accounting(), "baseline accounting must be exact");

    let mut rows = vec![vec![
        "0 (none)".to_string(),
        f3(baseline.miss_ratio()),
        "+0.000".to_string(),
        f3(baseline.normalized_write_bytes(unique)),
        "+0.000".to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]];

    for rate in [0.001, 0.01, 0.05, 0.2, 0.5] {
        let mut c = FlashCache::faulty(cfg, plan_for(rate), ResilienceConfig::default())
            .expect("valid config");
        let s = c.run(&trace.requests);
        assert!(c.verify_accounting(), "accounting must survive faults");
        rows.push(vec![
            format!("{:.1}%", rate * 100.0),
            f3(s.miss_ratio()),
            format!("{:+.3}", s.miss_ratio() - baseline.miss_ratio()),
            f3(s.normalized_write_bytes(unique)),
            format!(
                "{:+.3}",
                s.normalized_write_bytes(unique) - baseline.normalized_write_bytes(unique)
            ),
            s.retries.to_string(),
            s.budget_trips.to_string(),
            s.budget_recoveries.to_string(),
            s.degraded_ops.to_string(),
        ]);
    }

    print_table(
        &[
            "fault rate",
            "miss ratio",
            "Δ miss",
            "write bytes (norm.)",
            "Δ writes",
            "retries",
            "trips",
            "recoveries",
            "degraded ops",
        ],
        &rows,
    );
    println!(
        "\nΔ is relative to the fault-free baseline. Retry absorbs transient\n\
         faults at low rates; at high rates the error budget trips and the\n\
         cache degrades to DRAM-only (higher miss ratio, near-zero writes)\n\
         instead of failing."
    );
}

//! Table 1: dataset statistics of the synthetic corpus, printed next to the
//! paper's published one-hit-wonder ratios.
//!
//! Run: `cargo run --release -p cache-bench --bin table1_datasets`

use cache_bench::{banner, corpus_config_from_env, f2, print_table};
use cache_trace::analysis::trace_stats;
use cache_trace::corpus::datasets;

fn main() {
    let cfg = corpus_config_from_env();
    banner("Table 1: dataset statistics (synthetic corpus vs paper OHW)");
    println!(
        "corpus: {} traces/dataset x {} requests",
        cfg.traces_per_dataset, cfg.requests_per_trace
    );
    let mut rows = Vec::new();
    for ds in datasets() {
        let mut requests = 0usize;
        let mut objects = 0usize;
        let mut ohw_full = 0.0;
        let mut ohw_10 = 0.0;
        let mut ohw_1 = 0.0;
        let traces = ds.traces(&cfg);
        for t in &traces {
            let s = trace_stats(&t.requests, 20, 1);
            requests += s.requests;
            objects += s.objects;
            ohw_full += s.ohw_full;
            ohw_10 += s.ohw_10pct;
            ohw_1 += s.ohw_1pct;
        }
        let n = traces.len() as f64;
        rows.push(vec![
            ds.name.to_string(),
            ds.cache_type.label().to_string(),
            traces.len().to_string(),
            format!("{}k", requests / 1000),
            format!("{}k", objects / 1000),
            format!("{} / {}", f2(ohw_full / n), f2(ds.paper_ohw.0)),
            format!("{} / {}", f2(ohw_10 / n), f2(ds.paper_ohw.1)),
            format!("{} / {}", f2(ohw_1 / n), f2(ds.paper_ohw.2)),
        ]);
    }
    print_table(
        &[
            "dataset",
            "type",
            "#traces",
            "#req",
            "#obj",
            "OHW full (ours/paper)",
            "OHW 10% (ours/paper)",
            "OHW 1% (ours/paper)",
        ],
        &rows,
    );
}

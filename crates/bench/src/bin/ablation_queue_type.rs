//! §6.3 "LRU or FIFO?": replace S3-FIFO's queues with LRU queues (and try
//! promotion-on-hit) — with quick demotion in place, the queue type should
//! not matter.
//!
//! Run: `cargo run --release -p cache-bench --bin ablation_queue_type`

use cache_bench::{banner, corpus_config_from_env, f3, print_table, threads_from_env};
use cache_sim::{run_sweep, summarize_reductions, SimConfig, SweepSpec};
use cache_trace::corpus::datasets;

fn main() {
    let corpus_cfg = corpus_config_from_env();
    let mut traces = Vec::new();
    for ds in datasets() {
        for t in ds.traces(&corpus_cfg) {
            traces.push((ds.name.to_string(), t));
        }
    }
    banner("Queue-type ablation (large cache, 10% of footprint)");
    let spec = SweepSpec {
        traces: traces.iter().map(|(d, t)| (d.clone(), t)).collect(),
        algorithms: vec![
            "FIFO".into(),
            "S3-FIFO".into(),       // S=FIFO, M=FIFO (the paper's design)
            "QDLP-LRU-FIFO".into(), // S=LRU
            "QDLP-FIFO-LRU".into(), // M=LRU
            "QDLP-LRU-LRU".into(),  // both LRU (ARC-like data queues)
            "ARC".into(),
        ],
        config: SimConfig::large(),
        threads: threads_from_env(),
    };
    let records = run_sweep(&spec).expect("sweep");
    let sums = summarize_reductions(&records, false);
    let rows: Vec<Vec<String>> = sums
        .iter()
        .map(|(a, s)| vec![a.clone(), f3(s.p10), f3(s.p50), f3(s.p90), f3(s.mean)])
        .collect();
    print_table(&["variant", "P10", "P50", "P90", "mean"], &rows);
    println!("(paper: LRU queues do not improve efficiency — with quick demotion,");
    println!(" the queue type does not matter; two-LRU-queue designs like ARC lag)");
}

//! The device abstraction separating cache logic from device reliability.
//!
//! [`FlashCache`](crate::cache::FlashCache) is generic over a
//! [`FlashDevice`], so the same orchestrator, admission policies, and stats
//! run unchanged against the perfect in-memory model ([`FlashTier`]) or a
//! device wrapped in deterministic fault injection ([`FaultyDevice`]).

use crate::tier::{FlashEviction, FlashTier};
use cache_faults::{DeviceFault, FaultInjector, FaultKind, FaultPlan, FaultStats, OpClass};
use cache_types::ObjId;

/// A flash device as the cache sees it: a byte-capacity object store with
/// FIFO eviction, whose operations can fail.
///
/// [`FlashTier`] implements this infallibly; [`FaultyDevice`] wraps any
/// implementation and injects faults from a seeded [`FaultPlan`].
pub trait FlashDevice {
    /// True when `id` is resident. Residency checks are metadata-only and
    /// never fault.
    fn contains(&self, id: ObjId) -> bool;

    /// Reads a resident object, recording a hit. `Ok(false)` when the
    /// object is not resident; `Err` when the device failed the read (the
    /// object may have been discarded, e.g. on corruption).
    fn read(&mut self, id: ObjId) -> Result<bool, DeviceFault>;

    /// Writes `id`, evicting in FIFO order to make room; evictions are
    /// appended to `evicted`. `Err` when the device rejected the write.
    fn write(
        &mut self,
        id: ObjId,
        size: u32,
        evicted: &mut Vec<FlashEviction>,
    ) -> Result<(), DeviceFault>;

    /// Drops `id` (corruption discard / invalidation); returns its size.
    fn remove(&mut self, id: ObjId) -> Option<u32>;

    /// Total bytes ever written.
    fn write_bytes(&self) -> u64;

    /// Objects ever written.
    fn writes(&self) -> u64;

    /// Resident bytes.
    fn used(&self) -> u64;

    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Resident object count.
    fn len(&self) -> usize;

    /// True when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters of faults the device has injected (zero for perfect
    /// devices).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Exhaustive byte-accounting self-check; `true` by default for devices
    /// with no stronger invariant to offer.
    fn verify_accounting(&self) -> bool {
        true
    }
}

impl FlashDevice for FlashTier {
    fn contains(&self, id: ObjId) -> bool {
        FlashTier::contains(self, id)
    }

    fn read(&mut self, id: ObjId) -> Result<bool, DeviceFault> {
        Ok(FlashTier::read(self, id))
    }

    fn write(
        &mut self,
        id: ObjId,
        size: u32,
        evicted: &mut Vec<FlashEviction>,
    ) -> Result<(), DeviceFault> {
        FlashTier::write(self, id, size, evicted);
        Ok(())
    }

    fn remove(&mut self, id: ObjId) -> Option<u32> {
        FlashTier::remove(self, id)
    }

    fn write_bytes(&self) -> u64 {
        FlashTier::write_bytes(self)
    }

    fn writes(&self) -> u64 {
        FlashTier::writes(self)
    }

    fn used(&self) -> u64 {
        FlashTier::used(self)
    }

    fn capacity(&self) -> u64 {
        FlashTier::capacity(self)
    }

    fn len(&self) -> usize {
        FlashTier::len(self)
    }

    fn is_empty(&self) -> bool {
        FlashTier::is_empty(self)
    }

    fn verify_accounting(&self) -> bool {
        FlashTier::verify_accounting(self)
    }
}

/// A device wrapper injecting deterministic faults from a [`FaultPlan`].
///
/// Fault semantics per kind:
///
/// - `TransientWrite`, `DeviceFull`: the write is dropped and the error
///   returned (retryable — a retry re-attempts the inner write).
/// - `ReadError`: the read fails; the object stays resident (the sector
///   might be readable later, but the cache treats the request as a miss).
/// - `Corruption`: the read fails its checksum; the object is discarded
///   from the device before the error is returned.
/// - `LatencySpike`: the operation *succeeds* but simulated latency is
///   accumulated in [`FaultyDevice::spike_latency_units`].
#[derive(Debug)]
pub struct FaultyDevice<D: FlashDevice = FlashTier> {
    inner: D,
    injector: FaultInjector,
}

impl FaultyDevice<FlashTier> {
    /// A faulty FIFO tier of `capacity` bytes.
    pub fn new(capacity: u64, plan: FaultPlan) -> Self {
        FaultyDevice::wrap(FlashTier::new(capacity), plan)
    }
}

impl<D: FlashDevice> FaultyDevice<D> {
    /// Wraps an existing device in fault injection.
    pub fn wrap(inner: D, plan: FaultPlan) -> Self {
        FaultyDevice {
            inner,
            injector: FaultInjector::new(plan),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Total simulated latency units added by injected spikes.
    pub fn spike_latency_units(&self) -> u64 {
        self.injector.stats().spike_latency_units
    }
}

impl<D: FlashDevice> FlashDevice for FaultyDevice<D> {
    fn contains(&self, id: ObjId) -> bool {
        self.inner.contains(id)
    }

    fn read(&mut self, id: ObjId) -> Result<bool, DeviceFault> {
        // Faults only apply to actual device reads, not misses.
        if !self.inner.contains(id) {
            return Ok(false);
        }
        match self.injector.next_fault(OpClass::Read) {
            None => self.inner.read(id),
            Some(f) if f.kind == FaultKind::LatencySpike => self.inner.read(id),
            Some(f) => {
                if f.kind == FaultKind::Corruption {
                    self.inner.remove(id);
                }
                Err(f)
            }
        }
    }

    fn write(
        &mut self,
        id: ObjId,
        size: u32,
        evicted: &mut Vec<FlashEviction>,
    ) -> Result<(), DeviceFault> {
        match self.injector.next_fault(OpClass::Write) {
            None => self.inner.write(id, size, evicted),
            Some(f) if f.kind == FaultKind::LatencySpike => self.inner.write(id, size, evicted),
            Some(f) => Err(f),
        }
    }

    fn remove(&mut self, id: ObjId) -> Option<u32> {
        self.inner.remove(id)
    }

    fn write_bytes(&self) -> u64 {
        self.inner.write_bytes()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    fn verify_accounting(&self) -> bool {
        self.inner.verify_accounting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_faults::Schedule;

    #[test]
    fn perfect_tier_never_faults() {
        let mut d = FlashTier::new(100);
        let mut evs = Vec::new();
        assert!(FlashDevice::write(&mut d, 1, 10, &mut evs).is_ok());
        assert_eq!(FlashDevice::read(&mut d, 1), Ok(true));
        assert_eq!(d.fault_stats().total(), 0);
    }

    #[test]
    fn transient_write_drops_the_write() {
        let plan = FaultPlan::new(1).with_transient_writes(1.0);
        let mut d = FaultyDevice::new(100, plan);
        let mut evs = Vec::new();
        let err = d.write(1, 10, &mut evs).expect_err("must fault");
        assert_eq!(err.kind, FaultKind::TransientWrite);
        assert!(err.retryable);
        assert!(!d.contains(1));
        assert_eq!(d.write_bytes(), 0);
    }

    #[test]
    fn corruption_discards_the_object() {
        let plan = FaultPlan::new(2).with_corruption(1.0);
        let mut d = FaultyDevice::new(100, plan);
        let mut evs = Vec::new();
        d.write(1, 10, &mut evs).expect("writes are clean");
        assert!(d.contains(1));
        let err = d.read(1).expect_err("read must corrupt");
        assert_eq!(err.kind, FaultKind::Corruption);
        assert!(!d.contains(1), "corrupted object is discarded");
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn read_error_keeps_the_object() {
        let plan = FaultPlan::new(3).with_read_errors(1.0);
        let mut d = FaultyDevice::new(100, plan);
        let mut evs = Vec::new();
        d.write(1, 10, &mut evs).expect("writes are clean");
        assert!(d.read(1).is_err());
        assert!(d.contains(1), "read error does not discard");
    }

    #[test]
    fn miss_consumes_no_fault_decision() {
        let plan = FaultPlan::new(4).with_read_errors(1.0);
        let mut d = FaultyDevice::new(100, plan);
        assert_eq!(d.read(99), Ok(false), "miss cannot fault");
        assert_eq!(d.fault_stats().total(), 0);
    }

    #[test]
    fn latency_spike_succeeds_but_accumulates() {
        let plan = FaultPlan::new(5).with(FaultKind::LatencySpike, Schedule::Constant(1.0));
        let mut d = FaultyDevice::new(100, plan);
        let mut evs = Vec::new();
        d.write(1, 10, &mut evs).expect("spike is not a failure");
        assert!(d.contains(1));
        assert_eq!(d.read(1), Ok(true));
        assert_eq!(d.fault_stats().latency_spikes, 2);
        assert!(d.spike_latency_units() > 0);
    }

    #[test]
    fn wrapped_device_is_deterministic() {
        let mk = || {
            FaultyDevice::new(
                1000,
                FaultPlan::new(9)
                    .with_transient_writes(0.3)
                    .with_read_errors(0.2),
            )
        };
        let run = |mut d: FaultyDevice| {
            let mut evs = Vec::new();
            let mut log = Vec::new();
            for i in 0..500u64 {
                log.push(d.write(i, 10, &mut evs).is_ok());
                log.push(d.read(i % 50).is_ok());
            }
            (log, d.fault_stats())
        };
        assert_eq!(run(mk()), run(mk()));
    }
}

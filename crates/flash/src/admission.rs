//! Flash admission policies (§5.4, Fig. 9).

use cache_ds::{BloomFilter, SplitMix64};
use cache_types::ObjId;

/// Which admission scheme to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionKind {
    /// No admission control: every miss is written to flash ("FIFO" in
    /// Fig. 9).
    WriteAll,
    /// Admit DRAM-evicted objects with fixed probability (paper: 0.2).
    Probabilistic(f64),
    /// Admit on second sighting, tracked by a Bloom filter.
    BloomSecondAccess,
    /// Flashield-like online linear model over DRAM-observed features.
    FlashieldLike,
    /// S3-FIFO's rule: admit objects accessed at least twice while in the
    /// DRAM small queue; ghost hits are admitted on re-fetch.
    SmallFifoTwoAccess,
}

/// Feature vector the Flashield-like model sees at DRAM eviction time.
#[derive(Debug, Clone, Copy)]
pub struct Features {
    /// Reads the object received while in DRAM.
    pub dram_hits: f64,
    /// Logical residence time in DRAM, normalized by DRAM size.
    pub residence: f64,
}

/// A decision-making admission policy.
#[derive(Debug)]
pub enum AdmissionPolicy {
    /// See [`AdmissionKind::WriteAll`].
    WriteAll,
    /// See [`AdmissionKind::Probabilistic`].
    Probabilistic {
        /// Admission probability.
        p: f64,
        /// Deterministic RNG.
        rng: SplitMix64,
    },
    /// See [`AdmissionKind::BloomSecondAccess`].
    Bloom {
        /// Seen-once filter (rotated at `rotate_at` insertions).
        seen: BloomFilter,
        /// Previous generation.
        prev: BloomFilter,
        /// Rotation threshold.
        rotate_at: u64,
    },
    /// See [`AdmissionKind::FlashieldLike`].
    Flashield {
        /// Weight on `dram_hits`.
        w_hits: f64,
        /// Weight on `residence`.
        w_res: f64,
        /// Bias.
        bias: f64,
        /// Learning rate.
        lr: f64,
    },
    /// See [`AdmissionKind::SmallFifoTwoAccess`]; decisions use the DRAM
    /// eviction's hit count directly.
    SmallFifo,
}

impl AdmissionPolicy {
    /// Builds the policy for `kind`; `dram_objects` sizes internal filters.
    pub fn new(kind: AdmissionKind, dram_objects: usize) -> Self {
        match kind {
            AdmissionKind::WriteAll => AdmissionPolicy::WriteAll,
            AdmissionKind::Probabilistic(p) => AdmissionPolicy::Probabilistic {
                p: p.clamp(0.0, 1.0),
                rng: SplitMix64::new(0xAD317),
            },
            AdmissionKind::BloomSecondAccess => {
                let expected = dram_objects.clamp(1024, 1 << 22) * 8;
                AdmissionPolicy::Bloom {
                    seen: BloomFilter::new(expected, 0.01),
                    prev: BloomFilter::new(expected, 0.01),
                    rotate_at: expected as u64,
                }
            }
            AdmissionKind::FlashieldLike => AdmissionPolicy::Flashield {
                // Neutral start: the model learns from feedback.
                w_hits: 0.0,
                w_res: 0.0,
                bias: 0.0,
                lr: 0.05,
            },
            AdmissionKind::SmallFifoTwoAccess => AdmissionPolicy::SmallFifo,
        }
    }

    /// Human-readable name matching Fig. 9's legend.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::WriteAll => "FIFO (no admission)",
            AdmissionPolicy::Probabilistic { .. } => "Probabilistic",
            AdmissionPolicy::Bloom { .. } => "BloomFilter",
            AdmissionPolicy::Flashield { .. } => "Flashield",
            AdmissionPolicy::SmallFifo => "S3-FIFO",
        }
    }

    /// Decides whether a DRAM-evicted object is written to flash.
    pub fn admit(&mut self, id: ObjId, features: Features) -> bool {
        match self {
            AdmissionPolicy::WriteAll => true,
            AdmissionPolicy::Probabilistic { p, rng } => rng.next_f64() < *p,
            AdmissionPolicy::Bloom {
                seen,
                prev,
                rotate_at,
            } => {
                let known = seen.contains(id) || prev.contains(id);
                if !known {
                    seen.insert(id);
                    if seen.inserted() >= *rotate_at {
                        std::mem::swap(seen, prev);
                        seen.clear();
                    }
                }
                known
            }
            AdmissionPolicy::Flashield {
                w_hits,
                w_res,
                bias,
                ..
            } => *w_hits * features.dram_hits + *w_res * features.residence + *bias > 0.0,
            AdmissionPolicy::SmallFifo => features.dram_hits >= 1.0,
        }
    }

    /// Feedback for the learning policy: an admitted object left flash with
    /// (`useful == hits > 0`), or a rejected object proved useful by being
    /// re-requested (`useful == true`). Non-learning policies ignore this.
    pub fn feedback(&mut self, features: Features, admitted_label: bool, useful: bool) {
        if let AdmissionPolicy::Flashield {
            w_hits,
            w_res,
            bias,
            lr,
        } = self
        {
            let score = *w_hits * features.dram_hits + *w_res * features.residence + *bias;
            let predicted = score > 0.0;
            // Perceptron update on mistakes: the correct decision was to
            // admit iff the object proved useful.
            let correct_admit = useful;
            if predicted != correct_admit || admitted_label != correct_admit {
                let dir = if correct_admit { 1.0 } else { -1.0 };
                *w_hits += *lr * dir * features.dram_hits;
                *w_res += *lr * dir * features.residence;
                *bias += *lr * dir;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(hits: f64) -> Features {
        Features {
            dram_hits: hits,
            residence: 0.5,
        }
    }

    #[test]
    fn write_all_admits_everything() {
        let mut a = AdmissionPolicy::new(AdmissionKind::WriteAll, 100);
        for id in 0..100 {
            assert!(a.admit(id, feat(0.0)));
        }
    }

    #[test]
    fn probabilistic_rate_close_to_p() {
        let mut a = AdmissionPolicy::new(AdmissionKind::Probabilistic(0.2), 100);
        let admitted = (0..10_000).filter(|&id| a.admit(id, feat(0.0))).count();
        let rate = admitted as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bloom_admits_on_second_sighting() {
        let mut a = AdmissionPolicy::new(AdmissionKind::BloomSecondAccess, 100);
        assert!(!a.admit(7, feat(0.0)));
        assert!(a.admit(7, feat(0.0)));
    }

    #[test]
    fn small_fifo_requires_a_dram_hit() {
        let mut a = AdmissionPolicy::new(AdmissionKind::SmallFifoTwoAccess, 100);
        assert!(!a.admit(1, feat(0.0)));
        assert!(a.admit(1, feat(1.0)));
        assert!(a.admit(1, feat(3.0)));
    }

    #[test]
    fn flashield_learns_hit_signal() {
        let mut a = AdmissionPolicy::new(AdmissionKind::FlashieldLike, 100);
        // Teach: objects with DRAM hits are useful, others are not.
        for _ in 0..200 {
            a.feedback(feat(2.0), false, true);
            a.feedback(feat(0.0), true, false);
        }
        assert!(a.admit(1, feat(2.0)), "should admit hit-rich objects");
        assert!(!a.admit(2, feat(0.0)), "should reject hit-less objects");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            AdmissionPolicy::new(AdmissionKind::WriteAll, 1).name(),
            "FIFO (no admission)"
        );
        assert_eq!(
            AdmissionPolicy::new(AdmissionKind::SmallFifoTwoAccess, 1).name(),
            "S3-FIFO"
        );
    }
}

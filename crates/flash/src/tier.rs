//! The flash device model: a byte-capacity FIFO store with write
//! accounting.
//!
//! §5.4: "most production flash cache systems … use FIFO or
//! FIFO-reinsertion" because insertion-order eviction turns into sequential
//! writes. The experiments use plain FIFO for every admission policy so the
//! admission effect is isolated.

use cache_ds::{IdMap, IdSet};
use cache_types::ObjId;
use std::collections::VecDeque;

/// A FIFO flash tier.
#[derive(Debug)]
pub struct FlashTier {
    fifo: VecDeque<(ObjId, u32)>,
    set: IdSet,
    /// Hits each resident object has received (for admission feedback).
    hits: IdMap<u32>,
    used: u64,
    capacity: u64,
    /// Total bytes ever written.
    write_bytes: u64,
    /// Objects written.
    writes: u64,
}

/// An object evicted from flash, with its hit count while resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashEviction {
    /// Evicted object.
    pub id: ObjId,
    /// Its size in bytes.
    pub size: u32,
    /// Hits received while on flash.
    pub hits: u32,
}

impl FlashTier {
    /// Creates a flash tier of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "flash capacity must be positive");
        FlashTier {
            fifo: VecDeque::new(),
            set: IdSet::default(),
            hits: IdMap::default(),
            used: 0,
            capacity,
            write_bytes: 0,
            writes: 0,
        }
    }

    /// True when `id` is resident.
    pub fn contains(&self, id: ObjId) -> bool {
        self.set.contains(&id)
    }

    /// Records a read hit on a resident object. Returns false when the
    /// object is not resident.
    pub fn read(&mut self, id: ObjId) -> bool {
        if self.set.contains(&id) {
            *self.hits.entry(id).or_insert(0) += 1;
            true
        } else {
            false
        }
    }

    /// Writes `id` to flash (a no-op when already resident), evicting in
    /// FIFO order to make room. Evictions are appended to `evicted`.
    pub fn write(&mut self, id: ObjId, size: u32, evicted: &mut Vec<FlashEviction>) {
        if u64::from(size) > self.capacity || self.set.contains(&id) {
            return;
        }
        while self.used + u64::from(size) > self.capacity {
            let Some((old, old_size)) = self.fifo.pop_front() else {
                break;
            };
            if self.set.remove(&old) {
                self.used -= u64::from(old_size);
                evicted.push(FlashEviction {
                    id: old,
                    size: old_size,
                    hits: self.hits.remove(&old).unwrap_or(0),
                });
            }
        }
        self.fifo.push_back((id, size));
        self.set.insert(id);
        self.used += u64::from(size);
        self.write_bytes += u64::from(size);
        self.writes += 1;
    }

    /// Drops `id` from the tier (corruption discard, invalidation).
    /// Returns the object's size, or `None` when not resident. O(n) in the
    /// FIFO length; only used on rare corruption/invalidation paths.
    pub fn remove(&mut self, id: ObjId) -> Option<u32> {
        if !self.set.remove(&id) {
            return None;
        }
        self.hits.remove(&id);
        // Invariant: every id in `set` has exactly one slot in `fifo`.
        let pos = self.fifo.iter().position(|&(fid, _)| fid == id)?;
        let (_, size) = self.fifo.remove(pos)?;
        self.used -= u64::from(size);
        Some(size)
    }

    /// Total bytes written to the device so far.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Objects written so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resident bytes.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Resident object count.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Exhaustive byte-accounting check (O(n)): every FIFO slot is in the
    /// resident set, slot count matches set size, and `used` equals the sum
    /// of resident sizes. Used by the torture harnesses.
    pub fn verify_accounting(&self) -> bool {
        if self.fifo.len() != self.set.len() {
            return false;
        }
        let mut sum = 0u64;
        for &(id, size) in &self.fifo {
            if !self.set.contains(&id) {
                return false;
            }
            sum += u64::from(size);
        }
        sum == self.used && self.used <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut f = FlashTier::new(100);
        let mut evs = Vec::new();
        f.write(1, 10, &mut evs);
        assert!(f.contains(1));
        assert!(f.read(1));
        assert!(!f.read(2));
        assert_eq!(f.write_bytes(), 10);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut f = FlashTier::new(20);
        let mut evs = Vec::new();
        f.write(1, 10, &mut evs);
        f.write(2, 10, &mut evs);
        f.read(1); // hits do not protect FIFO entries
        f.write(3, 10, &mut evs);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].id, 1);
        assert_eq!(evs[0].hits, 1);
        assert!(!f.contains(1));
    }

    #[test]
    fn duplicate_write_is_noop() {
        let mut f = FlashTier::new(100);
        let mut evs = Vec::new();
        f.write(1, 10, &mut evs);
        f.write(1, 10, &mut evs);
        assert_eq!(f.write_bytes(), 10);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut f = FlashTier::new(10);
        let mut evs = Vec::new();
        f.write(1, 100, &mut evs);
        assert!(!f.contains(1));
        assert_eq!(f.write_bytes(), 0);
    }

    #[test]
    fn remove_keeps_accounting_exact() {
        let mut f = FlashTier::new(100);
        let mut evs = Vec::new();
        f.write(1, 10, &mut evs);
        f.write(2, 20, &mut evs);
        assert_eq!(f.remove(1), Some(10));
        assert!(!f.contains(1));
        assert_eq!(f.used(), 20);
        assert_eq!(f.len(), 1);
        assert_eq!(f.remove(1), None);
        // Re-writing the removed id with a different size stays exact.
        f.write(1, 30, &mut evs);
        assert_eq!(f.used(), 50);
    }

    #[test]
    fn capacity_respected() {
        let mut f = FlashTier::new(50);
        let mut evs = Vec::new();
        for i in 0..100u64 {
            f.write(i, 7, &mut evs);
            assert!(f.used() <= 50);
        }
        assert_eq!(f.write_bytes(), 700);
    }
}

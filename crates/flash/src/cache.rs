//! The two-tier DRAM + flash cache orchestrator (Fig. 9's experiment),
//! generic over the flash device so the same pipeline runs against a
//! perfect device or one wrapped in fault injection.
//!
//! Failure handling (the "degradation ladder", see DESIGN.md):
//!
//! 1. **Retry** — retryable device faults (transient write, device-full)
//!    are retried with bounded decorrelated-jitter backoff.
//! 2. **Degrade** — post-retry failures feed a sliding-window
//!    [`ErrorBudget`]; when it trips, the cache stops touching the device
//!    and serves from DRAM only.
//! 3. **Probe & recover** — while degraded, every `probe_interval` ops one
//!    request is attempted against the device as a canary; a run of
//!    successful probes re-admits the flash tier.

use crate::admission::{AdmissionKind, AdmissionPolicy, Features};
use crate::device::{FaultyDevice, FlashDevice};
use crate::tier::{FlashEviction, FlashTier};
use cache_ds::{IdMap, SplitMix64};
use cache_faults::{
    Backoff, DegradationState, DeviceFault, ErrorBudget, ErrorBudgetConfig, FaultPlan, FaultStats,
    RetryPolicy,
};
use cache_obs::{Counter, EventKind, EventTracer, Scope, SharedHistogram};
use cache_policies::{Fifo, Lru};
use cache_types::{CacheError, Eviction, Op, Policy, Request};

/// Configuration of the two-tier cache.
#[derive(Debug, Clone, Copy)]
pub struct FlashCacheConfig {
    /// Total cache size in bytes (the paper: 10 % of trace footprint bytes).
    pub total_bytes: u64,
    /// DRAM fraction of the total (paper sweeps 0.001, 0.01, 0.1).
    pub dram_fraction: f64,
    /// Admission policy.
    pub admission: AdmissionKind,
}

/// How the cache responds to device faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceConfig {
    /// Retry/backoff policy for retryable device faults.
    pub retry: RetryPolicy,
    /// Error budget governing the degrade/probe/recover ladder.
    pub budget: ErrorBudgetConfig,
}

/// Fig. 9's two metrics plus supporting and fault counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Read requests.
    pub requests: u64,
    /// Requests served by neither tier.
    pub misses: u64,
    /// Requests served from DRAM.
    pub dram_hits: u64,
    /// Requests served from flash.
    pub flash_hits: u64,
    /// Bytes written to flash.
    pub flash_write_bytes: u64,
    /// Bytes requested.
    pub request_bytes: u64,
    /// Bytes missed.
    pub miss_bytes: u64,
    /// Device operations retried after a retryable fault.
    pub retries: u64,
    /// Simulated latency units spent in retry backoff.
    pub retry_latency_units: u64,
    /// Reads that failed after exhausting retries (corruption included).
    pub device_read_errors: u64,
    /// Writes that failed after exhausting retries.
    pub device_write_errors: u64,
    /// Objects discarded because a read failed its checksum.
    pub corruptions: u64,
    /// Requests processed while the flash tier was bypassed (degraded).
    /// Counted at most once per request, even when one request skips both a
    /// flash read and a flash write.
    pub degraded_ops: u64,
    /// Times the error budget tripped (flash taken offline).
    pub budget_trips: u64,
    /// Times the device recovered (flash re-admitted).
    pub budget_recoveries: u64,
}

impl FlashStats {
    /// Request miss ratio (both tiers count as hits).
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Flash write bytes normalized by a reference byte count (Fig. 9
    /// normalizes by the unique bytes in the trace).
    pub fn normalized_write_bytes(&self, unique_bytes: u64) -> f64 {
        if unique_bytes == 0 {
            0.0
        } else {
            self.flash_write_bytes as f64 / unique_bytes as f64
        }
    }

    /// Post-retry device failures, both directions.
    pub fn device_errors(&self) -> u64 {
        self.device_read_errors + self.device_write_errors
    }
}

/// The DRAM tier + admission + flash tier pipeline.
pub struct FlashCache<D: FlashDevice = FlashTier> {
    /// DRAM tier; `None` for the write-all scheme (which bypasses DRAM).
    dram: Option<Box<dyn Policy>>,
    admission: AdmissionPolicy,
    flash: D,
    /// Ghost of rejected objects (S3-FIFO's G; also Flashield's feedback
    /// window), holding the features observed at rejection time.
    rejected: IdMap<(Features, u64)>,
    /// Features of admitted objects, for end-of-life feedback.
    admitted: IdMap<Features>,
    /// Bound on the rejected-ghost, in entries.
    ghost_entries: usize,
    /// Insertion order for ghost expiry.
    ghost_fifo: std::collections::VecDeque<u64>,
    stats: FlashStats,
    scratch: Vec<Eviction>,
    flash_scratch: Vec<FlashEviction>,
    now: u64,
    dram_bytes: u64,
    resilience: ResilienceConfig,
    budget: ErrorBudget,
    /// Seeds per-operation backoff jitter; deterministic per op sequence.
    backoff_rng: SplitMix64,
    /// First fault seen while serving the current request.
    pending_fault: Option<CacheError>,
    /// Whether the current request already counted toward `degraded_ops`;
    /// one request can bypass the device twice (read then write-back).
    degraded_this_request: bool,
    /// Optional ladder telemetry; `None` costs nothing on the hot path.
    obs: Option<FlashObs>,
}

/// Metric handles and event tracer for the degradation ladder, attached via
/// [`FlashCache::attach_obs`].
struct FlashObs {
    tracer: EventTracer,
    /// Simulated backoff latency per retry.
    retry_latency: SharedHistogram,
    device_errors: Counter,
    degraded_requests: Counter,
    trips: Counter,
    recoveries: Counter,
}

fn tier_sizes(cfg: &FlashCacheConfig) -> Result<(u64, u64), CacheError> {
    if cfg.total_bytes == 0 {
        return Err(CacheError::InvalidCapacity(
            "total_bytes must be > 0".into(),
        ));
    }
    if !(0.0..1.0).contains(&cfg.dram_fraction) {
        return Err(CacheError::InvalidParameter(format!(
            "dram_fraction must be in [0,1), got {}",
            cfg.dram_fraction
        )));
    }
    let dram_bytes = ((cfg.total_bytes as f64 * cfg.dram_fraction).round() as u64).max(1);
    let flash_bytes = cfg.total_bytes.saturating_sub(dram_bytes).max(1);
    Ok((dram_bytes, flash_bytes))
}

impl FlashCache<FlashTier> {
    /// Builds the two-tier cache over a perfect device.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when sizes are degenerate (zero DRAM for a
    /// scheme that needs one, zero flash).
    pub fn new(cfg: FlashCacheConfig) -> Result<Self, CacheError> {
        let (_, flash_bytes) = tier_sizes(&cfg)?;
        // Invariant: tier_sizes clamps flash_bytes >= 1, so FlashTier::new
        // cannot panic.
        FlashCache::with_device(cfg, FlashTier::new(flash_bytes), ResilienceConfig::default())
    }
}

impl FlashCache<FaultyDevice<FlashTier>> {
    /// Builds the cache over a FIFO device wrapped in fault injection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashCache::new`].
    pub fn faulty(
        cfg: FlashCacheConfig,
        plan: FaultPlan,
        resilience: ResilienceConfig,
    ) -> Result<Self, CacheError> {
        let (_, flash_bytes) = tier_sizes(&cfg)?;
        FlashCache::with_device(cfg, FaultyDevice::new(flash_bytes, plan), resilience)
    }
}

impl<D: FlashDevice> FlashCache<D> {
    /// Builds the cache over an arbitrary device (the device supplies its
    /// own capacity; `cfg` sizes the DRAM tier).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] on degenerate configuration.
    pub fn with_device(
        cfg: FlashCacheConfig,
        device: D,
        resilience: ResilienceConfig,
    ) -> Result<Self, CacheError> {
        let (dram_bytes, _) = tier_sizes(&cfg)?;
        let flash_bytes = device.capacity();
        let dram: Option<Box<dyn Policy>> = match cfg.admission {
            AdmissionKind::WriteAll => None,
            // The S3-FIFO scheme's DRAM *is* the small FIFO queue.
            AdmissionKind::SmallFifoTwoAccess => Some(Box::new(Fifo::new(dram_bytes)?)),
            // The other schemes use an LRU DRAM cache (§5.4).
            _ => Some(Box::new(Lru::new(dram_bytes)?)),
        };
        Ok(FlashCache {
            dram,
            admission: AdmissionPolicy::new(cfg.admission, dram_bytes as usize),
            flash: device,
            rejected: IdMap::default(),
            admitted: IdMap::default(),
            ghost_entries: (flash_bytes / 1024).clamp(1024, 1 << 20) as usize,
            ghost_fifo: std::collections::VecDeque::new(),
            stats: FlashStats::default(),
            scratch: Vec::new(),
            flash_scratch: Vec::new(),
            now: 0,
            dram_bytes,
            resilience,
            budget: ErrorBudget::new(resilience.budget),
            backoff_rng: SplitMix64::new(0xF1A5_CACE),
            pending_fault: None,
            degraded_this_request: false,
            obs: None,
        })
    }

    /// Attaches ladder telemetry: counters and a retry-latency histogram
    /// registered under `scope`, plus `tracer` for per-transition
    /// degrade/recover/fault events. Detached caches skip all of it.
    pub fn attach_obs(&mut self, scope: &Scope, tracer: EventTracer) {
        self.obs = Some(FlashObs {
            tracer,
            retry_latency: scope.histogram("retry_latency_units"),
            device_errors: scope.counter("device_errors"),
            degraded_requests: scope.counter("degraded_requests"),
            trips: scope.counter("budget_trips"),
            recoveries: scope.counter("budget_recoveries"),
        });
    }

    /// Name of the configured admission policy.
    pub fn admission_name(&self) -> &'static str {
        self.admission.name()
    }

    /// Accumulated statistics (flash write bytes are read from the tier).
    pub fn stats(&self) -> FlashStats {
        let mut s = self.stats;
        s.flash_write_bytes = self.flash.write_bytes();
        s
    }

    /// Where the flash tier sits on the degradation ladder.
    pub fn degradation(&self) -> DegradationState {
        self.budget.state()
    }

    /// Counters of faults the device injected (all-zero for perfect
    /// devices).
    pub fn device_fault_stats(&self) -> FaultStats {
        self.flash.fault_stats()
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.flash
    }

    /// Runs the device's exhaustive byte-accounting self-check.
    pub fn verify_accounting(&self) -> bool {
        self.flash.verify_accounting()
    }

    fn note_fault(&mut self, e: CacheError) {
        if self.pending_fault.is_none() {
            self.pending_fault = Some(e);
        }
    }

    /// Feeds a post-retry failure to the error budget; notes the trip.
    fn record_device_error(&mut self, id: u64, fault: DeviceFault) {
        if fault.kind == cache_faults::FaultKind::Corruption {
            self.stats.corruptions += 1;
        }
        if let Some(obs) = &self.obs {
            obs.device_errors.inc();
            obs.tracer.record(EventKind::Fault, "flash", id, self.now);
        }
        if self.budget.record_error(self.now) {
            self.stats.budget_trips += 1;
            if let Some(obs) = &self.obs {
                obs.trips.inc();
                obs.tracer.record(EventKind::Degrade, "flash", id, self.now);
            }
            self.note_fault(CacheError::Degraded(format!(
                "error budget tripped at op {} ({})",
                self.now,
                fault.kind.label()
            )));
        } else {
            self.note_fault(fault.into());
        }
    }

    /// True when this op may touch the device: always while healthy, only
    /// on probe ticks while degraded.
    fn device_available(&mut self) -> bool {
        match self.budget.state() {
            DegradationState::Healthy => true,
            DegradationState::Degraded => self.budget.should_probe(self.now),
        }
    }

    /// Reports a device-op outcome to the budget when it was a probe.
    fn after_device_op(&mut self, ok: bool) {
        if self.budget.state() == DegradationState::Degraded
            && self.budget.record_probe(self.now, ok)
        {
            self.stats.budget_recoveries += 1;
            if let Some(obs) = &self.obs {
                obs.recoveries.inc();
                obs.tracer.record(EventKind::Recover, "flash", 0, self.now);
            }
        }
    }

    /// Counts a device bypass toward `degraded_ops`, once per request.
    fn note_degraded_bypass(&mut self) {
        if !self.degraded_this_request {
            self.degraded_this_request = true;
            self.stats.degraded_ops += 1;
            if let Some(obs) = &self.obs {
                obs.degraded_requests.inc();
            }
        }
    }

    /// Records one retry's simulated backoff delay.
    fn note_retry(&mut self, delay: u64) {
        self.stats.retries += 1;
        self.stats.retry_latency_units += delay;
        if let Some(obs) = &self.obs {
            obs.retry_latency.record(delay);
        }
    }

    /// A flash read with the full ladder applied.
    fn flash_read(&mut self, id: u64) -> bool {
        if !self.flash.contains(id) {
            return false;
        }
        if !self.device_available() {
            self.note_degraded_bypass();
            return false;
        }
        // While degraded, the budget authorized exactly one canary op; a
        // retry loop here would multiply that into a burst against a device
        // presumed down, so probes are single-shot.
        let probing = self.budget.state() == DegradationState::Degraded;
        // Read-side faults are non-retryable by convention (`DeviceFault::of`),
        // but honor `retryable` so custom devices can opt in.
        let mut backoff = Backoff::new(self.resilience.retry, self.backoff_rng.next_u64());
        loop {
            match self.flash.read(id) {
                Ok(hit) => {
                    self.after_device_op(true);
                    return hit;
                }
                Err(f) if f.retryable && !probing => {
                    if let Some(delay) = backoff.next_delay() {
                        self.note_retry(delay);
                        continue;
                    }
                    self.stats.device_read_errors += 1;
                    self.after_device_op(false);
                    self.record_device_error(id, f);
                    return false;
                }
                Err(f) => {
                    self.stats.device_read_errors += 1;
                    self.after_device_op(false);
                    self.record_device_error(id, f);
                    return false;
                }
            }
        }
    }

    /// A flash write with the full ladder applied. Returns true when the
    /// object landed on the device.
    fn flash_write_op(&mut self, id: u64, size: u32) -> bool {
        if !self.device_available() {
            self.note_degraded_bypass();
            return false;
        }
        // Single-shot while degraded, same as `flash_read`.
        let probing = self.budget.state() == DegradationState::Degraded;
        let mut backoff = Backoff::new(self.resilience.retry, self.backoff_rng.next_u64());
        loop {
            match self.flash.write(id, size, &mut self.flash_scratch) {
                Ok(()) => {
                    self.after_device_op(true);
                    return true;
                }
                Err(f) if f.retryable && !probing => {
                    if let Some(delay) = backoff.next_delay() {
                        self.note_retry(delay);
                        continue;
                    }
                    self.stats.device_write_errors += 1;
                    self.after_device_op(false);
                    self.record_device_error(id, f);
                    return false;
                }
                Err(f) => {
                    self.stats.device_write_errors += 1;
                    self.after_device_op(false);
                    self.record_device_error(id, f);
                    return false;
                }
            }
        }
    }

    fn remember_rejection(&mut self, id: u64, features: Features) {
        if self.rejected.insert(id, (features, self.now)).is_none() {
            self.ghost_fifo.push_back(id);
        }
        while self.ghost_fifo.len() > self.ghost_entries {
            if let Some(old) = self.ghost_fifo.pop_front() {
                if let Some((feat, _)) = self.rejected.remove(&old) {
                    // Expired unreferenced rejection: the rejection was
                    // correct.
                    self.admission.feedback(feat, false, false);
                }
            }
        }
    }

    fn write_to_flash(&mut self, id: u64, size: u32, features: Features) {
        self.flash_scratch.clear();
        if self.flash_write_op(id, size) {
            self.admitted.insert(id, features);
        }
        // End-of-life feedback for admitted objects.
        let evictions: Vec<FlashEviction> = self.flash_scratch.drain(..).collect();
        for ev in evictions {
            if let Some(feat) = self.admitted.remove(&ev.id) {
                self.admission.feedback(feat, true, ev.hits > 0);
            }
        }
    }

    /// Handles one DRAM eviction: consult admission, write or remember.
    fn on_dram_eviction(&mut self, ev: Eviction) {
        let features = Features {
            dram_hits: f64::from(ev.freq),
            residence: (self.now.saturating_sub(ev.insert_time)) as f64
                / self.dram_bytes.max(1) as f64,
        };
        if self.admission.admit(ev.id, features) {
            self.write_to_flash(ev.id, ev.size, features);
        } else {
            self.remember_rejection(ev.id, features);
        }
    }

    /// Processes one read request; returns true on a hit in either tier.
    /// Device faults degrade to misses; use [`FlashCache::request_checked`]
    /// to observe them.
    pub fn request(&mut self, id: u64, size: u32) -> bool {
        // The checked path always fully serves the request (degradation is
        // graceful); a fault report implies the result was a miss.
        self.request_checked(id, size).unwrap_or(false)
    }

    /// Processes one read request, surfacing any device fault encountered
    /// while serving it.
    ///
    /// The request is *always* fully served (cache state stays consistent;
    /// a faulting flash tier just means a backend fetch).
    ///
    /// # Errors
    ///
    /// - [`CacheError::DeviceFailure`] — a device op failed after
    ///   exhausting retries.
    /// - [`CacheError::Corruption`] — a read failed its checksum; the
    ///   object was discarded.
    /// - [`CacheError::Degraded`] — this request's failure tripped the
    ///   error budget; the cache is now DRAM-only until recovery.
    ///
    /// All three imply the request missed.
    pub fn request_checked(&mut self, id: u64, size: u32) -> Result<bool, CacheError> {
        self.pending_fault = None;
        self.degraded_this_request = false;
        self.now += 1;
        self.stats.requests += 1;
        self.stats.request_bytes += u64::from(size);
        // DRAM first.
        if let Some(dram) = self.dram.as_mut() {
            if dram.contains(id) {
                self.scratch.clear();
                let req = Request::get_sized(id, size, self.now);
                dram.request(&req, &mut self.scratch);
                self.stats.dram_hits += 1;
                return Ok(true);
            }
        }
        // Then flash.
        if self.flash_read(id) {
            self.stats.flash_hits += 1;
            return Ok(true);
        }
        // Miss: fetch from the backend.
        self.stats.misses += 1;
        self.stats.miss_bytes += u64::from(size);
        if let Some((features, _)) = self.rejected.remove(&id) {
            // A rejected object proved useful: learn, and (for the S3-FIFO
            // scheme) this is the ghost hit that earns direct flash
            // admission ("only objects requested in S and G are written").
            self.admission.feedback(features, false, true);
            if matches!(self.admission, AdmissionPolicy::SmallFifo) {
                self.flash_scratch.clear();
                if self.flash_write_op(id, size) {
                    self.admitted.insert(id, features);
                }
                let evictions: Vec<FlashEviction> = self.flash_scratch.drain(..).collect();
                for ev in evictions {
                    if let Some(feat) = self.admitted.remove(&ev.id) {
                        self.admission.feedback(feat, true, ev.hits > 0);
                    }
                }
                return match self.pending_fault.take() {
                    Some(e) => Err(e),
                    None => Ok(false),
                };
            }
        }
        match self.dram.as_mut() {
            None => {
                // Write-all: straight to flash.
                self.flash_scratch.clear();
                self.flash_write_op(id, size);
            }
            Some(dram) => {
                self.scratch.clear();
                let req = Request::get_sized(id, size, self.now);
                dram.request(&req, &mut self.scratch);
                let evictions: Vec<Eviction> = self.scratch.drain(..).collect();
                for ev in evictions {
                    self.on_dram_eviction(ev);
                }
            }
        }
        match self.pending_fault.take() {
            Some(e) => Err(e),
            None => Ok(false),
        }
    }

    /// Replays a full trace (read requests only), returning the stats.
    /// Device faults are absorbed (counted in the stats), never panics.
    pub fn run(&mut self, reqs: &[Request]) -> FlashStats {
        for r in reqs {
            if r.op == Op::Get {
                self.request(r.id, r.size);
            }
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_faults::{FaultKind, Schedule};
    use cache_trace::gen::{SizeModel, WorkloadSpec};

    fn cdn_trace(seed: u64) -> cache_trace::Trace {
        let mut spec = WorkloadSpec::zipf("cdn", 60_000, 6000, 0.8, seed);
        spec.one_hit_fraction = 0.3;
        spec.size_model = SizeModel::Uniform {
            min: 100,
            max: 2000,
        };
        spec.generate()
    }

    fn run(kind: AdmissionKind, dram_fraction: f64, trace: &cache_trace::Trace) -> FlashStats {
        let cfg = FlashCacheConfig {
            total_bytes: trace.footprint_bytes() / 10,
            dram_fraction,
            admission: kind,
        };
        let mut c = FlashCache::new(cfg).unwrap();
        c.run(&trace.requests)
    }

    #[test]
    fn write_all_writes_every_missed_byte_once() {
        let trace = cdn_trace(1);
        let s = run(AdmissionKind::WriteAll, 0.01, &trace);
        assert!(s.flash_write_bytes > 0);
        assert!(s.miss_ratio() > 0.0 && s.miss_ratio() < 1.0);
    }

    #[test]
    fn admission_reduces_write_bytes() {
        let trace = cdn_trace(2);
        let all = run(AdmissionKind::WriteAll, 0.01, &trace);
        for kind in [
            AdmissionKind::Probabilistic(0.2),
            AdmissionKind::SmallFifoTwoAccess,
            AdmissionKind::BloomSecondAccess,
        ] {
            let s = run(kind, 0.01, &trace);
            assert!(
                s.flash_write_bytes < all.flash_write_bytes,
                "{kind:?}: {} vs write-all {}",
                s.flash_write_bytes,
                all.flash_write_bytes
            );
        }
    }

    #[test]
    fn s3fifo_admission_beats_probabilistic_on_both_axes() {
        // Fig. 9's headline: the small-FIFO filter reduces both writes and
        // miss ratio relative to probabilistic admission.
        let trace = cdn_trace(3);
        let prob = run(AdmissionKind::Probabilistic(0.2), 0.01, &trace);
        let s3 = run(AdmissionKind::SmallFifoTwoAccess, 0.01, &trace);
        assert!(
            s3.miss_ratio() <= prob.miss_ratio() + 0.02,
            "S3 MR {:.4} vs prob MR {:.4}",
            s3.miss_ratio(),
            prob.miss_ratio()
        );
    }

    #[test]
    fn tiny_dram_does_not_break_anything() {
        let trace = cdn_trace(4);
        for kind in [
            AdmissionKind::SmallFifoTwoAccess,
            AdmissionKind::FlashieldLike,
        ] {
            let s = run(kind, 0.001, &trace);
            assert!(s.requests == 60_000);
            assert!(s.miss_ratio() <= 1.0);
        }
    }

    #[test]
    fn flashield_with_large_dram_filters_writes() {
        let trace = cdn_trace(5);
        let all = run(AdmissionKind::WriteAll, 0.1, &trace);
        let fl = run(AdmissionKind::FlashieldLike, 0.1, &trace);
        assert!(
            fl.flash_write_bytes < all.flash_write_bytes,
            "Flashield {} vs write-all {}",
            fl.flash_write_bytes,
            all.flash_write_bytes
        );
    }

    #[test]
    fn rejects_bad_config() {
        assert!(FlashCache::new(FlashCacheConfig {
            total_bytes: 0,
            dram_fraction: 0.1,
            admission: AdmissionKind::WriteAll,
        })
        .is_err());
        assert!(FlashCache::new(FlashCacheConfig {
            total_bytes: 100,
            dram_fraction: 1.5,
            admission: AdmissionKind::WriteAll,
        })
        .is_err());
    }

    #[test]
    fn stats_normalization() {
        let mut s = FlashStats::default();
        s.flash_write_bytes = 500;
        assert!((s.normalized_write_bytes(1000) - 0.5).abs() < 1e-12);
        assert_eq!(s.normalized_write_bytes(0), 0.0);
    }

    fn faulty_cfg(trace: &cache_trace::Trace) -> FlashCacheConfig {
        FlashCacheConfig {
            total_bytes: trace.footprint_bytes() / 10,
            dram_fraction: 0.01,
            admission: AdmissionKind::SmallFifoTwoAccess,
        }
    }

    #[test]
    fn perfect_plan_matches_perfect_device() {
        let trace = cdn_trace(6);
        let base = run(AdmissionKind::SmallFifoTwoAccess, 0.01, &trace);
        let mut c = FlashCache::faulty(
            faulty_cfg(&trace),
            FaultPlan::none(),
            ResilienceConfig::default(),
        )
        .unwrap();
        let s = c.run(&trace.requests);
        assert_eq!(s.misses, base.misses);
        assert_eq!(s.flash_write_bytes, base.flash_write_bytes);
        assert_eq!(s.device_errors(), 0);
        assert_eq!(s.budget_trips, 0);
    }

    #[test]
    fn retries_absorb_sparse_transient_faults() {
        let trace = cdn_trace(7);
        let base = run(AdmissionKind::SmallFifoTwoAccess, 0.01, &trace);
        let mut c = FlashCache::faulty(
            faulty_cfg(&trace),
            FaultPlan::new(11).with_transient_writes(0.01),
            ResilienceConfig::default(),
        )
        .unwrap();
        let s = c.run(&trace.requests);
        assert!(s.retries > 0, "1% faults must trigger retries");
        assert_eq!(s.budget_trips, 0, "default budget absorbs 1% transients");
        assert!(
            (s.miss_ratio() - base.miss_ratio()).abs() < 0.02,
            "faulty MR {:.4} vs clean {:.4}",
            s.miss_ratio(),
            base.miss_ratio()
        );
    }

    #[test]
    fn persistent_faults_trip_budget_then_recover() {
        let trace = cdn_trace(8);
        // Writes always fail for the first 60 *device* ops, then are clean.
        // The burst is short because a degraded cache only touches the
        // device once per probe interval — probes are what traverse it.
        let plan = FaultPlan::new(13).with(
            FaultKind::TransientWrite,
            Schedule::Burst {
                period: u64::MAX,
                burst_len: 60,
                inside: 1.0,
                outside: 0.0,
            },
        );
        let resilience = ResilienceConfig {
            retry: RetryPolicy::no_retries(),
            budget: ErrorBudgetConfig {
                window_ops: 500,
                max_errors: 5,
                probe_interval: 200,
                recovery_probes: 2,
            },
        };
        let mut c = FlashCache::faulty(faulty_cfg(&trace), plan, resilience).unwrap();
        let s = c.run(&trace.requests);
        assert!(s.budget_trips >= 1, "dead device must trip the budget");
        assert!(s.degraded_ops > 0, "degraded mode must have engaged");
        assert!(
            s.budget_recoveries >= 1,
            "device heals after the burst; probes must recover it"
        );
        assert_eq!(c.degradation(), DegradationState::Healthy);
        assert!(s.flash_hits > 0, "flash serves hits after recovery");
    }

    #[test]
    fn corruption_discards_and_is_counted() {
        let trace = cdn_trace(9);
        let mut c = FlashCache::faulty(
            faulty_cfg(&trace),
            FaultPlan::new(17).with_corruption(0.05),
            ResilienceConfig::default(),
        )
        .unwrap();
        let s = c.run(&trace.requests);
        assert!(s.corruptions > 0);
        assert_eq!(s.corruptions, c.device_fault_stats().corruptions);
    }

    /// A device plan that serves the first `clean_ops` device operations
    /// and then fails every write attempt, deterministically.
    fn dies_after(clean_ops: u64) -> FaultPlan {
        FaultPlan::new(23).with(
            FaultKind::TransientWrite,
            Schedule::Burst {
                period: u64::MAX,
                burst_len: clean_ops,
                inside: 0.0,
                outside: 1.0,
            },
        )
    }

    /// Satellite regression: `degraded_ops` counts *requests*, not device
    /// bypasses. A degraded write-all request that skips both the flash
    /// read and the write-back used to count twice.
    #[test]
    fn degraded_request_bypassing_read_and_write_counts_once() {
        let cfg = FlashCacheConfig {
            total_bytes: 100_000,
            dram_fraction: 0.01,
            admission: AdmissionKind::WriteAll,
        };
        let resilience = ResilienceConfig {
            retry: RetryPolicy::no_retries(),
            budget: ErrorBudgetConfig {
                window_ops: 1000,
                max_errors: 0,
                // No probes during this test: every degraded op bypasses.
                probe_interval: u64::MAX,
                recovery_probes: 1,
            },
        };
        // Device op 1 (the write of id 1) succeeds, everything after fails.
        let mut c = FlashCache::faulty(cfg, dies_after(1), resilience).unwrap();

        assert!(!c.request(1, 100), "cold miss, admitted to flash");
        assert!(c.request(1, 100), "served from flash while healthy");
        assert_eq!(c.stats().degraded_ops, 0);

        // This write fails and trips the zero-tolerance budget.
        let err = c.request_checked(2, 100).unwrap_err();
        assert!(matches!(err, CacheError::Degraded(_)), "{err}");
        assert_eq!(c.degradation(), DegradationState::Degraded);
        assert_eq!(c.stats().budget_trips, 1);
        assert_eq!(
            c.stats().degraded_ops,
            0,
            "the tripping request itself reached the device, no bypass"
        );

        // id 1 is resident on flash, so this request bypasses the flash
        // *read*, misses, and then bypasses the write-back too: two device
        // bypasses, one request.
        assert!(!c.request(1, 100));
        assert_eq!(
            c.stats().degraded_ops,
            1,
            "one degraded request must count exactly once"
        );

        // Ten more degraded requests (each bypassing read-or-write paths)
        // add exactly ten.
        for id in 10..20u64 {
            c.request(id, 100);
        }
        assert_eq!(c.stats().degraded_ops, 11);
        assert_eq!(c.stats().budget_trips, 1, "no re-trip while degraded");
        assert_eq!(c.stats().budget_recoveries, 0);
    }

    /// Satellite regression: a probe is one canary op. The retry/backoff
    /// loop used to run while degraded, hammering a down device with
    /// `max_retries` extra attempts per authorized probe.
    #[test]
    fn probes_are_single_shot_no_retry_storm() {
        let cfg = FlashCacheConfig {
            total_bytes: 100_000,
            dram_fraction: 0.01,
            admission: AdmissionKind::WriteAll,
        };
        let retry = RetryPolicy {
            max_retries: 3,
            base_delay: 10,
            max_delay: 1000,
        };
        let resilience = ResilienceConfig {
            retry,
            budget: ErrorBudgetConfig {
                window_ops: 10_000,
                max_errors: 0,
                probe_interval: 5,
                recovery_probes: 3,
            },
        };
        // Every device write fails: the first one trips the budget (after a
        // full healthy retry sequence), then probes keep failing forever.
        let mut c = FlashCache::faulty(cfg, dies_after(0), resilience).unwrap();
        for id in 0..200u64 {
            c.request(id, 100);
        }
        let s = c.stats();
        assert_eq!(c.degradation(), DegradationState::Degraded);
        assert_eq!(s.budget_trips, 1);
        assert_eq!(
            s.retries,
            u64::from(retry.max_retries),
            "only the healthy pre-trip op may retry; probes are single-shot"
        );
        // Probes did run (and fail) — they're counted as device errors, one
        // per probe, not max_retries+1 per probe.
        assert!(
            s.device_write_errors > 1,
            "probes must have been attempted: {s:?}"
        );
        assert_eq!(s.budget_recoveries, 0);
    }

    /// Recovery still works with single-shot probes, and the ladder's obs
    /// telemetry mirrors the stats counters exactly (no double-counting).
    #[test]
    fn ladder_telemetry_matches_stats() {
        use cache_obs::{registry_to_json_lines, MetricsRegistry};
        let trace = cdn_trace(8);
        let plan = FaultPlan::new(13).with(
            FaultKind::TransientWrite,
            Schedule::Burst {
                period: u64::MAX,
                burst_len: 60,
                inside: 1.0,
                outside: 0.0,
            },
        );
        let resilience = ResilienceConfig {
            retry: RetryPolicy::no_retries(),
            budget: ErrorBudgetConfig {
                window_ops: 500,
                max_errors: 5,
                probe_interval: 200,
                recovery_probes: 2,
            },
        };
        let registry = MetricsRegistry::new();
        let tracer = cache_obs::EventTracer::new(1 << 12);
        let mut c = FlashCache::faulty(faulty_cfg(&trace), plan, resilience).unwrap();
        c.attach_obs(&registry.scope("flash.ladder"), tracer.clone());
        let s = c.run(&trace.requests);

        assert!(s.budget_trips >= 1 && s.budget_recoveries >= 1);
        let find = |name: &str| {
            registry
                .snapshot()
                .into_iter()
                .find(|m| m.name == format!("flash.ladder.{name}"))
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        let counter = |name: &str| match find(name).value {
            cache_obs::SampleValue::Counter(v) => v,
            other => panic!("{name}: expected counter, got {other:?}"),
        };
        assert_eq!(counter("budget_trips"), s.budget_trips);
        assert_eq!(counter("budget_recoveries"), s.budget_recoveries);
        assert_eq!(counter("device_errors"), s.device_errors());
        assert_eq!(counter("degraded_requests"), s.degraded_ops);

        // The tracer saw matching transition events, in logical-time order.
        let events = tracer.drain();
        let degrades = events
            .iter()
            .filter(|e| e.kind == cache_obs::EventKind::Degrade)
            .count() as u64;
        let recovers = events
            .iter()
            .filter(|e| e.kind == cache_obs::EventKind::Recover)
            .count() as u64;
        assert_eq!(degrades, s.budget_trips);
        assert_eq!(recovers, s.budget_recoveries);
        assert!(events.windows(2).all(|w| w[0].ts < w[1].ts));

        // And the whole thing exports as valid JSON lines.
        let dump = registry_to_json_lines(&registry);
        assert!(dump.contains("flash.ladder.budget_trips"));
    }

    #[test]
    fn request_checked_surfaces_fault_variants() {
        let cfg = FlashCacheConfig {
            total_bytes: 100_000,
            dram_fraction: 0.01,
            admission: AdmissionKind::WriteAll,
        };
        let mut c = FlashCache::faulty(
            cfg,
            FaultPlan::new(19).with_transient_writes(1.0),
            ResilienceConfig {
                retry: RetryPolicy::no_retries(),
                budget: ErrorBudgetConfig::default(),
            },
        )
        .unwrap();
        let mut saw_failure = false;
        let mut saw_degraded = false;
        for id in 0..100u64 {
            match c.request_checked(id, 100) {
                Ok(_) => {}
                Err(CacheError::DeviceFailure(_)) => saw_failure = true,
                Err(CacheError::Degraded(_)) => saw_degraded = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_failure, "write-all against a dead device must report");
        assert!(saw_degraded, "budget trip must surface Degraded once");
        assert_eq!(c.degradation(), DegradationState::Degraded);
    }
}

//! The two-tier DRAM + flash cache orchestrator (Fig. 9's experiment).

use crate::admission::{AdmissionKind, AdmissionPolicy, Features};
use crate::tier::{FlashEviction, FlashTier};
use cache_ds::IdMap;
use cache_policies::{Fifo, Lru};
use cache_types::{CacheError, Eviction, Op, Policy, Request};

/// Configuration of the two-tier cache.
#[derive(Debug, Clone, Copy)]
pub struct FlashCacheConfig {
    /// Total cache size in bytes (the paper: 10 % of trace footprint bytes).
    pub total_bytes: u64,
    /// DRAM fraction of the total (paper sweeps 0.001, 0.01, 0.1).
    pub dram_fraction: f64,
    /// Admission policy.
    pub admission: AdmissionKind,
}

/// Fig. 9's two metrics plus supporting counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlashStats {
    /// Read requests.
    pub requests: u64,
    /// Requests served by neither tier.
    pub misses: u64,
    /// Requests served from DRAM.
    pub dram_hits: u64,
    /// Requests served from flash.
    pub flash_hits: u64,
    /// Bytes written to flash.
    pub flash_write_bytes: u64,
    /// Bytes requested.
    pub request_bytes: u64,
    /// Bytes missed.
    pub miss_bytes: u64,
}

impl FlashStats {
    /// Request miss ratio (both tiers count as hits).
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Flash write bytes normalized by a reference byte count (Fig. 9
    /// normalizes by the unique bytes in the trace).
    pub fn normalized_write_bytes(&self, unique_bytes: u64) -> f64 {
        if unique_bytes == 0 {
            0.0
        } else {
            self.flash_write_bytes as f64 / unique_bytes as f64
        }
    }
}

/// The DRAM tier + admission + flash tier pipeline.
pub struct FlashCache {
    /// DRAM tier; `None` for the write-all scheme (which bypasses DRAM).
    dram: Option<Box<dyn Policy>>,
    admission: AdmissionPolicy,
    flash: FlashTier,
    /// Ghost of rejected objects (S3-FIFO's G; also Flashield's feedback
    /// window), holding the features observed at rejection time.
    rejected: IdMap<(Features, u64)>,
    /// Features of admitted objects, for end-of-life feedback.
    admitted: IdMap<Features>,
    /// Bound on the rejected-ghost, in entries.
    ghost_entries: usize,
    /// Insertion order for ghost expiry.
    ghost_fifo: std::collections::VecDeque<u64>,
    stats: FlashStats,
    scratch: Vec<Eviction>,
    flash_scratch: Vec<FlashEviction>,
    now: u64,
    dram_bytes: u64,
}

impl FlashCache {
    /// Builds the two-tier cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when sizes are degenerate (zero DRAM for a
    /// scheme that needs one, zero flash).
    pub fn new(cfg: FlashCacheConfig) -> Result<Self, CacheError> {
        if cfg.total_bytes == 0 {
            return Err(CacheError::InvalidCapacity(
                "total_bytes must be > 0".into(),
            ));
        }
        if !(0.0..1.0).contains(&cfg.dram_fraction) {
            return Err(CacheError::InvalidParameter(format!(
                "dram_fraction must be in [0,1), got {}",
                cfg.dram_fraction
            )));
        }
        let dram_bytes = ((cfg.total_bytes as f64 * cfg.dram_fraction).round() as u64).max(1);
        let flash_bytes = cfg.total_bytes.saturating_sub(dram_bytes).max(1);
        let dram: Option<Box<dyn Policy>> = match cfg.admission {
            AdmissionKind::WriteAll => None,
            // The S3-FIFO scheme's DRAM *is* the small FIFO queue.
            AdmissionKind::SmallFifoTwoAccess => Some(Box::new(Fifo::new(dram_bytes)?)),
            // The other schemes use an LRU DRAM cache (§5.4).
            _ => Some(Box::new(Lru::new(dram_bytes)?)),
        };
        Ok(FlashCache {
            dram,
            admission: AdmissionPolicy::new(cfg.admission, dram_bytes as usize),
            flash: FlashTier::new(flash_bytes),
            rejected: IdMap::default(),
            admitted: IdMap::default(),
            ghost_entries: (flash_bytes / 1024).clamp(1024, 1 << 20) as usize,
            ghost_fifo: std::collections::VecDeque::new(),
            stats: FlashStats::default(),
            scratch: Vec::new(),
            flash_scratch: Vec::new(),
            now: 0,
            dram_bytes,
        })
    }

    /// Name of the configured admission policy.
    pub fn admission_name(&self) -> &'static str {
        self.admission.name()
    }

    /// Accumulated statistics (flash write bytes are read from the tier).
    pub fn stats(&self) -> FlashStats {
        let mut s = self.stats;
        s.flash_write_bytes = self.flash.write_bytes();
        s
    }

    fn remember_rejection(&mut self, id: u64, features: Features) {
        if self.rejected.insert(id, (features, self.now)).is_none() {
            self.ghost_fifo.push_back(id);
        }
        while self.ghost_fifo.len() > self.ghost_entries {
            if let Some(old) = self.ghost_fifo.pop_front() {
                if let Some((feat, _)) = self.rejected.remove(&old) {
                    // Expired unreferenced rejection: the rejection was
                    // correct.
                    self.admission.feedback(feat, false, false);
                }
            }
        }
    }

    fn write_to_flash(&mut self, id: u64, size: u32, features: Features) {
        self.flash_scratch.clear();
        self.flash.write(id, size, &mut self.flash_scratch);
        self.admitted.insert(id, features);
        // End-of-life feedback for admitted objects.
        let evictions: Vec<FlashEviction> = self.flash_scratch.drain(..).collect();
        for ev in evictions {
            if let Some(feat) = self.admitted.remove(&ev.id) {
                self.admission.feedback(feat, true, ev.hits > 0);
            }
        }
    }

    /// Handles one DRAM eviction: consult admission, write or remember.
    fn on_dram_eviction(&mut self, ev: Eviction) {
        let features = Features {
            dram_hits: f64::from(ev.freq),
            residence: (self.now.saturating_sub(ev.insert_time)) as f64
                / self.dram_bytes.max(1) as f64,
        };
        if self.admission.admit(ev.id, features) {
            self.write_to_flash(ev.id, ev.size, features);
        } else {
            self.remember_rejection(ev.id, features);
        }
    }

    /// Processes one read request; returns true on a hit in either tier.
    pub fn request(&mut self, id: u64, size: u32) -> bool {
        self.now += 1;
        self.stats.requests += 1;
        self.stats.request_bytes += u64::from(size);
        // DRAM first.
        if let Some(dram) = self.dram.as_mut() {
            if dram.contains(id) {
                self.scratch.clear();
                let req = Request::get_sized(id, size, self.now);
                dram.request(&req, &mut self.scratch);
                self.stats.dram_hits += 1;
                return true;
            }
        }
        // Then flash.
        if self.flash.read(id) {
            self.stats.flash_hits += 1;
            return true;
        }
        // Miss: fetch from the backend.
        self.stats.misses += 1;
        self.stats.miss_bytes += u64::from(size);
        if let Some((features, _)) = self.rejected.remove(&id) {
            // A rejected object proved useful: learn, and (for the S3-FIFO
            // scheme) this is the ghost hit that earns direct flash
            // admission ("only objects requested in S and G are written").
            self.admission.feedback(features, false, true);
            if matches!(self.admission, AdmissionPolicy::SmallFifo) {
                self.write_to_flash(id, size, features);
                return false;
            }
        }
        match self.dram.as_mut() {
            None => {
                // Write-all: straight to flash.
                self.flash_scratch.clear();
                self.flash.write(id, size, &mut self.flash_scratch);
            }
            Some(dram) => {
                self.scratch.clear();
                let req = Request::get_sized(id, size, self.now);
                dram.request(&req, &mut self.scratch);
                let evictions: Vec<Eviction> = self.scratch.drain(..).collect();
                for ev in evictions {
                    self.on_dram_eviction(ev);
                }
            }
        }
        false
    }

    /// Replays a full trace (read requests only), returning the stats.
    pub fn run(&mut self, reqs: &[Request]) -> FlashStats {
        for r in reqs {
            if r.op == Op::Get {
                self.request(r.id, r.size);
            }
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::{SizeModel, WorkloadSpec};

    fn cdn_trace(seed: u64) -> cache_trace::Trace {
        let mut spec = WorkloadSpec::zipf("cdn", 60_000, 6000, 0.8, seed);
        spec.one_hit_fraction = 0.3;
        spec.size_model = SizeModel::Uniform {
            min: 100,
            max: 2000,
        };
        spec.generate()
    }

    fn run(kind: AdmissionKind, dram_fraction: f64, trace: &cache_trace::Trace) -> FlashStats {
        let cfg = FlashCacheConfig {
            total_bytes: trace.footprint_bytes() / 10,
            dram_fraction,
            admission: kind,
        };
        let mut c = FlashCache::new(cfg).unwrap();
        c.run(&trace.requests)
    }

    #[test]
    fn write_all_writes_every_missed_byte_once() {
        let trace = cdn_trace(1);
        let s = run(AdmissionKind::WriteAll, 0.01, &trace);
        assert!(s.flash_write_bytes > 0);
        assert!(s.miss_ratio() > 0.0 && s.miss_ratio() < 1.0);
    }

    #[test]
    fn admission_reduces_write_bytes() {
        let trace = cdn_trace(2);
        let all = run(AdmissionKind::WriteAll, 0.01, &trace);
        for kind in [
            AdmissionKind::Probabilistic(0.2),
            AdmissionKind::SmallFifoTwoAccess,
            AdmissionKind::BloomSecondAccess,
        ] {
            let s = run(kind, 0.01, &trace);
            assert!(
                s.flash_write_bytes < all.flash_write_bytes,
                "{kind:?}: {} vs write-all {}",
                s.flash_write_bytes,
                all.flash_write_bytes
            );
        }
    }

    #[test]
    fn s3fifo_admission_beats_probabilistic_on_both_axes() {
        // Fig. 9's headline: the small-FIFO filter reduces both writes and
        // miss ratio relative to probabilistic admission.
        let trace = cdn_trace(3);
        let prob = run(AdmissionKind::Probabilistic(0.2), 0.01, &trace);
        let s3 = run(AdmissionKind::SmallFifoTwoAccess, 0.01, &trace);
        assert!(
            s3.miss_ratio() <= prob.miss_ratio() + 0.02,
            "S3 MR {:.4} vs prob MR {:.4}",
            s3.miss_ratio(),
            prob.miss_ratio()
        );
    }

    #[test]
    fn tiny_dram_does_not_break_anything() {
        let trace = cdn_trace(4);
        for kind in [
            AdmissionKind::SmallFifoTwoAccess,
            AdmissionKind::FlashieldLike,
        ] {
            let s = run(kind, 0.001, &trace);
            assert!(s.requests == 60_000);
            assert!(s.miss_ratio() <= 1.0);
        }
    }

    #[test]
    fn flashield_with_large_dram_filters_writes() {
        let trace = cdn_trace(5);
        let all = run(AdmissionKind::WriteAll, 0.1, &trace);
        let fl = run(AdmissionKind::FlashieldLike, 0.1, &trace);
        assert!(
            fl.flash_write_bytes < all.flash_write_bytes,
            "Flashield {} vs write-all {}",
            fl.flash_write_bytes,
            all.flash_write_bytes
        );
    }

    #[test]
    fn rejects_bad_config() {
        assert!(FlashCache::new(FlashCacheConfig {
            total_bytes: 0,
            dram_fraction: 0.1,
            admission: AdmissionKind::WriteAll,
        })
        .is_err());
        assert!(FlashCache::new(FlashCacheConfig {
            total_bytes: 100,
            dram_fraction: 1.5,
            admission: AdmissionKind::WriteAll,
        })
        .is_err());
    }

    #[test]
    fn stats_normalization() {
        let mut s = FlashStats::default();
        s.flash_write_bytes = 500;
        assert!((s.normalized_write_bytes(1000) - 0.5).abs() < 1e-12);
        assert_eq!(s.normalized_write_bytes(0), 0.0);
    }
}

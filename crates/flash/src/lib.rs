//! Two-tier DRAM + flash cache with pluggable admission (§5.4, Fig. 9).
//!
//! Flash endurance is the motivating constraint: every byte written to
//! flash costs lifetime, so production flash caches put an *admission
//! policy* between DRAM and flash. §5.4's finding: using S3-FIFO's small
//! FIFO queue as the DRAM tier — admitting only objects requested at least
//! twice in DRAM (or found in the ghost) — reduces *both* flash writes and
//! miss ratio, while probabilistic admission and Flashield's ML model trade
//! one for the other.
//!
//! - [`tier::FlashTier`] — the flash device model: FIFO eviction (what
//!   production flash caches use for sequential writes), write accounting.
//! - [`device::FlashDevice`] — the fallible device abstraction;
//!   [`device::FaultyDevice`] wraps any device in deterministic fault
//!   injection (`cache-faults`).
//! - [`admission`] — the §5.4 admission policies: write-all, probabilistic
//!   (p = 0.2), Bloom-filter, Flashield-like online linear model, and the
//!   S3-FIFO small-queue rule.
//! - [`cache::FlashCache`] — the orchestrator that replays a trace through
//!   DRAM tier + admission + flash tier and reports Fig. 9's two metrics;
//!   generic over the device, with retry/backoff and an error-budget
//!   degradation ladder (see DESIGN.md's "Failure model").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod device;
pub mod tier;

pub use admission::{AdmissionKind, AdmissionPolicy};
pub use cache::{FlashCache, FlashCacheConfig, FlashStats, ResilienceConfig};
pub use device::{FaultyDevice, FlashDevice};
pub use tier::FlashTier;

//! Fixture-based pinning of the lint rule catalog.
//!
//! Each file under `fixtures/` exhibits one rule's violations (and the
//! matching clean form) at known line numbers; these tests assert the exact
//! `(rule, line)` sets so any drift in a rule's trigger conditions fails
//! loudly. The final test lints the real workspace from source — the same
//! gate `ci.sh` runs through the `cache_lint` binary — so the suite cannot
//! pass while the tree itself is dirty.
//!
//! The fixtures are plain text to the linter and are never compiled (they
//! live outside any `src/`, so neither cargo nor clippy sees them).

use cache_lint::allow::{filter, parse_allowlist};
use cache_lint::lexer::scan;
use cache_lint::rules::{lint_file, Diagnostic};
use std::path::Path;

/// Lints one fixture file end-to-end (rules + inline-waiver filtering, no
/// central allowlist) and returns the surviving diagnostics.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    // Invariant: fixtures ship with the crate, next to this test.
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let s = scan(&text);
    let raw = lint_file(name, &s, false);
    filter(raw, &[(name.to_string(), s)], &[], "lint.allow")
}

fn rule_lines(diags: &[Diagnostic]) -> Vec<(&str, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn safety_fixture_flags_exactly_the_unannotated_unsafe() {
    let d = lint_fixture("safety.rs");
    assert_eq!(rule_lines(&d), vec![("L-SAFETY", 10)], "{d:#?}");
    assert!(d[0].msg.contains("SAFETY"), "{}", d[0].msg);
}

#[test]
fn ordering_fixture_flags_missing_comment_unnamed_ordering_and_seqcst() {
    let d = lint_fixture("ordering.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-ORDERING", 10), ("L-ORDERING", 16), ("L-SEQCST", 21)],
        "{d:#?}"
    );
    // The fn-level diagnostic anchors at the declaration, the per-op one at
    // the call, and the SeqCst one at the store.
    assert!(d[0].msg.contains("no `// ORDERING:`"), "{}", d[0].msg);
    assert!(d[1].msg.contains("explicitly named"), "{}", d[1].msg);
    assert!(d[2].msg.contains("SeqCst"), "{}", d[2].msg);
}

#[test]
fn lock_order_fixture_flags_the_undocumented_double_acquire() {
    let d = lint_fixture("lock_order.rs");
    assert_eq!(rule_lines(&d), vec![("L-LOCK-ORDER", 11)], "{d:#?}");
    assert!(d[0].msg.contains("2 locks"), "{}", d[0].msg);
}

#[test]
fn panic_fixture_flags_unwrap_and_bare_expect_but_not_tests() {
    let d = lint_fixture("panic.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-PANIC", 5), ("L-PANIC", 9)],
        "{d:#?}"
    );
}

#[test]
fn waiver_fixture_suppresses_reasoned_and_flags_reasonless() {
    let d = lint_fixture("waiver.rs");
    assert_eq!(rule_lines(&d), vec![("L-WAIVER", 10)], "{d:#?}");
}

#[test]
fn central_allowlist_suppresses_and_stale_entries_surface() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("panic.rs");
    // Invariant: fixtures ship with the crate, next to this test.
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let s = scan(&text);
    let raw = lint_file("panic.rs", &s, false);
    let (entries, parse_diags) = parse_allowlist(
        "# demo\n\
         L-PANIC  panic.rs  x.unwrap()\n\
         L-PANIC  panic.rs  no_such_line_anywhere\n",
        "lint.allow",
    );
    assert!(parse_diags.is_empty(), "{parse_diags:#?}");
    let out = filter(raw, &[("panic.rs".to_string(), s)], &entries, "lint.allow");
    // The unwrap at line 5 is waived by the first entry; the bare expect at
    // line 9 survives; the second entry matches nothing and is stale.
    assert_eq!(
        rule_lines(&out),
        vec![("L-PANIC", 9), ("L-ALLOW-STALE", 3)],
        "{out:#?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    // Invariant: the test binary always runs inside the workspace checkout.
    let report = cache_lint::walk::lint_workspace(&root).expect("workspace readable");
    assert!(
        report.files_scanned > 50,
        "workspace walk found only {} files — discovery broke",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must stay lint-clean; run `cache_lint lint` for details:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Fixture-based pinning of the lint rule catalog.
//!
//! Each file under `fixtures/` exhibits one rule's violations (and the
//! matching clean form) at known line numbers; these tests assert the exact
//! `(rule, line)` sets so any drift in a rule's trigger conditions fails
//! loudly. The final test lints the real workspace from source — the same
//! gate `ci.sh` runs through the `cache_lint` binary — so the suite cannot
//! pass while the tree itself is dirty.
//!
//! The fixtures are plain text to the linter and are never compiled (they
//! live outside any `src/`, so neither cargo nor clippy sees them).

use cache_lint::allow::{filter, parse_allowlist};
use cache_lint::lexer::scan;
use cache_lint::rules::{lint_file, Diagnostic};
use std::path::Path;

/// Lints one fixture file end-to-end (per-file rules + the interprocedural
/// lock analysis + inline-waiver filtering, no central allowlist) and
/// returns the surviving diagnostics, sorted like the workspace driver.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    // Invariant: fixtures ship with the crate, next to this test.
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let s = scan(&text);
    let mut raw = lint_file(name, &s, false);
    let files = vec![(name.to_string(), s)];
    raw.extend(cache_lint::locks::analyze(&files));
    let mut out = filter(raw, &files, &[], "lint.allow");
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

fn rule_lines(diags: &[Diagnostic]) -> Vec<(&str, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn safety_fixture_flags_exactly_the_unannotated_unsafe() {
    let d = lint_fixture("safety.rs");
    assert_eq!(rule_lines(&d), vec![("L-SAFETY", 10)], "{d:#?}");
    assert!(d[0].msg.contains("SAFETY"), "{}", d[0].msg);
}

#[test]
fn ordering_fixture_flags_missing_comment_unnamed_ordering_and_seqcst() {
    let d = lint_fixture("ordering.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-ORDERING", 10), ("L-ORDERING", 16), ("L-SEQCST", 21)],
        "{d:#?}"
    );
    // The fn-level diagnostic anchors at the declaration, the per-op one at
    // the call, and the SeqCst one at the store.
    assert!(d[0].msg.contains("no `// ORDERING:`"), "{}", d[0].msg);
    assert!(d[1].msg.contains("explicitly named"), "{}", d[1].msg);
    assert!(d[2].msg.contains("SeqCst"), "{}", d[2].msg);
}

#[test]
fn lock_order_fixture_flags_the_undocumented_double_acquire() {
    let d = lint_fixture("lock_order.rs");
    assert_eq!(rule_lines(&d), vec![("L-LOCK-ORDER", 11)], "{d:#?}");
    assert!(d[0].msg.contains("2 locks"), "{}", d[0].msg);
}

#[test]
fn panic_fixture_flags_unwrap_and_bare_expect_but_not_tests() {
    let d = lint_fixture("panic.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-PANIC", 5), ("L-PANIC", 9)],
        "{d:#?}"
    );
}

#[test]
fn waiver_fixture_suppresses_reasoned_and_flags_reasonless() {
    let d = lint_fixture("waiver.rs");
    assert_eq!(rule_lines(&d), vec![("L-WAIVER", 10)], "{d:#?}");
}

#[test]
fn deadlock_clock_fixture_refinds_the_shipped_bug() {
    // The acceptance fixture: the pre-fix `ConcurrentClock::insert` shape
    // must draw BOTH the guard-lifetime diagnostic (the scrutinee temp is
    // the mechanism) and the deadlock cycle (the consequence), and the
    // cycle witness must name both paths.
    let d = lint_fixture("deadlock_clock.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-GUARD-LIFETIME", 27), ("L-DEADLOCK", 28)],
        "{d:#?}"
    );
    assert!(d[0].msg.contains("if let"), "{}", d[0].msg);
    let cycle = &d[1].msg;
    assert!(cycle.contains("index -> occupant -> index"), "{cycle}");
    assert!(cycle.contains("`ConcurrentClock::insert`"), "{cycle}");
    assert!(cycle.contains("`ConcurrentClock::claim_slot`"), "{cycle}");
}

#[test]
fn abba_two_fns_fixture_flags_exactly_one_cycle() {
    let d = lint_fixture("abba_two_fns.rs");
    assert_eq!(rule_lines(&d), vec![("L-DEADLOCK", 10)], "{d:#?}");
    assert!(d[0].msg.contains("a -> b -> a"), "{}", d[0].msg);
    assert!(d[0].msg.contains("`forward`"), "{}", d[0].msg);
    assert!(d[0].msg.contains("`backward`"), "{}", d[0].msg);
}

#[test]
fn abba_via_call_fixture_composes_the_cycle_through_the_call_graph() {
    let d = lint_fixture("abba_via_call.rs");
    assert_eq!(rule_lines(&d), vec![("L-DEADLOCK", 26)], "{d:#?}");
    assert!(d[0].msg.contains("data -> meta -> data"), "{}", d[0].msg);
    // The meta -> data leg exists only through refresh's call to reload;
    // the witness must say so.
    assert!(d[0].msg.contains("via call to `self.reload`"), "{}", d[0].msg);
}

#[test]
fn guard_lifetime_fixture_flags_scrutinee_temps_but_not_the_copy_out() {
    let d = lint_fixture("guard_lifetime.rs");
    assert_eq!(
        rule_lines(&d),
        vec![("L-GUARD-LIFETIME", 14), ("L-GUARD-LIFETIME", 21)],
        "{d:#?}"
    );
    assert!(d[0].msg.contains("if let"), "{}", d[0].msg);
    assert!(d[1].msg.contains("match"), "{}", d[1].msg);
}

#[test]
fn drop_release_fixture_is_completely_clean() {
    let d = lint_fixture("drop_release.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn deadlock_waiver_fixture_honors_reasons_and_flags_their_absence() {
    let d = lint_fixture("deadlock_waiver.rs");
    assert_eq!(rule_lines(&d), vec![("L-WAIVER", 27)], "{d:#?}");
    assert!(d[0].msg.contains("no reason"), "{}", d[0].msg);
}

#[test]
fn lock_decl_fixture_pins_every_declaration_failure_mode() {
    let d = lint_fixture("lock_decl.rs");
    assert_eq!(
        rule_lines(&d),
        vec![
            ("L-LOCK-DECL", 8),   // unparseable legacy prose
            ("L-LOCK-ORDER", 10), // ...which leaves the fn undeclared
            ("L-LOCK-DECL", 18),  // disjoint contradicted by an overlap
            ("L-LOCK-DECL", 27),  // observed a -> c not covered
            ("L-LOCK-DECL", 31),  // declared c -> b never observed
            ("L-LOCK-DECL", 38),  // disjoint + ordered pairs contradiction
            ("L-LOCK-DECL", 42),  // ...and the disjoint claim is also false
        ],
        "{d:#?}"
    );
    assert!(d[0].msg.contains("unparseable"), "{}", d[0].msg);
    assert!(d[2].msg.contains("disjoint"), "{}", d[2].msg);
    assert!(d[3].msg.contains("not covered"), "{}", d[3].msg);
    assert!(d[4].msg.contains("stale"), "{}", d[4].msg);
}

#[test]
fn central_allowlist_suppresses_and_stale_entries_surface() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("panic.rs");
    // Invariant: fixtures ship with the crate, next to this test.
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let s = scan(&text);
    let raw = lint_file("panic.rs", &s, false);
    let (entries, parse_diags) = parse_allowlist(
        "# demo\n\
         L-PANIC  panic.rs  x.unwrap()\n\
         L-PANIC  panic.rs  no_such_line_anywhere\n",
        "lint.allow",
    );
    assert!(parse_diags.is_empty(), "{parse_diags:#?}");
    let out = filter(raw, &[("panic.rs".to_string(), s)], &entries, "lint.allow");
    // The unwrap at line 5 is waived by the first entry; the bare expect at
    // line 9 survives; the second entry matches nothing and is stale.
    assert_eq!(
        rule_lines(&out),
        vec![("L-PANIC", 9), ("L-ALLOW-STALE", 3)],
        "{out:#?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    // Invariant: the test binary always runs inside the workspace checkout.
    let report = cache_lint::walk::lint_workspace(&root).expect("workspace readable");
    assert!(
        report.files_scanned > 50,
        "workspace walk found only {} files — discovery broke",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must stay lint-clean; run `cache_lint lint` for details:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! CI gate binary for the cache-lint crate.
//!
//! ```text
//! cache_lint [--root DIR] [lint|loom|all]
//! ```
//!
//! - `lint`: run the workspace lint pass (per-file rules plus the
//!   interprocedural lock analysis), then the fixture self-check: every
//!   fixtured rule must still fire on its fixture — a rule whose count
//!   drops to 0 has been silently disabled, which is a gate failure.
//!   Nonzero exit on any surviving diagnostic.
//! - `loom`: exhaustively explore the loom-lite models (correct variants
//!   must be clean, planted mutants must be caught) and enforce the
//!   interleaving-coverage floor.
//! - `all` (default): both.
//!
//! Each phase prints its wall-clock time; `ci.sh` enforces the combined
//! budget.

use cache_lint::loomlite::{Config, Report};
use cache_lint::models::drain::{drain_race_scenario, drain_two_workers_scenario, DrainVariant};
use cache_lint::models::incbuf::{incbuf_contention_scenario, incbuf_handoff_scenario, IncVariant};
use cache_lint::models::ring::{ring_scenario, RingOrderings};
use cache_lint::models::shard::{ghost_overwrite_scenario, promote_insert_scenario, GhostOrder};
use cache_lint::walk::lint_workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Interleaving-coverage floor the loom gate enforces (per acceptance
/// criteria: >= 10k distinct schedules across the clean model runs).
const MIN_SCHEDULES: usize = 10_000;

fn run_lint(root: &Path) -> bool {
    let report = match lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            println!("cache-lint: FAIL — cannot walk workspace at {}: {e}", root.display());
            return false;
        }
    };
    println!(
        "cache-lint: scanned {} files, {} diagnostic(s)",
        report.files_scanned,
        report.diagnostics.len()
    );
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!("cache-lint: workspace clean");
        true
    } else {
        println!("cache-lint: FAIL");
        false
    }
}

/// Every rule exercised by a file under `crates/lint/fixtures/`. If the
/// whole fixture battery produces zero diagnostics for one of these, the
/// rule has stopped firing and the lint gate is no longer guarding it.
const FIXTURED_RULES: [&str; 9] = [
    "L-SAFETY",
    "L-ORDERING",
    "L-SEQCST",
    "L-PANIC",
    "L-WAIVER",
    "L-LOCK-ORDER",
    "L-LOCK-DECL",
    "L-GUARD-LIFETIME",
    "L-DEADLOCK",
];

/// Self-check: lints every fixture (per-file rules + the lock analysis,
/// inline waivers applied, no allowlist — the same path `tests/fixtures.rs`
/// pins line-exactly) and fails if any fixtured rule's count is 0.
fn run_fixture_check(root: &Path) -> bool {
    use std::collections::BTreeMap;
    let dir = root.join("crates/lint/fixtures");
    let mut counts: BTreeMap<&str, usize> = FIXTURED_RULES.iter().map(|r| (*r, 0)).collect();
    let mut files = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            println!("cache-lint: FAIL — cannot read {}: {e}", dir.display());
            return false;
        }
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let name = p.file_name().unwrap_or_default().to_string_lossy().to_string();
        let text = match std::fs::read_to_string(&p) {
            Ok(t) => t,
            Err(e) => {
                println!("cache-lint: FAIL — cannot read {}: {e}", p.display());
                return false;
            }
        };
        files += 1;
        let s = cache_lint::lexer::scan(&text);
        let mut raw = cache_lint::rules::lint_file(&name, &s, false);
        let fileset = vec![(name.clone(), s)];
        raw.extend(cache_lint::locks::analyze(&fileset));
        for d in cache_lint::allow::filter(raw, &fileset, &[], "lint.allow") {
            if let Some(c) = counts.get_mut(d.rule) {
                *c += 1;
            }
        }
    }
    let summary = counts
        .iter()
        .map(|(r, c)| format!("{r}={c}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("cache-lint: fixture self-check over {files} fixtures: {summary}");
    let dead: Vec<&str> = counts.iter().filter(|(_, c)| **c == 0).map(|(r, _)| *r).collect();
    if dead.is_empty() {
        true
    } else {
        println!(
            "cache-lint: FAIL — fixtured rule(s) no longer fire: {} (rule disabled or fixture drifted)",
            dead.join(", ")
        );
        false
    }
}

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_schedules: 200_000,
        stop_on_failure: true,
    }
}

fn expect_clean(name: &str, r: &Report, schedules: &mut usize, ok: &mut bool) {
    *schedules += r.schedules;
    if !r.failures.is_empty() {
        println!(
            "loom-lite: {name}: FAIL — {}",
            r.failures[0].messages.join("; ")
        );
        println!("           schedule: {:?}", r.failures[0].schedule);
        *ok = false;
    } else if !r.exhausted {
        println!(
            "loom-lite: {name}: FAIL — schedule cap hit at {} without exhausting",
            r.schedules
        );
        *ok = false;
    } else {
        println!(
            "loom-lite: {name}: ok ({} schedules, exhaustive at bound 2)",
            r.schedules
        );
    }
}

fn expect_caught(name: &str, r: &Report, ok: &mut bool) {
    if r.failures.is_empty() {
        println!(
            "loom-lite: {name}: FAIL — planted bug NOT caught ({} schedules)",
            r.schedules
        );
        *ok = false;
    } else {
        println!(
            "loom-lite: {name}: mutant caught after {} schedules ({})",
            r.schedules,
            r.failures[0]
                .messages
                .first()
                .map(String::as_str)
                .unwrap_or("")
        );
    }
}

fn run_loom() -> bool {
    let mut ok = true;
    let mut schedules = 0usize;

    // Clean models: every bounded-preemption interleaving must hold the
    // invariants and be free of data races.
    expect_clean(
        "ring 2p/1c",
        &cfg().explore(ring_scenario(2, 2, 2, 3, RingOrderings::correct())),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "ring 1p/2-pop",
        &cfg().explore(ring_scenario(2, 1, 3, 2, RingOrderings::correct())),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "shard evict-vs-overwrite",
        &cfg().explore(ghost_overwrite_scenario(GhostOrder::AfterRemove)),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "shard promote-vs-insert",
        &cfg().explore(promote_insert_scenario(GhostOrder::AfterRemove)),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "drain shutdown-vs-request",
        &cfg().explore(drain_race_scenario(DrainVariant::Correct)),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "drain shutdown-vs-2-workers",
        &cfg().explore(drain_two_workers_scenario(DrainVariant::Correct)),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "incbuf slot handoff",
        &cfg().explore(incbuf_handoff_scenario(IncVariant::Correct)),
        &mut schedules,
        &mut ok,
    );
    expect_clean(
        "incbuf claim contention",
        &cfg().explore(incbuf_contention_scenario(IncVariant::Correct)),
        &mut schedules,
        &mut ok,
    );

    // Mutation smoke: the checker must catch each planted bug, or its
    // green runs above mean nothing.
    expect_caught(
        "ring mutant (relaxed pop seq load)",
        &cfg().explore(ring_scenario(2, 1, 1, 2, RingOrderings::broken_pop_seq_load())),
        &mut ok,
    );
    expect_caught(
        "ring mutant (relaxed publish)",
        &cfg().explore(ring_scenario(2, 1, 1, 2, RingOrderings::broken_push_publish())),
        &mut ok,
    );
    expect_caught(
        "shard mutant (ghost before remove)",
        &cfg().explore(ghost_overwrite_scenario(GhostOrder::BeforeRemove)),
        &mut ok,
    );
    expect_caught(
        "drain mutant (check before join)",
        &cfg().explore(drain_race_scenario(DrainVariant::CheckThenJoin)),
        &mut ok,
    );
    expect_caught(
        "drain mutant (relaxed completion)",
        &cfg().explore(drain_race_scenario(DrainVariant::RelaxedComplete)),
        &mut ok,
    );
    expect_caught(
        "incbuf mutant (relaxed claim)",
        &cfg().explore(incbuf_handoff_scenario(IncVariant::RelaxedClaim)),
        &mut ok,
    );
    expect_caught(
        "incbuf mutant (relaxed release)",
        &cfg().explore(incbuf_handoff_scenario(IncVariant::RelaxedRelease)),
        &mut ok,
    );

    println!(
        "loom-lite: {schedules} distinct schedules across clean models (floor {MIN_SCHEDULES})"
    );
    if schedules < MIN_SCHEDULES {
        println!("loom-lite: FAIL — coverage below floor");
        ok = false;
    }
    if ok {
        println!("loom-lite: all models ok");
    }
    ok
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut mode = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
            }
            "lint" | "loom" | "all" => mode = a,
            other => {
                eprintln!("cache_lint: unknown argument `{other}`");
                eprintln!("usage: cache_lint [--root DIR] [lint|loom|all]");
                return ExitCode::from(2);
            }
        }
    }
    let mut ok = true;
    let started = std::time::Instant::now();
    let timed = |name: &str, f: &mut dyn FnMut() -> bool, ok: &mut bool| {
        let t = std::time::Instant::now();
        *ok &= f();
        println!("cache_lint: phase {name} took {:.2}s", t.elapsed().as_secs_f64());
    };
    if mode == "lint" || mode == "all" {
        timed("lint", &mut || run_lint(&root), &mut ok);
        timed("fixtures", &mut || run_fixture_check(&root), &mut ok);
    }
    if mode == "loom" || mode == "all" {
        timed("loom", &mut || run_loom(), &mut ok);
    }
    println!("cache_lint: total {:.2}s", started.elapsed().as_secs_f64());
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `cache-lint` — repo-specific static analysis for the S3-FIFO
//! reproduction.
//!
//! The paper's headline claim is that lock-free FIFO queues beat lock-based
//! LRU under concurrency, which makes the correctness of the workspace's
//! `unsafe` ring and sharded cache code part of the reproduction itself.
//! Clippy and the statistical torture harness cannot prove the absence of
//! races, so this crate adds two complementary engines, both hard CI gates:
//!
//! 1. **Workspace lint pass** ([`walk::lint_workspace`]): a hand-rolled
//!    Rust scanner (no `syn`, same offline-shim philosophy as
//!    `crates/shims`) that walks `crates/*/src/**/*.rs` and enforces the
//!    annotation contract — `SAFETY:` on every `unsafe`, `ORDERING:` on
//!    every function doing atomics (with SeqCst called out by name), and a
//!    real gate on `unwrap`/`expect` in non-test code. See [`rules`] for
//!    the catalog and [`allow`] for the waiver syntax. On top of the
//!    per-file rules, [`locks`] runs a whole-workspace *interprocedural*
//!    lock-order analysis: guard live ranges from Rust 2021
//!    temporary-lifetime rules, a call graph composing acquisition
//!    sequences across functions, machine-checked `LOCK-ORDER:`
//!    declarations, and global deadlock-cycle detection (`L-DEADLOCK`,
//!    `L-GUARD-LIFETIME`, `L-LOCK-ORDER`, `L-LOCK-DECL`).
//!
//! 2. **loom-lite** ([`loomlite`]): a minimal deterministic-scheduler model
//!    of threads + atomics + mutexes that exhaustively explores
//!    bounded-preemption interleavings (CHESS-style, default bound 2) of
//!    small models of the Vyukov MPMC ring and the concurrent S3-FIFO
//!    shard eviction path ([`models`]), with a vector-clock happens-before
//!    race detector so that *memory-ordering* mistakes — not just
//!    lost-update interleavings — are caught.
//!
//! The `cache_lint` binary wires both into `ci.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod locks;
pub mod loomlite;
pub mod models;
pub mod rules;
pub mod walk;

//! The deterministic scheduler.
//!
//! Model threads are real OS threads, but at most one runs at a time: every
//! shared-memory operation funnels through [`Scheduler::yield_point`],
//! which hands the single "turn" to the thread chosen by the current
//! schedule. A schedule is the sequence of choices made at *branch points*
//! (yield points where more than one thread is runnable); the explorer in
//! [`super::explore`] replays a chosen prefix and extends it
//! depth-first, which makes runs exactly reproducible.
//!
//! Failure handling never panics across the scheduler: invariant
//! violations, detected data races, replay divergence, and deadlocks all
//! record a message and flip `aborting`, after which every yield point
//! becomes a no-op and all threads free-run (serialized only by the plain
//! mutexes inside the model primitives) to termination, so a failing run
//! still joins cleanly.

use super::sync::{Ord, VClock};
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model context. Panics outside a model run.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        // Invariant: model primitives are only constructed/used inside a
        // loomlite model body, which installs the context.
        let (s, t) = b.as_ref().expect("loomlite primitive used outside a model run");
        f(s, *t)
    })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Runnable,
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    status: Status,
    clock: VClock,
}

struct AtomicMeta {
    value: u64,
    sync: VClock,
}

struct CellMeta {
    label: &'static str,
    last_write: Option<(usize, VClock)>,
    reads_since_write: Vec<(usize, VClock)>,
}

struct MutexMeta {
    sync: VClock,
}

/// A branch point discovered past the replayed prefix.
#[derive(Debug, Clone)]
pub(crate) struct PathEntry {
    /// Thread chosen at this branch point.
    pub chosen: usize,
    /// Unexplored alternatives, each within the preemption budget.
    pub alts: Vec<usize>,
}

struct SchedState {
    threads: Vec<ThreadInfo>,
    current: usize,
    /// Index of the next branch point (forced moves don't count).
    step: usize,
    replay: Vec<usize>,
    fresh: Vec<PathEntry>,
    trace: Vec<usize>,
    preemptions: usize,
    bound: usize,
    failures: Vec<String>,
    aborting: bool,
    atomics: Vec<AtomicMeta>,
    cells: Vec<CellMeta>,
    mutexes: Vec<MutexMeta>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
}

/// The per-run deterministic scheduler. See the module docs.
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Everything the explorer needs from one completed run.
pub(crate) struct RunOutcome {
    pub fresh: Vec<PathEntry>,
    pub trace: Vec<usize>,
    pub failures: Vec<String>,
}

impl Scheduler {
    pub(crate) fn new(bound: usize, replay: Vec<usize>) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                threads: vec![ThreadInfo {
                    status: Status::Runnable,
                    clock: {
                        let mut c = VClock::default();
                        c.inc(0);
                        c
                    },
                }],
                current: 0,
                step: 0,
                replay,
                fresh: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                bound,
                failures: Vec::new(),
                aborting: false,
                atomics: Vec::new(),
                cells: Vec::new(),
                mutexes: Vec::new(),
                real_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Launches the model body as thread 0 of this scheduler.
    pub(crate) fn start(self: &Arc<Self>, body: Arc<dyn Fn() + Send + Sync>) {
        let sched = Arc::clone(self);
        let h = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), 0)));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));
            if let Err(p) = result {
                sched.record_failure(0, &format!("model thread 0 panicked: {}", panic_msg(&p)));
            }
            sched.finish_thread(0);
            CTX.with(|c| *c.borrow_mut() = None);
        });
        self.lock().real_handles.push(h);
    }

    /// Waits for every model thread to terminate and returns the outcome.
    // LOCK-ORDER: disjoint; only the single scheduler state mutex —
    // `self.lock()` is a method call the analysis composes, acquired and
    // released sequentially (never while already held, never nested).
    pub(crate) fn wait(self: &Arc<Self>) -> RunOutcome {
        loop {
            let h = {
                let mut st = self.lock();
                st.real_handles.pop()
            };
            match h {
                Some(h) => {
                    if h.join().is_err() {
                        // The wrapper catches panics; reaching here means the
                        // TLS teardown itself failed, which we surface too.
                        self.lock()
                            .failures
                            .push("model thread terminated abnormally".into());
                    }
                }
                None => break,
            }
        }
        let st = self.lock();
        RunOutcome {
            fresh: st.fresh.clone(),
            trace: st.trace.clone(),
            failures: st.failures.clone(),
        }
    }

    /// Records a failure and aborts the run (all threads free-run to exit).
    pub(crate) fn record_failure(&self, tid: usize, msg: &str) {
        let mut st = self.lock();
        let note = format!("[thread {tid}] {msg}");
        st.failures.push(note);
        st.aborting = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Spawns a model thread; returns its tid. The child inherits the
    /// parent's clock (spawn is a happens-before edge) and becomes runnable
    /// at the next branch point (spawn itself yields).
    // LOCK-ORDER: disjoint; only the single scheduler state mutex, taken
    // twice in sequence (registration, then handle bookkeeping) — never
    // nested.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: usize,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let tid = {
            let mut st = self.lock();
            let mut clock = st.threads[parent].clock.clone();
            let tid = st.threads.len();
            clock.inc(tid);
            st.threads.push(ThreadInfo {
                status: Status::Runnable,
                clock,
            });
            tid
        };
        let sched = Arc::clone(self);
        let h = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
            sched.wait_for_turn(tid);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            if let Err(p) = result {
                sched.record_failure(tid, &format!("panicked: {}", panic_msg(&p)));
            }
            sched.finish_thread(tid);
            CTX.with(|c| *c.borrow_mut() = None);
        });
        self.lock().real_handles.push(h);
        // Decision point: the child may be scheduled before the parent
        // continues.
        self.yield_point(parent);
        tid
    }

    /// Blocks the caller until `child` finishes, then joins its clock.
    pub(crate) fn join_thread(&self, child: usize, tid: usize) {
        loop {
            let mut st = self.lock();
            if st.aborting {
                return;
            }
            if st.threads[child].status == Status::Finished {
                let child_clock = st.threads[child].clock.clone();
                st.threads[tid].clock.join(&child_clock);
                return;
            }
            st.threads[tid].status = Status::BlockedJoin(child);
            self.schedule(&mut st, tid);
            drop(st);
            self.cv.notify_all();
            self.wait_for_turn(tid);
        }
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(tid) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if !st.aborting {
            self.schedule(&mut st, tid);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn wait_for_turn(&self, tid: usize) {
        let mut st = self.lock();
        while st.current != tid && !st.aborting {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One yield point: possibly hand the turn to another thread.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        debug_assert_eq!(st.current, tid, "yield from a non-current thread");
        st.threads[tid].clock.inc(tid);
        self.schedule(&mut st, tid);
        let must_wait = st.current != tid && !st.aborting;
        drop(st);
        if must_wait {
            self.cv.notify_all();
            self.wait_for_turn(tid);
        }
    }

    /// Picks the next thread to run. `prev` is the thread giving up the
    /// turn (it may or may not still be runnable).
    fn schedule(&self, st: &mut SchedState, prev: usize) {
        if st.aborting {
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.current = usize::MAX; // run complete
                return;
            }
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::BlockedJoin(_)))
                .map(|(i, t)| format!("thread {i} {:?}", t.status))
                .collect();
            st.failures
                .push(format!("deadlock: no runnable threads ({})", blocked.join(", ")));
            st.aborting = true;
            return;
        }
        let prev_runnable = runnable.contains(&prev);
        let chosen = if runnable.len() == 1 {
            runnable[0] // forced move: not a branch point
        } else {
            let step = st.step;
            st.step += 1;
            if step < st.replay.len() {
                let c = st.replay[step];
                if !runnable.contains(&c) {
                    st.failures.push(format!(
                        "schedule replay diverged at branch {step}: thread {c} not runnable"
                    ));
                    st.aborting = true;
                    return;
                }
                c
            } else {
                // Fresh branch point: default to continuing the current
                // thread (a context switch away from a runnable thread is a
                // preemption and costs budget).
                let default = if prev_runnable { prev } else { runnable[0] };
                let budget_left = st.preemptions < st.bound;
                let alts: Vec<usize> = runnable
                    .iter()
                    .copied()
                    .filter(|&t| t != default)
                    .filter(|_| !prev_runnable || budget_left)
                    .collect();
                st.fresh.push(PathEntry {
                    chosen: default,
                    alts,
                });
                default
            }
        };
        if runnable.len() > 1 {
            st.trace.push(chosen);
        }
        if prev_runnable && chosen != prev {
            st.preemptions += 1;
        }
        st.current = chosen;
    }

    // ---- model-primitive hooks -------------------------------------------

    pub(crate) fn register_atomic(&self, _label: &'static str, value: u64) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicMeta {
            value,
            sync: VClock::default(),
        });
        st.atomics.len() - 1
    }

    pub(crate) fn register_cell(&self, label: &'static str) -> usize {
        let mut st = self.lock();
        st.cells.push(CellMeta {
            label,
            last_write: None,
            reads_since_write: Vec::new(),
        });
        st.cells.len() - 1
    }

    pub(crate) fn register_mutex(&self, _label: &'static str) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexMeta {
            sync: VClock::default(),
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn atomic_load(&self, id: usize, tid: usize, ord: Ord) -> u64 {
        self.yield_point(tid);
        let mut st = self.lock();
        if ord.acquires() {
            let sync = st.atomics[id].sync.clone();
            st.threads[tid].clock.join(&sync);
        }
        st.atomics[id].value
    }

    pub(crate) fn atomic_store(&self, id: usize, tid: usize, value: u64, ord: Ord) {
        self.yield_point(tid);
        let mut st = self.lock();
        if ord.releases() {
            st.atomics[id].sync = st.threads[tid].clock.clone();
        } else {
            // A plain relaxed store breaks the release sequence: a later
            // acquire load of this value synchronizes with nothing.
            st.atomics[id].sync = VClock::default();
        }
        st.atomics[id].value = value;
    }

    pub(crate) fn atomic_rmw(
        &self,
        id: usize,
        tid: usize,
        ord: Ord,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> u64 {
        self.yield_point(tid);
        let mut st = self.lock();
        if ord.acquires() {
            let sync = st.atomics[id].sync.clone();
            st.threads[tid].clock.join(&sync);
        }
        let prev = st.atomics[id].value;
        st.atomics[id].value = f(prev);
        if ord.releases() {
            // An RMW continues the release sequence: join rather than reset.
            let clock = st.threads[tid].clock.clone();
            st.atomics[id].sync.join(&clock);
        }
        prev
    }

    pub(crate) fn atomic_cas(
        &self,
        id: usize,
        tid: usize,
        current: u64,
        new: u64,
        success: Ord,
        failure: Ord,
    ) -> Result<u64, u64> {
        self.yield_point(tid);
        let mut st = self.lock();
        let prev = st.atomics[id].value;
        if prev == current {
            if success.acquires() {
                let sync = st.atomics[id].sync.clone();
                st.threads[tid].clock.join(&sync);
            }
            st.atomics[id].value = new;
            if success.releases() {
                let clock = st.threads[tid].clock.clone();
                st.atomics[id].sync.join(&clock);
            }
            Ok(prev)
        } else {
            if failure.acquires() {
                let sync = st.atomics[id].sync.clone();
                st.threads[tid].clock.join(&sync);
            }
            Err(prev)
        }
    }

    /// Race-checks a cell access; `write` selects write vs read semantics.
    pub(crate) fn cell_access(&self, id: usize, tid: usize, write: bool) {
        self.yield_point(tid);
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        let me = st.threads[tid].clock.clone();
        let mut race: Option<String> = None;
        {
            let cell = &st.cells[id];
            if let Some((w, wclock)) = &cell.last_write {
                if *w != tid && !me.has_seen(*w, wclock) {
                    race = Some(format!(
                        "data race on cell `{}`: {} by thread {tid} not ordered after write by thread {w}",
                        cell.label,
                        if write { "write" } else { "read" },
                    ));
                }
            }
            if write && race.is_none() {
                for (r, rclock) in &cell.reads_since_write {
                    if *r != tid && !me.has_seen(*r, rclock) {
                        race = Some(format!(
                            "data race on cell `{}`: write by thread {tid} not ordered after read by thread {r}",
                            cell.label,
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(msg) = race {
            st.failures.push(format!("[thread {tid}] {msg}"));
            st.aborting = true;
            drop(st);
            self.cv.notify_all();
            return;
        }
        let cell = &mut st.cells[id];
        if write {
            cell.last_write = Some((tid, me));
            cell.reads_since_write.clear();
        } else {
            cell.reads_since_write.push((tid, me));
        }
    }

    pub(crate) fn mutex_enter(&self, id: usize, tid: usize) {
        self.yield_point(tid);
        let mut st = self.lock();
        let sync = st.mutexes[id].sync.clone();
        st.threads[tid].clock.join(&sync);
    }

    pub(crate) fn mutex_exit(&self, id: usize, tid: usize) {
        let mut st = self.lock();
        st.mutexes[id].sync = st.threads[tid].clock.clone();
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

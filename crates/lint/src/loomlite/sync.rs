//! Model synchronization primitives: vector clocks, atomics, cells, and
//! atomic-section mutexes.
//!
//! Every shared-memory operation is one *yield point* — a place where the
//! deterministic scheduler may switch threads — and carries happens-before
//! bookkeeping:
//!
//! - [`MAtomic`] models a `u64`-valued atomic. `Acquire` loads join the
//!   atomic's sync clock into the thread clock, `Release` stores publish the
//!   thread clock, `Relaxed` stores *reset* the sync clock (a plain relaxed
//!   store breaks the release sequence, exactly like C++11), and relaxed
//!   RMWs keep it (RMWs continue the sequence). `SeqCst` is modeled as
//!   `AcqRel`; the SeqCst total order itself is not modeled, which only
//!   makes the detector more conservative about what synchronizes.
//! - [`MCell`] models plain non-atomic memory (an `UnsafeCell` payload in
//!   the real code). Reads and writes are checked against a vector-clock
//!   happens-before race detector: touching a cell that was last written by
//!   a thread whose write is not ordered before the access is reported as a
//!   data race — this is what catches *memory-ordering* bugs (e.g. a
//!   `Relaxed` sequence load) that pure interleaving search cannot see.
//! - [`MMutex`] models a lock as an atomic critical section: `with` is a
//!   single yield point that acquires, runs the closure, and releases. Real
//!   critical sections in the modeled code are short map operations, so
//!   collapsing them loses no interesting interleavings while keeping the
//!   schedule space small.

use super::sched::{with_ctx, Scheduler};
use std::sync::Arc;
use std::sync::Mutex;

/// Memory ordering for model atomics, mirroring `std::sync::atomic::Ordering`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ord {
    /// No synchronization.
    Relaxed,
    /// Load side of release/acquire.
    Acquire,
    /// Store side of release/acquire.
    Release,
    /// Both sides (RMW).
    AcqRel,
    /// Modeled as AcqRel (the SC total order is not modeled).
    SeqCst,
}

impl Ord {
    pub(crate) fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }
    pub(crate) fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }
}

/// A vector clock over model-thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(pub(crate) Vec<u32>);

impl VClock {
    /// Component for thread `tid` (0 when never observed).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn inc(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// True when the event `(tid, clock)` happened before an observer with
    /// clock `self` — i.e. the observer has seen the event.
    pub(crate) fn has_seen(&self, event_tid: usize, event: &VClock) -> bool {
        self.get(event_tid) >= event.get(event_tid)
    }
}

/// A model atomic holding a `u64` (use it for `usize`/`u8` state too).
pub struct MAtomic {
    sched: Arc<Scheduler>,
    id: usize,
}

impl MAtomic {
    /// Registers a new atomic with initial `value`. Must be called from
    /// inside a running model.
    pub fn new(label: &'static str, value: u64) -> Self {
        let sched = with_ctx(|s, _| s.clone());
        let id = sched.register_atomic(label, value);
        MAtomic { sched, id }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ord) -> u64 {
        let tid = with_ctx(|_, t| t);
        self.sched.atomic_load(self.id, tid, ord)
    }

    /// Atomic store.
    pub fn store(&self, value: u64, ord: Ord) {
        let tid = with_ctx(|_, t| t);
        self.sched.atomic_store(self.id, tid, value, ord);
    }

    /// Atomic fetch-add (wrapping), returns the previous value.
    pub fn fetch_add(&self, delta: u64, ord: Ord) -> u64 {
        let tid = with_ctx(|_, t| t);
        self.sched
            .atomic_rmw(self.id, tid, ord, &mut |v| v.wrapping_add(delta))
    }

    /// Atomic fetch-sub (wrapping), returns the previous value.
    pub fn fetch_sub(&self, delta: u64, ord: Ord) -> u64 {
        let tid = with_ctx(|_, t| t);
        self.sched
            .atomic_rmw(self.id, tid, ord, &mut |v| v.wrapping_sub(delta))
    }

    /// Compare-exchange; returns `Ok(current)` on success, `Err(actual)`
    /// otherwise. Spurious failures (`compare_exchange_weak`) are not
    /// modeled — they only add schedules equivalent to a retry.
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ord,
        failure: Ord,
    ) -> Result<u64, u64> {
        let tid = with_ctx(|_, t| t);
        self.sched
            .atomic_cas(self.id, tid, current, new, success, failure)
    }
}

/// A model non-atomic memory cell (the `UnsafeCell` payload in real code),
/// race-checked on every access.
pub struct MCell<T> {
    sched: Arc<Scheduler>,
    id: usize,
    val: Mutex<T>,
}

impl<T: Clone> MCell<T> {
    /// Registers a new cell. Must be called from inside a running model.
    pub fn new(label: &'static str, value: T) -> Self {
        let sched = with_ctx(|s, _| s.clone());
        let id = sched.register_cell(label);
        MCell {
            sched,
            id,
            val: Mutex::new(value),
        }
    }

    /// Race-checked read.
    pub fn read(&self) -> T {
        let tid = with_ctx(|_, t| t);
        self.sched.cell_access(self.id, tid, false);
        self.val
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Race-checked write.
    pub fn write(&self, value: T) {
        let tid = with_ctx(|_, t| t);
        self.sched.cell_access(self.id, tid, true);
        *self
            .val
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }

    /// Race-checked read-modify-write in one yield point (models a move out
    /// of an `UnsafeCell`, e.g. `assume_init_read` + overwrite).
    pub fn replace(&self, value: T) -> T {
        let tid = with_ctx(|_, t| t);
        self.sched.cell_access(self.id, tid, true);
        std::mem::replace(
            &mut self
                .val
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            value,
        )
    }
}

/// A model mutex whose critical sections are atomic (single yield point).
pub struct MMutex<T> {
    sched: Arc<Scheduler>,
    id: usize,
    val: Mutex<T>,
}

impl<T> MMutex<T> {
    /// Registers a new mutex. Must be called from inside a running model.
    pub fn new(label: &'static str, value: T) -> Self {
        let sched = with_ctx(|s, _| s.clone());
        let id = sched.register_mutex(label);
        MMutex {
            sched,
            id,
            val: Mutex::new(value),
        }
    }

    /// Runs `f` under the lock as one atomic step: one yield point, then
    /// acquire (joins the lock's release clock), critical section, release
    /// (publishes this thread's clock). `f` must not touch other model
    /// state (it would not be interleaved, so races there would be missed).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let tid = with_ctx(|_, t| t);
        self.sched.mutex_enter(self.id, tid);
        let r = f(&mut self
            .val
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner));
        self.sched.mutex_exit(self.id, tid);
        r
    }
}

//! loom-lite: a minimal deterministic-scheduler model checker.
//!
//! Inspired by `loom` (shim-style API: model atomics, spawn, yield points)
//! and CHESS (iterative context bounding): the explorer enumerates every
//! thread interleaving of a small closed model whose *preemption count*
//! does not exceed a bound (default 2). Empirically almost all concurrency
//! bugs manifest with very few preemptions, so a bound-2 search is both
//! exhaustive in a meaningful sense and small enough to run in CI.
//!
//! What it checks:
//! - whatever invariants the model body asserts via [`check`];
//! - data races: non-atomic model cells ([`sync::MCell`]) are guarded by a
//!   vector-clock happens-before detector, so weakening an ordering (say,
//!   the Vyukov ring's `Acquire` sequence load to `Relaxed`) is caught even
//!   though a serialized interleaving search alone would never see it;
//! - deadlocks (no runnable thread) and model-thread panics.
//!
//! ```
//! use cache_lint::loomlite::{self, sync::{MAtomic, Ord}};
//! use std::sync::Arc;
//!
//! let report = loomlite::Config::default().explore(|| {
//!     let a = Arc::new(MAtomic::new("a", 0));
//!     let b = a.clone();
//!     let h = loomlite::spawn(move || { b.store(1, Ord::Release); });
//!     let _ = a.load(Ord::Acquire);
//!     h.join();
//! });
//! assert!(report.failures.is_empty());
//! assert!(report.schedules >= 2); // both orders of store vs load
//! ```

pub mod sched;
pub mod sync;

use sched::{PathEntry, Scheduler};
use std::sync::Arc;

/// Spawns a model thread. Must be called from inside a model body.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (sched, tid) = sched::with_ctx(|s, t| (s.clone(), t));
    let child = sched.spawn_thread(tid, Box::new(f));
    JoinHandle { sched, child }
}

/// Handle to a spawned model thread.
pub struct JoinHandle {
    sched: Arc<Scheduler>,
    child: usize,
}

impl JoinHandle {
    /// Blocks (in model time) until the thread finishes; establishes a
    /// happens-before edge from everything the child did.
    pub fn join(self) {
        let tid = sched::with_ctx(|_, t| t);
        self.sched.join_thread(self.child, tid);
    }
}

/// Records a model invariant violation (and aborts the schedule) when
/// `cond` is false. Use instead of `assert!` inside model bodies so the
/// failing schedule is reported with its trace.
pub fn check(cond: bool, msg: &str) {
    if !cond {
        let (sched, tid) = sched::with_ctx(|s, t| (s.clone(), t));
        sched.record_failure(tid, &format!("invariant violated: {msg}"));
    }
}

/// One failing schedule.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Branch-point choices that reproduce the failure.
    pub schedule: Vec<usize>,
    /// Failure messages recorded during that run.
    pub messages: Vec<String>,
}

/// Exploration result.
#[derive(Debug)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Failures found (first-failure only when `stop_on_failure`).
    pub failures: Vec<Failure>,
    /// True when the whole bounded schedule space was covered.
    pub exhausted: bool,
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum preemptive context switches per schedule (CHESS bound).
    pub preemption_bound: usize,
    /// Hard cap on schedules (safety valve; `exhausted` is false when hit).
    pub max_schedules: usize,
    /// Stop at the first failing schedule.
    pub stop_on_failure: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 100_000,
            stop_on_failure: true,
        }
    }
}

impl Config {
    /// Exhaustively explores bounded-preemption schedules of `body`.
    ///
    /// `body` runs once per schedule as model thread 0; it may spawn
    /// threads, use the model primitives, and call [`check`]. It must be
    /// deterministic apart from scheduling (no wall clock, no OS RNG).
    pub fn explore(&self, body: impl Fn() + Send + Sync + 'static) -> Report {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let mut path: Vec<PathEntry> = Vec::new();
        let mut schedules = 0usize;
        let mut failures = Vec::new();
        let mut exhausted = false;
        loop {
            let replay: Vec<usize> = path.iter().map(|e| e.chosen).collect();
            let sched = Scheduler::new(self.preemption_bound, replay);
            sched.start(Arc::clone(&body));
            let outcome = sched.wait();
            schedules += 1;
            path.extend(outcome.fresh);
            if !outcome.failures.is_empty() {
                failures.push(Failure {
                    schedule: outcome.trace,
                    messages: outcome.failures,
                });
                if self.stop_on_failure {
                    break;
                }
            }
            if schedules >= self.max_schedules {
                break;
            }
            // Depth-first backtrack to the deepest branch with an untried
            // alternative.
            loop {
                match path.last_mut() {
                    None => {
                        exhausted = true;
                        break;
                    }
                    Some(e) => {
                        if let Some(alt) = e.alts.pop() {
                            e.chosen = alt;
                            break;
                        }
                        path.pop();
                    }
                }
            }
            if exhausted {
                break;
            }
        }
        Report {
            schedules,
            failures,
            exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{MAtomic, MCell, MMutex, Ord};
    use super::*;
    use std::sync::Arc;

    // ORDERING: Relaxed throughout — single thread, program order only.
    #[test]
    fn single_thread_has_one_schedule() {
        let r = Config::default().explore(|| {
            let a = MAtomic::new("a", 0);
            a.store(1, Ord::Relaxed);
            check(a.load(Ord::Relaxed) == 1, "store visible to same thread");
        });
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.schedules, 1);
        assert!(r.exhausted);
    }

    // ORDERING: deliberately Relaxed — the bug under test is the lost
    // update from a non-atomic read-modify-write split, not visibility.
    #[test]
    fn two_threads_interleave_and_lost_update_is_found() {
        // Classic non-atomic increment: load, add, store. Some schedule
        // loses an update; the final check must fail in that schedule.
        let r = Config {
            stop_on_failure: true,
            ..Config::default()
        }
        .explore(|| {
            let a = Arc::new(MAtomic::new("ctr", 0));
            let b = a.clone();
            let h = spawn(move || {
                let v = b.load(Ord::Relaxed);
                b.store(v + 1, Ord::Relaxed);
            });
            let v = a.load(Ord::Relaxed);
            a.store(v + 1, Ord::Relaxed);
            h.join();
            check(a.load(Ord::Relaxed) == 2, "increments must not be lost");
        });
        assert!(!r.failures.is_empty(), "explorer missed the lost update");
        assert!(r.failures[0].messages[0].contains("increments must not be lost"));
    }

    // ORDERING: Relaxed RMWs — atomicity, not ordering, is under test.
    #[test]
    fn atomic_rmw_never_loses_updates() {
        let r = Config::default().explore(|| {
            let a = Arc::new(MAtomic::new("ctr", 0));
            let b = a.clone();
            let h = spawn(move || {
                b.fetch_add(1, Ord::Relaxed);
            });
            a.fetch_add(1, Ord::Relaxed);
            h.join();
            check(a.load(Ord::Relaxed) == 2, "fetch_add is atomic");
        });
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.exhausted);
        assert!(r.schedules >= 3, "expected >=3 schedules, got {}", r.schedules);
    }

    // ORDERING: the canonical Release-store / Acquire-load publish pair.
    #[test]
    fn release_acquire_publish_is_race_free() {
        let r = Config::default().explore(|| {
            let data = Arc::new(MCell::new("payload", 0u64));
            let flag = Arc::new(MAtomic::new("flag", 0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = spawn(move || {
                d2.write(42);
                f2.store(1, Ord::Release);
            });
            if flag.load(Ord::Acquire) == 1 {
                check(data.read() == 42, "published value visible");
            }
            h.join();
        });
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.exhausted);
    }

    // ORDERING: intentionally wrong (Relaxed publish) — must be flagged.
    #[test]
    fn relaxed_publish_is_a_data_race() {
        // Same shape, but the flag store is Relaxed: reading the payload
        // after seeing flag==1 is a race the vector clocks must flag.
        let r = Config::default().explore(|| {
            let data = Arc::new(MCell::new("payload", 0u64));
            let flag = Arc::new(MAtomic::new("flag", 0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = spawn(move || {
                d2.write(42);
                f2.store(1, Ord::Relaxed); // BUG: should be Release
            });
            if flag.load(Ord::Acquire) == 1 {
                let _ = data.read();
            }
            h.join();
        });
        assert!(!r.failures.is_empty(), "race not detected");
        let msg = &r.failures[0].messages[0];
        assert!(msg.contains("data race"), "unexpected failure: {msg}");
        assert!(msg.contains("payload"), "race should name the cell: {msg}");
    }

    // ORDERING: intentionally wrong (Relaxed consume load) — must be flagged.
    #[test]
    fn relaxed_consume_side_is_a_data_race_too() {
        let r = Config::default().explore(|| {
            let data = Arc::new(MCell::new("payload", 0u64));
            let flag = Arc::new(MAtomic::new("flag", 0));
            let (d2, f2) = (data.clone(), flag.clone());
            let h = spawn(move || {
                d2.write(42);
                f2.store(1, Ord::Release);
            });
            if flag.load(Ord::Relaxed) == 1 {
                // BUG: Relaxed load
                let _ = data.read();
            }
            h.join();
        });
        assert!(!r.failures.is_empty(), "race not detected");
    }

    #[test]
    fn mutex_sections_are_ordered() {
        let r = Config::default().explore(|| {
            let m = Arc::new(MMutex::new("m", 0u64));
            let c = Arc::new(MCell::new("side", 0u64));
            let (m2, _c2) = (m.clone(), c.clone());
            let h = spawn(move || {
                m2.with(|v| {
                    *v += 1;
                });
            });
            m.with(|v| {
                *v += 1;
            });
            h.join();
            check(m.with(|v| *v) == 2, "mutex increments serialize");
            c.write(1); // post-join write, no race
        });
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    // ORDERING: AcqRel RMWs so both increments are globally visible at join.
    #[test]
    fn deadlock_free_join_of_three_threads() {
        let r = Config {
            preemption_bound: 1,
            ..Config::default()
        }
        .explore(|| {
            let a = Arc::new(MAtomic::new("x", 0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = a.clone();
                    spawn(move || {
                        a.fetch_add(1, Ord::AcqRel);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            check(a.load(Ord::Acquire) == 2, "both increments landed");
        });
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.exhausted);
    }

    // ORDERING: Relaxed — this test only counts schedules.
    #[test]
    fn preemption_bound_widens_coverage() {
        let count = |bound| {
            Config {
                preemption_bound: bound,
                ..Config::default()
            }
            .explore(|| {
                let a = Arc::new(MAtomic::new("x", 0));
                let b = a.clone();
                let h = spawn(move || {
                    for _ in 0..3 {
                        b.fetch_add(1, Ord::Relaxed);
                    }
                });
                for _ in 0..3 {
                    a.fetch_add(1, Ord::Relaxed);
                }
                h.join();
            })
            .schedules
        };
        let (c0, c1, c2) = (count(0), count(1), count(2));
        assert!(c0 < c1 && c1 < c2, "bounds: {c0} {c1} {c2}");
        assert_eq!(c0, 1, "bound 0 = run to completion, no preemptions");
    }
}

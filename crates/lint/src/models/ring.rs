//! A loom-lite model of the Vyukov MPMC ring (`crates/ds/src/ring.rs`).
//!
//! The model mirrors the real `MpmcRing` operation for operation: the same
//! sequence-number protocol, the same per-operation memory orderings, and a
//! [`sync::MCell`] standing in for the `UnsafeCell<MaybeUninit<T>>` payload
//! slot, so the happens-before race detector checks exactly the obligation
//! the real code's `SAFETY:` comments claim: payload accesses are ordered
//! by the seq protocol's Release/Acquire edges, never by luck.
//!
//! [`RingOrderings`] parameterizes the four orderings so mutation-smoke
//! tests can weaken one (the way a refactor might) and prove the explorer
//! catches it.

use crate::loomlite::sync::{MAtomic, MCell, Ord};
use crate::loomlite::{self, check};
use std::sync::Arc;

/// The four orderings of the ring protocol.
#[derive(Debug, Clone, Copy)]
pub struct RingOrderings {
    /// `slot.seq.load` in `push` (real code: Acquire).
    pub push_seq_load: Ord,
    /// `slot.seq.store` publishing data in `push` (real code: Release).
    pub push_seq_store: Ord,
    /// `slot.seq.load` in `pop` (real code: Acquire).
    pub pop_seq_load: Ord,
    /// `slot.seq.store` recycling the slot in `pop` (real code: Release).
    pub pop_seq_store: Ord,
}

impl RingOrderings {
    /// The orderings the real `MpmcRing` uses.
    pub fn correct() -> Self {
        RingOrderings {
            push_seq_load: Ord::Acquire,
            push_seq_store: Ord::Release,
            pop_seq_load: Ord::Acquire,
            pop_seq_store: Ord::Release,
        }
    }

    /// Mutant: the dequeuer's sequence load is demoted to Relaxed, so the
    /// payload read is no longer ordered after the enqueuer's write.
    pub fn broken_pop_seq_load() -> Self {
        RingOrderings {
            pop_seq_load: Ord::Relaxed,
            ..Self::correct()
        }
    }

    /// Mutant: the enqueuer publishes with a Relaxed store, so a dequeuer
    /// can see the new sequence number before the payload write.
    pub fn broken_push_publish() -> Self {
        RingOrderings {
            push_seq_store: Ord::Relaxed,
            ..Self::correct()
        }
    }
}

/// Model of `MpmcRing<u64>`; `0` in a slot models "uninitialized".
pub struct ModelRing {
    slots: Vec<Slot>,
    mask: u64,
    enqueue_pos: MAtomic,
    dequeue_pos: MAtomic,
    ord: RingOrderings,
}

struct Slot {
    seq: MAtomic,
    val: MCell<u64>,
}

/// Slot labels must be `&'static`; the model ring is at most 4 slots.
const SLOT_LABELS: [&str; 4] = ["slot0", "slot1", "slot2", "slot3"];

impl ModelRing {
    /// Creates a ring with `cap` slots (power of two, at most 4).
    pub fn new(cap: usize, ord: RingOrderings) -> Self {
        assert!(cap.is_power_of_two() && cap <= 4);
        ModelRing {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: MAtomic::new("seq", i as u64),
                    val: MCell::new(SLOT_LABELS[i], 0),
                })
                .collect(),
            mask: cap as u64 - 1,
            enqueue_pos: MAtomic::new("enqueue_pos", 0),
            dequeue_pos: MAtomic::new("dequeue_pos", 0),
            ord,
        }
    }

    /// Mirrors `MpmcRing::push`. Bounded retries keep every schedule finite.
    // ORDERING: parameterized via `RingOrderings`; `correct()` mirrors the
    // real ring — Acquire seq load pairs with the dequeuer's Release store,
    // Release publish pairs with the dequeuer's Acquire load, pos CASes are
    // Relaxed (the seq protocol carries all payload ordering).
    pub fn push(&self, val: u64) -> Result<(), u64> {
        let mut pos = self.enqueue_pos.load(Ord::Relaxed);
        for _ in 0..16 {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(self.ord.push_seq_load);
            let diff = seq as i64 - pos as i64;
            if diff == 0 {
                match self
                    .enqueue_pos
                    .compare_exchange(pos, pos + 1, Ord::Relaxed, Ord::Relaxed)
                {
                    Ok(_) => {
                        slot.val.write(val);
                        slot.seq.store(pos + 1, self.ord.push_seq_store);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                return Err(val);
            } else {
                pos = self.enqueue_pos.load(Ord::Relaxed);
            }
        }
        Err(val)
    }

    /// Mirrors `MpmcRing::pop` (the `replace(0)` models `assume_init_read`
    /// moving the payload out).
    // ORDERING: parameterized via `RingOrderings`; see `push` — the Acquire
    // seq load is what orders the payload read after the enqueuer's write.
    pub fn pop(&self) -> Option<u64> {
        let mut pos = self.dequeue_pos.load(Ord::Relaxed);
        for _ in 0..16 {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(self.ord.pop_seq_load);
            let diff = seq as i64 - (pos + 1) as i64;
            if diff == 0 {
                match self
                    .dequeue_pos
                    .compare_exchange(pos, pos + 1, Ord::Relaxed, Ord::Relaxed)
                {
                    Ok(_) => {
                        let val = slot.val.replace(0);
                        slot.seq.store(pos + self.mask + 1, self.ord.pop_seq_store);
                        return Some(val);
                    }
                    Err(cur) => pos = cur,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ord::Relaxed);
            }
        }
        None
    }
}

/// Closed-model scenario: `producers` threads each push `per_producer`
/// distinct nonzero values into a ring of `cap` slots while one consumer
/// thread pops; the main thread then drains and checks.
///
/// Invariants (checked via [`check`], plus the implicit race detector):
/// - nothing is lost: every successfully pushed value is popped or drained;
/// - nothing is duplicated;
/// - per-producer FIFO: one producer's values come out in push order;
/// - popped values were actually pushed (no torn/uninitialized reads).
// LOCK-ORDER: disjoint; the std mutexes here are result-collection
// bookkeeping only (invisible to the model); each is locked alone, never
// nested with another.
pub fn ring_scenario(
    cap: usize,
    producers: usize,
    per_producer: usize,
    consumer_attempts: usize,
    ord: RingOrderings,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let ring = Arc::new(ModelRing::new(cap, ord));
        // Plain (non-model) shared bookkeeping: accessed only for result
        // collection, invisible to the scheduler and race detector.
        let pushed: Arc<std::sync::Mutex<Vec<u64>>> = Arc::default();
        let popped: Arc<std::sync::Mutex<Vec<u64>>> = Arc::default();

        let mut handles = Vec::new();
        for p in 0..producers {
            let ring = Arc::clone(&ring);
            let pushed = Arc::clone(&pushed);
            handles.push(loomlite::spawn(move || {
                for i in 0..per_producer {
                    let v = (p as u64 + 1) * 100 + i as u64;
                    if ring.push(v).is_ok() {
                        pushed
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(v);
                    }
                }
            }));
        }
        {
            let ring = Arc::clone(&ring);
            let popped = Arc::clone(&popped);
            handles.push(loomlite::spawn(move || {
                for _ in 0..consumer_attempts {
                    if let Some(v) = ring.pop() {
                        popped
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(v);
                    }
                }
            }));
        }
        for h in handles {
            h.join();
        }
        // Drain the remainder single-threaded.
        let mut drained = Vec::new();
        while let Some(v) = ring.pop() {
            drained.push(v);
        }
        let pushed = pushed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let popped = popped
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();

        let mut got: Vec<u64> = popped.iter().chain(drained.iter()).copied().collect();
        check(
            got.iter().all(|v| *v != 0),
            "popped an uninitialized (zero) payload",
        );
        got.sort_unstable();
        let mut want = pushed.clone();
        want.sort_unstable();
        check(
            got == want,
            &format!("push/pop multiset mismatch: pushed {want:?}, got {got:?}"),
        );
        // Per-producer FIFO order over the consumer's pops.
        for p in 0..producers {
            let base = (p as u64 + 1) * 100;
            let seq: Vec<u64> = popped
                .iter()
                .copied()
                .filter(|v| (base..base + 100).contains(v))
                .collect();
            check(
                seq.windows(2).all(|w| w[0] < w[1]),
                &format!("producer {p} values popped out of order: {seq:?}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loomlite::Config;

    #[test]
    fn correct_ring_2p1c_is_clean() {
        let r = Config {
            preemption_bound: 2,
            max_schedules: 20_000,
            stop_on_failure: true,
        }
        .explore(ring_scenario(2, 2, 2, 3, RingOrderings::correct()));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
        assert!(r.schedules > 100, "suspiciously few schedules: {}", r.schedules);
    }

    #[test]
    fn broken_pop_seq_load_is_caught() {
        let r = Config {
            preemption_bound: 2,
            max_schedules: 20_000,
            stop_on_failure: true,
        }
        .explore(ring_scenario(2, 1, 1, 2, RingOrderings::broken_pop_seq_load()));
        assert!(!r.failures.is_empty(), "mutant not caught");
        let msg = r.failures[0].messages.join("; ");
        assert!(msg.contains("data race"), "expected a race, got: {msg}");
    }

    #[test]
    fn broken_push_publish_is_caught() {
        let r = Config {
            preemption_bound: 2,
            max_schedules: 20_000,
            stop_on_failure: true,
        }
        .explore(ring_scenario(2, 1, 1, 2, RingOrderings::broken_push_publish()));
        assert!(!r.failures.is_empty(), "mutant not caught");
        let msg = r.failures[0].messages.join("; ");
        assert!(msg.contains("data race"), "expected a race, got: {msg}");
    }
}

//! loom-lite models of the workspace's lock-free core.
//!
//! Each model is a faithful, down-scaled transcription of a real concurrent
//! structure — same protocol, same per-operation memory orderings — closed
//! over a small bounded workload so the [`crate::loomlite`] explorer can
//! enumerate every bounded-preemption interleaving:
//!
//! - [`ring`]: the Vyukov MPMC ring behind both S3-FIFO queues
//!   (`crates/ds/src/ring.rs`);
//! - [`shard`]: the concurrent S3-FIFO shard insert/evict/remove path
//!   (`crates/concurrent/src/s3fifo.rs`);
//! - [`drain`]: the server's shutdown/drain handshake
//!   (`crates/server/src/drain.rs`);
//! - [`incbuf`]: the batched frequency-increment buffer's slot
//!   claim/release handoff (`crates/concurrent/src/incbuf.rs`).
//!
//! Each model also ships *mutants* — deliberately weakened orderings or
//! reordered steps mirroring plausible refactor mistakes — with tests
//! asserting the explorer catches them. A model checker that has never
//! caught a planted bug proves nothing.

pub mod drain;
pub mod incbuf;
pub mod ring;
pub mod shard;

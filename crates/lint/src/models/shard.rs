//! A loom-lite model of the concurrent S3-FIFO shard
//! (`crates/concurrent/src/s3fifo.rs`): the insert / `evict_small` /
//! `remove_if_current` / promotion path.
//!
//! Down-scaling choices (documented so the model stays honest):
//! - entries are `u64` ids encoding `key * 10 + version`; an overwrite
//!   installs a new id for the key, making the old ring handle *stale*,
//!   exactly like a new `Arc<Entry>` replacing the old one in the `IdMap`;
//! - the per-shard `RwLock<IdMap>` becomes an [`MMutex`] over a tiny array
//!   (read/write distinction collapsed — it only widens the schedule space
//!   the real code already survives via mutual exclusion);
//! - the small/main queues are [`ModelRing`]s with the real orderings;
//! - `s_count`/`m_count`/`evictions`/ghost-insert counters use the real
//!   code's `Relaxed` RMW orderings.
//!
//! [`GhostOrder`] captures the one genuinely order-sensitive step:
//! whether `evict_small` inserts the victim's key into the ghost table
//! before or after `remove_if_current` confirms the handle is still
//! current. `BeforeRemove` mirrors the bug this PR fixes in the real
//! shard: a racing overwrite lets a *live* key leak into the ghost, so a
//! later re-insert is mis-classified as a ghost hit. The pairing invariant
//! `ghost_inserts == successful evictions` catches it.

use super::ring::{ModelRing, RingOrderings};
use crate::loomlite::sync::{MAtomic, MMutex, Ord};
use crate::loomlite::{self, check};
use std::sync::Arc;

/// Where `evict_small` performs the ghost insert relative to
/// `remove_if_current`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhostOrder {
    /// Buggy: ghost-insert first, then try to remove. A concurrent
    /// overwrite makes the removal fail, leaving a live key ghosted.
    BeforeRemove,
    /// Fixed: ghost-insert only after the entry was confirmed current and
    /// removed.
    AfterRemove,
}

/// Keys the model uses (`index` is an array, not a map).
const KEYS: usize = 2;

struct Ghost {
    /// Bitmask of ghosted keys.
    keys: u8,
    /// Total ghost inserts ever performed.
    inserts: u64,
}

/// Model of one `ConcurrentS3Fifo` shard plus its two queues.
pub struct ModelShard {
    /// key -> currently-resident entry id (`None` = absent).
    index: MMutex<[Option<u64>; KEYS]>,
    small: ModelRing,
    main: ModelRing,
    ghost: MMutex<Ghost>,
    /// Per-key frequency bit (the real two-bit counter, down-scaled).
    freq: [MAtomic; KEYS],
    s_count: MAtomic,
    m_count: MAtomic,
    evictions: MAtomic,
    order: GhostOrder,
}

impl ModelShard {
    /// Builds an empty shard model; queues use the real ring orderings.
    pub fn new(order: GhostOrder) -> Self {
        ModelShard {
            index: MMutex::new("index", [None; KEYS]),
            small: ModelRing::new(4, RingOrderings::correct()),
            main: ModelRing::new(4, RingOrderings::correct()),
            ghost: MMutex::new("ghost", Ghost { keys: 0, inserts: 0 }),
            freq: [MAtomic::new("freq0", 0), MAtomic::new("freq1", 0)],
            s_count: MAtomic::new("s_count", 0),
            m_count: MAtomic::new("m_count", 0),
            evictions: MAtomic::new("evictions", 0),
            order,
        }
    }

    fn key_of(id: u64) -> usize {
        (id / 10) as usize
    }

    /// Mirrors `ConcurrentS3Fifo::insert`: install into the index (possibly
    /// overwriting), enqueue on small, bump `s_count`.
    // ORDERING: Relaxed counter RMW, as in the real shard — counts are
    // advisory; residency truth lives in the index and queues.
    pub fn insert(&self, key: usize, version: u64) {
        let id = key as u64 * 10 + version;
        self.index.with(|m| m[key] = Some(id));
        let _ = self.small.push(id);
        self.s_count.fetch_add(1, Ord::Relaxed);
    }

    /// Mirrors a read hit: mark the key's frequency bit (real code:
    /// `Relaxed` on the entry's freq counter).
    // ORDERING: Relaxed — frequency is a heuristic, losing a mark is benign.
    pub fn touch(&self, key: usize) {
        self.freq[key].store(1, Ord::Relaxed);
    }

    /// Mirrors `remove_if_current`: under the shard lock, remove the
    /// mapping only if `id` is still the current entry for its key.
    fn remove_if_current(&self, id: u64) -> bool {
        let key = Self::key_of(id);
        self.index.with(|m| {
            if m[key] == Some(id) {
                m[key] = None;
                true
            } else {
                false
            }
        })
    }

    fn ghost_insert(&self, key: usize) {
        self.ghost.with(|g| {
            g.keys |= 1 << key;
            g.inserts += 1;
        });
    }

    /// Mirrors `evict_small`: pop a victim from the small queue; promote it
    /// to main when its frequency bit is set, otherwise evict it (ghost +
    /// remove-if-current, in the order under test).
    // ORDERING: Relaxed counters, as in the real shard; correctness hangs
    // on the index mutex and the ghost/remove order, which is what the
    // scenarios interrogate.
    pub fn evict_small(&self) -> bool {
        let Some(id) = self.small.pop() else {
            return false;
        };
        self.s_count.fetch_sub(1, Ord::Relaxed);
        let key = Self::key_of(id);
        if self.freq[key].load(Ord::Relaxed) > 0 {
            let _ = self.main.push(id);
            self.m_count.fetch_add(1, Ord::Relaxed);
            return true;
        }
        match self.order {
            GhostOrder::BeforeRemove => {
                // BUG (mirrors the pre-fix real code): the key is ghosted
                // before we know the handle is still current.
                self.ghost_insert(key);
                if self.remove_if_current(id) {
                    self.evictions.fetch_add(1, Ord::Relaxed);
                }
            }
            GhostOrder::AfterRemove => {
                if self.remove_if_current(id) {
                    self.ghost_insert(key);
                    self.evictions.fetch_add(1, Ord::Relaxed);
                }
            }
        }
        true
    }
}

/// Quiescent-state checks shared by the scenarios. Must run after all
/// model threads joined.
// ORDERING: Relaxed loads suffice — joins already ordered every thread's
// writes before this single-threaded epilogue.
fn check_quiescent(sh: &ModelShard) {
    // Ghost/eviction pairing: a key enters the ghost iff its entry was
    // confirmed current and removed. Under `BeforeRemove`, a racing
    // overwrite breaks this (ghost insert lands, removal fails).
    let inserts = sh.ghost.with(|g| g.inserts);
    let evictions = sh.evictions.load(Ord::Relaxed);
    check(
        inserts == evictions,
        &format!(
            "ghost inserts ({inserts}) != successful evictions ({evictions}): \
             a live key leaked into the ghost table"
        ),
    );

    // Accounting: the queue counters must match actual queue contents.
    let s_count = sh.s_count.load(Ord::Relaxed);
    let m_count = sh.m_count.load(Ord::Relaxed);
    let mut small = Vec::new();
    while let Some(id) = sh.small.pop() {
        small.push(id);
    }
    let mut main = Vec::new();
    while let Some(id) = sh.main.pop() {
        main.push(id);
    }
    check(
        s_count == small.len() as u64 && m_count == main.len() as u64,
        &format!(
            "queue accounting drift: s_count={s_count} (ring {}), \
             m_count={m_count} (ring {})",
            small.len(),
            main.len()
        ),
    );

    // No duplicate residency: an entry id sits in at most one queue, once.
    let mut all: Vec<u64> = small.iter().chain(main.iter()).copied().collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    check(n == all.len(), "duplicate residency: an entry id appears twice");

    // No lost elements: every current (in-index) entry is resident in a
    // queue. Stale ids in queues are fine (dead handles); current ids
    // missing from every queue are not.
    let current = sh.index.with(|m| *m);
    for id in current.iter().flatten() {
        check(
            all.binary_search(id).is_ok(),
            &format!("lost element: current entry {id} resident in no queue"),
        );
    }
}

/// Scenario A — eviction racing an overwrite of the same key:
/// a concurrent `insert(k0)` overwrites while `evict_small` processes the
/// old entry of `k0`. With [`GhostOrder::BeforeRemove`] some schedule
/// ghost-inserts a key whose (new) entry stays live.
pub fn ghost_overwrite_scenario(order: GhostOrder) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sh = Arc::new(ModelShard::new(order));
        sh.insert(0, 1); // single-threaded setup: k0/v1 resident in small
        let s2 = Arc::clone(&sh);
        let h = loomlite::spawn(move || {
            s2.evict_small();
        });
        sh.insert(0, 2); // racing overwrite of k0
        h.join();
        check_quiescent(&sh);
    }
}

/// Scenario B — promotion racing an insert:
/// `k0` is hot (frequency bit set) so the evictor promotes it to main
/// while another thread inserts `k1`. Exercises duplicate-residency,
/// accounting, and lost-element invariants across both queues.
pub fn promote_insert_scenario(order: GhostOrder) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sh = Arc::new(ModelShard::new(order));
        sh.insert(0, 1);
        sh.touch(0); // k0 is hot: eviction will promote it
        let s2 = Arc::clone(&sh);
        let h = loomlite::spawn(move || {
            s2.evict_small();
            s2.evict_small();
        });
        sh.insert(1, 1);
        h.join();
        check_quiescent(&sh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loomlite::Config;

    fn cfg() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            stop_on_failure: true,
        }
    }

    #[test]
    fn fixed_shard_survives_overwrite_race() {
        let r = cfg().explore(ghost_overwrite_scenario(GhostOrder::AfterRemove));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }

    #[test]
    fn ghost_before_remove_mutant_is_caught() {
        let r = cfg().explore(ghost_overwrite_scenario(GhostOrder::BeforeRemove));
        assert!(!r.failures.is_empty(), "planted ghost-order bug not caught");
        let msg = r.failures[0].messages.join("; ");
        assert!(
            msg.contains("ghost"),
            "expected the ghost pairing invariant, got: {msg}"
        );
    }

    #[test]
    fn promotion_race_is_clean() {
        let r = cfg().explore(promote_insert_scenario(GhostOrder::AfterRemove));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }
}

//! A loom-lite model of the server's shutdown/drain handshake
//! (`crates/server/src/drain.rs`): the `DrainGate` flag/counter pair plus
//! the request effects the drainer must observe.
//!
//! Down-scaling choices (documented so the model stays honest):
//! - the in-flight counter and gate flag are [`MAtomic`]s with the real
//!   code's orderings (`SeqCst` on all four accesses — the pair is a
//!   store-buffer/Dekker pattern, see the real module docs);
//! - "the request's effects" collapse to one [`MCell`] counter *per
//!   worker* the worker bumps while it holds the gate — the stand-in for
//!   the writes a live request performs on shard state. Per-worker cells
//!   because concurrent requests do not race each other in the real server
//!   (shard state is internally synchronized); the unsynchronized pair the
//!   model interrogates is worker-vs-drainer. The vector-clock race
//!   detector on those cells is what turns "drain declared too early" into
//!   a caught failure even when the interleaving happens to produce the
//!   right final value;
//! - `await_drained`'s unbounded poll loop becomes a bounded poll
//!   (≤ [`POLLS`] loads). Schedules where the drainer never observes zero
//!   take the real code's timeout path: no teardown, nothing to assert.
//!
//! Two planted mutants mirror the plausible refactor mistakes:
//! [`DrainVariant::CheckThenJoin`] flips the worker's join/check order (the
//! classic hole: the drainer reads zero between the worker's gate check and
//! its increment, declares drained, and tears down under a live request);
//! [`DrainVariant::RelaxedComplete`] weakens the guard-drop decrement to
//! `Relaxed` (the drainer can observe zero without the request's effects
//! being published — the race detector flags its teardown read).

use crate::loomlite::sync::{MAtomic, MCell, Ord};
use crate::loomlite::{self, check};
use std::sync::Arc;

/// Which drain protocol the model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainVariant {
    /// The shipped protocol: join (increment) first, check the gate
    /// second, decrement with `SeqCst` on completion.
    Correct,
    /// Buggy: check the gate first, join second. A drainer can observe
    /// zero in-flight inside the check→join window.
    CheckThenJoin,
    /// Buggy: the completion decrement is `Relaxed`, so observing zero
    /// does not order the request's effects before the teardown.
    RelaxedComplete,
}

/// Bounded stand-in for `await_drained`'s poll loop.
const POLLS: usize = 3;

/// Workers the model supports (one effect cell each).
const WORKERS: usize = 2;

/// The gate pair plus the state live requests mutate.
pub struct ModelDrain {
    closed: MAtomic,
    in_flight: MAtomic,
    /// Per-worker request effects (non-atomic cells, race-checked).
    work: [MCell<u64>; WORKERS],
    variant: DrainVariant,
}

impl ModelDrain {
    /// An open gate with nothing in flight.
    pub fn new(variant: DrainVariant) -> Self {
        ModelDrain {
            closed: MAtomic::new("closed", 0),
            in_flight: MAtomic::new("in_flight", 0),
            work: [MCell::new("work0", 0), MCell::new("work1", 0)],
            variant,
        }
    }

    /// Mirrors `try_enter` + the request body + the guard drop: join,
    /// check the gate (back out if closed), do the request's work, leave.
    /// Returns true when the request was admitted and completed.
    // ORDERING: SeqCst on the join increment, the gate check, and both
    // decrements, as in the real `DrainGate` — counter-write/flag-read
    // here against flag-write/counter-read in the drainer is a
    // store-buffer pattern only a single total order makes safe. The
    // mutants weaken exactly one leg each.
    pub fn request(&self, slot: usize) -> bool {
        match self.variant {
            DrainVariant::CheckThenJoin => {
                // BUG: gate checked before joining — the drainer can see
                // zero in-flight in this window.
                if self.closed.load(Ord::SeqCst) != 0 {
                    return false;
                }
                self.in_flight.fetch_add(1, Ord::SeqCst);
            }
            DrainVariant::Correct | DrainVariant::RelaxedComplete => {
                self.in_flight.fetch_add(1, Ord::SeqCst);
                if self.closed.load(Ord::SeqCst) != 0 {
                    self.in_flight.fetch_sub(1, Ord::SeqCst);
                    return false;
                }
            }
        }
        // The request's effect on shard state.
        let v = self.work[slot].read();
        self.work[slot].write(v + 1);
        match self.variant {
            DrainVariant::RelaxedComplete => {
                // BUG: a relaxed decrement does not publish the work write.
                self.in_flight.fetch_sub(1, Ord::Relaxed);
            }
            _ => {
                self.in_flight.fetch_sub(1, Ord::SeqCst);
            }
        }
        true
    }

    /// Mirrors `close` + a bounded `await_drained` + teardown: close the
    /// gate, poll the counter, and on observing zero read the request
    /// effects (the teardown / final-snapshot access). Returns the
    /// snapshot when drain succeeded within the poll bound.
    // ORDERING: SeqCst flag store and counter loads, as in the real
    // `close`/`await_drained` — the drainer's side of the store-buffer
    // pattern; an observed zero must order every completed request's
    // effects before the teardown read.
    pub fn drain(&self) -> Option<u64> {
        self.closed.store(1, Ord::SeqCst);
        for _ in 0..POLLS {
            if self.in_flight.load(Ord::SeqCst) == 0 {
                return Some(self.work.iter().map(MCell::read).sum());
            }
        }
        None
    }
}

/// Quiescent-state checks. Must run after all model threads joined.
// ORDERING: Relaxed load suffices — joins already ordered every thread's
// writes before this single-threaded epilogue.
fn check_quiescent(d: &ModelDrain, snapshot: Option<u64>) {
    let residue = d.in_flight.load(Ord::Relaxed);
    check(
        residue == 0,
        &format!("in-flight residue after quiescence: {residue}"),
    );
    if let Some(seen) = snapshot {
        let final_work: u64 = d.work.iter().map(MCell::read).sum();
        check(
            seen == final_work,
            &format!(
                "drain declared with a request still running: teardown \
                 snapshot {seen}, final effects {final_work}"
            ),
        );
    }
}

/// Scenario A — shutdown racing one request:
/// a single worker issues one request while the main thread closes the
/// gate and drains. Under [`DrainVariant::CheckThenJoin`] some schedule
/// drains inside the worker's check→join window; under
/// [`DrainVariant::RelaxedComplete`] the teardown read races the work
/// write.
pub fn drain_race_scenario(variant: DrainVariant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let d = Arc::new(ModelDrain::new(variant));
        let d2 = Arc::clone(&d);
        let h = loomlite::spawn(move || {
            d2.request(0);
        });
        let snapshot = d.drain();
        h.join();
        check_quiescent(&d, snapshot);
    }
}

/// Scenario B — shutdown racing two workers:
/// one worker is mid-request while another arrives late (and must bounce
/// whenever the drainer already observed zero). Exercises the no-residue
/// invariant and the snapshot invariant across admit/bounce mixes.
pub fn drain_two_workers_scenario(variant: DrainVariant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let d = Arc::new(ModelDrain::new(variant));
        let d2 = Arc::clone(&d);
        let d3 = Arc::clone(&d);
        let h1 = loomlite::spawn(move || {
            d2.request(0);
        });
        let h2 = loomlite::spawn(move || {
            d3.request(1);
        });
        let snapshot = d.drain();
        h1.join();
        h2.join();
        check_quiescent(&d, snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loomlite::Config;

    fn cfg() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            stop_on_failure: true,
        }
    }

    #[test]
    fn correct_drain_survives_one_worker() {
        let r = cfg().explore(drain_race_scenario(DrainVariant::Correct));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }

    #[test]
    fn correct_drain_survives_two_workers() {
        let r = cfg().explore(drain_two_workers_scenario(DrainVariant::Correct));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }

    #[test]
    fn check_then_join_mutant_is_caught() {
        let r = cfg().explore(drain_race_scenario(DrainVariant::CheckThenJoin));
        assert!(!r.failures.is_empty(), "planted join-order bug not caught");
    }

    #[test]
    fn relaxed_complete_mutant_is_caught() {
        let r = cfg().explore(drain_race_scenario(DrainVariant::RelaxedComplete));
        assert!(
            !r.failures.is_empty(),
            "planted relaxed-decrement bug not caught"
        );
    }
}

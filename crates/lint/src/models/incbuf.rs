//! A loom-lite model of the batched frequency-increment buffer
//! (`crates/concurrent/src/incbuf.rs`): slot claim/release handoff plus the
//! deferred payload the next claimer reads.
//!
//! Down-scaling choices (documented so the model stays honest — note the
//! real slot also carries a per-shard *stats* half, flushed lock-free
//! under the same claim/release discipline modeled here, so one slot with
//! one payload pair still covers the protocol):
//! - one slot with one key/count pair (the real buffer has 32 slots × 8
//!   pairs; the protocol per slot is identical and slots are independent);
//! - the claim flag is an [`MAtomic`] CAS with the real orderings
//!   (`Acquire` on success, `Relaxed` on failure) and a `Release` store on
//!   release — the handoff edge that makes the *plain* payload accesses
//!   safe;
//! - the payload (`keys[i]`/`counts[i]`, atomics accessed `Relaxed` under
//!   the claim in the real code) becomes two [`MCell`]s: relaxed atomics
//!   carry no happens-before of their own, so the claim/release pair is the
//!   only thing ordering one holder's writes before the next holder's
//!   reads, which is precisely what an `MCell`'s vector-clock race detector
//!   verifies;
//! - `FLUSH_THRESHOLD` shrinks to 2 so in-record flushes happen inside the
//!   bounded workload;
//! - the apply sink (shard frequency table behind a lock in the real code)
//!   is an [`MMutex`]'d per-key array;
//! - `drain`'s spin-claim loop is NOT modeled (no spin loops in models):
//!   the model drains only after every worker joined, where one CAS must
//!   succeed, and asserts exactly that.
//!
//! Two planted mutants mirror the plausible refactor mistakes
//! ([`IncVariant::RelaxedClaim`], [`IncVariant::RelaxedRelease`]): each
//! downgrades one leg of the handoff to `Relaxed`, leaving the payload
//! cells racing between consecutive slot holders. The failure mode in the
//! real code is increments misattributed to a stale key — quality rot, not
//! a crash — which is exactly the kind of bug only a model checker's race
//! detector surfaces.
//!
//! The invariant checked at quiescence is *conservation*: every recorded
//! increment lands exactly once — applied through a flush/drain or counted
//! by the direct CAS-failure fallback — never lost, never doubled.

use crate::loomlite::sync::{MAtomic, MCell, MMutex, Ord};
use crate::loomlite::{self, check};
use std::sync::Arc;

/// Which increment-buffer protocol the model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncVariant {
    /// The shipped protocol: `Acquire` claim, `Release` release.
    Correct,
    /// Buggy: the claim CAS succeeds with `Relaxed` — the new holder's
    /// payload reads are not ordered after the previous holder's writes.
    RelaxedClaim,
    /// Buggy: the release store is `Relaxed` — the holder's payload writes
    /// are not published to the next claimer.
    RelaxedRelease,
}

/// Model flush threshold (real code: 32).
const FLUSH_THRESHOLD: u64 = 2;

/// Distinct keys the model workload uses.
const KEYS: usize = 2;

/// One buffer slot plus the apply sink.
pub struct ModelIncBuf {
    claimed: MAtomic,
    /// Pair payload: the key the pending count belongs to.
    key: MCell<u64>,
    /// Pair payload: pending increments (0 = pair free).
    count: MCell<u64>,
    /// Flush/drain sink, per key (the shard frequency table).
    applied: MMutex<[u64; KEYS]>,
    /// CAS-failure fallback sink, per key (`apply_increment` direct path).
    direct: MMutex<[u64; KEYS]>,
    variant: IncVariant,
}

impl ModelIncBuf {
    /// An unclaimed slot with an empty pair.
    pub fn new(variant: IncVariant) -> Self {
        ModelIncBuf {
            claimed: MAtomic::new("claimed", 0),
            key: MCell::new("pair_key", 0),
            count: MCell::new("pair_count", 0),
            applied: MMutex::new("applied", [0; KEYS]),
            direct: MMutex::new("direct", [0; KEYS]),
            variant,
        }
    }

    // ORDERING: Acquire on success (observe the previous holder's payload
    // writes), Relaxed on failure (a failed claim touches no payload) — as
    // in the real `IncBuffers::try_claim`. The RelaxedClaim mutant weakens
    // the success leg.
    fn claim(&self) -> bool {
        let success = match self.variant {
            IncVariant::RelaxedClaim => Ord::Relaxed,
            _ => Ord::Acquire,
        };
        self.claimed.compare_exchange(0, 1, success, Ord::Relaxed).is_ok()
    }

    // ORDERING: Release — publish this holder's payload writes to the next
    // Acquire claimer, as in the real `IncBuffers::release`. The
    // RelaxedRelease mutant weakens it.
    fn release(&self) {
        match self.variant {
            IncVariant::RelaxedRelease => self.claimed.store(0, Ord::Relaxed),
            _ => self.claimed.store(0, Ord::Release),
        }
    }

    /// Applies and clears the pending pair. Caller holds the claim.
    // LOCK-ORDER: count -> key; the pair cells are MCells whose `read()`
    // value-snapshots the analysis treats as acquisitions, exclusive here
    // via the claim flag. The `applied` mutex is a leaf reached through
    // `with(..)` — nothing is acquired while it is held.
    fn flush_claimed(&self) {
        let c = self.count.read();
        if c > 0 {
            let k = self.key.read();
            self.applied.with(|a| a[k as usize] += c);
            self.count.write(0);
        }
    }

    /// Mirrors `IncBuffers::record` for one increment of `k`: claim the
    /// slot (falling back to a direct apply when contended), dedup against
    /// the pending pair, flush on key conflict or threshold, release.
    // LOCK-ORDER: count -> key; the claim flag serializes holders, then the
    // pair-cell reads nest count before key (directly and via
    // `flush_claimed`), then at most one of the leaf sink mutexes
    // (`applied` via flush, or `direct` without the claim) — never both,
    // and nothing is acquired while a sink mutex is held.
    pub fn record(&self, k: u64) {
        if !self.claim() {
            // Real code: apply_increment(key, 1) straight to the shard.
            self.direct.with(|d| d[k as usize] += 1);
            return;
        }
        let cur_count = self.count.read();
        if cur_count == 0 {
            self.key.write(k);
            self.count.write(1);
        } else if self.key.read() == k {
            self.count.write(cur_count + 1);
        } else {
            // Pair holds another key: flush it, then seed ours — the
            // path that reads a *previous holder's* payload.
            self.flush_claimed();
            self.key.write(k);
            self.count.write(1);
        }
        if self.count.read() >= FLUSH_THRESHOLD {
            self.flush_claimed();
        }
        self.release();
    }

    /// Mirrors `IncBuffers::drain`, minus the spin: the model only drains
    /// at quiescence (all workers joined), where the single CAS must win.
    pub fn drain(&self) {
        check(self.claim(), "drain failed to claim a quiescent slot");
        self.flush_claimed();
        self.release();
    }
}

/// Conservation check. Must run after all model threads joined and the
/// buffer drained: each key's applied + direct total equals the number of
/// increments recorded for it.
fn check_conserved(b: &ModelIncBuf, expected: [u64; KEYS]) {
    let applied = b.applied.with(|a| *a);
    let direct = b.direct.with(|d| *d);
    for k in 0..KEYS {
        let got = applied[k] + direct[k];
        check(
            got == expected[k],
            &format!(
                "key {k}: {got} increments landed ({} applied + {} direct), expected {}",
                applied[k], direct[k], expected[k]
            ),
        );
    }
}

/// Scenario A — cross-thread slot handoff:
/// worker 0 records two increments of key 0 (the second crosses
/// [`FLUSH_THRESHOLD`] and flushes in-record), worker 1 records one
/// increment of key 1 (flushing worker 0's pending pair on key conflict
/// when it wins the slot in between). Main drains after both join.
pub fn incbuf_handoff_scenario(variant: IncVariant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let b = Arc::new(ModelIncBuf::new(variant));
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let h1 = loomlite::spawn(move || {
            b1.record(0);
            b1.record(0);
        });
        let h2 = loomlite::spawn(move || {
            b2.record(1);
        });
        h1.join();
        h2.join();
        b.drain();
        check_conserved(&b, [2, 1]);
    }
}

/// Scenario B — symmetric contention:
/// two workers record one increment each of different keys, so every
/// interleaving is a claim race (one of them either falls back to the
/// direct path or flushes the other's pair). Main drains after both join.
pub fn incbuf_contention_scenario(variant: IncVariant) -> impl Fn() + Send + Sync + 'static {
    move || {
        let b = Arc::new(ModelIncBuf::new(variant));
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let h1 = loomlite::spawn(move || {
            b1.record(0);
        });
        let h2 = loomlite::spawn(move || {
            b2.record(1);
        });
        h1.join();
        h2.join();
        b.drain();
        check_conserved(&b, [1, 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loomlite::Config;

    fn cfg() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 50_000,
            stop_on_failure: true,
        }
    }

    #[test]
    fn correct_handoff_is_clean() {
        let r = cfg().explore(incbuf_handoff_scenario(IncVariant::Correct));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }

    #[test]
    fn correct_contention_is_clean() {
        let r = cfg().explore(incbuf_contention_scenario(IncVariant::Correct));
        assert!(r.failures.is_empty(), "{:#?}", r.failures[0]);
        assert!(r.exhausted, "schedule cap hit at {}", r.schedules);
    }

    #[test]
    fn relaxed_claim_mutant_is_caught() {
        let r = cfg().explore(incbuf_handoff_scenario(IncVariant::RelaxedClaim));
        assert!(!r.failures.is_empty(), "planted relaxed-claim bug not caught");
    }

    #[test]
    fn relaxed_release_mutant_is_caught() {
        let r = cfg().explore(incbuf_handoff_scenario(IncVariant::RelaxedRelease));
        assert!(
            !r.failures.is_empty(),
            "planted relaxed-release bug not caught"
        );
    }
}

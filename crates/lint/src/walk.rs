//! Workspace file discovery and the top-level lint driver.

use crate::allow;
use crate::lexer::{scan, Scanned};
use crate::rules::{lint_file, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under the workspace's lintable roots:
/// `crates/*/src/**` plus the root package's `src/**`.
///
/// `crates/shims/**` is intentionally out of scope (vendored stand-ins for
/// external crates, excluded from the cargo workspace too) and the lint
/// fixtures live outside any `src/` so they are never picked up here.
pub fn lintable_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Result of a full workspace lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Files scanned, in path order.
    pub files_scanned: usize,
    /// Diagnostics that survived waivers and the allowlist.
    pub diagnostics: Vec<Diagnostic>,
}

/// Lints the whole workspace rooted at `root`, applying the allowlist at
/// `crates/lint/lint.allow` when present.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let paths = lintable_files(root)?;
    let mut scanned_files: Vec<(String, Scanned)> = Vec::new();
    let mut raw: Vec<Diagnostic> = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(p)?;
        let s = scan(&text);
        let is_bin = rel.contains("/src/bin/");
        raw.extend(lint_file(&rel, &s, is_bin));
        scanned_files.push((rel, s));
    }
    // The interprocedural lock analysis needs every file at once.
    raw.extend(crate::locks::analyze(&scanned_files));
    let allow_path = root.join("crates/lint/lint.allow");
    let allow_origin = "crates/lint/lint.allow";
    let (entries, mut diags) = match fs::read_to_string(&allow_path) {
        Ok(content) => allow::parse_allowlist(&content, allow_origin),
        Err(_) => (Vec::new(), Vec::new()),
    };
    let mut filtered = allow::filter(raw, &scanned_files, &entries, allow_origin);
    diags.append(&mut filtered);
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(LintReport {
        files_scanned: paths.len(),
        diagnostics: diags,
    })
}

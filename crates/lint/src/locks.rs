//! Interprocedural lock-order and guard-lifetime analysis.
//!
//! This module grows the linter beyond per-line lexical rules: it parses
//! every function body (over the stripped code from [`crate::lexer`]),
//! extracts the sequence of lock acquisitions with guard live ranges
//! computed from Rust 2021 temporary-lifetime rules, composes those
//! sequences across a workspace call graph, and checks the resulting
//! global lock-order graph for cycles.
//!
//! Rules emitted here:
//!
//! | id                 | requirement |
//! |--------------------|-------------|
//! | `L-DEADLOCK`       | the global lock-order graph must be acyclic; a cycle reports both witness paths |
//! | `L-GUARD-LIFETIME` | a guard acquired in an `if let`/`while let`/`match` scrutinee must not be live at a second acquisition (the PR 8 `ConcurrentClock` bug shape) |
//! | `L-LOCK-ORDER`     | every function that acquires two or more locks (directly or via calls) carries a machine-checkable `// LOCK-ORDER:` declaration |
//! | `L-LOCK-DECL`      | every `LOCK-ORDER:` declaration parses, matches the observed acquisition order, and names no stale pairs |
//!
//! # Lock identity
//!
//! A lock is named by where it lives, not by which guard variable holds
//! it: `self.index.write()` inside `impl ConcurrentClock` is the lock
//! `ConcurrentClock.index`, whether reached directly, through an alias
//! (`let shards = &self.index; shards[i].read()`), or through an indexing
//! chain. Free-standing locals (`let m = Mutex::new(..)`) get a
//! per-function key and therefore never alias across functions. Two
//! acquisitions of the *same* key never form a graph edge — name-based
//! identity cannot distinguish distinct shard instances, so `a[i]` vs
//! `a[j]` self-edges would be pure noise (the guard-lifetime rule still
//! covers the dangerous same-key re-entry shape).
//!
//! # Guard live ranges (Rust 2021)
//!
//! - `let g = x.lock();` binds the guard until end of scope (passthrough
//!   suffixes `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)` keep
//!   the binding; any other chained call makes it a statement temporary);
//! - `if let` / `match` scrutinee temporaries live to the end of the
//!   whole construct (every arm / the else branch included);
//! - `while let` scrutinee temporaries live through each body iteration;
//! - `for` iterable temporaries live for the whole loop;
//! - plain `if` / `while` condition temporaries drop at the end of the
//!   condition, before the body runs;
//! - `if let Some(g) = x.try_lock()` / `let Ok(g) = x.lock() else` move
//!   the guard out of the temporary into a binding (not a scrutinee
//!   hazard);
//! - `drop(g)` ends a binding's live range early.
//!
//! # Call graph
//!
//! `self.m(..)` resolves to every method `m` on the enclosing impl type
//! (union across impl blocks — trait-method ambiguity is handled by
//! over-approximating with all candidates); `Type::m(..)` / `Self::m(..)`
//! resolve by type name; free `f(..)` resolves within the same file, then
//! the same crate. Everything else is *unresolved and assumed to acquire
//! nothing*. That default is deliberate: the workspace has no callbacks
//! that take locks, std/shim calls dominate the unresolved set, and the
//! complementary `L-LOCK-ORDER` rule forces every multi-lock function to
//! carry a declaration — so a lock-taking callee that escapes resolution
//! still surfaces at its own definition site. Assuming the opposite
//! (unknown calls acquire everything) would drown the graph in false
//! cycles and teach people to waive diagnostics unread. Recursion is cut
//! off by memoized DFS with an on-stack check.
//!
//! # Declarations
//!
//! A comment whose first token is `LOCK-ORDER:` is a checked declaration:
//!
//! ```text
//! // LOCK-ORDER: segments -> index; prose explaining why.
//! // LOCK-ORDER: core -> shards, core -> ghosts
//! // LOCK-ORDER: disjoint; guards are statement temporaries.
//! ```
//!
//! `a -> b -> c` declares the chain (transitively `a` before `c`);
//! `disjoint` declares the function never holds two locks at once. The
//! declaration sits in the comment block above the `fn` (or inside its
//! body). Names match the final field/local segment of the lock key.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Scanned;
use crate::rules::Diagnostic;

/// Lock-acquisition method names (with trailing `(`, matched over tokens).
const ACQUIRE_OPS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Method suffixes that pass a guard through unchanged for binding
/// purposes (`let g = x.lock().unwrap();` still binds the guard).
const PASS_THROUGH: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// One token of a function body: an identifier/number run or punctuation.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Id(String),
    P(char),
}

/// `(token, 1-based source line)`.
type LTok = (Tok, usize);

/// How a live guard came to be live — decides both its lifetime and
/// whether a second acquisition under it is an `L-GUARD-LIFETIME` hit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GKind {
    /// `let g = ...;` binding: lives to scope end or `drop(g)`.
    Bound,
    /// Temporary inside a plain statement: dies at `;`.
    StmtTemp,
    /// Temporary in a plain `if`/`while` condition: dies before the body.
    CondTemp,
    /// Temporary in a `for` iterable: lives through the whole loop.
    IterTemp,
    /// Temporary in an `if let`/`while let`/`match` scrutinee: lives to
    /// the construct's end — the hazardous kind.
    Scrut(&'static str),
}

/// A currently-live guard during the body walk.
#[derive(Debug, Clone)]
struct Guard {
    /// Full lock key, e.g. `ConcurrentClock.index`.
    key: String,
    /// Short name (final segment), e.g. `index`.
    short: String,
    /// Acquisition line.
    line: usize,
    kind: GKind,
    /// Binding name when `kind == Bound` via `let` (for `drop(g)`).
    name: Option<String>,
}

/// A direct acquisition site inside one function.
#[derive(Debug, Clone)]
struct Site {
    key: String,
    short: String,
    line: usize,
    op: String,
}

/// An observed hold-edge: `from` held while `to` is acquired.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    from_short: String,
    to: String,
    to_short: String,
    /// Line of the second acquisition (or of the call that composes it).
    line: usize,
    /// `to` acquired with a blocking op (non-`try_*`) — only blocking
    /// targets can close a deadlock cycle.
    blocking: bool,
    /// Present for composed edges: the callee whose body acquires `to`.
    via: Option<String>,
    /// Inline `lint:allow(L-DEADLOCK)` reason found at the edge site
    /// (`Some("")` = reasonless waiver).
    waiver: Option<String>,
}

/// A call site with the guards held across it.
#[derive(Debug, Clone)]
struct Call {
    callee: Callee,
    line: usize,
    held: Vec<Guard>,
    waiver: Option<String>,
}

#[derive(Debug, Clone)]
enum Callee {
    /// `self.m(..)` — resolves via the enclosing impl type.
    SelfM(String),
    /// `Type::m(..)` or `Self::m(..)`.
    Typed(String, String),
    /// Free `f(..)` — resolves same-file then same-crate.
    Free(String),
}

/// Everything extracted from one function body.
#[derive(Debug)]
struct FnFacts {
    /// File path (workspace-relative).
    path: String,
    /// `Type::name` or bare `name` — for witness reporting.
    qual_name: String,
    /// Plain fn name.
    name: String,
    /// Enclosing impl type, if a method.
    impl_ty: Option<String>,
    decl_line: usize,
    body_end: usize,
    sites: Vec<Site>,
    edges: Vec<Edge>,
    calls: Vec<Call>,
    /// (scrutinee guard, second-acquisition short name, second line).
    lifetime_hits: Vec<(Guard, String, usize)>,
}

/// Runs the whole-workspace lock analysis over scanned files.
///
/// `files` pairs workspace-relative paths (with `/` separators) with
/// their [`Scanned`] contents. Diagnostics come back sorted by
/// `(path, line, rule)`.
pub fn analyze(files: &[(String, Scanned)]) -> Vec<Diagnostic> {
    let mut fns: Vec<FnFacts> = Vec::new();
    for (path, s) in files {
        extract_file(path, s, &mut fns);
    }
    let mut out = check(files, &fns);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    out
}

/// File stem (`clock` from `crates/concurrent/src/clock.rs`) — the
/// qualifier for locks in free functions.
fn file_stem(path: &str) -> String {
    let base = path.rsplit('/').next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base).to_string()
}

/// Crate key for free-fn resolution: `crates/<x>` or `src` (root crate).
fn crate_key(path: &str) -> String {
    let mut it = path.split('/');
    match it.next() {
        Some("crates") => format!("crates/{}", it.next().unwrap_or("")),
        _ => "src".to_string(),
    }
}

/// Inline `lint:allow(L-DEADLOCK)` lookup on `line` or the line above.
/// Returns `Some(reason)` (possibly empty) when a waiver is present.
fn deadlock_waiver(s: &Scanned, line: usize) -> Option<String> {
    for ln in [line, line.saturating_sub(1)] {
        if ln == 0 || ln > s.lines.len() {
            continue;
        }
        let c = &s.lines[ln - 1].comment;
        if let Some(i) = c.find("lint:allow(L-DEADLOCK)") {
            let rest = c[i + "lint:allow(L-DEADLOCK)".len()..]
                .trim_start_matches([':', '-', ' '])
                .trim();
            return Some(rest.to_string());
        }
    }
    None
}

/// Tokenizes the body of one fn span: identifier/number runs and single
/// punctuation chars, each tagged with its source line. Lines belonging
/// to a *nested* fn are skipped (they are walked as their own span).
fn tokenize_fn(s: &Scanned, f: &crate::lexer::FnSpan) -> Vec<LTok> {
    let mut toks = Vec::new();
    for ln in f.decl_line..=f.body_end.min(s.lines.len()) {
        // A line belongs to this fn only when this fn is its innermost
        // enclosing span.
        match s.enclosing_fn(ln) {
            Some(inner) if inner.decl_line == f.decl_line => {}
            _ => continue,
        }
        let code = &s.lines[ln - 1].code;
        let mut chars = code.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_alphanumeric() || c == '_' {
                let mut id = String::new();
                id.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        id.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Id(id), ln));
            } else if !c.is_whitespace() {
                toks.push((Tok::P(c), ln));
            }
        }
    }
    toks
}

/// Optional stop tokens for [`Parser::parse_expr`] (depth-0 only).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Stop {
    /// `{` opens the construct body (`if`, `while`, `for`, `match`).
    Brace,
    /// `,` ends a match-arm expression body.
    Comma,
    /// `else` ends a let-else initializer.
    Else,
    /// `in` ends a `for` pattern.
    In,
}

/// What one `parse_expr` walk covered.
struct Scan {
    /// Token range `[start, end)` of the expression.
    start: usize,
    end: usize,
    /// Any acquisition happened inside.
    had_acq: bool,
    /// `Some(live index)` when the expression's *value* is a freshly
    /// acquired guard (acquisition, optionally chained through
    /// [`PASS_THROUGH`] suffixes, with nothing after it).
    last: Option<usize>,
}

/// Recursive-descent walk of one tokenized fn body.
struct Parser<'a> {
    toks: Vec<LTok>,
    pos: usize,
    path: &'a str,
    scanned: &'a Scanned,
    fn_name: String,
    /// Lock qualifier: impl type for methods, file stem for free fns.
    qual: String,
    live: Vec<Guard>,
    /// `local name -> field short name` alias stack.
    aliases: Vec<(String, String)>,
    sites: Vec<Site>,
    edges: Vec<Edge>,
    calls: Vec<Call>,
    hits: Vec<(Guard, String, usize)>,
}

/// Extracts [`FnFacts`] for every fn in one file.
fn extract_file(path: &str, s: &Scanned, out: &mut Vec<FnFacts>) {
    for f in &s.fns {
        let qual = f.impl_ty.clone().unwrap_or_else(|| file_stem(path));
        let mut p = Parser {
            toks: tokenize_fn(s, f),
            pos: 0,
            path,
            scanned: s,
            fn_name: f.name.clone(),
            qual: qual.clone(),
            live: Vec::new(),
            aliases: Vec::new(),
            sites: Vec::new(),
            edges: Vec::new(),
            calls: Vec::new(),
            hits: Vec::new(),
        };
        // Skip the signature: everything up to the first `{`.
        while let Some((t, _)) = p.toks.get(p.pos) {
            if *t == Tok::P('{') {
                p.pos += 1;
                break;
            }
            p.pos += 1;
        }
        p.parse_block();
        let qual_name = match &f.impl_ty {
            Some(t) => format!("{}::{}", t, f.name),
            None => f.name.clone(),
        };
        out.push(FnFacts {
            path: path.to_string(),
            qual_name,
            name: f.name.clone(),
            impl_ty: f.impl_ty.clone(),
            decl_line: f.decl_line,
            body_end: f.body_end,
            sites: p.sites,
            edges: p.edges,
            calls: p.calls,
            lifetime_hits: p.hits,
        });
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek_at(&self, i: usize) -> Option<&Tok> {
        self.toks.get(self.pos + i).map(|(t, _)| t)
    }

    fn is_id(&self, i: usize, s: &str) -> bool {
        matches!(self.peek_at(i), Some(Tok::Id(id)) if id == s)
    }

    fn is_p(&self, i: usize, c: char) -> bool {
        self.peek_at(i) == Some(&Tok::P(c))
    }

    /// One `{ ... }` scope; assumes the `{` is already consumed.
    fn parse_block(&mut self) {
        let live_mark = self.live.len();
        let alias_mark = self.aliases.len();
        loop {
            match self.peek() {
                None => break,
                Some(Tok::P('}')) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::P('{')) => {
                    self.pos += 1;
                    self.parse_block();
                }
                Some(Tok::Id(id)) => match id.as_str() {
                    "let" => self.parse_let(),
                    "if" => self.parse_if(),
                    "while" => self.parse_while(),
                    "for" => self.parse_for(),
                    "match" => self.parse_match(),
                    "loop" => {
                        self.pos += 1;
                        self.enter_block();
                    }
                    "unsafe" => self.pos += 1,
                    _ => self.parse_expr_stmt(),
                },
                Some(_) => self.parse_expr_stmt(),
            }
        }
        self.live.truncate(live_mark);
        self.aliases.truncate(alias_mark);
    }

    /// Consumes up to and through the next `{ ... }` block.
    fn enter_block(&mut self) {
        while let Some(t) = self.peek() {
            if *t == Tok::P('{') {
                self.pos += 1;
                self.parse_block();
                return;
            }
            self.pos += 1;
        }
    }

    /// An expression statement: temporaries die at the `;`.
    fn parse_expr_stmt(&mut self) {
        let mark = self.live.len();
        let p0 = self.pos;
        self.parse_expr(&[], GKind::StmtTemp);
        if self.peek() == Some(&Tok::P(';')) {
            self.pos += 1;
        }
        if self.pos == p0 {
            self.pos += 1; // forced progress on stray tokens (desync guard)
        }
        self.live.truncate(mark);
    }

    /// Walks one expression, recording acquisitions (with guard kind
    /// `kind`), calls, and `drop(..)` releases. Always stops (without
    /// consuming) at depth-0 `;`, `}`, a closing bracket of an enclosing
    /// group, a statement-starting `let`, and any of `stops`.
    fn parse_expr(&mut self, stops: &[Stop], kind: GKind) -> Scan {
        let start = self.pos;
        let mut depth = 0i32;
        let mut had_acq = false;
        let mut tail: Option<usize> = None;
        while let Some((t, _)) = self.toks.get(self.pos).cloned() {
            if depth == 0 {
                let stop = match &t {
                    Tok::P(';') | Tok::P('}') => true,
                    Tok::P('{') => stops.contains(&Stop::Brace),
                    Tok::P(',') => stops.contains(&Stop::Comma),
                    Tok::Id(s) if s == "else" => stops.contains(&Stop::Else),
                    Tok::Id(s) if s == "in" => stops.contains(&Stop::In),
                    Tok::Id(s) if s == "let" => true,
                    _ => false,
                };
                if stop {
                    break;
                }
            }
            match t {
                Tok::P('(') | Tok::P('[') => {
                    depth += 1;
                    self.pos += 1;
                    tail = None;
                }
                Tok::P(')') | Tok::P(']') => {
                    if depth == 0 {
                        break; // closing an enclosing group
                    }
                    depth -= 1;
                    self.pos += 1;
                    tail = None;
                }
                Tok::P('{') => {
                    // Block expression / struct literal / closure body.
                    self.pos += 1;
                    self.parse_block();
                    tail = None;
                }
                Tok::P('}') => break, // unbalanced: bail out safely
                Tok::Id(id) => {
                    match id.as_str() {
                        // Construct keywords delegate only at depth 0: a
                        // depth-0 `if` here really starts an if-expression,
                        // while inside parens/brackets the token is far
                        // more likely a match-arm guard (`matches!(x,
                        // Some(k) if k == y)`) whose "body" brace does not
                        // exist — delegating there mangles the walk. At
                        // depth > 0 any real block still parses via the
                        // `{` arm.
                        "if" if depth == 0 => self.parse_if(),
                        "match" if depth == 0 => self.parse_match(),
                        "while" if depth == 0 => self.parse_while(),
                        "for" if depth == 0 => self.parse_for(),
                        "loop" if depth == 0 => {
                            self.pos += 1;
                            self.enter_block();
                        }
                        "drop" if self.is_drop_release() => self.handle_drop(),
                        _ => {
                            if self.is_acquisition() {
                                let idx = self.handle_acquisition(kind);
                                self.consume_passthroughs();
                                had_acq = true;
                                tail = idx;
                                continue;
                            }
                            self.maybe_record_call();
                            self.pos += 1;
                            tail = None;
                            continue;
                        }
                    }
                    tail = None;
                }
                Tok::P(_) => {
                    self.pos += 1;
                    tail = None;
                }
            }
        }
        Scan { start, end: self.pos, had_acq, last: tail }
    }

    /// `drop ( ident )` — an early guard release.
    fn is_drop_release(&self) -> bool {
        self.is_p(1, '(') && matches!(self.peek_at(2), Some(Tok::Id(_))) && self.is_p(3, ')')
    }

    fn handle_drop(&mut self) {
        if let Some(Tok::Id(name)) = self.peek_at(2).cloned() {
            self.live.retain(|g| g.name.as_deref() != Some(name.as_str()));
        }
        self.pos += 4;
    }

    /// True when `pos` sits on `.op()` with an [`ACQUIRE_OPS`] method and
    /// *empty* argument list (`.write(buf)` on an io sink never matches),
    /// and the receiver is not bare `self` (that is a method call).
    fn is_acquisition(&self) -> bool {
        let Some(Tok::Id(op)) = self.peek() else {
            return false;
        };
        if !ACQUIRE_OPS.contains(&op.as_str()) || !self.is_p(1, '(') || !self.is_p(2, ')') {
            return false;
        }
        if self.pos == 0 || self.toks[self.pos - 1].0 != Tok::P('.') {
            return false;
        }
        // Bare `self.lock()` is a method call, not a field acquisition.
        !(self.pos >= 2
            && self.toks[self.pos - 2].0 == Tok::Id("self".to_string())
            && (self.pos < 3 || self.toks[self.pos - 3].0 != Tok::P('.')))
    }

    /// Resolves the receiver of the `.op()` at `pos` into a lock key.
    /// Returns `(key, short)`.
    fn receiver_key(&self, line: usize) -> (String, String) {
        // Index of the token before the `.`.
        let mut j = self.pos as i64 - 2;
        // Skip trailing `[..]` / `(..)` groups backwards (indexing chains
        // like `self.index[shard]`).
        while j >= 0 {
            let close = match self.toks[j as usize].0 {
                Tok::P(']') => ('[', ']'),
                Tok::P(')') => ('(', ')'),
                _ => break,
            };
            let mut depth = 0i32;
            while j >= 0 {
                match &self.toks[j as usize].0 {
                    Tok::P(c) if *c == close.1 => depth += 1,
                    Tok::P(c) if *c == close.0 => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j -= 1;
            }
            j -= 1; // token before the opening bracket
            // A `(..)` group preceded by an identifier is a call result:
            // the receiver is opaque.
            if close.0 == '(' {
                if let Some((Tok::Id(_), _)) = (j >= 0).then(|| &self.toks[j as usize]) {
                    j = -1;
                }
                break;
            }
        }
        if j >= 0 {
            if let Tok::Id(name) = &self.toks[j as usize].0 {
                let prev_dot = j >= 1 && self.toks[j as usize - 1].0 == Tok::P('.');
                if prev_dot {
                    // Field access through any chain: `{qual}.{field}`.
                    return (format!("{}.{}", self.qual, name), name.clone());
                }
                // Bare local: alias to a field, or per-fn local key.
                if let Some((_, field)) =
                    self.aliases.iter().rev().find(|(n, _)| n == name)
                {
                    return (format!("{}.{}", self.qual, field), field.clone());
                }
                return (
                    format!("{}::{}::{}", self.path, self.fn_name, name),
                    name.clone(),
                );
            }
        }
        // Opaque receiver (call result, parenthesized expr, ...).
        (
            format!("{}::{}::<expr:{}>", self.path, self.fn_name, line),
            "<expr>".to_string(),
        )
    }

    /// Records the acquisition at `pos` (`.op()`), emitting hold edges
    /// and guard-lifetime hits against every live guard, then pushes the
    /// new guard with lifetime `kind`. Consumes `op ( )`.
    fn handle_acquisition(&mut self, kind: GKind) -> Option<usize> {
        let Some((Tok::Id(op), line)) = self.toks.get(self.pos).cloned() else {
            return None;
        };
        let (key, short) = self.receiver_key(line);
        let blocking = !op.starts_with("try_");
        let waiver = deadlock_waiver(self.scanned, line);
        for g in &self.live {
            if let GKind::Scrut(_) = g.kind {
                self.hits.push((g.clone(), short.clone(), line));
            }
            if g.key != key {
                self.edges.push(Edge {
                    from: g.key.clone(),
                    from_short: g.short.clone(),
                    to: key.clone(),
                    to_short: short.clone(),
                    line,
                    blocking,
                    via: None,
                    waiver: waiver.clone(),
                });
            }
        }
        self.sites.push(Site {
            key: key.clone(),
            short: short.clone(),
            line,
            op: op.clone(),
        });
        self.live.push(Guard {
            key,
            short,
            line,
            kind,
            name: None,
        });
        self.pos += 3; // op ( )
        Some(self.live.len() - 1)
    }

    /// Consumes a chain of [`PASS_THROUGH`] suffixes after an
    /// acquisition: `.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`.
    fn consume_passthroughs(&mut self) {
        loop {
            let is_pass = self.is_p(0, '.')
                && matches!(self.peek_at(1), Some(Tok::Id(p)) if PASS_THROUGH.contains(&p.as_str()))
                && self.is_p(2, '(');
            if !is_pass {
                return;
            }
            self.pos += 3; // . name (
            let mut depth = 1i32;
            while depth > 0 {
                match self.peek() {
                    Some(Tok::P('(')) => depth += 1,
                    Some(Tok::P(')')) => depth -= 1,
                    None => return,
                    _ => {}
                }
                self.pos += 1;
            }
        }
    }

    /// Records `self.m(..)`, `Type::m(..)` / `Self::m(..)`, and free
    /// `f(..)` call sites, with the guards currently held.
    fn maybe_record_call(&mut self) {
        let Some((Tok::Id(name), line)) = self.toks.get(self.pos).cloned() else {
            return;
        };
        if !self.is_p(1, '(') {
            return;
        }
        let prev = (self.pos >= 1).then(|| &self.toks[self.pos - 1].0);
        let callee = match prev {
            Some(Tok::P('.')) => {
                // Method call: only `self.m(..)` resolves.
                let bare_self = self.pos >= 2
                    && self.toks[self.pos - 2].0 == Tok::Id("self".to_string())
                    && (self.pos < 3 || self.toks[self.pos - 3].0 != Tok::P('.'));
                if !bare_self {
                    return;
                }
                Callee::SelfM(name)
            }
            Some(Tok::P(':')) if self.pos >= 3 && self.toks[self.pos - 2].0 == Tok::P(':') => {
                match &self.toks[self.pos - 3].0 {
                    Tok::Id(t) => Callee::Typed(t.clone(), name),
                    _ => return,
                }
            }
            Some(Tok::P(':')) => return,
            _ => {
                const KEYWORDS: &[&str] = &[
                    "if", "match", "while", "for", "loop", "return", "move", "as", "in",
                    "let", "else", "break", "continue", "unsafe", "drop", "fn", "dyn",
                ];
                if KEYWORDS.contains(&name.as_str())
                    || !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                {
                    return;
                }
                Callee::Free(name)
            }
        };
        self.calls.push(Call {
            callee,
            line,
            held: self.live.clone(),
            waiver: deadlock_waiver(self.scanned, line),
        });
    }

    /// Consumes pattern tokens up to (not through) a depth-0 `=`;
    /// returns the `[start, end)` range. Also stops at `;`/closing
    /// brackets so malformed input cannot run away.
    fn scan_pattern_to_eq(&mut self) -> (usize, usize) {
        let ps = self.pos;
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => break,
                Some(Tok::P(c)) => {
                    let c = *c;
                    match c {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        '=' | ';' if depth == 0 => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                Some(Tok::Id(_)) => self.pos += 1,
            }
        }
        (ps, self.pos)
    }

    /// `[mut] ident` (with an optional `: Type` annotation cut off) — a
    /// plain binding pattern.
    fn plain_binding(&self, ps: usize, pe: usize) -> Option<String> {
        let toks = &self.toks[ps..pe.min(self.toks.len())];
        let cut = toks
            .iter()
            .position(|(t, _)| *t == Tok::P(':'))
            .unwrap_or(toks.len());
        let t: Vec<&Tok> = toks[..cut]
            .iter()
            .map(|(t, _)| t)
            .filter(|x| !matches!(x, Tok::Id(s) if s == "mut" || s == "ref"))
            .collect();
        match t.as_slice() {
            [Tok::Id(n)]
                if n.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                    && n.as_str() != "_" =>
            {
                Some((*n).clone())
            }
            _ => None,
        }
    }

    /// `Some([mut] ident)` / `Ok([mut] ident)` — a pattern that moves the
    /// matched guard out of the scrutinee into a binding.
    fn wrapped_binding(&self, ps: usize, pe: usize) -> Option<String> {
        let t: Vec<&Tok> = self.toks[ps..pe.min(self.toks.len())]
            .iter()
            .map(|(t, _)| t)
            .filter(|x| !matches!(x, Tok::Id(s) if s == "mut" || s == "ref"))
            .collect();
        match t.as_slice() {
            [Tok::Id(w), Tok::P('('), Tok::Id(n), Tok::P(')')]
                if (w.as_str() == "Some" || w.as_str() == "Ok")
                    && n.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                    && n.as_str() != "_" =>
            {
                Some((*n).clone())
            }
            _ => None,
        }
    }

    /// All lowercase identifiers bound by a pattern (for aliasing).
    fn pattern_idents(&self, ps: usize, pe: usize) -> Vec<String> {
        self.toks[ps..pe.min(self.toks.len())]
            .iter()
            .filter_map(|(t, _)| match t {
                Tok::Id(s)
                    if s.starts_with(|c: char| c.is_ascii_lowercase())
                        && !matches!(
                            s.as_str(),
                            "mut" | "ref" | "box" | "self" | "if" | "in" | "as"
                        ) =>
                {
                    Some(s.clone())
                }
                _ => None,
            })
            .collect()
    }

    /// When an acquisition-free RHS is a reference/chain rooted at a
    /// lock field (`&self.index`, `self.index[i]`, `self.index.iter()`,
    /// or an already-aliased local), returns the final field segment so
    /// the bound/iterated name can alias it.
    fn rhs_alias(&self, start: usize, end: usize) -> Option<String> {
        let toks: Vec<&Tok> = self.toks[start..end.min(self.toks.len())]
            .iter()
            .map(|(t, _)| t)
            .collect();
        let mut i = 0;
        while i < toks.len() {
            match toks[i] {
                Tok::P('&') => i += 1,
                Tok::Id(s) if s == "mut" => i += 1,
                _ => break,
            }
        }
        let mut field: Option<String> = None;
        match toks.get(i) {
            Some(Tok::Id(s)) if s.as_str() == "self" => {}
            Some(Tok::Id(s)) => {
                field = self
                    .aliases
                    .iter()
                    .rev()
                    .find(|(n, _)| n == s)
                    .map(|(_, f)| f.clone());
                field.as_ref()?;
            }
            _ => return None,
        }
        i += 1;
        while i < toks.len() {
            match toks[i] {
                Tok::P('.') => match toks.get(i + 1) {
                    Some(Tok::Id(f)) => {
                        // `.field` updates the alias target; `.method(..)`
                        // does not (iter/get/etc. still yield field items).
                        if toks.get(i + 2) != Some(&&Tok::P('(')) {
                            field = Some(f.clone());
                        }
                        i += 2;
                    }
                    _ => i += 1,
                },
                Tok::P('[') | Tok::P('(') => {
                    let (open, close) = if *toks[i] == Tok::P('[') {
                        ('[', ']')
                    } else {
                        ('(', ')')
                    };
                    let mut depth = 0i32;
                    while i < toks.len() {
                        match toks[i] {
                            Tok::P(c) if *c == open => depth += 1,
                            Tok::P(c) if *c == close => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    i += 1;
                }
                _ => break,
            }
        }
        field
    }

    fn parse_let(&mut self) {
        self.pos += 1; // `let`
        let (ps, pe) = self.scan_pattern_to_eq();
        if self.peek() != Some(&Tok::P('=')) {
            // `let x;` or malformed — nothing to track.
            if self.peek() == Some(&Tok::P(';')) {
                self.pos += 1;
            }
            return;
        }
        let plain = self.plain_binding(ps, pe);
        let wrapped = self.wrapped_binding(ps, pe);
        self.pos += 1; // `=`
        let mark = self.live.len();
        let scan = self.parse_expr(&[Stop::Else], GKind::StmtTemp);
        if self.is_id(0, "else") {
            // let-else: a diverging no-match arm; `Some(g)`/`Ok(g)`
            // patterns move the guard out into a binding.
            self.pos += 1;
            self.enter_block();
            if self.peek() == Some(&Tok::P(';')) {
                self.pos += 1;
            }
            let kept = scan.last.zip(wrapped).map(|(idx, name)| {
                let mut g = self.live[idx].clone();
                g.kind = GKind::Bound;
                g.name = Some(name);
                g
            });
            self.live.truncate(mark);
            self.live.extend(kept);
            return;
        }
        if self.peek() == Some(&Tok::P(';')) {
            self.pos += 1;
        }
        if let Some((idx, name)) = scan.last.zip(plain.clone()) {
            let mut g = self.live[idx].clone();
            g.kind = GKind::Bound;
            g.name = Some(name);
            self.live.truncate(mark);
            self.live.push(g);
            return;
        }
        self.live.truncate(mark);
        if !scan.had_acq {
            if let Some((name, field)) = plain.zip(self.rhs_alias(scan.start, scan.end)) {
                self.aliases.push((name, field));
            }
        }
    }

    fn parse_if(&mut self) {
        self.pos += 1; // `if`
        let alias_mark = self.aliases.len();
        let mark = self.live.len();
        if self.is_id(0, "let") {
            self.pos += 1;
            let (ps, pe) = self.scan_pattern_to_eq();
            let wrapped = self.wrapped_binding(ps, pe);
            let idents = self.pattern_idents(ps, pe);
            if self.peek() == Some(&Tok::P('=')) {
                self.pos += 1;
            }
            let scan = self.parse_expr(&[Stop::Brace], GKind::Scrut("if let"));
            let mut moved: Option<(String, usize)> = None;
            if let Some((idx, name)) = scan.last.zip(wrapped) {
                self.live[idx].kind = GKind::Bound;
                self.live[idx].name = Some(name.clone());
                moved = Some((name, self.live[idx].line));
            }
            if !scan.had_acq {
                if let Some(field) = self.rhs_alias(scan.start, scan.end) {
                    for id in idents {
                        self.aliases.push((id, field.clone()));
                    }
                }
            }
            self.enter_block();
            // A moved-out binding exists only inside the then-block.
            if let Some((name, gline)) = moved {
                if let Some(p) = self
                    .live
                    .iter()
                    .position(|g| g.name.as_deref() == Some(name.as_str()) && g.line == gline)
                {
                    self.live.remove(p);
                }
            }
            self.parse_else();
            // Scrutinee temporaries die at the end of the whole construct.
            self.live.truncate(mark);
        } else {
            self.parse_expr(&[Stop::Brace], GKind::CondTemp);
            // Plain-condition temporaries die before the body runs.
            self.live.truncate(mark);
            self.enter_block();
            self.parse_else();
        }
        self.aliases.truncate(alias_mark);
    }

    fn parse_else(&mut self) {
        if self.is_id(0, "else") {
            self.pos += 1;
            if self.is_id(0, "if") {
                self.parse_if();
            } else {
                self.enter_block();
            }
        }
    }

    fn parse_while(&mut self) {
        self.pos += 1; // `while`
        let alias_mark = self.aliases.len();
        let mark = self.live.len();
        if self.is_id(0, "let") {
            self.pos += 1;
            let (ps, pe) = self.scan_pattern_to_eq();
            let wrapped = self.wrapped_binding(ps, pe);
            let idents = self.pattern_idents(ps, pe);
            if self.peek() == Some(&Tok::P('=')) {
                self.pos += 1;
            }
            let scan = self.parse_expr(&[Stop::Brace], GKind::Scrut("while let"));
            if let Some((idx, name)) = scan.last.zip(wrapped) {
                self.live[idx].kind = GKind::Bound;
                self.live[idx].name = Some(name);
            }
            if !scan.had_acq {
                if let Some(field) = self.rhs_alias(scan.start, scan.end) {
                    for id in idents {
                        self.aliases.push((id, field.clone()));
                    }
                }
            }
            self.enter_block();
        } else {
            self.parse_expr(&[Stop::Brace], GKind::CondTemp);
            self.live.truncate(mark);
            self.enter_block();
        }
        self.live.truncate(mark);
        self.aliases.truncate(alias_mark);
    }

    fn parse_for(&mut self) {
        self.pos += 1; // `for`
        let alias_mark = self.aliases.len();
        let ps = self.pos;
        let mut depth = 0i32;
        loop {
            match self.peek() {
                None => break,
                Some(Tok::Id(s)) if s == "in" && depth == 0 => break,
                Some(Tok::P(c)) => {
                    let c = *c;
                    match c {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                Some(Tok::Id(_)) => self.pos += 1,
            }
        }
        let pe = self.pos;
        let idents = self.pattern_idents(ps, pe);
        if self.is_id(0, "in") {
            self.pos += 1;
        }
        let mark = self.live.len();
        let scan = self.parse_expr(&[Stop::Brace], GKind::IterTemp);
        if !scan.had_acq {
            if let Some(field) = self.rhs_alias(scan.start, scan.end) {
                for id in idents {
                    self.aliases.push((id, field.clone()));
                }
            }
        }
        self.enter_block();
        // The iterable temporary lives for the whole loop; it dies here.
        self.live.truncate(mark);
        self.aliases.truncate(alias_mark);
    }

    fn parse_match(&mut self) {
        self.pos += 1; // `match`
        let alias_mark = self.aliases.len();
        let mark = self.live.len();
        let scan = self.parse_expr(&[Stop::Brace], GKind::Scrut("match"));
        let scrut_field = if scan.had_acq {
            None
        } else {
            self.rhs_alias(scan.start, scan.end)
        };
        if self.peek() != Some(&Tok::P('{')) {
            self.live.truncate(mark);
            self.aliases.truncate(alias_mark);
            return;
        }
        self.pos += 1;
        loop {
            let p0 = self.pos;
            match self.peek() {
                None => break,
                Some(Tok::P('}')) => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            // Arm pattern (with optional `if` guard) up to depth-0 `=>`.
            let ps = self.pos;
            let mut depth = 0i32;
            loop {
                match self.peek() {
                    None => break,
                    Some(Tok::P('=')) if depth == 0 && self.is_p(1, '>') => break,
                    Some(Tok::P(c)) => {
                        let c = *c;
                        match c {
                            '(' | '[' | '{' => depth += 1,
                            ')' | ']' | '}' => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    Some(Tok::Id(_)) => self.pos += 1,
                }
            }
            let pe = self.pos;
            if self.is_p(0, '=') && self.is_p(1, '>') {
                self.pos += 2;
                let amark = self.aliases.len();
                if let Some(f) = &scrut_field {
                    for id in self.pattern_idents(ps, pe) {
                        self.aliases.push((id, f.clone()));
                    }
                }
                let bmark = self.live.len();
                if self.peek() == Some(&Tok::P('{')) {
                    self.pos += 1;
                    self.parse_block();
                } else {
                    self.parse_expr(&[Stop::Comma], GKind::StmtTemp);
                }
                if self.peek() == Some(&Tok::P(',')) {
                    self.pos += 1;
                }
                self.live.truncate(bmark);
                self.aliases.truncate(amark);
            }
            if self.pos == p0 {
                self.pos += 1; // forced progress on malformed input
            }
        }
        // Scrutinee temporaries die at the end of the whole `match`.
        self.live.truncate(mark);
        self.aliases.truncate(alias_mark);
    }
}

// ---------------------------------------------------------------------------
// Second pass: declarations, call graph, composed edges, cycle detection.
// ---------------------------------------------------------------------------

/// A parsed `LOCK-ORDER:` declaration.
#[derive(Debug)]
struct Decl {
    line: usize,
    disjoint: bool,
    /// Adjacent declared pairs (`a -> b -> c` gives `(a,b)` and `(b,c)`).
    adj: Vec<(String, String)>,
    /// Transitive closure of declared chains (adds `(a,c)`).
    trans: BTreeSet<(String, String)>,
}

/// Returns the declaration payload when the comment's *first token* is
/// `LOCK-ORDER:` (only comment sigils and whitespace may precede it) —
/// prose that merely mentions the marker never parses as a declaration.
fn decl_payload(comment: &str) -> Option<&str> {
    comment
        .trim_start_matches(['/', '!', '*', ' ', '\t'])
        .strip_prefix("LOCK-ORDER:")
}

/// Parses the text after `LOCK-ORDER:`. Grammar:
/// `a -> b [-> c][, d -> e][; prose]` or `disjoint[; prose]`.
fn parse_decl(payload: &str, line: usize) -> Result<Decl, String> {
    let spec = payload.split(';').next().unwrap_or("").trim();
    if spec == "disjoint" {
        return Ok(Decl { line, disjoint: true, adj: Vec::new(), trans: BTreeSet::new() });
    }
    if spec.is_empty() {
        return Err("empty specification".to_string());
    }
    let mut adj = Vec::new();
    let mut trans = BTreeSet::new();
    for chain in spec.split(',') {
        let names: Vec<&str> = chain.split("->").map(str::trim).collect();
        if names.len() < 2 {
            return Err(format!(
                "`{}` has no `->`; expected `a -> b [-> c]` or `disjoint`",
                chain.trim()
            ));
        }
        for n in &names {
            if n.is_empty() || !n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("`{}` is not a lock name", n));
            }
        }
        for w in names.windows(2) {
            adj.push((w[0].to_string(), w[1].to_string()));
        }
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                trans.insert((names[i].to_string(), names[j].to_string()));
            }
        }
    }
    Ok(Decl { line, disjoint: false, adj, trans })
}

/// The fn that owns a declaration at `ln`: the fn declared directly
/// below the comment block, else the innermost fn whose body contains
/// the line.
fn owning_fn(fns: &[FnFacts], path: &str, s: &Scanned, ln: usize) -> Option<usize> {
    let mut i = ln; // 0-based index of the line *after* ln
    while i < s.lines.len() {
        let l = &s.lines[i];
        let code = l.code.trim();
        if code.is_empty() && l.comment.is_empty() {
            break; // blank line detaches the comment block
        }
        if code.is_empty() || code.starts_with('#') {
            i += 1;
            continue;
        }
        if let Some(fi) = fns
            .iter()
            .position(|f| f.path == path && f.decl_line == i + 1)
        {
            return Some(fi);
        }
        break;
    }
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.path == path && f.decl_line <= ln && ln <= f.body_end)
        .max_by_key(|(_, f)| f.decl_line)
        .map(|(i, _)| i)
}

/// A lock set acquired (transitively) by a fn: key -> (short, blocking).
type LockSet = BTreeMap<String, (String, bool)>;

/// Transitive lock closure of fn `i` with memoization and an on-stack
/// recursion cutoff (recursive cycles contribute what their first
/// traversal saw — a sound under-then-over approximation for a linter).
fn closure_of(
    i: usize,
    fns: &[FnFacts],
    targets: &[Vec<Vec<usize>>],
    memo: &mut Vec<Option<LockSet>>,
    stack: &mut Vec<bool>,
) -> LockSet {
    if let Some(m) = &memo[i] {
        return m.clone();
    }
    if stack[i] {
        return LockSet::new();
    }
    stack[i] = true;
    let mut acc = LockSet::new();
    for s in &fns[i].sites {
        let e = acc.entry(s.key.clone()).or_insert((s.short.clone(), false));
        e.1 |= !s.op.starts_with("try_");
    }
    for tgt in &targets[i] {
        for &t in tgt {
            for (k, (sh, b)) in closure_of(t, fns, targets, memo, stack) {
                let e = acc.entry(k).or_insert((sh, false));
                e.1 |= b;
            }
        }
    }
    stack[i] = false;
    memo[i] = Some(acc.clone());
    acc
}

/// One concrete source location backing a lock-order edge.
#[derive(Debug, Clone)]
struct Witness {
    path: String,
    line: usize,
    func: String,
    via: Option<String>,
    from_short: String,
    to_short: String,
}

fn diag(rule: &'static str, path: &str, line: usize, msg: String, hint: &str) -> Diagnostic {
    Diagnostic { rule, path: path.to_string(), line, msg, hint: hint.to_string() }
}

/// The global pass over all extracted fn facts.
fn check(files: &[(String, Scanned)], fns: &[FnFacts]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // --- Declarations: find, parse, and attribute every LOCK-ORDER comment.
    let mut decls: BTreeMap<usize, Vec<Decl>> = BTreeMap::new();
    for (path, s) in files {
        for (i, l) in s.lines.iter().enumerate() {
            let ln = i + 1;
            let Some(payload) = decl_payload(&l.comment) else { continue };
            match parse_decl(payload, ln) {
                Err(why) => out.push(diag(
                    "L-LOCK-DECL",
                    path,
                    ln,
                    format!("unparseable `LOCK-ORDER:` declaration: {}", why),
                    "use `LOCK-ORDER: a -> b [-> c][, d -> e][; prose]` or `LOCK-ORDER: disjoint[; prose]`",
                )),
                Ok(d) => {
                    if let Some(fi) = owning_fn(fns, path, s, ln) {
                        decls.entry(fi).or_default().push(d);
                    }
                    // A parseable declaration owned by no fn is module
                    // prose (e.g. a doc example) — nothing to check.
                }
            }
        }
    }

    // --- Call-graph resolution maps.
    let mut by_type: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_file: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        match &f.impl_ty {
            Some(t) => by_type.entry((t.clone(), f.name.clone())).or_default().push(i),
            None => {
                by_file.entry((f.path.clone(), f.name.clone())).or_default().push(i);
                by_crate
                    .entry((crate_key(&f.path), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
    }
    let resolve = |caller: &FnFacts, c: &Callee| -> Vec<usize> {
        match c {
            Callee::SelfM(m) => caller
                .impl_ty
                .as_ref()
                .and_then(|t| by_type.get(&(t.clone(), m.clone())))
                .cloned()
                .unwrap_or_default(),
            Callee::Typed(t, m) => {
                let t = if t == "Self" {
                    match &caller.impl_ty {
                        Some(x) => x.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    t.clone()
                };
                by_type.get(&(t, m.clone())).cloned().unwrap_or_default()
            }
            Callee::Free(n) => by_file
                .get(&(caller.path.clone(), n.clone()))
                .or_else(|| by_crate.get(&(crate_key(&caller.path), n.clone())))
                .cloned()
                .unwrap_or_default(),
        }
    };
    let targets: Vec<Vec<Vec<usize>>> = fns
        .iter()
        .map(|f| f.calls.iter().map(|c| resolve(f, &c.callee)).collect())
        .collect();
    let mut memo: Vec<Option<LockSet>> = vec![None; fns.len()];
    let mut stack = vec![false; fns.len()];

    // --- Compose acquisition sequences across calls.
    let mut fn_edges: Vec<Vec<Edge>> = Vec::with_capacity(fns.len());
    let mut fn_hits: Vec<Vec<(Guard, String, usize)>> = Vec::with_capacity(fns.len());
    for (i, f) in fns.iter().enumerate() {
        let mut edges = f.edges.clone();
        let mut hits = f.lifetime_hits.clone();
        for (ci, call) in f.calls.iter().enumerate() {
            if call.held.is_empty() || targets[i][ci].is_empty() {
                continue;
            }
            let mut acq = LockSet::new();
            for &t in &targets[i][ci] {
                for (k, (sh, b)) in closure_of(t, fns, &targets, &mut memo, &mut stack) {
                    let e = acq.entry(k).or_insert((sh, false));
                    e.1 |= b;
                }
            }
            let callee_name = match &call.callee {
                Callee::SelfM(m) => format!("self.{}", m),
                Callee::Typed(t, m) => format!("{}::{}", t, m),
                Callee::Free(n) => n.clone(),
            };
            for (k, (sh, blocking)) in acq {
                for g in &call.held {
                    if let GKind::Scrut(_) = g.kind {
                        hits.push((g.clone(), sh.clone(), call.line));
                    }
                    if g.key != k {
                        edges.push(Edge {
                            from: g.key.clone(),
                            from_short: g.short.clone(),
                            to: k.clone(),
                            to_short: sh.clone(),
                            line: call.line,
                            blocking,
                            via: Some(callee_name.clone()),
                            waiver: call.waiver.clone(),
                        });
                    }
                }
            }
        }
        fn_edges.push(edges);
        fn_hits.push(hits);
    }

    // --- L-GUARD-LIFETIME.
    let mut seen_hits = BTreeSet::new();
    for (i, f) in fns.iter().enumerate() {
        for (g, to_short, ln2) in &fn_hits[i] {
            let construct = match g.kind {
                GKind::Scrut(c) => c,
                _ => continue,
            };
            if !seen_hits.insert((f.path.clone(), g.line, *ln2)) {
                continue;
            }
            out.push(diag(
                "L-GUARD-LIFETIME",
                &f.path,
                g.line,
                format!(
                    "guard `{}` acquired in this `{}` scrutinee is still live at the acquisition of `{}` on line {} (Rust 2021 keeps scrutinee temporaries alive to the end of the whole construct)",
                    g.short, construct, to_short, ln2
                ),
                "copy what you need out of the guard through a plain `let` so it drops before the second acquisition",
            ));
        }
    }

    // --- Per-fn declaration checks + L-LOCK-ORDER.
    for (i, f) in fns.iter().enumerate() {
        // Pair -> earliest witnessing edge line, so every declaration
        // mismatch below can anchor at a real acquisition site.
        let mut pairs: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &fn_edges[i] {
            let ln = pairs
                .entry((e.from_short.clone(), e.to_short.clone()))
                .or_insert(e.line);
            *ln = (*ln).min(e.line);
        }
        let multi = f.sites.len() >= 2 || !pairs.is_empty();
        match decls.get(&i) {
            None if multi => {
                let n_locks = {
                    let mut s: BTreeSet<&str> =
                        f.sites.iter().map(|x| x.short.as_str()).collect();
                    for e in &fn_edges[i] {
                        s.insert(e.from_short.as_str());
                        s.insert(e.to_short.as_str());
                    }
                    s.len().max(2)
                };
                out.push(diag(
                    "L-LOCK-ORDER",
                    &f.path,
                    f.sites.first().map(|s| s.line).unwrap_or(f.decl_line),
                    format!(
                        "function `{}` acquires {} locks with no machine-checkable `LOCK-ORDER:` declaration",
                        f.name, n_locks
                    ),
                    "declare the order in a comment above the fn: `// LOCK-ORDER: a -> b` (or `// LOCK-ORDER: disjoint` when no two guards overlap)",
                ));
            }
            None => {}
            Some(ds) => {
                let disjoint = ds.iter().any(|d| d.disjoint);
                let has_pairs = ds.iter().any(|d| !d.disjoint);
                if disjoint && has_pairs {
                    out.push(diag(
                        "L-LOCK-DECL",
                        &f.path,
                        ds[0].line,
                        format!(
                            "`{}` declares both `disjoint` and ordered pairs — pick one",
                            f.name
                        ),
                        "a fn either never overlaps two guards (`disjoint`) or has an order to declare",
                    ));
                }
                if disjoint {
                    if let Some(e) = fn_edges[i].iter().min_by_key(|e| e.line) {
                        out.push(diag(
                            "L-LOCK-DECL",
                            &f.path,
                            e.line,
                            format!(
                                "`{}` declares `LOCK-ORDER: disjoint` but `{}` is held while acquiring `{}`",
                                f.name, e.from_short, e.to_short
                            ),
                            "drop the first guard before the second acquisition, or declare the real order",
                        ));
                    }
                }
                if !disjoint {
                    let trans: BTreeSet<(String, String)> = ds
                        .iter()
                        .flat_map(|d| d.trans.iter().cloned())
                        .collect();
                    for ((a, b), ln) in &pairs {
                        if !trans.contains(&(a.clone(), b.clone())) {
                            out.push(diag(
                                "L-LOCK-DECL",
                                &f.path,
                                *ln,
                                format!(
                                    "observed acquisition order `{} -> {}` in `{}` is not covered by its `LOCK-ORDER:` declaration",
                                    a, b, f.name
                                ),
                                "extend the declaration to match reality, or restructure so the declared order holds",
                            ));
                        }
                    }
                    for d in ds {
                        for (a, b) in &d.adj {
                            if !pairs.contains_key(&(a.clone(), b.clone())) {
                                out.push(diag(
                                    "L-LOCK-DECL",
                                    &f.path,
                                    d.line,
                                    format!(
                                        "declared pair `{} -> {}` is never observed in `{}` (stale declaration)",
                                        a, b, f.name
                                    ),
                                    "delete the stale pair, or re-check why the analysis no longer sees it",
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // --- Global cycle detection over blocking, non-waived edges.
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut witness: BTreeMap<(String, String), Vec<Witness>> = BTreeMap::new();
    let mut waiver_seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for (i, f) in fns.iter().enumerate() {
        for e in &fn_edges[i] {
            match &e.waiver {
                Some(r) if r.is_empty() => {
                    if waiver_seen.insert((f.path.clone(), e.line)) {
                        out.push(diag(
                            "L-WAIVER",
                            &f.path,
                            e.line,
                            "`lint:allow(L-DEADLOCK)` waiver has no reason".to_string(),
                            "state the invariant that makes the inversion safe: `lint:allow(L-DEADLOCK): <why>`",
                        ));
                    }
                    continue;
                }
                Some(_) => continue, // reasoned waiver: edge excluded
                None => {}
            }
            if !e.blocking {
                // A `try_*` target cannot block, so it cannot close a
                // deadlock cycle (it is still an observed pair above).
                continue;
            }
            graph.entry(e.from.clone()).or_default().insert(e.to.clone());
            witness
                .entry((e.from.clone(), e.to.clone()))
                .or_default()
                .push(Witness {
                    path: f.path.clone(),
                    line: e.line,
                    func: f.qual_name.clone(),
                    via: e.via.clone(),
                    from_short: e.from_short.clone(),
                    to_short: e.to_short.clone(),
                });
        }
    }
    for ws in witness.values_mut() {
        ws.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in graph.keys() {
        // BFS for the shortest path that closes back on `start`.
        let mut pred: BTreeMap<String, String> = BTreeMap::new();
        let mut visited: BTreeSet<String> = BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        visited.insert(start.clone());
        queue.push_back(start.clone());
        let mut closer: Option<String> = None;
        while let Some(u) = queue.pop_front() {
            let Some(nbrs) = graph.get(&u) else { continue };
            if nbrs.contains(start) {
                closer = Some(u);
                break;
            }
            for v in nbrs {
                if visited.insert(v.clone()) {
                    pred.insert(v.clone(), u.clone());
                    queue.push_back(v.clone());
                }
            }
        }
        let Some(closer) = closer else { continue };
        let mut path = vec![closer.clone()];
        let mut c = closer;
        while &c != start {
            c = pred[&c].clone();
            path.push(c.clone());
        }
        path.reverse(); // start .. closer
        let min_i = path
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_str().to_string())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let canon: Vec<String> =
            path[min_i..].iter().chain(path[..min_i].iter()).cloned().collect();
        if !seen_cycles.insert(canon.clone()) {
            continue;
        }
        let m = canon.len();
        let mut chain = Vec::new();
        let mut wit_lines = Vec::new();
        for ei in 0..m {
            let a = &canon[ei];
            let b = &canon[(ei + 1) % m];
            let w = &witness[&(a.clone(), b.clone())][0];
            chain.push(w.from_short.clone());
            let via = w
                .via
                .as_ref()
                .map(|v| format!(" via call to `{}`", v))
                .unwrap_or_default();
            wit_lines.push(format!(
                "{} -> {} at {}:{} in `{}`{}",
                w.from_short, w.to_short, w.path, w.line, w.func, via
            ));
        }
        chain.push(chain[0].clone());
        let anchor = &witness[&(canon[0].clone(), canon[1 % m].clone())][0];
        out.push(diag(
            "L-DEADLOCK",
            &anchor.path.clone(),
            anchor.line,
            format!(
                "lock-order cycle: {}\n      witness: {}",
                chain.join(" -> "),
                wit_lines.join("\n      witness: ")
            ),
            "pick one global acquisition order and restructure, or — if a protocol invariant makes the inversion safe — waive the inverting acquisition with `lint:allow(L-DEADLOCK): <invariant>`",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let s = crate::lexer::scan(src);
        analyze(&[("crates/x/src/test.rs".to_string(), s)])
    }

    fn rules(d: &[Diagnostic]) -> Vec<&str> {
        d.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unresolved_callee_acquires_nothing() {
        // `f` holds a lock across a call the workspace cannot resolve.
        // The analysis deliberately assumes the callee acquires NOTHING:
        // assuming it could acquire anything would wipe out the analysis
        // with false cycles, and the gap is closed from the other side —
        // every multi-lock fn *wherever it actually lives* must carry its
        // own machine-checked `LOCK-ORDER:` declaration (L-LOCK-ORDER),
        // so an unresolved callee cannot hide an undeclared order.
        let d = run(
            "fn f(s: &S) {\n\
             \x20   let g = s.a.lock();\n\
             \x20   some_external_crate_helper(&g);\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn recursion_cutoff_terminates_and_still_finds_the_cycle() {
        // `ping` and `pong` call each other forever; the closure walk must
        // cut off on the recursive back-edge rather than diverge, while
        // still composing each fn's direct acquisition into the other's
        // held set — which here closes a real ABBA cycle.
        let d = run(
            "// LOCK-ORDER: la -> lb; fixture.\n\
             fn ping(s: &S) {\n\
             \x20   let g = s.la.lock();\n\
             \x20   pong(s);\n\
             }\n\
             // LOCK-ORDER: lb -> la; fixture.\n\
             fn pong(s: &S) {\n\
             \x20   let g = s.lb.lock();\n\
             \x20   ping(s);\n\
             }\n",
        );
        assert_eq!(rules(&d), vec!["L-DEADLOCK"], "{d:#?}");
        assert!(d[0].msg.contains("la -> lb -> la"), "{}", d[0].msg);
    }

    #[test]
    fn trait_method_ambiguity_unions_all_candidates() {
        // Two impl blocks of `W` both define `flush` (inherent vs trait —
        // the scanner cannot tell which one a call binds to), so
        // `self.flush()` composes the UNION of both bodies: holding `a`
        // across the call observes both a -> b and a -> c, and a
        // declaration covering only a -> b must be rejected.
        let d = run(
            "impl W {\n\
             \x20   // LOCK-ORDER: a -> b; misses the second flush impl.\n\
             \x20   fn go(&self) {\n\
             \x20       let g = self.a.lock();\n\
             \x20       self.flush();\n\
             \x20   }\n\
             \x20   fn flush(&self) {\n\
             \x20       let g = self.b.lock();\n\
             \x20   }\n\
             }\n\
             impl Flushable for W {\n\
             \x20   fn flush(&self) {\n\
             \x20       let g = self.c.lock();\n\
             \x20   }\n\
             }\n",
        );
        assert_eq!(rules(&d), vec!["L-LOCK-DECL"], "{d:#?}");
        assert!(
            d[0].msg.contains("`a -> c`") && d[0].msg.contains("not covered"),
            "{}",
            d[0].msg
        );
    }

    #[test]
    fn plain_if_condition_temp_drops_before_the_body() {
        // Unlike an `if let` scrutinee, a plain `if` condition temporary
        // is dropped before the body runs (Rust 2021), so the second
        // acquisition does not overlap and `disjoint` verifies.
        let d = run(
            "// LOCK-ORDER: disjoint; condition temp drops pre-body.\n\
             fn f(s: &S) {\n\
             \x20   if s.a.lock().is_empty() {\n\
             \x20       let g = s.b.lock();\n\
             \x20       g.refill();\n\
             \x20   }\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn try_lock_target_cannot_close_a_cycle() {
        // Both orders exist, but `g2`'s inverted second acquisition is a
        // `try_lock` — it cannot block, so no deadlock; the observed pair
        // is still declared (and checked) like any other.
        let d = run(
            "// LOCK-ORDER: a -> b; fixture.\n\
             fn g1(s: &S) {\n\
             \x20   let x = s.a.lock();\n\
             \x20   let y = s.b.lock();\n\
             \x20   x.touch(y);\n\
             }\n\
             // LOCK-ORDER: b -> a; safe: the a leg is try_lock.\n\
             fn g2(s: &S) {\n\
             \x20   let x = s.b.lock();\n\
             \x20   let y = s.a.try_lock();\n\
             \x20   x.touch(y);\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:#?}");
    }
}

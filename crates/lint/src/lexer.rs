//! A lightweight line-oriented Rust scanner.
//!
//! The lint rules in this crate need four things from a source file: the
//! code text with comments and string literals stripped (so tokens inside
//! strings never trigger rules), the comment text per line (so rules can
//! look for `SAFETY:` / `ORDERING:` markers), the ranges of test-only code
//! (`#[cfg(test)]` modules and `#[test]` functions are exempt from the
//! panic rule), and function spans (the ordering and lock-order rules are
//! function-granular). A full parser (`syn`) would be overkill and is not
//! available offline, so this module is a hand-rolled state machine in the
//! same shim-first spirit as `crates/shims`.
//!
//! Known approximations, acceptable for this workspace and pinned by the
//! fixture tests:
//! - a `'` is treated as a char literal when a closing quote follows within
//!   a few characters (or after an escape); otherwise it is a lifetime;
//! - brace matching is purely textual over the stripped code, so exotic
//!   token-position macros could confuse spans (none exist here);
//! - `fn` signatures that never open a body (trait method declarations)
//!   produce no span.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text with comments removed and string/char literal *contents*
    /// blanked (quotes retained), safe for token matching.
    pub code: String,
    /// Concatenated text of any comments on this line (line, doc, or block
    /// comment content).
    pub comment: String,
}

impl Line {
    /// True when the line holds no code tokens (blank or comment-only).
    pub fn is_code_free(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A function (or method) body span, 1-based inclusive line numbers.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Line holding the `fn` keyword.
    pub decl_line: usize,
    /// Line of the opening `{`.
    pub body_start: usize,
    /// Line of the matching `}`.
    pub body_end: usize,
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// Name of the `impl` block's self type when the fn is a method
    /// (`impl Foo { fn m(..) }` or `impl Trait for Foo { .. }` both give
    /// `Foo`); `None` for free functions.
    pub impl_ty: Option<String>,
}

/// A fully scanned file.
#[derive(Debug)]
pub struct Scanned {
    /// Lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Function spans in declaration order (nested fns included).
    pub fns: Vec<FnSpan>,
    /// 1-based inclusive line ranges of test-only code.
    pub test_regions: Vec<(usize, usize)>,
}

impl Scanned {
    /// True when 1-based `line` falls inside a test region.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The innermost function span containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.decl_line <= line && line <= f.body_end)
            .max_by_key(|f| f.decl_line)
            .cloned()
    }

    /// Comment text of the contiguous comment block ending directly above
    /// 1-based `line` (attribute-only and blank lines do not break the
    /// block), plus the comment on `line` itself.
    pub fn comment_block_above(&self, line: usize) -> String {
        let mut out = String::new();
        let idx = line - 1;
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let l = &self.lines[i];
            let code = l.code.trim();
            if code.is_empty() && l.comment.is_empty() {
                break; // blank line ends the block
            }
            if code.is_empty() || code.starts_with('#') {
                // Comment-only or attribute line: part of the block.
                out.push_str(&l.comment);
                out.push('\n');
                continue;
            }
            break;
        }
        out.push_str(&self.lines[idx].comment);
        out
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    Block(u32),  // nesting depth of /* */
    Str,         // inside "..."
    RawStr(u32), // inside r##"..."## with N hashes
}

/// Scans `text` into lines, function spans, and test regions.
pub fn scan(text: &str) -> Scanned {
    let lines = strip(text);
    let (fns, test_regions) = spans(&lines);
    Scanned {
        lines,
        fns,
        test_regions,
    }
}

/// Comment/string stripping state machine.
fn strip(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2; // skip escaped char (blanked anyway)
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        // Line (or doc) comment: rest of line is comment.
                        comment.push_str(&raw[byte_pos(raw, i)..]);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&chars, i)
                        && matches!(next, Some('"') | Some('#'))
                        && raw_str_hashes(&chars, i + 1).is_some()
                    {
                        // r"..." or r#"..."# raw string (br"" handled via b)
                        let h = raw_str_hashes(&chars, i + 1).unwrap_or(0);
                        code.push('"');
                        mode = Mode::RawStr(h);
                        i += 2 + h as usize; // r + hashes + quote
                    } else if c == '\'' {
                        // Char literal vs lifetime.
                        if let Some(len) = char_literal_len(&chars, i) {
                            code.push('\'');
                            code.push('\'');
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(Line { code, comment });
    }
    out
}

fn byte_pos(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[start..]` is `#*"`, returns the hash count (raw string opener).
fn raw_str_hashes(chars: &[char], start: usize) -> Option<u32> {
    let mut h = 0u32;
    let mut i = start;
    while chars.get(i) == Some(&'#') {
        h += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(h)
}

/// If a char literal starts at `chars[i] == '\''`, returns its char length
/// (including both quotes); `None` means lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: scan to closing quote (bounded).
            let end = (i + 12).min(chars.len());
            chars[(i + 3).min(end)..end]
                .iter()
                .position(|&c| c == '\'')
                .map(|p| p + 4)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

/// Finds function spans and test regions over stripped lines.
fn spans(lines: &[Line]) -> (Vec<FnSpan>, Vec<(usize, usize)>) {
    // Flatten to (line_no, char) for brace matching.
    let flat: Vec<(usize, char)> = lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.code.chars().map(move |c| (ln + 1, c)))
        .collect();

    let close_of = |open_idx: usize| -> Option<usize> {
        let mut depth = 0i64;
        for (k, &(_, c)) in flat.iter().enumerate().skip(open_idx) {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    };

    // Token stream with flat positions for keyword detection.
    let mut fns = Vec::new();
    let mut tests = Vec::new();
    // `impl` block regions as (start_line, end_line, self_type_name);
    // assigned to fn spans afterwards (innermost region wins).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut pending_cfg_test: Option<usize> = None; // line of #[cfg(test)]
    let mut pending_test_attr: Option<usize> = None; // line of #[test]

    let mut k = 0;
    let mut depth = 0i64; // brace depth, to tell `impl T {` from `-> impl Trait`
    while k < flat.len() {
        let (ln, c) = flat[k];
        if !(c.is_alphabetic() || c == '_' || c == '#') {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            k += 1;
            continue;
        }
        if c == '#' {
            // Attribute: grab the line's code to classify.
            let code = lines[ln - 1].code.trim();
            if code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[cfg(any(test")
            {
                pending_cfg_test = Some(ln);
            } else if code.contains("#[test]") {
                pending_test_attr = Some(ln);
            }
            // Skip to end of this line in flat stream.
            while k < flat.len() && flat[k].0 == ln {
                k += 1;
            }
            continue;
        }
        // Read a word.
        let start = k;
        while k < flat.len() {
            let ch = flat[k].1;
            if ch.is_alphanumeric() || ch == '_' {
                k += 1;
            } else {
                break;
            }
        }
        let word: String = flat[start..k].iter().map(|&(_, ch)| ch).collect();
        match word.as_str() {
            "fn" => {
                // Find the body's opening brace (skip to first '{' or ';').
                let mut j = k;
                let mut open = None;
                while j < flat.len() {
                    match flat[j].1 {
                        '{' => {
                            open = Some(j);
                            break;
                        }
                        ';' => break,
                        _ => j += 1,
                    }
                }
                if let Some(open_idx) = open {
                    if let Some(close_idx) = close_of(open_idx) {
                        // The fn's name is the first word after `fn`.
                        let mut n = k;
                        while n < flat.len() && !(flat[n].1.is_alphanumeric() || flat[n].1 == '_') {
                            n += 1;
                        }
                        let mut name = String::new();
                        while n < flat.len() && (flat[n].1.is_alphanumeric() || flat[n].1 == '_') {
                            name.push(flat[n].1);
                            n += 1;
                        }
                        let span = FnSpan {
                            decl_line: ln,
                            body_start: flat[open_idx].0,
                            body_end: flat[close_idx].0,
                            name,
                            impl_ty: None, // assigned below from impl regions
                        };
                        let body_end = span.body_end;
                        fns.push(span);
                        if pending_test_attr.take().is_some() {
                            tests.push((ln, body_end));
                        }
                        // `#[cfg(test)] fn` (rare) is also test-only.
                        if pending_cfg_test == Some(ln)
                            || pending_cfg_test.map(|a| ln.saturating_sub(a) <= 3) == Some(true)
                        {
                            if let Some(a) = pending_cfg_test.take() {
                                tests.push((a, body_end));
                            }
                        }
                    }
                }
            }
            "impl" if depth == 0 && !impl_in_return_position(&flat, start) => {
                // `impl<..> Type {` or `impl<..> Trait for Type {`: record the
                // self type's region so methods can be resolved by type name.
                let mut j = k;
                let mut open = None;
                while j < flat.len() {
                    match flat[j].1 {
                        '{' => {
                            open = Some(j);
                            break;
                        }
                        ';' => break,
                        _ => j += 1,
                    }
                }
                if let Some(open_idx) = open {
                    if let Some(close_idx) = close_of(open_idx) {
                        let header: String =
                            flat[k..open_idx].iter().map(|&(_, ch)| ch).collect();
                        if let Some(ty) = impl_self_type(&header) {
                            impls.push((flat[open_idx].0, flat[close_idx].0, ty));
                        }
                    }
                }
            }
            "mod" => {
                if let Some(attr_ln) = pending_cfg_test {
                    // Find the module's opening brace.
                    let mut j = k;
                    let mut open = None;
                    while j < flat.len() {
                        match flat[j].1 {
                            '{' => {
                                open = Some(j);
                                break;
                            }
                            ';' => break,
                            _ => j += 1,
                        }
                    }
                    if let Some(open_idx) = open {
                        if let Some(close_idx) = close_of(open_idx) {
                            tests.push((attr_ln, flat[close_idx].0));
                        }
                    }
                    pending_cfg_test = None;
                }
            }
            _ => {}
        }
    }
    // Innermost impl region containing the declaration names the method's
    // self type (impl blocks do not nest in practice, so "innermost" is
    // just "the one that contains it").
    for f in &mut fns {
        f.impl_ty = impls
            .iter()
            .filter(|&&(a, b, _)| a <= f.decl_line && f.decl_line <= b)
            .max_by_key(|&&(a, _, _)| a)
            .map(|(_, _, ty)| ty.clone());
    }
    (fns, tests)
}

/// True when the `impl` keyword at flat index `start` is a return-position
/// or argument-position `impl Trait` rather than an `impl` block: the
/// previous non-whitespace char is then punctuation like `>`, `(`, `,`, or
/// `:` instead of `}`, `;`, `]`, or nothing.
fn impl_in_return_position(flat: &[(usize, char)], start: usize) -> bool {
    flat[..start]
        .iter()
        .rev()
        .map(|&(_, c)| c)
        .find(|c| !c.is_whitespace())
        .is_some_and(|c| matches!(c, '>' | '(' | ',' | ':' | '&' | '<' | '=' | '+' | '|'))
}

/// Extracts the self type name from an impl header (the text between the
/// `impl` keyword and the opening brace): generics are stripped, a
/// `Trait for` prefix is skipped, and only the last path segment is kept.
fn impl_self_type(header: &str) -> Option<String> {
    // Drop generic parameter/argument lists (balanced angle brackets).
    let mut depth = 0u32;
    let mut flat = String::new();
    for c in header.chars() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            _ if depth == 0 => flat.push(c),
            _ => {}
        }
    }
    let toks: Vec<&str> = flat.split_whitespace().collect();
    let target = match toks.iter().position(|&t| t == "for") {
        Some(i) => &toks[i + 1..],
        None => &toks[..],
    };
    let ty = target
        .iter()
        .map(|t| t.trim_matches(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':')))
        .find(|t| !t.is_empty() && !matches!(*t, "mut" | "dyn" | "const"))?;
    let last = ty.rsplit("::").next().unwrap_or(ty);
    (!last.is_empty()).then(|| last.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let s = scan("let x = \"// not a comment\"; // real\nlet y = 'a';\n");
        assert_eq!(s.lines[0].code.trim(), "let x = \"\";");
        assert!(s.lines[0].comment.contains("real"));
        assert_eq!(s.lines[1].code.trim(), "let y = '';");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(s.lines[0].code.contains("<'a>"));
        assert_eq!(s.fns.len(), 1);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let x = r#\"unsafe { } .unwrap()\"#;\nlet z = 1;\n");
        assert!(!s.lines[0].code.contains("unsafe"));
        assert!(!s.lines[0].code.contains("unwrap"));
        assert_eq!(s.lines[1].code.trim(), "let z = 1;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scan("a(); /* one /* two */ still */ b();\n/* open\nmid\nclose */ c();\n");
        assert!(s.lines[0].code.contains("a();") && s.lines[0].code.contains("b();"));
        assert!(s.lines[1].code.trim().is_empty());
        assert!(s.lines[2].code.trim().is_empty());
        assert!(s.lines[3].code.contains("c();"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let s = scan(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(3) && s.in_test(5) && s.in_test(6));
        assert!(!s.in_test(7));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() {\n    let c = || {\n        1\n    };\n    fn inner() {\n        2;\n    }\n}\n";
        let s = scan(src);
        assert_eq!(s.fns.len(), 2);
        let f = s.enclosing_fn(6).unwrap();
        assert_eq!(f.decl_line, 5);
        let f = s.enclosing_fn(3).unwrap();
        assert_eq!(f.decl_line, 1);
    }

    #[test]
    fn fn_names_and_impl_types_are_extracted() {
        let src = "\
fn free() { 1; }
impl<'a, T: Clone> Widget<'a, T> {
    pub fn method(&self) { 2; }
}
impl std::fmt::Display for Gadget {
    fn fmt(&self) { 3; }
}
fn returns_opaque() -> impl Iterator<Item = u8> {
    std::iter::empty()
}
";
        let s = scan(src);
        let by_name: Vec<(&str, Option<&str>)> = s
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_ty.as_deref()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("free", None),
                ("method", Some("Widget")),
                ("fmt", Some("Gadget")),
                ("returns_opaque", None),
            ],
            "{:#?}",
            s.fns
        );
    }

    #[test]
    fn comment_block_above_spans_contiguous_comments() {
        let src = "fn f() {\n    // SAFETY: the invariant\n    // holds because reasons.\n    unsafe { x() }\n}\n";
        let s = scan(src);
        let block = s.comment_block_above(4);
        assert!(block.contains("SAFETY:"));
        assert!(block.contains("reasons"));
    }
}

//! Waivers: inline `lint:allow` comments and the central allowlist file.
//!
//! Inline form, on the flagged line or the line directly above:
//!
//! ```text
//! // lint:allow(L-PANIC): slab index handed out by this module, cannot dangle
//! ```
//!
//! A reason after the `):` is mandatory — a bare waiver is itself a lint
//! error (`L-WAIVER`).
//!
//! Central form, one entry per line in `crates/lint/lint.allow`:
//!
//! ```text
//! L-PANIC  crates/sim/src/sweep.rs  results.lock()
//! ```
//!
//! `rule`, a workspace-relative path, then a substring that must occur in
//! the flagged line's code. Every entry must match at least one diagnostic;
//! stale entries are reported (`L-ALLOW-STALE`) so the file cannot rot.

use crate::lexer::Scanned;
use crate::rules::Diagnostic;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry waives.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Substring of the flagged line's code.
    pub needle: String,
    /// Line in `lint.allow` (for stale reporting).
    pub line: usize,
}

/// Parses `lint.allow` content. Malformed lines become diagnostics.
pub fn parse_allowlist(content: &str, origin: &str) -> (Vec<AllowEntry>, Vec<Diagnostic>) {
    let mut entries = Vec::new();
    let mut diags = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some(rule), Some(path)) => {
                // The needle is everything after the second token (runs of
                // whitespace separate fields, so `splitn` would misparse).
                let needle = line
                    .trim_start()
                    .strip_prefix(rule)
                    .unwrap_or("")
                    .trim_start()
                    .strip_prefix(path)
                    .unwrap_or("")
                    .trim()
                    .to_string();
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    needle,
                    line: i + 1,
                });
            }
            _ => diags.push(Diagnostic {
                rule: "L-ALLOW-STALE",
                path: origin.to_string(),
                line: i + 1,
                msg: format!("malformed allowlist entry: `{line}`"),
                hint: "format: `RULE-ID  path/from/workspace/root.rs  line-substring`".into(),
            }),
        }
    }
    (entries, diags)
}

/// True when line `ln` (or the line above) carries `lint:allow(rule)`.
/// Returns `Some(has_reason)`.
fn inline_waiver(s: &Scanned, ln: usize, rule: &str) -> Option<bool> {
    let token = format!("lint:allow({rule})");
    for idx in [ln, ln.saturating_sub(1)] {
        if idx == 0 || idx > s.lines.len() {
            continue;
        }
        let c = &s.lines[idx - 1].comment;
        if let Some(pos) = c.find(&token) {
            let rest = c[pos + token.len()..]
                .trim_start_matches([':', '-', ' '])
                .trim();
            return Some(!rest.is_empty());
        }
    }
    None
}

/// Applies inline waivers and allowlist entries to raw diagnostics.
///
/// Returns the surviving diagnostics; appends `L-WAIVER` for reason-less
/// inline waivers and `L-ALLOW-STALE` for entries that matched nothing.
pub fn filter(
    diags: Vec<Diagnostic>,
    files: &[(String, Scanned)],
    allow: &[AllowEntry],
    allow_origin: &str,
) -> Vec<Diagnostic> {
    let mut used = vec![false; allow.len()];
    let mut out = Vec::new();
    for d in diags {
        let scanned = files.iter().find(|(p, _)| *p == d.path).map(|(_, s)| s);
        if let Some(s) = scanned {
            match inline_waiver(s, d.line, d.rule) {
                Some(true) => continue,
                Some(false) => {
                    out.push(Diagnostic {
                        rule: "L-WAIVER",
                        path: d.path.clone(),
                        line: d.line,
                        msg: format!("`lint:allow({})` without a reason", d.rule),
                        hint: "write `// lint:allow(RULE): <why this site is sound>`".into(),
                    });
                    continue;
                }
                None => {}
            }
            let code = s
                .lines
                .get(d.line - 1)
                .map(|l| l.code.as_str())
                .unwrap_or("");
            let hit = allow.iter().enumerate().find(|(_, e)| {
                e.rule == d.rule
                    && e.path == d.path
                    && (e.needle.is_empty() || code.contains(e.needle.as_str()))
            });
            if let Some((i, _)) = hit {
                used[i] = true;
                continue;
            }
        }
        out.push(d);
    }
    for (e, used) in allow.iter().zip(used) {
        if !used {
            out.push(Diagnostic {
                rule: "L-ALLOW-STALE",
                path: allow_origin.to_string(),
                line: e.line,
                msg: format!(
                    "allowlist entry matched nothing: `{} {} {}`",
                    e.rule, e.path, e.needle
                ),
                hint: "the violation was fixed or moved — delete the entry".into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::rules::lint_file;

    fn lint(src: &str) -> (Vec<Diagnostic>, Vec<(String, Scanned)>) {
        let s = scan(src);
        let d = lint_file("mem.rs", &s, false);
        (d, vec![("mem.rs".to_string(), s)])
    }

    #[test]
    fn inline_waiver_with_reason_suppresses() {
        let (d, files) = lint(
            "fn f() {\n    // lint:allow(L-PANIC): fixture-only path, input is trusted\n    x().unwrap();\n}\n",
        );
        assert_eq!(d.len(), 1);
        let out = filter(d, &files, &[], "lint.allow");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reasonless_waiver_is_its_own_violation() {
        let (d, files) = lint("fn f() {\n    x().unwrap(); // lint:allow(L-PANIC)\n}\n");
        let out = filter(d, &files, &[], "lint.allow");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "L-WAIVER");
    }

    #[test]
    fn allowlist_entry_suppresses_and_stale_is_flagged() {
        let (allow, parse_diags) = parse_allowlist(
            "# comment\nL-PANIC  mem.rs  x().unwrap()\nL-PANIC  gone.rs  y().unwrap()\n",
            "lint.allow",
        );
        assert!(parse_diags.is_empty());
        assert_eq!(allow.len(), 2);
        let (d, files) = lint("fn f() {\n    x().unwrap();\n}\n");
        let out = filter(d, &files, &allow, "lint.allow");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "L-ALLOW-STALE");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn malformed_allowlist_line_reports() {
        let (_, diags) = parse_allowlist("JUSTONETOKEN\n", "lint.allow");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L-ALLOW-STALE");
    }
}

//! The workspace lint rules.
//!
//! Every rule reports `file:line`, a message, and a fix hint, and every rule
//! can be waived inline with
//! `// lint:allow(RULE-ID): reason` on the flagged line or the line above,
//! or centrally via entries in `crates/lint/lint.allow` (see [`crate::allow`]).
//!
//! Rule catalog (also documented in DESIGN.md):
//!
//! | id           | requirement                                                       |
//! |--------------|-------------------------------------------------------------------|
//! | `L-SAFETY`   | every `unsafe` keyword carries a `SAFETY:` comment directly above |
//! | `L-ORDERING` | every fn doing atomic ops names `Ordering::*` explicitly and has an `ORDERING:` comment |
//! | `L-SEQCST`   | `Ordering::SeqCst` needs an `ORDERING:` comment that says "SeqCst" |
//! | `L-PANIC`    | non-test `.unwrap()` is banned; `.expect(` needs an invariant comment |
//!
//! The lock-related rules (`L-LOCK-ORDER`, `L-LOCK-DECL`, `L-DEADLOCK`,
//! `L-GUARD-LIFETIME`) are workspace-granular — they need the call graph —
//! and live in [`crate::locks`].
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` fns) is exempt from
//! `L-PANIC` but NOT from the concurrency rules — a racy test is still a
//! bug. CLI binaries under `src/bin/` are exempt from `L-PANIC` only
//! (top-level tools may panic on malformed input; clippy still warns).

use crate::lexer::{FnSpan, Scanned};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `L-SAFETY`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub msg: String,
    /// How to fix it.
    pub hint: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.msg, self.hint
        )
    }
}

/// Atomic read-modify-write / load / store method names that demand an
/// explicitly named `Ordering`.
const ATOMIC_OPS: &[&str] = &[
    ".load(",
    ".store(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_nand(",
    ".fetch_update(",
    ".fetch_max(",
    ".fetch_min(",
];

/// Lints one scanned file; `is_bin` marks `src/bin/**` CLI entry points.
///
/// The lock-order analysis is not run here — it needs every file at once
/// (see [`crate::locks::analyze`]); `walk::lint_workspace` combines both.
pub fn lint_file(path: &str, scanned: &Scanned, is_bin: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_safety(path, scanned, &mut out);
    rule_ordering(path, scanned, &mut out);
    if !is_bin {
        rule_panic(path, scanned, &mut out);
    }
    out
}

fn diag(
    rule: &'static str,
    path: &str,
    line: usize,
    msg: String,
    hint: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line,
        msg,
        hint: hint.to_string(),
    }
}

/// True when `code` contains `word` delimited by non-identifier characters.
fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// L-SAFETY: each `unsafe` keyword needs a `SAFETY:` comment on the same
/// line or in the contiguous comment block directly above.
fn rule_safety(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.lines.iter().enumerate() {
        let ln = i + 1;
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        let block = s.comment_block_above(ln);
        if !block.contains("SAFETY:") {
            out.push(diag(
                "L-SAFETY",
                path,
                ln,
                "`unsafe` without a `// SAFETY:` comment naming the invariant".into(),
                "add `// SAFETY: <why this cannot violate memory safety>` directly above",
            ));
        }
    }
}

/// Collects, per function, the lines with atomic ops, whether every op names
/// an `Ordering::`, and whether SeqCst appears.
fn rule_ordering(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    // Group atomic-op lines by enclosing fn (file-level consts etc. get a
    // pseudo-span of their own line).
    let mut per_fn: Vec<(Option<FnSpan>, Vec<usize>)> = Vec::new();
    for (i, line) in s.lines.iter().enumerate() {
        let ln = i + 1;
        if !ATOMIC_OPS.iter().any(|op| line.code.contains(op)) {
            continue;
        }
        let f = s.enclosing_fn(ln);
        match per_fn
            .iter_mut()
            .find(|(g, _)| match (g.as_ref(), f.as_ref()) {
                (Some(a), Some(b)) => a.decl_line == b.decl_line && a.body_end == b.body_end,
                (None, None) => true,
                _ => false,
            }) {
            Some((_, lines)) => lines.push(ln),
            None => per_fn.push((f, vec![ln])),
        }
    }
    for (span, op_lines) in per_fn {
        // The op itself (possibly wrapped by rustfmt) must name the ordering
        // explicitly: `Ordering::X` for std atomics, `Ord::X` for the
        // loom-lite model atomics (`cache_lint::loomlite::sync::Ord`), or a
        // self.ord.* field on a model parameterized over orderings.
        for &ln in &op_lines {
            // A rustfmt-wrapped compare_exchange puts its orderings up to
            // four lines below the method name; scan that far.
            let window: String = s.lines[ln - 1..(ln + 4).min(s.lines.len())]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            if !window.contains("Ordering::") && !window.contains("Ord::") && !window.contains(".ord.") {
                out.push(diag(
                    "L-ORDERING",
                    path,
                    ln,
                    "atomic operation without an explicitly named `Ordering::...`".into(),
                    "spell the ordering at the call site (no `use Ordering::*` shorthand)",
                ));
            }
        }
        // The enclosing fn (body or the comment block above the decl) must
        // carry an ORDERING: comment justifying the choices.
        let (lo, hi, anchor) = match span {
            Some(f) => (f.decl_line, f.body_end, f.decl_line),
            None => (op_lines[0], op_lines[0], op_lines[0]),
        };
        let mut commented = s.comment_block_above(anchor).contains("ORDERING:");
        let mut seqcst_justified = s.comment_block_above(anchor).contains("SeqCst");
        for i in lo..=hi {
            let c = &s.lines[i - 1].comment;
            if c.contains("ORDERING:") {
                commented = true;
                if c.contains("SeqCst") {
                    seqcst_justified = true;
                }
            }
        }
        if !commented {
            out.push(diag(
                "L-ORDERING",
                path,
                anchor,
                "function performs atomic operations but has no `// ORDERING:` comment".into(),
                "add `// ORDERING: <why these memory orderings are sufficient>` in or above the fn",
            ));
        }
        let seqcst_lines: Vec<usize> = op_lines
            .iter()
            .copied()
            .filter(|&ln| {
                s.lines[ln - 1..(ln + 4).min(s.lines.len())]
                    .iter()
                    .any(|l| l.code.contains("Ordering::SeqCst"))
            })
            .collect();
        if !seqcst_lines.is_empty() && !seqcst_justified {
            out.push(diag(
                "L-SEQCST",
                path,
                seqcst_lines[0],
                "`Ordering::SeqCst` without an `// ORDERING:` comment mentioning SeqCst".into(),
                "justify why the total order is needed (or downgrade to Acquire/Release/Relaxed)",
            ));
        }
    }
}

/// L-PANIC: `.unwrap()` banned outside tests; `.expect(` needs a nearby
/// invariant comment (the PR-1 robustness convention).
fn rule_panic(path: &str, s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (i, line) in s.lines.iter().enumerate() {
        let ln = i + 1;
        if s.in_test(ln) {
            continue;
        }
        if line.code.contains(".unwrap()") {
            out.push(diag(
                "L-PANIC",
                path,
                ln,
                "`.unwrap()` in non-test code".into(),
                "return an error, use `unwrap_or_else`, or `.expect(\"...\")` with an invariant comment",
            ));
        }
        if line.code.contains(".expect(") {
            // Accept a comment on the line, directly above, or within the
            // 4 preceding lines (the existing invariant-comment style puts
            // the comment above the statement, which may wrap).
            let mut ok = !line.comment.trim().is_empty();
            let lo = ln.saturating_sub(4).max(1);
            for j in lo..ln {
                if !s.lines[j - 1].comment.trim().is_empty() {
                    ok = true;
                    break;
                }
            }
            if !ok {
                out.push(diag(
                    "L-PANIC",
                    path,
                    ln,
                    "`.expect(...)` without a nearby comment naming the invariant".into(),
                    "add a comment within 4 lines above explaining why this cannot fail",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Vec<Diagnostic> {
        lint_file("mem.rs", &scan(src), false)
    }

    #[test]
    fn unsafe_without_safety_flags() {
        let d = run("fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "L-SAFETY");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_passes() {
        let d = run("fn f() {\n    // SAFETY: g is sound here.\n    unsafe { g() }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn atomic_without_ordering_comment_flags() {
        let d = run("fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "L-ORDERING");
    }

    #[test]
    fn atomic_with_fn_level_comment_passes() {
        let d = run(
            "// ORDERING: Relaxed is fine, the counter is monotonic.\nfn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unnamed_ordering_flags() {
        let d = run(
            "fn f(a: &AtomicUsize) -> usize {\n    // ORDERING: relaxed counter.\n    a.load(Relaxed)\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("explicitly named"));
    }

    #[test]
    fn seqcst_needs_naming_in_comment() {
        let flagged = run(
            "fn f(a: &AtomicUsize) {\n    // ORDERING: counters.\n    a.fetch_add(1, Ordering::SeqCst);\n}\n",
        );
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].rule, "L-SEQCST");
        let clean = run(
            "fn f(a: &AtomicUsize) {\n    // ORDERING: SeqCst — checker needs a total order.\n    a.fetch_add(1, Ordering::SeqCst);\n}\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn unwrap_flags_outside_tests_only() {
        let d = run("fn f() {\n    x().unwrap();\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y().unwrap(); }\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn expect_needs_nearby_comment() {
        let flagged = run("fn f() {\n    x().expect(\"boom\");\n}\n");
        assert_eq!(flagged.len(), 1);
        let clean = run("fn f() {\n    // Invariant: x is always Some after new().\n    x().expect(\"set in new\");\n}\n");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn bins_skip_panic_rule() {
        let d = lint_file("src/bin/tool.rs", &scan("fn main() {\n    x().unwrap();\n}\n"), true);
        assert!(d.is_empty());
    }

    #[test]
    fn strings_never_trigger_rules() {
        let d = run("fn f() {\n    let s = \"unsafe .unwrap() .lock() .lock()\";\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }
}

// Fixture: ABBA composed through the call graph — `refresh` never touches
// `data` directly; it holds `meta` across a call to `reload`, which
// acquires `data`. `writeback` takes data then meta. The cycle only exists
// after interprocedural composition, and the witness must say so
// (`via call to ...`). Expected: exactly one L-DEADLOCK. Line numbers are
// pinned by tests/fixtures.rs. Never compiled.

impl Store {
    // LOCK-ORDER: meta -> data; reload pulls fresh data while the meta
    // guard pins the epoch.
    fn refresh(&self) {
        let m = self.meta.lock();
        self.reload();
        drop(m);
    }

    fn reload(&self) {
        let d = self.data.lock();
        d.repopulate();
    }

    // LOCK-ORDER: data -> meta; writeback stamps metadata under the data
    // guard (inverted relative to refresh, hence the cycle).
    fn writeback(&self) {
        let d = self.data.lock();
        let m = self.meta.lock();
        m.stamp(d);
    }
}

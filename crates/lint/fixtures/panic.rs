// Fixture: L-PANIC. Line numbers are pinned by tests/fixtures.rs — keep
// both in sync. Never compiled.

pub fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn bare_expect(x: Option<u8>) -> u8 {
    x.expect("set by caller")
}

pub fn commented_expect(x: Option<u8>) -> u8 {
    // Invariant: every caller checks is_some first.
    x.expect("checked by caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        Some(2).unwrap();
    }
}

// Fixture: ABBA deadlock through two sibling functions — `forward` takes
// a then b, `backward` takes b then a. Each function's own declaration is
// locally truthful, so only the *global* cycle check can reject this.
// Expected: exactly one L-DEADLOCK whose witnesses name both paths. Line
// numbers are pinned by tests/fixtures.rs. Never compiled.

// LOCK-ORDER: a -> b; the forward path.
pub fn forward(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.touch(gb);
}

// LOCK-ORDER: b -> a; the backward path (inverted, hence the cycle).
pub fn backward(s: &Shared) {
    let gb = s.b.lock();
    let ga = s.a.lock();
    gb.touch(ga);
}

// Fixture: L-GUARD-LIFETIME — guards acquired in `if let` / `match`
// scrutinees stay live to the end of the whole construct (Rust 2021
// temporary lifetime rules), so a second acquisition inside the body
// overlaps even though the code *looks* like the guard is already gone.
// `copied_out` shows the fix shape: bind through a plain `let`, copy out,
// drop, then re-acquire — not flagged. Expected: L-GUARD-LIFETIME at the
// two scrutinee acquisitions only. Line numbers are pinned by
// tests/fixtures.rs. Never compiled.

impl Table {
    // LOCK-ORDER: map -> stats; the scrutinee guard overlaps the stats
    // acquisition (that is the bug this fixture pins).
    fn bump(&self) {
        if let Some(v) = self.map.read().get(&1) {
            self.stats.lock().push(*v);
        }
    }

    // LOCK-ORDER: map -> stats; same shape through a match scrutinee.
    fn tally(&self) {
        match self.map.read().get(&1) {
            Some(v) => self.stats.lock().push(*v),
            None => {}
        }
    }

    // LOCK-ORDER: disjoint; the plain `let` binding is dropped at the
    // explicit `drop` before stats is touched.
    fn copied_out(&self) {
        let g = self.map.read();
        let v = g.get(&1).copied();
        drop(g);
        if let Some(v) = v {
            self.stats.lock().push(v);
        }
    }
}

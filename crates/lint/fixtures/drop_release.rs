// Fixture: correct guard discipline is NOT flagged. `handoff` takes two
// locks, but the first guard is explicitly dropped before the second
// acquisition, so the `disjoint` declaration is machine-verified and the
// file produces zero diagnostics. tests/fixtures.rs pins the empty set.
// Never compiled.

// LOCK-ORDER: disjoint; `a` is dropped before `b` is taken — the guards
// never overlap.
pub fn handoff(s: &Shared) {
    let ga = s.a.lock();
    let item = ga.pop();
    drop(ga);
    let gb = s.b.lock();
    gb.push(item);
}

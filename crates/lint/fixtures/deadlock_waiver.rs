// Fixture: L-DEADLOCK waivers. `audit` inverts `forward`'s order but
// carries a reasoned `lint:allow(L-DEADLOCK)` — the edge is excluded from
// the cycle graph and nothing fires. `sloppy` carries a reasonless waiver:
// the edge is still excluded (no L-DEADLOCK), but the empty waiver itself
// is flagged L-WAIVER. Line numbers are pinned by tests/fixtures.rs.
// Never compiled.

// LOCK-ORDER: a -> b; the canonical order.
pub fn forward(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.touch(gb);
}

// LOCK-ORDER: b -> a; inverted on purpose — see the waiver.
pub fn audit(s: &Shared) {
    let gb = s.b.lock();
    // lint:allow(L-DEADLOCK): quiescent audit fixture — no concurrent forward() exists to hold `a` against this path
    let ga = s.a.lock();
    gb.check(ga);
}

// LOCK-ORDER: b -> a; inverted with a reasonless waiver.
pub fn sloppy(s: &Shared) {
    let gb = s.b.lock();
    // lint:allow(L-DEADLOCK)
    let ga = s.a.lock();
    gb.check(ga);
}

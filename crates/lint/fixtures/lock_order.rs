// Fixture: L-LOCK-ORDER. Line numbers are pinned by tests/fixtures.rs —
// keep both in sync. Never compiled.

// LOCK-ORDER: a -> b; everywhere in this module.
pub fn documented(s: &S) {
    let _a = s.a.lock();
    let _b = s.b.lock();
}

pub fn undocumented(s: &S) {
    let _a = s.a.lock();
    let _b = s.b.lock();
}

pub fn single_lock_is_fine(s: &S) {
    let _a = s.a.lock();
}

// Fixture: inline waivers. Line numbers are pinned by tests/fixtures.rs —
// keep both in sync. Never compiled.

pub fn waived(x: Option<u8>) -> u8 {
    // lint:allow(L-PANIC): fixture demonstrating a reasoned waiver
    x.unwrap()
}

pub fn reasonless(x: Option<u8>) -> u8 {
    x.unwrap() // lint:allow(L-PANIC)
}

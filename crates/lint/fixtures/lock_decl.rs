// Fixture: L-LOCK-DECL — the declaration checker itself. Four failure
// modes: a declaration that does not parse, `disjoint` contradicted by an
// observed overlap, an observed pair the declaration does not cover, a
// declared pair never observed (stale), and two declarations that
// contradict each other. Line numbers are pinned by tests/fixtures.rs.
// Never compiled.

// LOCK-ORDER: a before b, legacy prose that predates the checker.
pub fn unparseable(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.touch(gb);
}

// LOCK-ORDER: disjoint; claims the guards never overlap (they do).
pub fn not_disjoint(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.touch(gb);
}

// LOCK-ORDER: a -> b; says nothing about c.
pub fn uncovered(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    drop(gb);
    let gc = s.c.lock();
    ga.touch(gc);
}

// LOCK-ORDER: a -> c, c -> b; the c -> b leg was refactored away (stale).
pub fn stale(s: &Shared) {
    let ga = s.a.lock();
    let gc = s.c.lock();
    ga.touch(gc);
}

// LOCK-ORDER: disjoint; one maintainer's claim.
// LOCK-ORDER: a -> b; another maintainer's — they cannot both hold.
pub fn contradictory(s: &Shared) {
    let ga = s.a.lock();
    let gb = s.b.lock();
    ga.touch(gb);
}

// Fixture: the exact bug shape cache_lint's lock analysis exists to
// catch — the pre-fix `ConcurrentClock::insert` overwrite probe from this
// repo's history (see crates/concurrent/src/clock.rs). `claim_slot`
// establishes the real order (occupant, then index); `insert` holds an
// index-shard read guard as an `if let` scrutinee temporary (live to the
// end of the whole construct under Rust 2021 rules) while taking an
// occupant write lock — the ABBA inversion. Expected: L-GUARD-LIFETIME on
// the scrutinee acquisition and an L-DEADLOCK cycle whose witnesses name
// both paths. Line numbers are pinned by tests/fixtures.rs. Never
// compiled.

impl ConcurrentClock {
    // LOCK-ORDER: occupant -> index; a claimed slot is published in the
    // index under its occupant guard.
    fn claim_slot(&self, key: u64) -> usize {
        let idx = self.advance_hand();
        if let Some(mut occ) = self.slots[idx].occupant.try_write() {
            *occ = Some(key);
            self.index[shard_of(key)].write().insert(key, idx);
        }
        idx
    }

    // LOCK-ORDER: index -> occupant; the buggy inversion, exactly as
    // shipped before the fix.
    fn insert(&self, key: u64, val: u64) {
        if let Some(&slot_idx) = self.index[shard_of(key)].read().get(&key) {
            let mut occ = self.slots[slot_idx].occupant.write();
            *occ = Some(val);
            return;
        }
        self.claim_slot(key);
    }
}

// Fixture: L-SAFETY. Line numbers are pinned by tests/fixtures.rs — keep
// both in sync when editing. This file is never compiled.

// SAFETY: the pointer comes from a live reference held by the caller.
pub unsafe fn annotated(p: *const u8) -> u8 {
    *p
}

pub fn unannotated(p: *const u8) -> u8 {
    unsafe { *p }
}

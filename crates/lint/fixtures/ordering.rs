// Fixture: L-ORDERING / L-SEQCST. Line numbers are pinned by
// tests/fixtures.rs — keep both in sync. Never compiled.
use std::sync::atomic::{AtomicU64, Ordering};

// ORDERING: Relaxed — monotonic counter, no data published through it.
pub fn annotated(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn missing_comment(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

// ORDERING: relaxed counter read; the alias hides the ordering name.
pub fn unnamed_ordering(c: &AtomicU64) -> u64 {
    c.load(RELAXED_ALIAS)
}

// ORDERING: the checker wants one total store order here.
pub fn unjustified_seqcst(c: &AtomicU64) {
    c.store(1, Ordering::SeqCst);
}

//! Single-pass MRC engines ⇔ per-capacity replay equivalence.
//!
//! The multi-capacity engines (`cache_policies::dense::mrc`) must be
//! *decision identical*, per grid point, to replaying the single-capacity
//! dense policy at that capacity: same misses, same evictions, same miss
//! ratios, bit for bit. The exact-FIFO insertion-index engine is
//! additionally pinned with a property test over seeded Zipf traces (the
//! ISSUE's eviction-age cross-check: FIFO residency from insertion-index
//! distances must reproduce every per-capacity curve exactly).

use cache_sim::{
    simulate_mrc, simulate_named, CacheSizeSpec, MrcConfig, MrcEngine, SimConfig,
};
use cache_trace::gen::{SizeModel, WorkloadSpec};
use cache_trace::Trace;
use proptest::prelude::*;

/// Replays every grid point through `simulate_named` and asserts the MRC
/// result matches bit for bit.
fn assert_mrc_matches_sweep(
    algorithm: &str,
    trace: &Trace,
    capacities: &[u64],
    cfg: &MrcConfig,
    expect_engine: MrcEngine,
) {
    let mrc = simulate_mrc(algorithm, trace, capacities, cfg)
        .unwrap_or_else(|e| panic!("{algorithm} on {}: {e}", trace.name));
    assert_eq!(
        mrc.engine, expect_engine,
        "{algorithm} on {} routed through the wrong engine",
        trace.name
    );
    assert_eq!(mrc.points.len(), capacities.len());
    for (point, &cap) in mrc.points.iter().zip(capacities.iter()) {
        let sim_cfg = SimConfig {
            size: CacheSizeSpec::Bytes(cap),
            ignore_size: cfg.ignore_size,
            min_objects: 0,
            floor_objects: 0,
        };
        let reference = simulate_named(algorithm, trace, &sim_cfg)
            .unwrap_or_else(|e| panic!("{algorithm}@{cap} on {}: {e}", trace.name))
            .expect("no min_objects filter configured");
        let ctx = format!("{algorithm}@{cap} on {}", trace.name);
        assert_eq!(point.capacity, cap, "{ctx}: capacity");
        assert_eq!(point.requests, reference.requests, "{ctx}: requests");
        assert_eq!(point.misses, reference.misses, "{ctx}: misses");
        assert_eq!(point.evictions, reference.evictions, "{ctx}: evictions");
        assert_eq!(
            point.miss_ratio.to_bits(),
            reference.miss_ratio.to_bits(),
            "{ctx}: miss ratio bits"
        );
        assert_eq!(
            point.byte_miss_ratio.to_bits(),
            reference.byte_miss_ratio.to_bits(),
            "{ctx}: byte miss ratio bits"
        );
    }
}

/// The ganged FIFO-family engines match the per-capacity sweep on unit-size
/// Zipf and scan-heavy workloads (including a degenerate capacity-1 lane,
/// duplicates, and an unsorted grid).
#[test]
fn ganged_engines_match_sweep_unit_sizes() {
    let zipf = WorkloadSpec::zipf("zipf", 25_000, 2_500, 1.0, 42).generate();
    let mut scan_spec = WorkloadSpec::zipf("scan-heavy", 25_000, 1_500, 0.9, 7);
    scan_spec.scan_fraction = 0.4;
    scan_spec.scan_len = 100;
    scan_spec.scan_space = 3_000;
    let scan = scan_spec.generate();

    let grid = [1u64, 900, 30, 30, 120, 7];
    let cfg = MrcConfig::default();
    for trace in [&zipf, &scan] {
        for algo in ["CLOCK", "CLOCK-2bit", "SIEVE", "S3-FIFO", "S3-FIFO(0.25)"] {
            assert_mrc_matches_sweep(algo, trace, &grid, &cfg, MrcEngine::Ganged);
        }
        assert_mrc_matches_sweep("FIFO", trace, &grid, &cfg, MrcEngine::ExactFifo);
    }
}

/// With sizes honored, every FIFO-family curve (FIFO included — the exact
/// engine does not apply) goes through the ganged lanes and still matches.
#[test]
fn ganged_engines_match_sweep_sized() {
    let mut sized_spec = WorkloadSpec::zipf("sized", 15_000, 1_500, 1.0, 11);
    sized_spec.size_model = SizeModel::Uniform { min: 10, max: 1000 };
    let sized = sized_spec.generate();
    // Byte capacities spanning tiny (single object) to ~40% of footprint.
    let grid = [500u64, 5_000, 50_000, 300_000];
    let cfg = MrcConfig { ignore_size: false };
    for algo in ["FIFO", "CLOCK", "CLOCK-2bit", "SIEVE", "S3-FIFO"] {
        assert_mrc_matches_sweep(algo, &sized, &grid, &cfg, MrcEngine::Ganged);
    }
}

/// Deletes force FIFO off the exact engine; the ganged FIFO lanes must
/// still match the sweep decision for decision.
#[test]
fn fifo_with_deletes_routes_to_ganged_and_matches() {
    let mut spec = WorkloadSpec::zipf("deletes", 20_000, 2_000, 1.0, 13);
    spec.delete_fraction = 0.05;
    let trace = spec.generate();
    let grid = [1u64, 25, 100, 400, 1_600];
    let cfg = MrcConfig::default();
    assert_mrc_matches_sweep("FIFO", &trace, &grid, &cfg, MrcEngine::Ganged);
    assert_mrc_matches_sweep("SIEVE", &trace, &grid, &cfg, MrcEngine::Ganged);
}

/// Single-point grids are the degenerate base case: the MRC engines reduce
/// to exactly one lane and must still agree.
#[test]
fn single_point_grid_matches() {
    let trace = WorkloadSpec::zipf("one-point", 10_000, 1_000, 0.8, 17).generate();
    let cfg = MrcConfig::default();
    assert_mrc_matches_sweep("FIFO", &trace, &[64], &cfg, MrcEngine::ExactFifo);
    assert_mrc_matches_sweep("S3-FIFO", &trace, &[64], &cfg, MrcEngine::Ganged);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: over random seeded Zipf traces and random capacity grids,
    /// the exact-FIFO insertion-index engine reproduces the per-capacity
    /// FIFO replay curve bit for bit at every grid point.
    #[test]
    fn exact_fifo_curve_equals_per_capacity_replay(
        seed in 0u64..1_000_000,
        alpha_pct in 50u32..120,
        universe in 200u64..2_000,
        raw_caps in proptest::collection::vec(1u64..3_000, 1..8),
    ) {
        let alpha = f64::from(alpha_pct) / 100.0;
        let trace = WorkloadSpec::zipf("prop-zipf", 8_000, universe, alpha, seed).generate();
        let mrc = simulate_mrc("FIFO", &trace, &raw_caps, &MrcConfig::default())
            .expect("valid grid by construction");
        prop_assert_eq!(mrc.engine, MrcEngine::ExactFifo);
        for (point, &cap) in mrc.points.iter().zip(raw_caps.iter()) {
            let cfg = SimConfig {
                size: CacheSizeSpec::Bytes(cap),
                ignore_size: true,
                min_objects: 0,
                floor_objects: 0,
            };
            let reference = simulate_named("FIFO", &trace, &cfg)
                .expect("FIFO is a registry policy")
                .expect("no min_objects filter configured");
            prop_assert_eq!(point.requests, reference.requests);
            prop_assert_eq!(point.misses, reference.misses);
            prop_assert_eq!(point.evictions, reference.evictions);
            prop_assert_eq!(point.miss_ratio.to_bits(), reference.miss_ratio.to_bits());
        }
    }
}

//! Dense fast path ⇔ keyed reference equivalence.
//!
//! The dense-ID policies (`cache_policies::dense`) must be *decision
//! identical* to their keyed siblings: same misses, same evictions, same
//! miss ratios, bit for bit. Every registry algorithm is replayed through
//! both `simulate_named` (auto-dense with keyed fallback) and
//! `simulate_named_keyed` (forced keyed) across three workload shapes.

use cache_policies::registry::ALL_ALGORITHMS;
use cache_sim::{simulate_named, simulate_named_keyed, CacheSizeSpec, SimConfig};
use cache_trace::gen::{SizeModel, WorkloadSpec};
use cache_trace::Trace;

/// The three workload shapes: pure Zipfian, scan-heavy (scan resistance is
/// where 2Q/S3-FIFO ghost logic earns its keep), and variable object sizes
/// replayed with sizes honored.
fn workloads() -> Vec<(Trace, SimConfig)> {
    let zipf = WorkloadSpec::zipf("zipf", 30_000, 3_000, 1.0, 42).generate();

    let mut scan_spec = WorkloadSpec::zipf("scan-heavy", 30_000, 2_000, 0.9, 7);
    scan_spec.scan_fraction = 0.4;
    scan_spec.scan_len = 100;
    scan_spec.scan_space = 4_000;
    let scan = scan_spec.generate();

    let mut sized_spec = WorkloadSpec::zipf("sized", 20_000, 2_000, 1.0, 11);
    sized_spec.size_model = SizeModel::Uniform { min: 10, max: 1000 };
    let sized = sized_spec.generate();
    let sized_cfg = SimConfig {
        size: CacheSizeSpec::FractionOfBytes(0.1),
        ignore_size: false,
        min_objects: 0,
        floor_objects: 0,
    };

    vec![
        (zipf, SimConfig::large()),
        (scan, SimConfig::large()),
        (sized, sized_cfg),
    ]
}

/// Replays `trace` under `cfg` through the auto (dense-preferred) and forced
/// keyed paths and asserts the results are bit-identical.
fn assert_equivalent(name: &str, trace: &Trace, cfg: &SimConfig) {
    let fast = simulate_named(name, trace, cfg)
        .unwrap_or_else(|e| panic!("{name} on {}: {e}", trace.name))
        .expect("no min_objects filter configured");
    let reference = simulate_named_keyed(name, trace, cfg)
        .unwrap_or_else(|e| panic!("{name} on {}: {e}", trace.name))
        .expect("no min_objects filter configured");

    let ctx = format!(
        "{name} on {} (capacity {:?}, ignore_size={})",
        trace.name, cfg.size, cfg.ignore_size
    );
    assert_eq!(fast.algorithm, reference.algorithm, "{ctx}: name");
    assert_eq!(fast.capacity, reference.capacity, "{ctx}: capacity");
    assert_eq!(fast.requests, reference.requests, "{ctx}: requests");
    assert_eq!(fast.misses, reference.misses, "{ctx}: misses");
    assert_eq!(fast.evictions, reference.evictions, "{ctx}: evictions");
    assert_eq!(
        fast.miss_ratio.to_bits(),
        reference.miss_ratio.to_bits(),
        "{ctx}: miss_ratio {} vs {}",
        fast.miss_ratio,
        reference.miss_ratio
    );
    assert_eq!(
        fast.byte_miss_ratio.to_bits(),
        reference.byte_miss_ratio.to_bits(),
        "{ctx}: byte_miss_ratio"
    );
    assert_eq!(
        fast.one_hit_eviction_fraction.to_bits(),
        reference.one_hit_eviction_fraction.to_bits(),
        "{ctx}: one-hit fraction"
    );
    assert_eq!(
        fast.freq_at_eviction.count(),
        reference.freq_at_eviction.count(),
        "{ctx}: eviction histogram count"
    );
}

#[test]
fn dense_and_keyed_paths_are_bit_identical() {
    for (trace, cfg) in workloads() {
        for name in ALL_ALGORITHMS {
            assert_equivalent(name, &trace, &cfg);
        }
    }
}

/// Degenerate capacities: the full registry × {unit-size, sized} ×
/// capacity {1, 2}. A one- or two-byte cache forces an eviction on nearly
/// every insert and exercises the `max(1)` segment-sizing floors (small
/// queues, windows, protected segments) that normal capacities never hit.
#[test]
fn dense_and_keyed_agree_at_degenerate_capacities() {
    let mut spec = WorkloadSpec::zipf("tiny-cap", 5_000, 200, 1.0, 23);
    // Sizes 1..=3: at capacity 2 some objects fit and some are uncacheable,
    // covering both sides of the size guard.
    spec.size_model = SizeModel::Uniform { min: 1, max: 3 };
    let trace = spec.generate();
    for capacity in [1u64, 2] {
        for ignore_size in [true, false] {
            let cfg = SimConfig {
                size: CacheSizeSpec::Bytes(capacity),
                ignore_size,
                min_objects: 0,
                floor_objects: 0,
            };
            for name in ALL_ALGORITHMS {
                assert_equivalent(name, &trace, &cfg);
            }
        }
    }
}

/// The auto path must actually *take* the dense route for the core policies
/// (a fallback-everywhere bug would make the equivalence test vacuous).
#[test]
fn dense_variants_exist_for_core_policies() {
    let trace = WorkloadSpec::zipf("probe", 100, 50, 1.0, 1).generate();
    let ids = trace.dense().ids.clone();
    for name in [
        "FIFO",
        "LRU",
        "CLOCK",
        "CLOCK-2bit",
        "SIEVE",
        "SLRU",
        "2Q",
        "S3-FIFO",
        "S3-FIFO(0.25)",
    ] {
        assert!(
            cache_policies::registry::build_dense(name, 16, &ids)
                .unwrap()
                .is_some(),
            "{name} must have a dense fast path"
        );
    }
    assert!(cache_policies::registry::build_dense("LIRS", 16, &ids)
        .unwrap()
        .is_none());
}

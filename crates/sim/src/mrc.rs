//! Miss-ratio curves (MRC).
//!
//! §6.2.3 argues that adaptive algorithms implicitly assume the miss-ratio
//! curve is convex ("following the gradient direction leads to the global
//! optimum"), but "the miss ratio curves of scan-heavy workloads are often
//! not convex". This module computes MRCs two ways:
//!
//! - [`miss_ratio_curve`]: direct simulation at a grid of cache sizes
//!   (optionally on a SHARDS miniature for speed) — one full trace replay
//!   per grid point, works for every registry algorithm.
//! - [`simulate_mrc`]: the single-pass multi-capacity engines
//!   (`cache_policies::dense::mrc`) for the FIFO family — the whole grid in
//!   ~one trace pass, bit-identical to the per-capacity sweep. On
//!   pure-`Get` unit-size traces, FIFO routes to the exact insertion-index
//!   engine ([`MrcEngine::ExactFifo`]) and CLOCK / CLOCK-2bit / SIEVE /
//!   S3-FIFO (grids of ≤ 64 points) to the turbo lanes — bitmap residency
//!   plus timestamp-derived reference state ([`MrcEngine::Ganged`]).
//!   Streams with writes or honored sizes use the general interleaved
//!   linked-list lanes (also [`MrcEngine::Ganged`]); everything else falls
//!   back to the per-capacity sweep ([`MrcEngine::PerCapacity`]).
//!
//! Also provides the convexity check the §6.2.3 argument rests on.

use crate::engine::{simulate_named, CacheSizeSpec, SimConfig};
use cache_obs::{MissRatioSeries, Scope};
use cache_policies::registry;
use cache_trace::sampling::spatial_sample;
use cache_trace::Trace;
use cache_types::CacheError;
use std::time::Instant;

/// One point of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Cache size in objects.
    pub capacity: u64,
    /// Request miss ratio at that size.
    pub miss_ratio: f64,
}

/// A miss-ratio curve for one algorithm on one trace.
#[derive(Debug, Clone)]
pub struct MissRatioCurve {
    /// Algorithm name.
    pub algorithm: String,
    /// Points, sorted by capacity ascending.
    pub points: Vec<MrcPoint>,
}

impl MissRatioCurve {
    /// True when the curve is non-increasing in cache size (no Belady
    /// anomaly). FIFO famously violates this on some workloads.
    pub fn is_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].miss_ratio <= w[0].miss_ratio + 1e-9)
    }

    /// True when the curve is convex over its grid (second differences
    /// non-negative, using capacity as the x-axis). Scan-heavy workloads
    /// produce non-convex curves (§6.2.3).
    pub fn is_convex(&self) -> bool {
        self.points.windows(3).all(|w| {
            let (x0, y0) = (w[0].capacity as f64, w[0].miss_ratio);
            let (x1, y1) = (w[1].capacity as f64, w[1].miss_ratio);
            let (x2, y2) = (w[2].capacity as f64, w[2].miss_ratio);
            // Chord test: y1 at or below the x0-x2 chord means concave
            // there; convexity wants y1 >= ... actually a convex decreasing
            // MRC has y1 <= chord. We test convexity in the standard sense:
            // the point lies on or below the chord.
            let chord = y0 + (y2 - y0) * (x1 - x0) / (x2 - x0);
            y1 <= chord + 1e-9
        })
    }
}

/// Computes the MRC of `algorithm` on `trace` at the given capacities
/// (objects; unit-size simulation). When `sample_rate < 1`, the curve is
/// computed on a SHARDS miniature with capacities scaled accordingly.
///
/// # Errors
///
/// Propagates registry errors (unknown algorithm).
pub fn miss_ratio_curve(
    algorithm: &str,
    trace: &Trace,
    capacities: &[u64],
    sample_rate: f64,
) -> Result<MissRatioCurve, CacheError> {
    let sampled;
    let (sim_trace, scale) = if sample_rate < 1.0 {
        sampled = spatial_sample(trace, sample_rate, 0x5A17);
        (&sampled.trace, sample_rate)
    } else {
        (trace, 1.0)
    };
    let mut points = Vec::with_capacity(capacities.len());
    for &cap in capacities {
        let scaled = ((cap as f64 * scale).round() as u64).max(1);
        let cfg = SimConfig {
            size: CacheSizeSpec::Bytes(scaled),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 0,
        };
        // Invariant: min_objects is 0 above, so the filter never drops the run.
        let r = simulate_named(algorithm, sim_trace, &cfg)?.expect("no min_objects filter");
        points.push(MrcPoint {
            capacity: cap,
            miss_ratio: r.miss_ratio,
        });
    }
    points.sort_by_key(|p| p.capacity);
    Ok(MissRatioCurve {
        algorithm: algorithm.to_string(),
        points,
    })
}

/// Options for [`simulate_mrc`].
#[derive(Debug, Clone, Copy)]
pub struct MrcConfig {
    /// Replay every request at size 1 (capacities are then object counts,
    /// the paper's §5.1.2 convention). Default `true`.
    pub ignore_size: bool,
}

impl Default for MrcConfig {
    fn default() -> Self {
        MrcConfig { ignore_size: true }
    }
}

/// Which implementation produced a curve — recorded in [`MrcResult`] so
/// benchmarks and tests can assert the intended routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrcEngine {
    /// Exact single-pass FIFO via per-capacity insertion indices.
    ExactFifo,
    /// Interleaved ganged lanes, one per grid point, in one trace pass.
    Ganged,
    /// Per-capacity sweep fallback (one full replay per grid point).
    PerCapacity,
}

impl MrcEngine {
    /// Stable lowercase label for JSON artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            MrcEngine::ExactFifo => "exact-fifo",
            MrcEngine::Ganged => "ganged",
            MrcEngine::PerCapacity => "per-capacity",
        }
    }
}

/// One grid point of a [`simulate_mrc`] run — the full counter set, so
/// differential tests can compare more than the ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcSample {
    /// Cache capacity (objects with `ignore_size`, bytes otherwise).
    pub capacity: u64,
    /// Read requests processed (identical across grid points).
    pub requests: u64,
    /// Read misses at this capacity.
    pub misses: u64,
    /// Evictions at this capacity.
    pub evictions: u64,
    /// Request miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio (equals `miss_ratio` with `ignore_size`).
    pub byte_miss_ratio: f64,
}

/// A full multi-capacity simulation result.
#[derive(Debug, Clone)]
pub struct MrcResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Trace name.
    pub trace: String,
    /// Which engine produced the curve.
    pub engine: MrcEngine,
    /// One sample per input grid entry, in input order (duplicates and
    /// unsorted grids are preserved).
    pub points: Vec<MrcSample>,
}

impl MrcResult {
    /// The curve view: points sorted by capacity ascending, ready for
    /// [`MissRatioCurve::is_monotone`] / [`MissRatioCurve::is_convex`].
    pub fn curve(&self) -> MissRatioCurve {
        let mut points: Vec<MrcPoint> = self
            .points
            .iter()
            .map(|s| MrcPoint {
                capacity: s.capacity,
                miss_ratio: s.miss_ratio,
            })
            .collect();
        points.sort_by_key(|p| p.capacity);
        MissRatioCurve {
            algorithm: self.algorithm.clone(),
            points,
        }
    }

    /// Renders the curve as a [`MissRatioSeries`] — one window per grid
    /// point, exact counts — so MRC runs flow through the same export
    /// pipeline (`cache_obs::series_to_json_lines`) as windowed
    /// simulations.
    pub fn series(&self) -> MissRatioSeries {
        let requests = self.points.first().map_or(0, |s| s.requests);
        let mut series = MissRatioSeries::new(requests.max(1));
        for s in &self.points {
            // Aligned windows (take == requests) keep exact miss counts.
            series.record_window(s.requests, s.misses);
        }
        series
    }
}

/// True when the specialised pure-`Get` engines' stream preconditions hold
/// for this run: the exact-FIFO arithmetic and the turbo lanes' derived
/// reference state both require pure-`Get` unit-size streams, and both
/// store per-slot counters as `u32`. The op scan is cached on the trace
/// ([`Trace::shape`]), so repeated curves pay it once.
fn pure_get_stream(trace: &Trace, cfg: &MrcConfig) -> bool {
    cfg.ignore_size && trace.len() < u32::MAX as usize && trace.shape().pure_get
}

/// Computes the miss-ratio curve of `algorithm` on `trace` at every grid
/// capacity, in one trace pass where the FIFO-family engines apply (see the
/// module docs for routing). Results are bit-identical to running
/// [`crate::engine::simulate_named`] once per capacity.
///
/// Unlike [`miss_ratio_curve`], grid order is preserved in
/// [`MrcResult::points`] and full counters are returned per point.
///
/// # Errors
///
/// Returns [`CacheError`] for an unknown algorithm, an empty grid, or a
/// zero grid capacity.
pub fn simulate_mrc(
    algorithm: &str,
    trace: &Trace,
    capacities: &[u64],
    cfg: &MrcConfig,
) -> Result<MrcResult, CacheError> {
    if capacities.is_empty() {
        return Err(CacheError::InvalidParameter(
            "capacity grid must not be empty".into(),
        ));
    }
    if capacities.contains(&0) {
        return Err(CacheError::InvalidCapacity(
            "every grid capacity must be > 0".into(),
        ));
    }
    let dense = trace.dense();
    let run = |mut engine: Box<dyn cache_policies::MultiCapacityPolicy>, kind: MrcEngine| {
        engine.replay(&dense.slots, &trace.requests, cfg.ignore_size);
        debug_assert_eq!(engine.validate(), Ok(()), "MRC engine invariants");
        let points = engine
            .lane_stats()
            .iter()
            .zip(capacities.iter())
            .map(|(st, &cap)| MrcSample {
                capacity: cap,
                requests: st.gets,
                misses: st.misses,
                evictions: st.evictions,
                miss_ratio: st.miss_ratio(),
                byte_miss_ratio: st.byte_miss_ratio(),
            })
            .collect();
        MrcResult {
            algorithm: engine.name(),
            trace: trace.name.clone(),
            engine: kind,
            points,
        }
    };
    if pure_get_stream(trace, cfg) {
        if algorithm == "FIFO" {
            let engine = cache_policies::MrcExactFifo::new(capacities, &dense.ids)?;
            return Ok(run(Box::new(engine), MrcEngine::ExactFifo));
        }
        // The turbo lanes cover CLOCK / CLOCK-2bit / SIEVE / S3-FIFO(r) for
        // grids of up to 64 points; they are still "ganged" engines, just
        // specialised to the stream shape.
        if let Some(engine) = registry::build_mrc_turbo(algorithm, capacities, &dense.ids)? {
            return Ok(run(engine, MrcEngine::Ganged));
        }
    }
    if let Some(engine) = registry::build_mrc(algorithm, capacities, &dense.ids)? {
        return Ok(run(engine, MrcEngine::Ganged));
    }
    // Fallback: one full replay per grid point, same configs the sweep uses.
    let mut points = Vec::with_capacity(capacities.len());
    let mut name = algorithm.to_string();
    for &cap in capacities {
        let sim_cfg = SimConfig {
            size: CacheSizeSpec::Bytes(cap),
            ignore_size: cfg.ignore_size,
            min_objects: 0,
            floor_objects: 0,
        };
        // Invariant: min_objects is 0 above, so the filter never drops the run.
        let r = simulate_named(algorithm, trace, &sim_cfg)?.expect("no min_objects filter");
        name = r.algorithm;
        points.push(MrcSample {
            capacity: cap,
            requests: r.requests,
            misses: r.misses,
            evictions: r.evictions,
            miss_ratio: r.miss_ratio,
            byte_miss_ratio: r.byte_miss_ratio,
        });
    }
    Ok(MrcResult {
        algorithm: name,
        trace: trace.name.clone(),
        engine: MrcEngine::PerCapacity,
        points,
    })
}

/// Computes one curve per algorithm over the same grid — the multi-policy
/// front door mirroring [`crate::engine::simulate_named_many`].
///
/// # Errors
///
/// Fails on the first algorithm [`simulate_mrc`] rejects.
pub fn simulate_mrc_many(
    algorithms: &[&str],
    trace: &Trace,
    capacities: &[u64],
    cfg: &MrcConfig,
) -> Result<Vec<MrcResult>, CacheError> {
    algorithms
        .iter()
        .map(|name| simulate_mrc(name, trace, capacities, cfg))
        .collect()
}

/// [`simulate_mrc`] instrumented through the observability layer: bumps
/// `<scope>.curves` / `.points` / `.requests` / `.misses` counters and
/// records the amortized per-point wall time (µs) into the
/// `<scope>.point_micros` histogram.
///
/// # Errors
///
/// Same as [`simulate_mrc`]; nothing is recorded on error.
pub fn simulate_mrc_recorded(
    algorithm: &str,
    trace: &Trace,
    capacities: &[u64],
    cfg: &MrcConfig,
    scope: &Scope,
) -> Result<MrcResult, CacheError> {
    let start = Instant::now();
    let result = simulate_mrc(algorithm, trace, capacities, cfg)?;
    let elapsed = start.elapsed();
    scope.counter("curves").inc();
    scope.counter("points").add(result.points.len() as u64);
    let requests = result.points.first().map_or(0, |s| s.requests);
    scope.counter("requests").add(requests);
    scope
        .counter("misses")
        .add(result.points.iter().map(|s| s.misses).sum());
    let per_point_us = elapsed.as_micros() as u64 / result.points.len().max(1) as u64;
    scope.histogram("point_micros").record(per_point_us);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::{loop_trace, WorkloadSpec};

    #[test]
    fn mrc_decreases_with_size_on_zipf() {
        let t = WorkloadSpec::zipf("m", 60_000, 6000, 1.0, 3).generate();
        let caps = [100, 300, 1000, 3000];
        for algo in ["LRU", "S3-FIFO", "FIFO"] {
            let c = miss_ratio_curve(algo, &t, &caps, 1.0).unwrap();
            assert!(c.is_monotone(), "{algo} MRC not monotone: {:?}", c.points);
            assert!(
                c.points[0].miss_ratio > c.points[3].miss_ratio + 0.05,
                "{algo} MRC too flat"
            );
        }
    }

    #[test]
    fn loop_mrc_has_a_cliff_for_lru() {
        // LRU on a loop of length 1000: miss ratio ~1 below the loop size,
        // ~0 above it — the canonical non-convex cliff (§6.2.3).
        let t = loop_trace("loop", 1000, 30);
        let caps = [250, 500, 900, 1100];
        let c = miss_ratio_curve("LRU", &t, &caps, 1.0).unwrap();
        assert!(c.points[2].miss_ratio > 0.95, "below loop: {:?}", c.points);
        assert!(c.points[3].miss_ratio < 0.1, "above loop: {:?}", c.points);
        assert!(
            !c.is_convex(),
            "the LRU loop cliff must be non-convex: {:?}",
            c.points
        );
    }

    #[test]
    fn sampled_mrc_close_to_full() {
        let t = WorkloadSpec::zipf("m", 120_000, 10_000, 0.7, 5).generate();
        let caps = [500, 2000];
        let full = miss_ratio_curve("LRU", &t, &caps, 1.0).unwrap();
        let mini = miss_ratio_curve("LRU", &t, &caps, 0.25).unwrap();
        for (a, b) in full.points.iter().zip(mini.points.iter()) {
            assert!(
                (a.miss_ratio - b.miss_ratio).abs() < 0.06,
                "sampled MRC off: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn unknown_algorithm_errors() {
        let t = WorkloadSpec::zipf("m", 100, 10, 1.0, 1).generate();
        assert!(miss_ratio_curve("Nope", &t, &[10], 1.0).is_err());
    }

    #[test]
    fn simulate_mrc_routes_by_engine() {
        let t = WorkloadSpec::zipf("route", 20_000, 2000, 0.9, 7).generate();
        let caps = [50, 200, 800];
        let cfg = MrcConfig::default();
        let fifo = simulate_mrc("FIFO", &t, &caps, &cfg).unwrap();
        assert_eq!(fifo.engine, MrcEngine::ExactFifo);
        let sieve = simulate_mrc("SIEVE", &t, &caps, &cfg).unwrap();
        assert_eq!(sieve.engine, MrcEngine::Ganged);
        let lru = simulate_mrc("LRU", &t, &caps, &cfg).unwrap();
        assert_eq!(lru.engine, MrcEngine::PerCapacity);
        // FIFO honoring sizes loses the exact engine but stays single-pass.
        let sized = MrcConfig { ignore_size: false };
        let fifo_sized = simulate_mrc("FIFO", &t, &caps, &sized).unwrap();
        assert_eq!(fifo_sized.engine, MrcEngine::Ganged);
    }

    #[test]
    fn simulate_mrc_matches_per_capacity_replay() {
        let t = WorkloadSpec::zipf("diff", 30_000, 3000, 1.0, 11).generate();
        let caps = [30, 100, 300, 1000, 3000];
        let cfg = MrcConfig::default();
        for algo in ["FIFO", "CLOCK", "CLOCK-2bit", "SIEVE", "S3-FIFO"] {
            let mrc = simulate_mrc(algo, &t, &caps, &cfg).unwrap();
            for (p, &cap) in mrc.points.iter().zip(caps.iter()) {
                let sim_cfg = SimConfig {
                    size: CacheSizeSpec::Bytes(cap),
                    ignore_size: true,
                    min_objects: 0,
                    floor_objects: 0,
                };
                let r = simulate_named(algo, &t, &sim_cfg)
                    .unwrap()
                    .expect("no min_objects filter");
                // Invariant: min_objects is 0 above, so the run is kept.
                assert_eq!(p.misses, r.misses, "{algo}@{cap}");
                assert_eq!(p.evictions, r.evictions, "{algo}@{cap}");
                assert_eq!(p.requests, r.requests, "{algo}@{cap}");
                assert_eq!(
                    p.miss_ratio.to_bits(),
                    r.miss_ratio.to_bits(),
                    "{algo}@{cap}"
                );
            }
        }
    }

    #[test]
    fn simulate_mrc_validates_the_grid() {
        let t = WorkloadSpec::zipf("bad", 200, 20, 1.0, 13).generate();
        let cfg = MrcConfig::default();
        assert!(simulate_mrc("FIFO", &t, &[], &cfg).is_err());
        assert!(simulate_mrc("SIEVE", &t, &[8, 0], &cfg).is_err());
        assert!(simulate_mrc("Nope", &t, &[8], &cfg).is_err());
    }

    #[test]
    fn mrc_result_views() {
        let t = WorkloadSpec::zipf("views", 10_000, 1000, 0.9, 17).generate();
        // Unsorted with a duplicate: points stay in input order, curve sorts.
        let caps = [400, 50, 400];
        let r = simulate_mrc("FIFO", &t, &caps, &MrcConfig::default()).unwrap();
        assert_eq!(r.points[0], r.points[2], "duplicate grid entries agree");
        let curve = r.curve();
        assert_eq!(curve.points.first().map(|p| p.capacity), Some(50));
        let series = r.series();
        assert_eq!(series.points().len(), caps.len());
        for (w, p) in series.points().iter().zip(r.points.iter()) {
            assert_eq!(w.requests, p.requests);
            assert_eq!(w.misses, p.misses);
        }
        let many = simulate_mrc_many(&["FIFO", "SIEVE"], &t, &caps, &MrcConfig::default()).unwrap();
        assert_eq!(many.len(), 2);
    }

    #[test]
    fn recorded_mrc_bumps_metrics() {
        let registry = cache_obs::MetricsRegistry::new();
        let scope = registry.scope("mrc");
        let t = WorkloadSpec::zipf("obs", 5000, 500, 1.0, 19).generate();
        let caps = [20, 80, 320];
        let r = simulate_mrc_recorded("S3-FIFO", &t, &caps, &MrcConfig::default(), &scope).unwrap();
        assert_eq!(r.points.len(), caps.len());
        let dump = cache_obs::registry_to_json_lines(&registry);
        for metric in ["mrc.curves", "mrc.points", "mrc.requests", "mrc.misses", "mrc.point_micros"]
        {
            assert!(dump.contains(metric), "missing {metric} in {dump}");
        }
    }
}

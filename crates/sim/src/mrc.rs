//! Miss-ratio curves (MRC).
//!
//! §6.2.3 argues that adaptive algorithms implicitly assume the miss-ratio
//! curve is convex ("following the gradient direction leads to the global
//! optimum"), but "the miss ratio curves of scan-heavy workloads are often
//! not convex". This module computes MRCs by direct simulation at a grid of
//! cache sizes (optionally on a SHARDS miniature for speed) and provides the
//! convexity check the argument rests on.

use crate::engine::{simulate_named, CacheSizeSpec, SimConfig};
use cache_trace::sampling::spatial_sample;
use cache_trace::Trace;
use cache_types::CacheError;

/// One point of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Cache size in objects.
    pub capacity: u64,
    /// Request miss ratio at that size.
    pub miss_ratio: f64,
}

/// A miss-ratio curve for one algorithm on one trace.
#[derive(Debug, Clone)]
pub struct MissRatioCurve {
    /// Algorithm name.
    pub algorithm: String,
    /// Points, sorted by capacity ascending.
    pub points: Vec<MrcPoint>,
}

impl MissRatioCurve {
    /// True when the curve is non-increasing in cache size (no Belady
    /// anomaly). FIFO famously violates this on some workloads.
    pub fn is_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].miss_ratio <= w[0].miss_ratio + 1e-9)
    }

    /// True when the curve is convex over its grid (second differences
    /// non-negative, using capacity as the x-axis). Scan-heavy workloads
    /// produce non-convex curves (§6.2.3).
    pub fn is_convex(&self) -> bool {
        self.points.windows(3).all(|w| {
            let (x0, y0) = (w[0].capacity as f64, w[0].miss_ratio);
            let (x1, y1) = (w[1].capacity as f64, w[1].miss_ratio);
            let (x2, y2) = (w[2].capacity as f64, w[2].miss_ratio);
            // Chord test: y1 at or below the x0-x2 chord means concave
            // there; convexity wants y1 >= ... actually a convex decreasing
            // MRC has y1 <= chord. We test convexity in the standard sense:
            // the point lies on or below the chord.
            let chord = y0 + (y2 - y0) * (x1 - x0) / (x2 - x0);
            y1 <= chord + 1e-9
        })
    }
}

/// Computes the MRC of `algorithm` on `trace` at the given capacities
/// (objects; unit-size simulation). When `sample_rate < 1`, the curve is
/// computed on a SHARDS miniature with capacities scaled accordingly.
///
/// # Errors
///
/// Propagates registry errors (unknown algorithm).
pub fn miss_ratio_curve(
    algorithm: &str,
    trace: &Trace,
    capacities: &[u64],
    sample_rate: f64,
) -> Result<MissRatioCurve, CacheError> {
    let sampled;
    let (sim_trace, scale) = if sample_rate < 1.0 {
        sampled = spatial_sample(trace, sample_rate, 0x5A17);
        (&sampled.trace, sample_rate)
    } else {
        (trace, 1.0)
    };
    let mut points = Vec::with_capacity(capacities.len());
    for &cap in capacities {
        let scaled = ((cap as f64 * scale).round() as u64).max(1);
        let cfg = SimConfig {
            size: CacheSizeSpec::Bytes(scaled),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 0,
        };
        // Invariant: min_objects is 0 above, so the filter never drops the run.
        let r = simulate_named(algorithm, sim_trace, &cfg)?.expect("no min_objects filter");
        points.push(MrcPoint {
            capacity: cap,
            miss_ratio: r.miss_ratio,
        });
    }
    points.sort_by_key(|p| p.capacity);
    Ok(MissRatioCurve {
        algorithm: algorithm.to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::{loop_trace, WorkloadSpec};

    #[test]
    fn mrc_decreases_with_size_on_zipf() {
        let t = WorkloadSpec::zipf("m", 60_000, 6000, 1.0, 3).generate();
        let caps = [100, 300, 1000, 3000];
        for algo in ["LRU", "S3-FIFO", "FIFO"] {
            let c = miss_ratio_curve(algo, &t, &caps, 1.0).unwrap();
            assert!(c.is_monotone(), "{algo} MRC not monotone: {:?}", c.points);
            assert!(
                c.points[0].miss_ratio > c.points[3].miss_ratio + 0.05,
                "{algo} MRC too flat"
            );
        }
    }

    #[test]
    fn loop_mrc_has_a_cliff_for_lru() {
        // LRU on a loop of length 1000: miss ratio ~1 below the loop size,
        // ~0 above it — the canonical non-convex cliff (§6.2.3).
        let t = loop_trace("loop", 1000, 30);
        let caps = [250, 500, 900, 1100];
        let c = miss_ratio_curve("LRU", &t, &caps, 1.0).unwrap();
        assert!(c.points[2].miss_ratio > 0.95, "below loop: {:?}", c.points);
        assert!(c.points[3].miss_ratio < 0.1, "above loop: {:?}", c.points);
        assert!(
            !c.is_convex(),
            "the LRU loop cliff must be non-convex: {:?}",
            c.points
        );
    }

    #[test]
    fn sampled_mrc_close_to_full() {
        let t = WorkloadSpec::zipf("m", 120_000, 10_000, 0.7, 5).generate();
        let caps = [500, 2000];
        let full = miss_ratio_curve("LRU", &t, &caps, 1.0).unwrap();
        let mini = miss_ratio_curve("LRU", &t, &caps, 0.25).unwrap();
        for (a, b) in full.points.iter().zip(mini.points.iter()) {
            assert!(
                (a.miss_ratio - b.miss_ratio).abs() < 0.06,
                "sampled MRC off: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn unknown_algorithm_errors() {
        let t = WorkloadSpec::zipf("m", 100, 10, 1.0, 1).generate();
        assert!(miss_ratio_curve("Nope", &t, &[10], 1.0).is_err());
    }
}

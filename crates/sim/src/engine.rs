//! Single-trace simulation engine.

use cache_ds::Histogram;
use cache_policies::registry;
use cache_trace::Trace;
use cache_types::{CacheError, DensePolicy, Eviction, Outcome, Policy, Request};

/// How the cache capacity is derived for a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheSizeSpec {
    /// Absolute capacity in bytes (or objects when sizes are ignored).
    Bytes(u64),
    /// Fraction of the trace footprint in *objects* (§5.1.2's "10 % of the
    /// trace footprint"); only meaningful with `ignore_size = true`.
    FractionOfObjects(f64),
    /// Fraction of the trace footprint in *bytes* (§5.2.3's byte-miss-ratio
    /// sizing).
    FractionOfBytes(f64),
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Cache size derivation.
    pub size: CacheSizeSpec,
    /// When true, every request is treated as size 1 (the paper's default:
    /// "we ignore object size in the simulator", §5.1.2).
    pub ignore_size: bool,
    /// Skip the simulation when the derived capacity is below this many
    /// objects (the paper ignores traces where the small size is under 1000
    /// objects). `0` disables the check.
    pub min_objects: u64,
    /// Clamp the derived capacity up to at least this many objects (used by
    /// the scaled-down corpus instead of skipping). `0` disables the clamp.
    pub floor_objects: u64,
}

impl SimConfig {
    /// The paper's large-cache setting: 10 % of the trace footprint in
    /// objects, sizes ignored.
    pub fn large() -> Self {
        SimConfig {
            size: CacheSizeSpec::FractionOfObjects(0.10),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 10,
        }
    }

    /// The paper's small-cache setting: 0.1 % of the trace footprint
    /// (clamped at a 100-object floor for the scaled-down corpus; the paper
    /// uses a 1000-object floor on full-size traces).
    pub fn small() -> Self {
        SimConfig {
            size: CacheSizeSpec::FractionOfObjects(0.001),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 100,
        }
    }

    /// Resolves the configured size against a trace.
    pub fn capacity_for(&self, trace: &Trace) -> u64 {
        match self.size {
            CacheSizeSpec::Bytes(b) => b,
            CacheSizeSpec::FractionOfObjects(f) => {
                ((trace.footprint() as f64 * f).round() as u64).max(self.floor_objects.max(1))
            }
            CacheSizeSpec::FractionOfBytes(f) => {
                ((trace.footprint_bytes() as f64 * f).round() as u64).max(1)
            }
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Trace name.
    pub trace: String,
    /// Capacity used (bytes, or objects in ignore-size mode).
    pub capacity: u64,
    /// Read requests processed.
    pub requests: u64,
    /// Read misses.
    pub misses: u64,
    /// Request miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Number of evictions.
    pub evictions: u64,
    /// Distribution of post-insert access counts at eviction (Fig. 4).
    pub freq_at_eviction: Histogram,
    /// Fraction of evicted objects with zero post-insert accesses — the
    /// "one-hit wonders at eviction" of Fig. 4.
    pub one_hit_eviction_fraction: f64,
    /// Distribution of logical ages at eviction.
    pub eviction_age: Histogram,
}

/// Replays `trace` through `policy`, collecting eviction-time metrics.
///
/// Size override happens here and only here: with `ignore_size` every
/// request is replayed at size 1 without materializing a unit-size copy of
/// the trace.
pub fn simulate(policy: &mut dyn Policy, trace: &Trace, ignore_size: bool) -> SimResult {
    // A single eviction batch is small (one insert evicts a handful of
    // objects at most); preallocate once so the inner loop never grows it.
    let mut evs: Vec<Eviction> = Vec::with_capacity(64);
    let mut freq_at_eviction = Histogram::new();
    let mut eviction_age = Histogram::new();
    for (i, r) in trace.requests.iter().enumerate() {
        let req = if ignore_size {
            Request { size: 1, ..(*r) }
        } else {
            *r
        };
        evs.clear();
        policy.request(&req, &mut evs);
        for e in &evs {
            freq_at_eviction.record(u64::from(e.freq));
            eviction_age.record(e.age(i as u64));
        }
    }
    let stats = policy.stats();
    SimResult {
        algorithm: policy.name(),
        trace: trace.name.clone(),
        capacity: policy.capacity(),
        requests: stats.gets,
        misses: stats.misses,
        miss_ratio: stats.miss_ratio(),
        byte_miss_ratio: stats.byte_miss_ratio(),
        evictions: stats.evictions,
        one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
        freq_at_eviction,
        eviction_age,
    }
}

/// Per-request hook into the replay loop.
///
/// `cache-check`'s invariant observer plugs in here to verify structural
/// invariants (capacity bounds, duplicate residency, counter caps, ghost
/// bounds) after every single request; debugging probes and custom metric
/// collectors fit the same shape. Observation must not mutate the policy —
/// the hook only gets a shared reference.
pub trait RequestObserver {
    /// Called once per request, after the policy processed it. `req` is the
    /// request as replayed (size already overridden in ignore-size mode),
    /// `evicted` the evictions it caused, and `policy` the post-request
    /// state for structural inspection.
    fn after_request(
        &mut self,
        index: usize,
        req: &Request,
        outcome: Outcome,
        evicted: &[Eviction],
        policy: &dyn Policy,
    );
}

/// [`simulate`] with a [`RequestObserver`] attached to every request.
///
/// Kept separate from [`simulate`] so the unobserved replay loop stays free
/// of the extra dispatch; results are identical because observers cannot
/// mutate the policy.
pub fn simulate_observed(
    policy: &mut dyn Policy,
    trace: &Trace,
    ignore_size: bool,
    observer: &mut dyn RequestObserver,
) -> SimResult {
    let mut evs: Vec<Eviction> = Vec::with_capacity(64);
    let mut freq_at_eviction = Histogram::new();
    let mut eviction_age = Histogram::new();
    for (i, r) in trace.requests.iter().enumerate() {
        let req = if ignore_size {
            Request { size: 1, ..(*r) }
        } else {
            *r
        };
        evs.clear();
        let outcome = policy.request(&req, &mut evs);
        for e in &evs {
            freq_at_eviction.record(u64::from(e.freq));
            eviction_age.record(e.age(i as u64));
        }
        observer.after_request(i, &req, outcome, &evs, policy);
    }
    let stats = policy.stats();
    SimResult {
        algorithm: policy.name(),
        trace: trace.name.clone(),
        capacity: policy.capacity(),
        requests: stats.gets,
        misses: stats.misses,
        miss_ratio: stats.miss_ratio(),
        byte_miss_ratio: stats.byte_miss_ratio(),
        evictions: stats.evictions,
        one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
        freq_at_eviction,
        eviction_age,
    }
}

/// Replays `trace` through a dense-ID policy using the trace's interned slot
/// sequence ([`Trace::dense`]). Identical observable results to [`simulate`]
/// on the matching keyed policy — only faster.
pub fn simulate_dense(policy: &mut dyn DensePolicy, trace: &Trace, ignore_size: bool) -> SimResult {
    let dense = trace.dense();
    let mut freq_at_eviction = Histogram::new();
    let mut eviction_age = Histogram::new();
    // `replay` is overridden by every dense policy with a monomorphized
    // loop, so the per-request path inlines; this closure only runs per
    // eviction.
    policy.replay(&dense.slots, &trace.requests, ignore_size, &mut |i, e| {
        freq_at_eviction.record(u64::from(e.freq));
        eviction_age.record(e.age(i as u64));
    });
    let stats = policy.stats();
    SimResult {
        algorithm: policy.name(),
        trace: trace.name.clone(),
        capacity: policy.capacity(),
        requests: stats.gets,
        misses: stats.misses,
        miss_ratio: stats.miss_ratio(),
        byte_miss_ratio: stats.byte_miss_ratio(),
        evictions: stats.evictions,
        one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
        freq_at_eviction,
        eviction_age,
    }
}

/// How many requests ahead the ganged replay warms each policy's slot state;
/// matches the lookahead of the single-policy monomorphized loops.
const GANG_LOOKAHEAD: usize = 12;

/// Replays **one pass** of `trace` through several dense policies at once.
///
/// Sweep jobs that share a trace are independent, so a single trace
/// traversal can drive all of them: while one policy's slot load stalls on
/// memory, the others issue theirs, converting the per-job serial cache
/// misses of one-job-at-a-time replay into gang-wide memory-level
/// parallelism. On a single core this is where sweep throughput comes from;
/// results are bit-identical to running each policy alone because every
/// policy sees exactly the same request sequence and keeps private state.
pub fn simulate_dense_many(
    policies: &mut [Box<dyn DensePolicy>],
    trace: &Trace,
    ignore_size: bool,
) -> Vec<SimResult> {
    let dense = trace.dense();
    let slots = &dense.slots;
    let mut obs: Vec<(Histogram, Histogram)> = policies
        .iter()
        .map(|_| (Histogram::new(), Histogram::new()))
        .collect();
    let mut evs: Vec<Eviction> = Vec::with_capacity(64);
    for (i, (&slot, r)) in slots.iter().zip(trace.requests.iter()).enumerate() {
        if let Some(&ahead) = slots.get(i + GANG_LOOKAHEAD) {
            for p in policies.iter() {
                p.prefetch(ahead);
            }
        }
        let req = if ignore_size {
            Request { size: 1, ..(*r) }
        } else {
            *r
        };
        for (p, (freq_hist, age_hist)) in policies.iter_mut().zip(obs.iter_mut()) {
            evs.clear();
            p.request_dense(slot, &req, &mut evs);
            for e in &evs {
                freq_hist.record(u64::from(e.freq));
                age_hist.record(e.age(i as u64));
            }
        }
    }
    policies
        .iter()
        .zip(obs)
        .map(|(p, (freq_at_eviction, eviction_age))| {
            let stats = p.stats();
            SimResult {
                algorithm: p.name(),
                trace: trace.name.clone(),
                capacity: p.capacity(),
                requests: stats.gets,
                misses: stats.misses,
                miss_ratio: stats.miss_ratio(),
                byte_miss_ratio: stats.byte_miss_ratio(),
                evictions: stats.evictions,
                one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
                freq_at_eviction,
                eviction_age,
            }
        })
        .collect()
}

/// Simulates several named algorithms against the same trace and config,
/// ganging all dense-capable ones into a single trace pass
/// ([`simulate_dense_many`]) and running the rest through the keyed engine
/// individually. Results come back in input order; each entry is exactly
/// what [`simulate_named`] would have produced for that name.
///
/// # Errors
///
/// Propagates the first [`CacheError`] from the registry (unknown name, bad
/// parameter).
pub fn simulate_named_many(
    names: &[&str],
    trace: &Trace,
    cfg: &SimConfig,
) -> Result<Vec<Option<SimResult>>, CacheError> {
    let capacity = cfg.capacity_for(trace);
    if cfg.min_objects > 0 && capacity < cfg.min_objects {
        return Ok(names.iter().map(|_| None).collect());
    }
    let mut results: Vec<Option<SimResult>> = names.iter().map(|_| None).collect();
    let mut gang: Vec<Box<dyn DensePolicy>> = Vec::new();
    let mut gang_idx: Vec<usize> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        match registry::build_dense(name, capacity, &trace.dense().ids)? {
            Some(p) => {
                gang.push(p);
                gang_idx.push(i);
            }
            None => {
                let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
                results[i] = Some(simulate(policy.as_mut(), trace, cfg.ignore_size));
            }
        }
    }
    if gang.len() == 1 {
        // A gang of one gains nothing over the monomorphized single loop.
        results[gang_idx[0]] = Some(simulate_dense(gang[0].as_mut(), trace, cfg.ignore_size));
    } else if !gang.is_empty() {
        for (i, r) in gang_idx
            .into_iter()
            .zip(simulate_dense_many(&mut gang, trace, cfg.ignore_size))
        {
            results[i] = Some(r);
        }
    }
    Ok(results)
}

/// Builds the named algorithm for `trace` under `cfg` and simulates it.
///
/// Returns `None` when the derived capacity is below `cfg.min_objects`
/// (mirroring the paper's exclusion of too-small configurations).
///
/// # Errors
///
/// Propagates [`CacheError`] from the registry (unknown name, bad
/// parameter).
///
/// # Examples
///
/// ```
/// use cache_sim::{simulate_named, SimConfig};
/// use cache_trace::gen::WorkloadSpec;
///
/// let trace = WorkloadSpec::zipf("t", 20_000, 2_000, 1.0, 1).generate();
/// let s3 = simulate_named("S3-FIFO", &trace, &SimConfig::large())
///     .unwrap()
///     .unwrap();
/// let fifo = simulate_named("FIFO", &trace, &SimConfig::large())
///     .unwrap()
///     .unwrap();
/// assert!(s3.miss_ratio < fifo.miss_ratio);
/// ```
pub fn simulate_named(
    name: &str,
    trace: &Trace,
    cfg: &SimConfig,
) -> Result<Option<SimResult>, CacheError> {
    let capacity = cfg.capacity_for(trace);
    if cfg.min_objects > 0 && capacity < cfg.min_objects {
        return Ok(None);
    }
    if let Some(mut dense) = registry::build_dense(name, capacity, &trace.dense().ids)? {
        return Ok(Some(simulate_dense(dense.as_mut(), trace, cfg.ignore_size)));
    }
    let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
    Ok(Some(simulate(policy.as_mut(), trace, cfg.ignore_size)))
}

/// [`simulate_named`] forced onto the keyed (HashMap) policy path, never the
/// dense one. The equivalence tests and the throughput benchmark use this as
/// the reference implementation; everything else should call
/// [`simulate_named`].
///
/// # Errors
///
/// Propagates [`CacheError`] from the registry (unknown name, bad
/// parameter).
pub fn simulate_named_keyed(
    name: &str,
    trace: &Trace,
    cfg: &SimConfig,
) -> Result<Option<SimResult>, CacheError> {
    let capacity = cfg.capacity_for(trace);
    if cfg.min_objects > 0 && capacity < cfg.min_objects {
        return Ok(None);
    }
    let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
    Ok(Some(simulate(policy.as_mut(), trace, cfg.ignore_size)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::WorkloadSpec;

    fn small_trace() -> Trace {
        WorkloadSpec::zipf("t", 20_000, 2000, 1.0, 7).generate()
    }

    #[test]
    fn simulate_counts_match_policy_stats() {
        let trace = small_trace();
        let mut p = cache_policies::Lru::new(100).unwrap();
        let r = simulate(&mut p, &trace, true);
        assert_eq!(r.requests, 20_000);
        assert!(r.miss_ratio > 0.0 && r.miss_ratio < 1.0);
        assert_eq!(r.algorithm, "LRU");
        assert!(r.evictions > 0);
        assert_eq!(r.freq_at_eviction.count(), r.evictions);
    }

    #[test]
    fn capacity_resolution() {
        let trace = small_trace();
        let fp = trace.footprint() as f64;
        let cfg = SimConfig::large();
        let cap = cfg.capacity_for(&trace);
        assert_eq!(cap, (fp * 0.1).round() as u64);
        let cfg = SimConfig {
            size: CacheSizeSpec::Bytes(42),
            ignore_size: false,
            min_objects: 0,
            floor_objects: 0,
        };
        assert_eq!(cfg.capacity_for(&trace), 42);
    }

    #[test]
    fn small_config_clamps_to_floor() {
        let trace = small_trace(); // footprint ~1800 → 0.1 % ≈ 2 → floor 100
        let cfg = SimConfig::small();
        assert_eq!(cfg.capacity_for(&trace), 100);
    }

    #[test]
    fn named_simulation_runs_everything() {
        let trace = WorkloadSpec::zipf("t", 5000, 500, 1.0, 9).generate();
        let cfg = SimConfig::large();
        for name in ["FIFO", "LRU", "S3-FIFO", "ARC", "Belady"] {
            let r = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            assert_eq!(r.requests, 5000, "{name}");
        }
    }

    #[test]
    fn min_objects_skips_tiny_caches() {
        let trace = WorkloadSpec::zipf("t", 2000, 100, 1.0, 9).generate();
        let cfg = SimConfig {
            size: CacheSizeSpec::FractionOfObjects(0.001),
            ignore_size: true,
            min_objects: 1000,
            floor_objects: 0,
        };
        assert!(simulate_named("LRU", &trace, &cfg).unwrap().is_none());
    }

    #[test]
    fn s3fifo_beats_fifo_on_skewed_trace() {
        // The headline claim, end to end through the simulator.
        let trace = small_trace();
        let cfg = SimConfig::large();
        let fifo = simulate_named("FIFO", &trace, &cfg).unwrap().unwrap();
        let s3 = simulate_named("S3-FIFO", &trace, &cfg).unwrap().unwrap();
        assert!(
            s3.miss_ratio < fifo.miss_ratio,
            "S3-FIFO {:.4} must beat FIFO {:.4}",
            s3.miss_ratio,
            fifo.miss_ratio
        );
    }

    #[test]
    fn belady_is_lower_bound() {
        let trace = small_trace();
        let cfg = SimConfig::large();
        let opt = simulate_named("Belady", &trace, &cfg).unwrap().unwrap();
        for name in ["FIFO", "LRU", "S3-FIFO", "ARC", "TinyLFU"] {
            let r = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            assert!(
                opt.miss_ratio <= r.miss_ratio + 1e-12,
                "Belady {:.4} vs {name} {:.4}",
                opt.miss_ratio,
                r.miss_ratio
            );
        }
    }

    #[test]
    fn ganged_replay_matches_individual_runs() {
        let trace = small_trace();
        let cfg = SimConfig::large();
        // A mixed batch: dense-capable names ganged into one pass, keyed-only
        // names (ARC) simulated individually, all in input order.
        let names = ["S3-FIFO", "FIFO", "ARC", "LRU", "SIEVE"];
        let many = simulate_named_many(&names, &trace, &cfg).unwrap();
        assert_eq!(many.len(), names.len());
        for (name, got) in names.iter().zip(many) {
            let got = got.unwrap();
            let solo = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            assert_eq!(got.algorithm, solo.algorithm);
            assert_eq!(got.misses, solo.misses, "{name}");
            assert_eq!(got.evictions, solo.evictions, "{name}");
            assert_eq!(
                got.miss_ratio.to_bits(),
                solo.miss_ratio.to_bits(),
                "{name}"
            );
            assert_eq!(
                got.one_hit_eviction_fraction.to_bits(),
                solo.one_hit_eviction_fraction.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn ganged_replay_respects_min_objects() {
        let trace = WorkloadSpec::zipf("t", 2000, 100, 1.0, 9).generate();
        let cfg = SimConfig {
            size: CacheSizeSpec::FractionOfObjects(0.001),
            ignore_size: true,
            min_objects: 1000,
            floor_objects: 0,
        };
        let many = simulate_named_many(&["LRU", "FIFO"], &trace, &cfg).unwrap();
        assert!(many.iter().all(Option::is_none));
    }

    #[test]
    fn byte_miss_ratio_with_sizes() {
        let mut spec = WorkloadSpec::zipf("t", 10_000, 1000, 0.9, 11);
        spec.size_model = cache_trace::gen::SizeModel::Uniform { min: 10, max: 1000 };
        let trace = spec.generate();
        let cfg = SimConfig {
            size: CacheSizeSpec::FractionOfBytes(0.1),
            ignore_size: false,
            min_objects: 0,
            floor_objects: 0,
        };
        let r = simulate_named("S3-FIFO", &trace, &cfg).unwrap().unwrap();
        assert!(r.byte_miss_ratio > 0.0 && r.byte_miss_ratio <= 1.0);
        assert!(r.miss_ratio > 0.0);
    }
}

//! Cache simulator and parameter-sweep engine (the workspace's libCacheSim
//! substitute).
//!
//! - [`engine`] replays a trace through one policy and collects the
//!   eviction-time metrics the paper's figures need (miss ratio, byte miss
//!   ratio, frequency at eviction for Fig. 4, eviction ages).
//! - [`demotion`] computes the quick-demotion *speed* and *precision*
//!   metrics of §6.1 / Fig. 10 using an exact next-access oracle.
//! - [`sweep`] fans (trace × algorithm × cache size) combinations across a
//!   scoped-thread worker pool and aggregates the paper's
//!   miss-ratio-reduction percentiles (Figs. 6, 7, 11).
//! - [`observers`] attaches `cache-obs` instrumentation to both replay
//!   engines: per-window miss-ratio timeseries and replay-stage profiles.
//! - [`mrc`] computes miss-ratio curves; [`simulate_mrc`] runs the whole
//!   capacity grid in ~one trace pass for the FIFO family (exact
//!   insertion-index FIFO, interleaved ganged lanes for the rest),
//!   bit-identical to the per-capacity sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demotion;
pub mod engine;
pub mod mrc;
pub mod observers;
pub mod oracle;
pub mod stream;
pub mod sweep;

pub use demotion::{demotion_metrics, DemotionMetrics};
pub use engine::{
    simulate, simulate_dense, simulate_dense_many, simulate_named, simulate_named_keyed,
    simulate_named_many, simulate_observed, CacheSizeSpec, RequestObserver, SimConfig,
    SimResult,
};
pub use mrc::{
    miss_ratio_curve, simulate_mrc, simulate_mrc_many, simulate_mrc_recorded, MissRatioCurve,
    MrcConfig, MrcEngine, MrcPoint, MrcResult, MrcSample,
};
pub use observers::{
    simulate_dense_profiled, simulate_dense_windowed, simulate_named_windowed, simulate_windowed,
    DenseWindowed, TimeseriesObserver,
};
pub use oracle::NextAccessOracle;
pub use stream::{replay_ctr_path, replay_ctr_windowed, StreamReplay, DEFAULT_CHUNK_RECORDS};
pub use sweep::{
    miss_ratio_reduction, per_dataset_means, run_sweep, run_sweep_with_abort,
    summarize_reductions, JobReport, JobStatus, SweepOutcome, SweepRecord, SweepSpec, MAX_GANG,
};

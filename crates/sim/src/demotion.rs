//! Quick-demotion speed and precision (§6.1, Fig. 10).
//!
//! - **Speed**: "how long objects stay in S before they are evicted or moved
//!   to M. We use the LRU eviction age as a baseline and calculate the speed
//!   as LRU-eviction-age / time-in-S", in logical time.
//! - **Precision**: "if the number of requests till an object's next reuse
//!   is larger than cache-size / miss-ratio, then … the quick demotion
//!   results in a correct early eviction."
//!
//! Both are computed from the policies' probationary-eviction records plus
//! the [`NextAccessOracle`].

use crate::oracle::NextAccessOracle;
use cache_policies::registry;
use cache_trace::Trace;
use cache_types::{CacheError, Eviction, Request};

/// The Fig. 10 metrics for one (algorithm, trace, size) combination.
#[derive(Debug, Clone, Copy)]
pub struct DemotionMetrics {
    /// Mean logical time spent in the probationary structure before
    /// demotion (eviction from S / the window / T1).
    pub mean_time_in_probation: f64,
    /// LRU's mean eviction age on the same trace and size.
    pub lru_eviction_age: f64,
    /// Normalized speed: `lru_eviction_age / mean_time_in_probation`.
    pub speed: f64,
    /// Fraction of probationary evictions that were *correct* early
    /// evictions per the paper's criterion.
    pub precision: f64,
    /// Number of probationary evictions observed.
    pub demotions: u64,
    /// The algorithm's miss ratio on this run.
    pub miss_ratio: f64,
}

/// Runs `name` on `trace` at `capacity` (unit sizes) and computes demotion
/// speed and precision. `lru_eviction_age` is the precomputed LRU baseline
/// (see [`lru_mean_eviction_age`]).
///
/// # Errors
///
/// Propagates registry errors for unknown algorithm names.
pub fn demotion_metrics(
    name: &str,
    trace: &Trace,
    capacity: u64,
    lru_eviction_age: f64,
    oracle: &NextAccessOracle,
) -> Result<DemotionMetrics, CacheError> {
    let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
    let mut evs: Vec<Eviction> = Vec::new();
    let mut probation_time_sum = 0u64;
    let mut demotions = 0u64;
    // (eviction time, reuse distance or None) for precision, judged after
    // the run when the final miss ratio is known.
    let mut reuse: Vec<Option<u64>> = Vec::new();
    for (i, r) in trace.requests.iter().enumerate() {
        let req = Request { size: 1, ..*r };
        evs.clear();
        policy.request(&req, &mut evs);
        let now = i as u64;
        for e in &evs {
            if e.from_probationary {
                demotions += 1;
                probation_time_sum += now.saturating_sub(e.insert_time);
                reuse.push(oracle.reuse_distance(e.id, now));
            }
        }
    }
    let stats = policy.stats();
    let miss_ratio = stats.miss_ratio().max(1e-6);
    let threshold = capacity as f64 / miss_ratio;
    let correct = reuse
        .iter()
        .filter(|d| match d {
            None => true, // never reused: unquestionably correct
            Some(dist) => (*dist as f64) > threshold,
        })
        .count();
    let mean_time = if demotions == 0 {
        f64::INFINITY
    } else {
        probation_time_sum as f64 / demotions as f64
    };
    let precision = if reuse.is_empty() {
        1.0
    } else {
        correct as f64 / reuse.len() as f64
    };
    Ok(DemotionMetrics {
        mean_time_in_probation: mean_time,
        lru_eviction_age,
        speed: if mean_time.is_finite() && mean_time > 0.0 {
            lru_eviction_age / mean_time
        } else {
            0.0
        },
        precision,
        demotions,
        miss_ratio: stats.miss_ratio(),
    })
}

/// LRU's mean eviction age on `trace` at `capacity` — the speed baseline.
pub fn lru_mean_eviction_age(trace: &Trace, capacity: u64) -> f64 {
    let mut lru = cache_policies::Lru::new(capacity).expect("capacity > 0");
    let mut evs: Vec<Eviction> = Vec::new();
    let mut sum = 0u64;
    let mut n = 0u64;
    for (i, r) in trace.requests.iter().enumerate() {
        let req = Request { size: 1, ..*r };
        evs.clear();
        cache_types::Policy::request(&mut lru, &req, &mut evs);
        for e in &evs {
            sum += (i as u64).saturating_sub(e.insert_time);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::zipf("t", 30_000, 3000, 1.0, 13).generate()
    }

    #[test]
    fn lru_age_positive_under_pressure() {
        let t = trace();
        let age = lru_mean_eviction_age(&t, 200);
        assert!(age > 200.0, "LRU eviction age {age} should exceed capacity");
    }

    #[test]
    fn s3fifo_demotes_faster_than_lru_evicts() {
        let t = trace();
        let cap = 300u64;
        let oracle = NextAccessOracle::new(&t.requests);
        let lru_age = lru_mean_eviction_age(&t, cap);
        let m = demotion_metrics("S3-FIFO", &t, cap, lru_age, &oracle).unwrap();
        assert!(m.demotions > 0);
        assert!(
            m.speed > 1.0,
            "S3-FIFO's small queue must demote faster than LRU evicts: speed {}",
            m.speed
        );
    }

    #[test]
    fn smaller_s_is_faster() {
        // §6.1: "reducing the size of S always increases the demotion
        // speed."
        let t = trace();
        let cap = 300u64;
        let oracle = NextAccessOracle::new(&t.requests);
        let lru_age = lru_mean_eviction_age(&t, cap);
        let fast = demotion_metrics("S3-FIFO(0.05)", &t, cap, lru_age, &oracle).unwrap();
        let slow = demotion_metrics("S3-FIFO(0.40)", &t, cap, lru_age, &oracle).unwrap();
        assert!(
            fast.speed > slow.speed,
            "5% S speed {} should exceed 40% S speed {}",
            fast.speed,
            slow.speed
        );
    }

    #[test]
    fn precision_between_zero_and_one() {
        let t = trace();
        let cap = 300u64;
        let oracle = NextAccessOracle::new(&t.requests);
        let lru_age = lru_mean_eviction_age(&t, cap);
        for name in ["S3-FIFO", "TinyLFU-0.1", "ARC", "2Q"] {
            let m = demotion_metrics(name, &t, cap, lru_age, &oracle).unwrap();
            assert!(
                (0.0..=1.0).contains(&m.precision),
                "{name} precision {}",
                m.precision
            );
        }
    }

    #[test]
    fn no_demotions_without_pressure() {
        let small = WorkloadSpec::zipf("t", 1000, 50, 1.0, 3).generate();
        let oracle = NextAccessOracle::new(&small.requests);
        let m = demotion_metrics("S3-FIFO", &small, 10_000, 0.0, &oracle).unwrap();
        assert_eq!(m.demotions, 0);
        assert_eq!(m.speed, 0.0);
    }
}

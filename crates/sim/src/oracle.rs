//! Exact next-access oracle over a trace.
//!
//! The Fig. 10 precision metric asks, for every object evicted at time `t`,
//! how far in the future its next request lies. [`NextAccessOracle`]
//! answers that in O(log k) per query from per-object sorted position lists.

use cache_ds::IdMap;
use cache_types::{ObjId, Request};

/// Per-object request positions, queryable for "next access after t".
#[derive(Debug)]
pub struct NextAccessOracle {
    positions: IdMap<Vec<u64>>,
    trace_len: u64,
}

impl NextAccessOracle {
    /// Builds the oracle from a trace (read requests only).
    pub fn new(reqs: &[Request]) -> Self {
        let mut positions: IdMap<Vec<u64>> = IdMap::default();
        for (i, r) in reqs.iter().enumerate() {
            if r.is_read() {
                positions.entry(r.id).or_default().push(i as u64);
            }
        }
        NextAccessOracle {
            positions,
            trace_len: reqs.len() as u64,
        }
    }

    /// Position of the first request to `id` strictly after position `t`,
    /// or `None` if the object is never requested again.
    pub fn next_access_after(&self, id: ObjId, t: u64) -> Option<u64> {
        let ps = self.positions.get(&id)?;
        let idx = ps.partition_point(|&p| p <= t);
        ps.get(idx).copied()
    }

    /// Forward distance (in requests) from `t` to the next request of `id`;
    /// `None` when there is none.
    pub fn reuse_distance(&self, id: ObjId, t: u64) -> Option<u64> {
        self.next_access_after(id, t).map(|n| n - t)
    }

    /// Number of requests in the trace the oracle was built from.
    pub fn trace_len(&self) -> u64 {
        self.trace_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs_of(ids: &[u64]) -> Vec<Request> {
        ids.iter()
            .enumerate()
            .map(|(t, &id)| Request::get(id, t as u64))
            .collect()
    }

    #[test]
    fn finds_next_access() {
        let reqs = reqs_of(&[1, 2, 1, 3, 1]);
        let o = NextAccessOracle::new(&reqs);
        assert_eq!(o.next_access_after(1, 0), Some(2));
        assert_eq!(o.next_access_after(1, 2), Some(4));
        assert_eq!(o.next_access_after(1, 4), None);
        assert_eq!(o.next_access_after(2, 1), None);
        assert_eq!(o.next_access_after(99, 0), None);
    }

    #[test]
    fn reuse_distance_is_forward() {
        let reqs = reqs_of(&[5, 0, 0, 5]);
        let o = NextAccessOracle::new(&reqs);
        assert_eq!(o.reuse_distance(5, 0), Some(3));
        assert_eq!(o.reuse_distance(0, 1), Some(1));
    }

    #[test]
    fn query_before_first_access() {
        let reqs = reqs_of(&[9, 9]);
        let o = NextAccessOracle::new(&reqs);
        // t earlier than any position: strictly-after semantics.
        assert_eq!(o.next_access_after(9, 0), Some(1));
    }

    #[test]
    fn trace_len_reported() {
        let o = NextAccessOracle::new(&reqs_of(&[1, 2, 3]));
        assert_eq!(o.trace_len(), 3);
    }
}

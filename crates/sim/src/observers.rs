//! Observability hooks into the replay engines: the windowed miss-ratio
//! timeseries observer (Fig. 6's per-window view) and replay-stage
//! profiling.
//!
//! Two integration styles, matched to each engine's cost model:
//!
//! - **Keyed engine** — [`TimeseriesObserver`] plugs into the existing
//!   [`RequestObserver`] hook ([`simulate_observed`]); one branch per
//!   request.
//! - **Dense engine** — the monomorphized replay loop must stay free of
//!   per-request callbacks, so [`simulate_dense_windowed`] replays in
//!   window-sized chunks and derives each window's request/miss counts from
//!   [`PolicyStats`] deltas between chunks. Observable results are
//!   identical to [`simulate_dense`]: same requests, same policy state,
//!   same eviction records (chunking only shortens the prefetch lookahead
//!   at chunk boundaries, which affects speed, not decisions).

use crate::engine::{simulate_dense, simulate_observed, RequestObserver, SimConfig, SimResult};
use cache_ds::Histogram;
use cache_obs::{MissRatioSeries, ReplayProfile};
use cache_policies::registry;
use cache_trace::Trace;
use cache_types::{CacheError, DensePolicy, Eviction, Outcome, Policy, Request};
use std::time::Instant;

/// A [`RequestObserver`] that feeds a [`MissRatioSeries`].
///
/// Mirrors [`PolicyStats`](cache_types::PolicyStats) accounting exactly:
/// non-read requests ([`Outcome::NotRead`]) are not counted, and
/// [`Outcome::Uncacheable`] counts as a miss — so the series' totals can be
/// asserted equal to the end-of-run stats.
pub struct TimeseriesObserver<'a> {
    series: &'a mut MissRatioSeries,
}

impl<'a> TimeseriesObserver<'a> {
    /// Wraps a series for one observed run.
    pub fn new(series: &'a mut MissRatioSeries) -> Self {
        TimeseriesObserver { series }
    }
}

impl RequestObserver for TimeseriesObserver<'_> {
    fn after_request(
        &mut self,
        _index: usize,
        _req: &Request,
        outcome: Outcome,
        _evicted: &[Eviction],
        _policy: &dyn Policy,
    ) {
        if outcome != Outcome::NotRead {
            self.series.record(outcome.is_miss());
        }
    }
}

/// [`simulate`](crate::simulate) plus a windowed miss-ratio timeseries with
/// `window` requests per window.
pub fn simulate_windowed(
    policy: &mut dyn Policy,
    trace: &Trace,
    ignore_size: bool,
    window: u64,
) -> (SimResult, MissRatioSeries) {
    let mut series = MissRatioSeries::new(window);
    let mut observer = TimeseriesObserver::new(&mut series);
    let result = simulate_observed(policy, trace, ignore_size, &mut observer);
    series.finish();
    (result, series)
}

/// [`simulate_dense`] plus a windowed miss-ratio timeseries.
///
/// The trace is replayed in window-sized chunks through the policy's own
/// monomorphized loop; each window's counts come from stats deltas, so the
/// per-request fast path carries zero extra work.
pub fn simulate_dense_windowed(
    policy: &mut dyn DensePolicy,
    trace: &Trace,
    ignore_size: bool,
    window: u64,
) -> (SimResult, MissRatioSeries) {
    let dense = trace.dense();
    let slots = &dense.slots;
    let window_usize = window.max(1) as usize;
    let mut series = MissRatioSeries::new(window);
    let mut freq_at_eviction = Histogram::new();
    let mut eviction_age = Histogram::new();
    let mut prev = policy.stats();
    let mut base = 0usize;
    while base < slots.len() {
        let end = (base + window_usize).min(slots.len());
        // Eviction callbacks see chunk-relative indices; rebase them so
        // eviction ages match the unchunked replay bit for bit.
        let offset = base as u64;
        policy.replay(
            &slots[base..end],
            &trace.requests[base..end],
            ignore_size,
            &mut |i, e| {
                freq_at_eviction.record(u64::from(e.freq));
                eviction_age.record(e.age(offset + i as u64));
            },
        );
        let cur = policy.stats();
        series.record_window(cur.gets - prev.gets, cur.misses - prev.misses);
        prev = cur;
        base = end;
    }
    series.finish();
    let stats = policy.stats();
    let result = SimResult {
        algorithm: policy.name(),
        trace: trace.name.clone(),
        capacity: policy.capacity(),
        requests: stats.gets,
        misses: stats.misses,
        miss_ratio: stats.miss_ratio(),
        byte_miss_ratio: stats.byte_miss_ratio(),
        evictions: stats.evictions,
        one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
        freq_at_eviction,
        eviction_age,
    };
    (result, series)
}

/// Builds the named algorithm and simulates it with a windowed timeseries,
/// preferring the dense fast path exactly like
/// [`simulate_named`](crate::simulate_named).
///
/// # Errors
///
/// Propagates [`CacheError`] from the registry (unknown name, bad
/// parameter).
pub fn simulate_named_windowed(
    name: &str,
    trace: &Trace,
    cfg: &SimConfig,
    window: u64,
) -> Result<Option<(SimResult, MissRatioSeries)>, CacheError> {
    let capacity = cfg.capacity_for(trace);
    if cfg.min_objects > 0 && capacity < cfg.min_objects {
        return Ok(None);
    }
    if let Some(mut dense) = registry::build_dense(name, capacity, &trace.dense().ids)? {
        return Ok(Some(simulate_dense_windowed(
            dense.as_mut(),
            trace,
            cfg.ignore_size,
            window,
        )));
    }
    let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
    Ok(Some(simulate_windowed(
        policy.as_mut(),
        trace,
        cfg.ignore_size,
        window,
    )))
}

/// [`simulate_dense`] with per-stage profiling: op counts and wall time for
/// the intern, replay, and aggregate stages.
///
/// The replay stage itself is the unmodified monomorphized loop — the
/// profile brackets stages with two clock reads each, so the per-request
/// path is untouched.
pub fn simulate_dense_profiled(
    policy: &mut dyn DensePolicy,
    trace: &Trace,
    ignore_size: bool,
) -> (SimResult, ReplayProfile) {
    let mut profile = ReplayProfile::new();

    let t0 = Instant::now();
    let slots = trace.dense().slots.len() as u64;
    profile.push("intern", slots, t0.elapsed());

    let t0 = Instant::now();
    let result = simulate_dense(policy, trace, ignore_size);
    profile.push("replay", result.requests, t0.elapsed());

    let t0 = Instant::now();
    let evictions = result.freq_at_eviction.count();
    profile.push("aggregate", evictions, t0.elapsed());

    (result, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_named_keyed;
    use crate::simulate_named;
    use cache_trace::gen::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::zipf("obs-t", 20_000, 2000, 1.0, 5).generate()
    }

    /// Satellite: windowed timeseries totals must agree with end-of-run
    /// stats for registry policies, on both engines.
    #[test]
    fn window_sums_match_totals_keyed_and_dense() {
        let trace = trace();
        let cfg = SimConfig::large();
        for name in ["FIFO", "LRU", "S3-FIFO"] {
            // Dense path (these three all have dense variants).
            let (dense_result, dense_series) =
                simulate_named_windowed(name, &trace, &cfg, 1000)
                    .expect("known policy")
                    .expect("no size filter");
            assert_eq!(
                dense_series.total_misses(),
                dense_result.misses,
                "{name} dense: sum of per-window misses != total misses"
            );
            assert_eq!(dense_series.total_requests(), dense_result.requests, "{name}");

            // Keyed path, via the RequestObserver hook.
            let capacity = cfg.capacity_for(&trace);
            let mut policy =
                cache_policies::registry::build(name, capacity, Some(&trace.requests))
                    .expect("known policy");
            let (keyed_result, keyed_series) =
                simulate_windowed(policy.as_mut(), &trace, cfg.ignore_size, 1000);
            assert_eq!(
                keyed_series.total_misses(),
                keyed_result.misses,
                "{name} keyed: sum of per-window misses != total misses"
            );
            assert_eq!(keyed_series.total_requests(), keyed_result.requests, "{name}");

            // The two engines agree window by window, not just in total.
            assert_eq!(keyed_series.points().len(), dense_series.points().len());
            for (k, d) in keyed_series.points().iter().zip(dense_series.points()) {
                assert_eq!(k.misses, d.misses, "{name} window {}", k.window);
                assert_eq!(k.requests, d.requests, "{name} window {}", k.window);
            }
        }
    }

    #[test]
    fn windowed_dense_is_bit_identical_to_plain_dense() {
        let trace = trace();
        let cfg = SimConfig::large();
        for name in ["S3-FIFO", "SIEVE"] {
            let plain = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            let (windowed, _) = simulate_named_windowed(name, &trace, &cfg, 777)
                .unwrap()
                .unwrap();
            assert_eq!(plain.misses, windowed.misses, "{name}");
            assert_eq!(plain.evictions, windowed.evictions, "{name}");
            assert_eq!(
                plain.miss_ratio.to_bits(),
                windowed.miss_ratio.to_bits(),
                "{name}"
            );
            assert_eq!(
                plain.one_hit_eviction_fraction.to_bits(),
                windowed.one_hit_eviction_fraction.to_bits(),
                "{name}: eviction histograms must survive chunked replay"
            );
            assert_eq!(
                plain.eviction_age.quantile(0.5),
                windowed.eviction_age.quantile(0.5),
                "{name}: eviction ages must be rebased correctly across chunks"
            );
        }
    }

    #[test]
    fn keyed_only_policy_gets_observer_path() {
        let trace = trace();
        let cfg = SimConfig::large();
        // ARC has no dense variant; simulate_named_windowed must fall back.
        let (result, series) = simulate_named_windowed("ARC", &trace, &cfg, 2000)
            .unwrap()
            .unwrap();
        assert_eq!(series.total_misses(), result.misses);
        let keyed = simulate_named_keyed("ARC", &trace, &cfg).unwrap().unwrap();
        assert_eq!(result.misses, keyed.misses);
    }

    #[test]
    fn windows_respect_min_objects_filter() {
        let trace = WorkloadSpec::zipf("tiny", 2000, 100, 1.0, 9).generate();
        let cfg = SimConfig {
            min_objects: 1000,
            ..SimConfig::small()
        };
        assert!(simulate_named_windowed("LRU", &trace, &cfg, 100)
            .unwrap()
            .is_none());
    }

    #[test]
    fn profile_reports_stages() {
        let trace = trace();
        let cfg = SimConfig::large();
        let mut dense = cache_policies::registry::build_dense(
            "S3-FIFO",
            cfg.capacity_for(&trace),
            &trace.dense().ids,
        )
        .unwrap()
        .unwrap();
        let (result, profile) = simulate_dense_profiled(dense.as_mut(), &trace, true);
        let stages: Vec<&str> = profile.stages().iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["intern", "replay", "aggregate"]);
        assert_eq!(profile.stages()[1].ops, result.requests);
        assert!(profile.total_micros() > 0);
    }
}

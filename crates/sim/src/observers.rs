//! Observability hooks into the replay engines: the windowed miss-ratio
//! timeseries observer (Fig. 6's per-window view) and replay-stage
//! profiling.
//!
//! Two integration styles, matched to each engine's cost model:
//!
//! - **Keyed engine** — [`TimeseriesObserver`] plugs into the existing
//!   [`RequestObserver`] hook ([`simulate_observed`]); one branch per
//!   request.
//! - **Dense engine** — the monomorphized replay loop must stay free of
//!   per-request callbacks, so [`simulate_dense_windowed`] replays in
//!   window-sized chunks and derives each window's request/miss counts from
//!   [`PolicyStats`] deltas between chunks. Observable results are
//!   identical to [`simulate_dense`]: same requests, same policy state,
//!   same eviction records (chunking only shortens the prefetch lookahead
//!   at chunk boundaries, which affects speed, not decisions).

use crate::engine::{simulate_dense, simulate_observed, RequestObserver, SimConfig, SimResult};
use cache_ds::Histogram;
use cache_obs::{MissRatioSeries, ReplayProfile};
use cache_policies::registry;
use cache_trace::Trace;
use cache_types::{CacheError, DensePolicy, Eviction, Outcome, Policy, PolicyStats, Request};
use std::time::Instant;

/// A [`RequestObserver`] that feeds a [`MissRatioSeries`].
///
/// Mirrors [`PolicyStats`](cache_types::PolicyStats) accounting exactly:
/// non-read requests ([`Outcome::NotRead`]) are not counted, and
/// [`Outcome::Uncacheable`] counts as a miss — so the series' totals can be
/// asserted equal to the end-of-run stats.
pub struct TimeseriesObserver<'a> {
    series: &'a mut MissRatioSeries,
}

impl<'a> TimeseriesObserver<'a> {
    /// Wraps a series for one observed run.
    pub fn new(series: &'a mut MissRatioSeries) -> Self {
        TimeseriesObserver { series }
    }
}

impl RequestObserver for TimeseriesObserver<'_> {
    fn after_request(
        &mut self,
        _index: usize,
        _req: &Request,
        outcome: Outcome,
        _evicted: &[Eviction],
        _policy: &dyn Policy,
    ) {
        if outcome != Outcome::NotRead {
            self.series.record(outcome.is_miss());
        }
    }
}

/// [`simulate`](crate::simulate) plus a windowed miss-ratio timeseries with
/// `window` requests per window.
pub fn simulate_windowed(
    policy: &mut dyn Policy,
    trace: &Trace,
    ignore_size: bool,
    window: u64,
) -> (SimResult, MissRatioSeries) {
    let mut series = MissRatioSeries::new(window);
    let mut observer = TimeseriesObserver::new(&mut series);
    let result = simulate_observed(policy, trace, ignore_size, &mut observer);
    series.finish();
    (result, series)
}

/// Incremental windowed-replay accumulator shared by
/// [`simulate_dense_windowed`] and the out-of-core streamed replayer
/// ([`crate::stream`]): feed slot/request chunks of any size and in any
/// number of calls, then [`finish`](DenseWindowed::finish) into the same
/// `(SimResult, MissRatioSeries)` the keyed observer path produces.
///
/// Series windows count *reads* — non-read requests are invisible to the
/// series, exactly like [`TimeseriesObserver`] — while the dense engine's
/// per-window counts come from [`PolicyStats`] deltas between `replay`
/// calls. `feed` therefore re-chunks its input so every `replay` call ends
/// precisely when the open window's read budget is exhausted, keeping each
/// [`MissRatioSeries::record_window`] delta exact. (Chunking by request
/// count instead, as this path originally did, hands the series misaligned
/// deltas on mixed-op traces and smears misses proportionally across window
/// boundaries; the regression tests below pin the fix.)
pub struct DenseWindowed {
    series: MissRatioSeries,
    freq_at_eviction: Histogram,
    eviction_age: Histogram,
    /// Stats snapshot after the previous `replay` call; window counts are
    /// deltas against this.
    prev: PolicyStats,
    /// Global index of the next request to be fed, for rebasing the
    /// chunk-relative eviction indices `replay` reports.
    offset: u64,
    window: u64,
}

impl DenseWindowed {
    /// A fresh accumulator with `window` reads per series window.
    ///
    /// The policy handed to [`feed`](DenseWindowed::feed) must not have
    /// processed any requests yet (its stats are the delta baseline).
    pub fn new(window: u64) -> Self {
        DenseWindowed {
            series: MissRatioSeries::new(window),
            freq_at_eviction: Histogram::new(),
            eviction_age: Histogram::new(),
            prev: PolicyStats::default(),
            offset: 0,
            window: window.max(1),
        }
    }

    /// Replays one chunk through `policy`, splitting it so each underlying
    /// `replay` call ends exactly on a series-window boundary.
    ///
    /// Chunks arrive in trace order across calls; `slots` and `reqs` are
    /// parallel. All state (window fill, global eviction-index offset, stats
    /// baseline) carries across calls, so feeding one big slice or many
    /// small ones is bit-identical.
    pub fn feed(
        &mut self,
        policy: &mut dyn DensePolicy,
        slots: &[u32],
        reqs: &[Request],
        ignore_size: bool,
    ) {
        debug_assert_eq!(slots.len(), reqs.len());
        let mut base = 0usize;
        while base < reqs.len() {
            // Reads still missing from the currently open series window.
            let mut budget = self.window - self.series.total_requests() % self.window;
            let mut end = base;
            while end < reqs.len() {
                let is_read = reqs[end].is_read();
                end += 1;
                if is_read {
                    budget -= 1;
                    if budget == 0 {
                        break;
                    }
                }
            }
            // Eviction callbacks see chunk-relative indices; rebase them so
            // eviction ages match the unchunked replay bit for bit.
            let offset = self.offset;
            let freq_hist = &mut self.freq_at_eviction;
            let age_hist = &mut self.eviction_age;
            policy.replay(&slots[base..end], &reqs[base..end], ignore_size, &mut |i, e| {
                freq_hist.record(u64::from(e.freq));
                age_hist.record(e.age(offset + i as u64));
            });
            let cur = policy.stats();
            // Exact by construction: the gets delta equals the read count of
            // the sub-chunk, which never overshoots the open window.
            self.series
                .record_window(cur.gets - self.prev.gets, cur.misses - self.prev.misses);
            self.prev = cur;
            self.offset += (end - base) as u64;
            base = end;
        }
    }

    /// Closes the series and assembles the final [`SimResult`] from the
    /// policy's end-of-run stats.
    pub fn finish(mut self, policy: &dyn DensePolicy, trace: &str) -> (SimResult, MissRatioSeries) {
        self.series.finish();
        let stats = policy.stats();
        let result = SimResult {
            algorithm: policy.name(),
            trace: trace.to_string(),
            capacity: policy.capacity(),
            requests: stats.gets,
            misses: stats.misses,
            miss_ratio: stats.miss_ratio(),
            byte_miss_ratio: stats.byte_miss_ratio(),
            evictions: stats.evictions,
            one_hit_eviction_fraction: self.freq_at_eviction.zero_fraction(),
            freq_at_eviction: self.freq_at_eviction,
            eviction_age: self.eviction_age,
        };
        (result, self.series)
    }
}

/// [`simulate_dense`] plus a windowed miss-ratio timeseries.
///
/// The trace is replayed in window-aligned chunks through the policy's own
/// monomorphized loop; each window's counts come from stats deltas
/// ([`DenseWindowed`]), so the per-request fast path carries zero extra
/// work.
pub fn simulate_dense_windowed(
    policy: &mut dyn DensePolicy,
    trace: &Trace,
    ignore_size: bool,
    window: u64,
) -> (SimResult, MissRatioSeries) {
    let dense = trace.dense();
    let mut w = DenseWindowed::new(window);
    w.feed(policy, &dense.slots, &trace.requests, ignore_size);
    w.finish(&*policy, &trace.name)
}

/// Builds the named algorithm and simulates it with a windowed timeseries,
/// preferring the dense fast path exactly like
/// [`simulate_named`](crate::simulate_named).
///
/// # Errors
///
/// Propagates [`CacheError`] from the registry (unknown name, bad
/// parameter).
pub fn simulate_named_windowed(
    name: &str,
    trace: &Trace,
    cfg: &SimConfig,
    window: u64,
) -> Result<Option<(SimResult, MissRatioSeries)>, CacheError> {
    let capacity = cfg.capacity_for(trace);
    if cfg.min_objects > 0 && capacity < cfg.min_objects {
        return Ok(None);
    }
    if let Some(mut dense) = registry::build_dense(name, capacity, &trace.dense().ids)? {
        return Ok(Some(simulate_dense_windowed(
            dense.as_mut(),
            trace,
            cfg.ignore_size,
            window,
        )));
    }
    let mut policy = registry::build(name, capacity, Some(&trace.requests))?;
    Ok(Some(simulate_windowed(
        policy.as_mut(),
        trace,
        cfg.ignore_size,
        window,
    )))
}

/// [`simulate_dense`] with per-stage profiling: op counts and wall time for
/// the intern, replay, and aggregate stages.
///
/// The replay stage itself is the unmodified monomorphized loop — the
/// profile brackets stages with two clock reads each, so the per-request
/// path is untouched.
pub fn simulate_dense_profiled(
    policy: &mut dyn DensePolicy,
    trace: &Trace,
    ignore_size: bool,
) -> (SimResult, ReplayProfile) {
    let mut profile = ReplayProfile::new();

    let t0 = Instant::now();
    let slots = trace.dense().slots.len() as u64;
    profile.push("intern", slots, t0.elapsed());

    let t0 = Instant::now();
    let result = simulate_dense(policy, trace, ignore_size);
    profile.push("replay", result.requests, t0.elapsed());

    let t0 = Instant::now();
    let evictions = result.freq_at_eviction.count();
    profile.push("aggregate", evictions, t0.elapsed());

    (result, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_named_keyed;
    use crate::simulate_named;
    use cache_trace::gen::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::zipf("obs-t", 20_000, 2000, 1.0, 5).generate()
    }

    /// Satellite: windowed timeseries totals must agree with end-of-run
    /// stats for registry policies, on both engines.
    #[test]
    fn window_sums_match_totals_keyed_and_dense() {
        let trace = trace();
        let cfg = SimConfig::large();
        for name in ["FIFO", "LRU", "S3-FIFO"] {
            // Dense path (these three all have dense variants).
            let (dense_result, dense_series) =
                simulate_named_windowed(name, &trace, &cfg, 1000)
                    .expect("known policy")
                    .expect("no size filter");
            assert_eq!(
                dense_series.total_misses(),
                dense_result.misses,
                "{name} dense: sum of per-window misses != total misses"
            );
            assert_eq!(dense_series.total_requests(), dense_result.requests, "{name}");

            // Keyed path, via the RequestObserver hook.
            let capacity = cfg.capacity_for(&trace);
            let mut policy =
                cache_policies::registry::build(name, capacity, Some(&trace.requests))
                    .expect("known policy");
            let (keyed_result, keyed_series) =
                simulate_windowed(policy.as_mut(), &trace, cfg.ignore_size, 1000);
            assert_eq!(
                keyed_series.total_misses(),
                keyed_result.misses,
                "{name} keyed: sum of per-window misses != total misses"
            );
            assert_eq!(keyed_series.total_requests(), keyed_result.requests, "{name}");

            // The two engines agree window by window, not just in total.
            assert_eq!(keyed_series.points().len(), dense_series.points().len());
            for (k, d) in keyed_series.points().iter().zip(dense_series.points()) {
                assert_eq!(k.misses, d.misses, "{name} window {}", k.window);
                assert_eq!(k.requests, d.requests, "{name} window {}", k.window);
            }
        }
    }

    #[test]
    fn windowed_dense_is_bit_identical_to_plain_dense() {
        let trace = trace();
        let cfg = SimConfig::large();
        for name in ["S3-FIFO", "SIEVE"] {
            let plain = simulate_named(name, &trace, &cfg).unwrap().unwrap();
            let (windowed, _) = simulate_named_windowed(name, &trace, &cfg, 777)
                .unwrap()
                .unwrap();
            assert_eq!(plain.misses, windowed.misses, "{name}");
            assert_eq!(plain.evictions, windowed.evictions, "{name}");
            assert_eq!(
                plain.miss_ratio.to_bits(),
                windowed.miss_ratio.to_bits(),
                "{name}"
            );
            assert_eq!(
                plain.one_hit_eviction_fraction.to_bits(),
                windowed.one_hit_eviction_fraction.to_bits(),
                "{name}: eviction histograms must survive chunked replay"
            );
            assert_eq!(
                plain.eviction_age.quantile(0.5),
                windowed.eviction_age.quantile(0.5),
                "{name}: eviction ages must be rebased correctly across chunks"
            );
        }
    }

    /// Mixed-op trace (get/set/delete) with a given length — the shape that
    /// exposed the window-boundary accounting bug.
    fn mixed_trace(requests: usize, seed: u64) -> Trace {
        use cache_ds::SplitMix64;
        use cache_types::Op;
        let mut rng = SplitMix64::new(seed);
        let reqs: Vec<Request> = (0..requests)
            .map(|_| {
                let op = match rng.next_below(8) {
                    0 => Op::Set,
                    1 => Op::Delete,
                    _ => Op::Get,
                };
                Request {
                    id: rng.next_below(500),
                    size: 1,
                    op,
                    time: 0,
                }
            })
            .collect();
        Trace::new("mixed", reqs)
    }

    fn assert_series_equal(name: &str, trace: &Trace, window: u64) {
        let capacity = 64;
        let mut dense = registry::build_dense(name, capacity, &trace.dense().ids)
            .expect("valid name")
            .expect("dense-capable");
        let (dense_result, dense_series) =
            simulate_dense_windowed(dense.as_mut(), trace, true, window);
        let mut keyed =
            registry::build(name, capacity, Some(&trace.requests)).expect("valid name");
        let (keyed_result, keyed_series) = simulate_windowed(keyed.as_mut(), trace, true, window);
        assert_eq!(dense_result.misses, keyed_result.misses, "{name} w={window}");
        assert_eq!(
            dense_series.points().len(),
            keyed_series.points().len(),
            "{name} w={window}: window count"
        );
        for (d, k) in dense_series.points().iter().zip(keyed_series.points()) {
            assert_eq!(
                d.requests, k.requests,
                "{name} w={window} window {}: requests",
                d.window
            );
            assert_eq!(
                d.misses, k.misses,
                "{name} w={window} window {}: misses",
                d.window
            );
        }
    }

    /// Regression (trace-I/O bug sweep): chunking the dense replay by
    /// *request* count handed the series misaligned deltas on mixed-op
    /// traces — reads per chunk < window — which smeared misses
    /// proportionally across window boundaries. Every per-window count must
    /// equal the keyed observer path's, which records read by read.
    #[test]
    fn dense_windows_match_keyed_on_mixed_op_traces() {
        let trace = mixed_trace(10_000, 21);
        for window in [1u64, 3, 64, 999, 1000, 1001] {
            for name in ["FIFO", "LRU", "S3-FIFO"] {
                assert_series_equal(name, &trace, window);
            }
        }
    }

    /// Satellite: sweep trace length against window length so every
    /// residue class of `len % window` gets exercised, on both pure-get
    /// and mixed-op traces (the final partial window was the other
    /// suspect in the boundary audit).
    #[test]
    fn window_boundary_sweep_length_mod_window() {
        for len in [1usize, 99, 100, 101, 250, 999, 1000, 1024] {
            let pure = WorkloadSpec::zipf("p", len, 200, 1.0, len as u64).generate();
            let mixed = mixed_trace(len, len as u64);
            for window in [1u64, 7, 100, 128] {
                assert_series_equal("S3-FIFO", &pure, window);
                assert_series_equal("S3-FIFO", &mixed, window);
            }
        }
    }

    #[test]
    fn keyed_only_policy_gets_observer_path() {
        let trace = trace();
        let cfg = SimConfig::large();
        // ARC has no dense variant; simulate_named_windowed must fall back.
        let (result, series) = simulate_named_windowed("ARC", &trace, &cfg, 2000)
            .unwrap()
            .unwrap();
        assert_eq!(series.total_misses(), result.misses);
        let keyed = simulate_named_keyed("ARC", &trace, &cfg).unwrap().unwrap();
        assert_eq!(result.misses, keyed.misses);
    }

    #[test]
    fn windows_respect_min_objects_filter() {
        let trace = WorkloadSpec::zipf("tiny", 2000, 100, 1.0, 9).generate();
        let cfg = SimConfig {
            min_objects: 1000,
            ..SimConfig::small()
        };
        assert!(simulate_named_windowed("LRU", &trace, &cfg, 100)
            .unwrap()
            .is_none());
    }

    #[test]
    fn profile_reports_stages() {
        let trace = trace();
        let cfg = SimConfig::large();
        let mut dense = cache_policies::registry::build_dense(
            "S3-FIFO",
            cfg.capacity_for(&trace),
            &trace.dense().ids,
        )
        .unwrap()
        .unwrap();
        let (result, profile) = simulate_dense_profiled(dense.as_mut(), &trace, true);
        let stages: Vec<&str> = profile.stages().iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["intern", "replay", "aggregate"]);
        assert_eq!(profile.stages()[1].ops, result.requests);
        assert!(profile.total_micros() > 0);
    }
}

//! Out-of-core streamed replay of `.ctr` traces.
//!
//! [`replay_ctr_windowed`] drives a policy straight from a
//! [`CtrReader`] in fixed-size record chunks, so a trace is **never**
//! materialized in memory: peak trace-buffer footprint is bounded by the
//! chunk size regardless of trace length (1B+ requests replay in a few MB
//! of buffers). Results — final counters, eviction histograms, and the
//! per-window miss-ratio series — are bit-identical to the in-memory
//! windowed paths on any trace small enough to run both
//! (`cache-check`'s streamed differential enforces this across the
//! registry).
//!
//! Two engine paths, mirroring [`simulate_named_windowed`]:
//!
//! - **Dense** — `.ctr` record ids are already dense (that is the format's
//!   core invariant), so each record's id *is* its slot: the policy is
//!   built over the header's id space via
//!   [`registry::build_dense_domain`] with no interning table at all, and
//!   chunks feed the shared [`DenseWindowed`] accumulator.
//! - **Keyed fallback** — policies without a dense variant replay request
//!   by request exactly like
//!   [`simulate_observed`](crate::simulate_observed) with a
//!   [`TimeseriesObserver`](crate::TimeseriesObserver); `Belady` cannot
//!   stream (it needs the future) and surfaces the registry's error.

use crate::engine::SimResult;
use crate::observers::DenseWindowed;
use cache_ds::Histogram;
use cache_obs::MissRatioSeries;
use cache_policies::registry;
use cache_trace::ctr::CtrReader;
use cache_types::{CacheError, Eviction, Outcome, Request};
use std::io::{Read, Seek};
use std::path::Path;

/// Default records decoded per chunk (≈ 8–13 MB of buffers depending on
/// lanes — large enough to amortize I/O and refill cost, small enough to
/// stay cache- and memory-friendly).
pub const DEFAULT_CHUNK_RECORDS: usize = 1 << 20;

/// Everything a streamed replay produces: the usual result pair plus the
/// buffer accounting that proves memory stayed bounded.
#[derive(Debug)]
pub struct StreamReplay {
    /// Simulation result, bit-identical to the in-memory replay.
    pub result: SimResult,
    /// Per-window miss-ratio series, bit-identical to the in-memory replay.
    pub series: MissRatioSeries,
    /// Records replayed (the file's full record count).
    pub records: u64,
    /// Chunk size used, in records.
    pub chunk_records: usize,
    /// Peak bytes held in trace buffers (raw record bytes + decoded
    /// requests + dense slot ids). This — not the trace length — bounds the
    /// streamed path's trace memory.
    pub peak_buffer_bytes: u64,
}

/// Replays an open `.ctr` reader through the named policy with a windowed
/// miss-ratio series, never holding more than `chunk_records` requests in
/// memory.
///
/// The reader is rewound to the first record before replay, so a reader
/// that was partially consumed (e.g. for inspection) replays the full
/// trace. `capacity` is absolute — deriving it from a footprint would
/// require a trace scan, which out-of-core callers do once at generation
/// or conversion time (the `.ctr` header's id space *is* the object
/// footprint for dense traces).
///
/// # Errors
///
/// Propagates [`CacheError`] from the registry (unknown name, bad
/// parameter, `Belady` without a materialized trace) and `.ctr` read
/// errors ([`CacheError::TraceFormat`] / [`CacheError::Io`]).
pub fn replay_ctr_windowed<R: Read + Seek>(
    name: &str,
    reader: &mut CtrReader<R>,
    trace_name: &str,
    capacity: u64,
    ignore_size: bool,
    window: u64,
    chunk_records: usize,
) -> Result<StreamReplay, CacheError> {
    let info = *reader.info();
    let chunk_records = chunk_records.max(1);
    reader.seek_record(0)?;
    let mut reqs: Vec<Request> = Vec::new();

    // id_space ≤ 2^32 is a header invariant, so the cast cannot truncate.
    let domain = usize::try_from(info.id_space).unwrap_or(usize::MAX);
    if let Some(mut dense) = registry::build_dense_domain(name, capacity, domain)? {
        let mut w = DenseWindowed::new(window);
        let mut slots: Vec<u32> = Vec::new();
        loop {
            let n = reader.read_chunk(&mut reqs, chunk_records)?;
            if n == 0 {
                break;
            }
            slots.clear();
            // Dense ids are validated against the header's id space on
            // read, so the narrowing cast is lossless.
            slots.extend(reqs.iter().map(|r| r.id as u32));
            w.feed(dense.as_mut(), &slots, &reqs, ignore_size);
        }
        let (result, series) = w.finish(dense.as_ref(), trace_name);
        let peak_buffer_bytes = reader.buffer_capacity() as u64
            + (reqs.capacity() * std::mem::size_of::<Request>()) as u64
            + (slots.capacity() * std::mem::size_of::<u32>()) as u64;
        return Ok(StreamReplay {
            result,
            series,
            records: info.records,
            chunk_records,
            peak_buffer_bytes,
        });
    }

    // Keyed fallback: per-request loop identical to `simulate_observed`
    // with a `TimeseriesObserver`, indices rebased to the global record
    // position.
    let mut policy = registry::build(name, capacity, None)?;
    let mut series = MissRatioSeries::new(window);
    let mut freq_at_eviction = Histogram::new();
    let mut eviction_age = Histogram::new();
    let mut evs: Vec<Eviction> = Vec::with_capacity(64);
    let mut index: u64 = 0;
    loop {
        let n = reader.read_chunk(&mut reqs, chunk_records)?;
        if n == 0 {
            break;
        }
        for r in &reqs {
            let req = if ignore_size {
                Request { size: 1, ..(*r) }
            } else {
                *r
            };
            evs.clear();
            let outcome = policy.request(&req, &mut evs);
            for e in &evs {
                freq_at_eviction.record(u64::from(e.freq));
                eviction_age.record(e.age(index));
            }
            if outcome != Outcome::NotRead {
                series.record(outcome.is_miss());
            }
            index += 1;
        }
    }
    series.finish();
    let stats = policy.stats();
    let result = SimResult {
        algorithm: policy.name(),
        trace: trace_name.to_string(),
        capacity: policy.capacity(),
        requests: stats.gets,
        misses: stats.misses,
        miss_ratio: stats.miss_ratio(),
        byte_miss_ratio: stats.byte_miss_ratio(),
        evictions: stats.evictions,
        one_hit_eviction_fraction: freq_at_eviction.zero_fraction(),
        freq_at_eviction,
        eviction_age,
    };
    let peak_buffer_bytes = reader.buffer_capacity() as u64
        + (reqs.capacity() * std::mem::size_of::<Request>()) as u64;
    Ok(StreamReplay {
        result,
        series,
        records: info.records,
        chunk_records,
        peak_buffer_bytes,
    })
}

/// [`replay_ctr_windowed`] against a `.ctr` file on disk.
///
/// Reads are large sequential `read_exact`s into the reader's chunk
/// buffer, so the file handle is used unbuffered — an extra
/// `BufReader` copy would only slow the hot path down.
///
/// # Errors
///
/// Everything [`replay_ctr_windowed`] returns, plus open/validate errors
/// from [`CtrReader::open`].
pub fn replay_ctr_path(
    name: &str,
    path: &Path,
    trace_name: &str,
    capacity: u64,
    ignore_size: bool,
    window: u64,
    chunk_records: usize,
) -> Result<StreamReplay, CacheError> {
    let file = std::fs::File::open(path)?;
    let mut reader = CtrReader::open(file)?;
    replay_ctr_windowed(
        name,
        &mut reader,
        trace_name,
        capacity,
        ignore_size,
        window,
        chunk_records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observers::simulate_named_windowed;
    use crate::SimConfig;
    use cache_ds::SplitMix64;
    use cache_trace::ctr::{read_trace, write_trace};
    use cache_trace::gen::WorkloadSpec;
    use cache_trace::Trace;
    use cache_types::Op;
    use crate::CacheSizeSpec;
    use std::io::Cursor;

    /// Mixed-op trace (get/set/delete) — the shape that exposed the
    /// window-boundary bug.
    fn mixed_trace(requests: usize, universe: u64, seed: u64) -> Trace {
        let mut rng = SplitMix64::new(seed);
        let reqs: Vec<Request> = (0..requests)
            .map(|_| {
                let id = rng.next_below(universe);
                let op = match rng.next_below(10) {
                    0 => Op::Set,
                    1 => Op::Delete,
                    _ => Op::Get,
                };
                Request {
                    id,
                    size: 1 + (rng.next_below(100) as u32),
                    op,
                    time: 0,
                }
            })
            .collect();
        Trace::new("mixed", reqs)
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let (cursor, _info) = write_trace(trace, Cursor::new(Vec::new())).expect("encode");
        cursor.into_inner()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            size: CacheSizeSpec::Bytes(200),
            ignore_size: true,
            min_objects: 0,
            floor_objects: 0,
        }
    }

    fn assert_replay_matches(
        streamed: &StreamReplay,
        result: &SimResult,
        series: &MissRatioSeries,
        ctx: &str,
    ) {
        assert_eq!(streamed.result.misses, result.misses, "{ctx}: misses");
        assert_eq!(streamed.result.requests, result.requests, "{ctx}: requests");
        assert_eq!(streamed.result.evictions, result.evictions, "{ctx}: evictions");
        assert_eq!(
            streamed.result.miss_ratio.to_bits(),
            result.miss_ratio.to_bits(),
            "{ctx}: miss ratio"
        );
        assert_eq!(
            streamed.result.byte_miss_ratio.to_bits(),
            result.byte_miss_ratio.to_bits(),
            "{ctx}: byte miss ratio"
        );
        assert_eq!(
            streamed.result.one_hit_eviction_fraction.to_bits(),
            result.one_hit_eviction_fraction.to_bits(),
            "{ctx}: one-hit fraction"
        );
        assert_eq!(
            streamed.series.points().len(),
            series.points().len(),
            "{ctx}: window count"
        );
        for (s, m) in streamed.series.points().iter().zip(series.points()) {
            assert_eq!(s.requests, m.requests, "{ctx}: window {} requests", s.window);
            assert_eq!(s.misses, m.misses, "{ctx}: window {} misses", s.window);
            assert_eq!(s.start_index, m.start_index, "{ctx}: window {}", s.window);
        }
    }

    #[test]
    fn streamed_matches_in_memory_dense() {
        let trace = WorkloadSpec::zipf("stream-t", 20_000, 2000, 1.0, 5).generate();
        let bytes = encode(&trace);
        let cfg = SimConfig::large();
        let capacity = cfg.capacity_for(&trace);
        for name in ["FIFO", "LRU", "S3-FIFO", "SIEVE", "2Q"] {
            let (result, series) = simulate_named_windowed(name, &trace, &cfg, 1000)
                .unwrap()
                .unwrap();
            let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
            let streamed = replay_ctr_windowed(
                name,
                &mut reader,
                "stream-t",
                capacity,
                cfg.ignore_size,
                1000,
                4096,
            )
            .unwrap();
            assert_replay_matches(&streamed, &result, &series, name);
        }
    }

    #[test]
    fn streamed_matches_in_memory_mixed_ops_and_sizes() {
        let trace = mixed_trace(15_000, 1500, 42);
        let bytes = encode(&trace);
        // `.ctr` stores dense ids; replay the re-read trace in memory so
        // both sides see the identical request stream.
        let (dense_view, _info) = read_trace("mixed", Cursor::new(&bytes)).unwrap();
        let cfg = cfg();
        for ignore_size in [true, false] {
            let cfg = SimConfig {
                ignore_size,
                ..cfg
            };
            for name in ["S3-FIFO", "LRU", "CLOCK"] {
                let (result, series) = simulate_named_windowed(name, &dense_view, &cfg, 700)
                    .unwrap()
                    .unwrap();
                let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
                let streamed =
                    replay_ctr_windowed(name, &mut reader, "mixed", 200, ignore_size, 700, 1000)
                        .unwrap();
                assert_replay_matches(
                    &streamed,
                    &result,
                    &series,
                    &format!("{name} ignore_size={ignore_size}"),
                );
            }
        }
    }

    #[test]
    fn streamed_keyed_fallback_matches_in_memory() {
        let trace = WorkloadSpec::zipf("keyed-t", 8_000, 800, 1.0, 7).generate();
        let bytes = encode(&trace);
        let cfg = SimConfig::large();
        let capacity = cfg.capacity_for(&trace);
        // ARC has no dense variant → keyed streaming path.
        let (result, series) = simulate_named_windowed("ARC", &trace, &cfg, 500)
            .unwrap()
            .unwrap();
        let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
        let streamed = replay_ctr_windowed(
            "ARC",
            &mut reader,
            "keyed-t",
            capacity,
            cfg.ignore_size,
            500,
            777,
        )
        .unwrap();
        assert_replay_matches(&streamed, &result, &series, "ARC");
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let trace = mixed_trace(6_000, 700, 9);
        let bytes = encode(&trace);
        let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
        let reference =
            replay_ctr_windowed("S3-FIFO", &mut reader, "mixed", 100, true, 512, 6_000).unwrap();
        for chunk in [1usize, 7, 100, 513, 4096] {
            let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
            let streamed =
                replay_ctr_windowed("S3-FIFO", &mut reader, "mixed", 100, true, 512, chunk)
                    .unwrap();
            assert_replay_matches(
                &streamed,
                &reference.result,
                &reference.series,
                &format!("chunk={chunk}"),
            );
        }
    }

    #[test]
    fn buffers_stay_bounded_by_chunk_size() {
        let trace = WorkloadSpec::zipf("bounded-t", 30_000, 3000, 1.0, 3).generate();
        let bytes = encode(&trace);
        let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
        let chunk = 256usize;
        let streamed =
            replay_ctr_windowed("S3-FIFO", &mut reader, "bounded-t", 300, true, 1000, chunk)
                .unwrap();
        assert_eq!(streamed.records, 30_000);
        // Raw bytes + decoded requests + slots for one chunk, with slack for
        // Vec growth policy — nowhere near the 30k-request trace itself.
        let bound = (chunk * (16 + std::mem::size_of::<Request>() + 4) * 2) as u64;
        assert!(
            streamed.peak_buffer_bytes <= bound,
            "peak {} exceeds chunk-proportional bound {}",
            streamed.peak_buffer_bytes,
            bound
        );
    }

    #[test]
    fn belady_cannot_stream() {
        let trace = WorkloadSpec::zipf("b-t", 1_000, 100, 1.0, 1).generate();
        let bytes = encode(&trace);
        let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
        assert!(replay_ctr_windowed("Belady", &mut reader, "b-t", 50, true, 100, 100).is_err());
    }

    #[test]
    fn partially_consumed_reader_replays_from_start() {
        let trace = WorkloadSpec::zipf("rw-t", 5_000, 500, 1.0, 11).generate();
        let bytes = encode(&trace);
        let mut reader = CtrReader::open(Cursor::new(&bytes)).unwrap();
        let mut scratch = Vec::new();
        reader.read_chunk(&mut scratch, 123).unwrap();
        let streamed =
            replay_ctr_windowed("FIFO", &mut reader, "rw-t", 50, true, 500, 1000).unwrap();
        assert_eq!(streamed.result.requests, 5_000);
    }
}

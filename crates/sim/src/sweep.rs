//! Parallel (trace × algorithm × size) sweeps and the paper's
//! miss-ratio-reduction aggregation.
//!
//! §5.1.2 defines the headline metric: the *miss ratio reduction* of an
//! algorithm relative to FIFO, `(MR_fifo − MR_algo) / MR_fifo`, with the
//! negated inverse when the algorithm is worse so values stay in `[-1, 1]`.

use crate::engine::{simulate_named_many, SimConfig};
use cache_ds::hist::{summarize, Summary};
use cache_trace::Trace;
use cache_types::CacheError;

/// One (trace, algorithm, size) measurement.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Dataset the trace belongs to (empty when standalone).
    pub dataset: String,
    /// Trace name.
    pub trace: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Resolved capacity.
    pub capacity: u64,
    /// Request miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Fraction of evicted objects that were one-hit wonders.
    pub one_hit_eviction_fraction: f64,
    /// Wall-clock time this job's simulation took, in microseconds. Jobs
    /// replayed inside a shared gang ([`simulate_named_many`]) report the
    /// gang's wall time divided evenly across its records.
    pub sim_micros: u64,
}

/// A sweep: every algorithm against every (dataset, trace) pair.
#[derive(Debug)]
pub struct SweepSpec<'a> {
    /// `(dataset name, trace)` pairs.
    pub traces: Vec<(String, &'a Trace)>,
    /// Algorithm names (see `cache_policies::registry`).
    pub algorithms: Vec<String>,
    /// Simulation configuration (size derivation, unit sizes).
    pub config: SimConfig,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

/// How many same-trace jobs one worker replays in a single ganged trace pass
/// (see [`simulate_named_many`]). Ganging amortizes trace streaming and
/// decode across policies, but each ganged policy adds an independent random
/// stream into its own multi-MB slot slab plus its share of prefetch
/// traffic; measured on the dev box (one core, small L3), throughput peaks
/// at a gang of 2 and *degrades* past 4 as the line-fill buffers and TLB
/// saturate. Keep this small.
pub const MAX_GANG: usize = 2;

/// Why a sweep job did or did not contribute records.
///
/// A sweep that stops early used to be indistinguishable from one that ran
/// everything — a caller averaging the records could silently compute
/// statistics over a partial sweep. Every job now reports its fate so
/// "missing because skipped/aborted" is distinguishable from "ran and
/// produced nothing".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran and its records (if any) are in the output.
    Completed,
    /// The job ran but the `min_objects` rule excluded the configuration,
    /// mirroring the paper's exclusions; no records by design.
    SkippedMinObjects,
    /// The job was never claimed because the sweep aborted first; its
    /// records are *missing*, not zero.
    NotRun,
}

/// Per-job outcome of a sweep: which trace/algorithm chunk it covered and
/// what happened to it.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Trace name the job replayed.
    pub trace: String,
    /// Algorithm names the job covered (one gang chunk).
    pub algorithms: Vec<String>,
    /// What happened.
    pub status: JobStatus,
}

/// The full result of a sweep: records plus a per-job accounting that makes
/// partial sweeps explicit.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Measurements from completed jobs, deterministically ordered.
    pub records: Vec<SweepRecord>,
    /// One report per work unit, in job order.
    pub jobs: Vec<JobReport>,
    /// True when at least one job was [`JobStatus::NotRun`] — the records
    /// cover only part of the requested grid.
    pub aborted: bool,
}

impl SweepOutcome {
    /// True when every job ran (completed or was excluded by design).
    pub fn is_complete(&self) -> bool {
        !self.aborted
    }

    /// The jobs that never ran, for error messages and retry lists.
    pub fn not_run(&self) -> impl Iterator<Item = &JobReport> {
        self.jobs
            .iter()
            .filter(|j| j.status == JobStatus::NotRun)
    }
}

/// Runs the sweep on a scoped worker pool, returning only the records.
///
/// Thin wrapper over [`run_sweep_with_abort`] with no external abort; when
/// it returns `Ok`, every job ran, so the records are never silently
/// partial. Callers that cancel sweeps mid-flight must use
/// [`run_sweep_with_abort`] and inspect [`SweepOutcome::aborted`].
///
/// # Errors
///
/// Returns the first simulation error (unknown algorithm, bad parameter).
pub fn run_sweep(spec: &SweepSpec<'_>) -> Result<Vec<SweepRecord>, CacheError> {
    let outcome = run_sweep_with_abort(spec, &|| false)?;
    debug_assert!(
        outcome.is_complete(),
        "no external abort, so every job must have run"
    );
    Ok(outcome.records)
}

/// Runs the sweep on a scoped worker pool with a caller-supplied abort
/// check, polled by every worker before claiming the next job (a deadline,
/// a ctrl-C flag, a test hook).
///
/// Work units are chunks of up to [`MAX_GANG`] algorithms against one trace;
/// each chunk replays the trace once, driving every dense-capable algorithm
/// in the chunk simultaneously ([`simulate_named_many`]).
///
/// The first failing job raises a shared abort flag; every worker checks it
/// before claiming the next job, so one bad algorithm name cancels the whole
/// sweep instead of letting the remaining workers grind through their
/// queues. In-flight jobs still finish — abort is a claim barrier, not a
/// cancellation of running work.
///
/// # Errors
///
/// Returns the first simulation error (unknown algorithm, bad parameter).
/// An external abort is not an error: the partial results come back with
/// the unclaimed jobs marked [`JobStatus::NotRun`] and
/// [`SweepOutcome::aborted`] set.
// ORDERING: Relaxed throughout — `next` needs only RMW atomicity to hand
// out unique job indices and `abort` is an advisory stop flag; all result
// hand-off is ordered by the mutexes and the scope join.
// LOCK-ORDER: disjoint; results, statuses, and first_error are each taken
// in non-overlapping scopes (the results guard is explicitly dropped before
// statuses is locked); no two are ever held at once, so no cycle can form.
pub fn run_sweep_with_abort(
    spec: &SweepSpec<'_>,
    should_abort: &(dyn Fn() -> bool + Sync),
) -> Result<SweepOutcome, CacheError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let jobs: Vec<(usize, std::ops::Range<usize>)> = (0..spec.traces.len())
        .flat_map(|t| {
            (0..spec.algorithms.len())
                .step_by(MAX_GANG.max(1))
                .map(move |s| (t, s..(s + MAX_GANG).min(spec.algorithms.len())))
        })
        .collect();
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        spec.threads
    };
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: std::sync::Mutex<Vec<SweepRecord>> = std::sync::Mutex::new(Vec::new());
    let statuses: std::sync::Mutex<Vec<JobStatus>> =
        std::sync::Mutex::new(vec![JobStatus::NotRun; jobs.len()]);
    let first_error: std::sync::Mutex<Option<CacheError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) || should_abort() {
                    abort.store(true, Ordering::Relaxed);
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((t, algos)) = jobs.get(i) else { break };
                let (dataset, trace) = &spec.traces[*t];
                let names: Vec<&str> = spec.algorithms[algos.clone()]
                    .iter()
                    .map(String::as_str)
                    .collect();
                let start = std::time::Instant::now();
                match simulate_named_many(&names, trace, &spec.config) {
                    Ok(batch) => {
                        // Records carry the registry name they were requested
                        // under, not the policy's display name.
                        let produced: Vec<(usize, crate::engine::SimResult)> = batch
                            .into_iter()
                            .enumerate()
                            .filter_map(|(j, r)| r.map(|r| (j, r)))
                            .collect();
                        let status = if produced.is_empty() {
                            JobStatus::SkippedMinObjects
                        } else {
                            JobStatus::Completed
                        };
                        let sim_micros = start.elapsed().as_micros() as u64
                            / produced.len().max(1) as u64;
                        let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
                        for (j, r) in produced {
                            guard.push(SweepRecord {
                                dataset: dataset.clone(),
                                trace: trace.name.clone(),
                                algorithm: names[j].to_string(),
                                capacity: r.capacity,
                                miss_ratio: r.miss_ratio,
                                byte_miss_ratio: r.byte_miss_ratio,
                                one_hit_eviction_fraction: r.one_hit_eviction_fraction,
                                sim_micros,
                            });
                        }
                        drop(guard);
                        statuses.lock().unwrap_or_else(|e| e.into_inner())[i] = status;
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert(e);
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        return Err(e);
    }
    let mut out = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    // Deterministic order regardless of worker interleaving.
    out.sort_by(|x, y| {
        (&x.dataset, &x.trace, &x.algorithm).cmp(&(&y.dataset, &y.trace, &y.algorithm))
    });
    let statuses = statuses.into_inner().unwrap_or_else(|e| e.into_inner());
    let reports: Vec<JobReport> = jobs
        .iter()
        .zip(&statuses)
        .map(|((t, algos), status)| JobReport {
            trace: spec.traces[*t].1.name.clone(),
            algorithms: spec.algorithms[algos.clone()].to_vec(),
            status: *status,
        })
        .collect();
    let aborted = statuses.contains(&JobStatus::NotRun);
    Ok(SweepOutcome {
        records: out,
        jobs: reports,
        aborted,
    })
}

/// The paper's bounded miss-ratio-reduction metric (§5.1.2).
pub fn miss_ratio_reduction(mr_fifo: f64, mr_algo: f64) -> f64 {
    if mr_fifo <= 0.0 && mr_algo <= 0.0 {
        return 0.0;
    }
    if mr_algo <= mr_fifo {
        (mr_fifo - mr_algo) / mr_fifo.max(1e-12)
    } else {
        -((mr_algo - mr_fifo) / mr_algo.max(1e-12))
    }
}

/// Groups sweep records per algorithm, computes each trace's reduction
/// against that trace's FIFO record, and summarizes percentiles (Fig. 6).
/// Uses `byte` miss ratios when `byte` is true (§5.2.3).
///
/// Traces missing a FIFO baseline are skipped. Returns
/// `(algorithm, Summary)` pairs sorted by mean reduction, best first.
pub fn summarize_reductions(records: &[SweepRecord], byte: bool) -> Vec<(String, Summary)> {
    use std::collections::BTreeMap;
    let mr = |r: &SweepRecord| {
        if byte {
            r.byte_miss_ratio
        } else {
            r.miss_ratio
        }
    };
    let mut fifo: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            fifo.insert((r.dataset.clone(), r.trace.clone()), mr(r));
        }
    }
    let mut per_algo: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            continue;
        }
        let Some(&base) = fifo.get(&(r.dataset.clone(), r.trace.clone())) else {
            continue;
        };
        per_algo
            .entry(r.algorithm.clone())
            .or_default()
            .push(miss_ratio_reduction(base, mr(r)));
    }
    let mut out: Vec<(String, Summary)> = per_algo
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(a, v)| (a, summarize(&v)))
        .collect();
    // Invariant: miss ratios are finite, so means are never NaN.
    out.sort_by(|a, b| b.1.mean.partial_cmp(&a.1.mean).expect("no NaN"));
    out
}

/// Mean reduction per (dataset, algorithm) — the Fig. 7 view.
pub fn per_dataset_means(records: &[SweepRecord]) -> Vec<(String, String, f64)> {
    use std::collections::BTreeMap;
    let mut fifo: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            fifo.insert((r.dataset.clone(), r.trace.clone()), r.miss_ratio);
        }
    }
    let mut acc: BTreeMap<(String, String), (f64, usize)> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            continue;
        }
        let Some(&base) = fifo.get(&(r.dataset.clone(), r.trace.clone())) else {
            continue;
        };
        let e = acc
            .entry((r.dataset.clone(), r.algorithm.clone()))
            .or_insert((0.0, 0));
        e.0 += miss_ratio_reduction(base, r.miss_ratio);
        e.1 += 1;
    }
    acc.into_iter()
        .map(|((d, a), (sum, n))| (d, a, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::WorkloadSpec;

    #[test]
    fn reduction_formula_matches_paper() {
        assert!((miss_ratio_reduction(0.5, 0.4) - 0.2).abs() < 1e-12);
        // Worse than FIFO: negated inverse, bounded by -1.
        assert!((miss_ratio_reduction(0.4, 0.5) + 0.2).abs() < 1e-12);
        assert_eq!(miss_ratio_reduction(0.5, 0.5), 0.0);
        assert!(miss_ratio_reduction(1e-9, 1.0) >= -1.0);
        assert!(miss_ratio_reduction(1.0, 0.0) <= 1.0);
        assert_eq!(miss_ratio_reduction(0.0, 0.0), 0.0);
    }

    #[test]
    fn sweep_runs_all_combinations() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let t2 = WorkloadSpec::zipf("t2", 5000, 500, 0.8, 2).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1), ("d1".into(), &t2)],
            algorithms: vec!["FIFO".into(), "LRU".into(), "S3-FIFO".into()],
            config: SimConfig::large(),
            threads: 2,
        };
        let records = run_sweep(&spec).unwrap();
        assert_eq!(records.len(), 6);
        // Deterministic ordering.
        let again = run_sweep(&spec).unwrap();
        let names: Vec<_> = records
            .iter()
            .map(|r| (r.trace.clone(), r.algorithm.clone()))
            .collect();
        let names2: Vec<_> = again
            .iter()
            .map(|r| (r.trace.clone(), r.algorithm.clone()))
            .collect();
        assert_eq!(names, names2);
        for (a, b) in records.iter().zip(again.iter()) {
            assert_eq!(a.miss_ratio, b.miss_ratio, "sweep must be reproducible");
        }
    }

    #[test]
    fn summaries_rank_s3fifo_above_lru_on_skew() {
        let traces: Vec<Trace> = (0..4)
            .map(|i| WorkloadSpec::zipf(format!("t{i}"), 20_000, 2000, 1.0, i as u64).generate())
            .collect();
        let spec = SweepSpec {
            traces: traces.iter().map(|t| ("d".to_string(), t)).collect(),
            algorithms: vec!["FIFO".into(), "LRU".into(), "S3-FIFO".into()],
            config: SimConfig::large(),
            threads: 0,
        };
        let records = run_sweep(&spec).unwrap();
        let sums = summarize_reductions(&records, false);
        let pos = |name: &str| sums.iter().position(|(a, _)| a == name).unwrap();
        assert!(
            pos("S3-FIFO") < pos("LRU"),
            "S3-FIFO should rank above LRU: {sums:?}"
        );
        // Reductions vs FIFO must be positive for S3-FIFO here.
        assert!(sums[pos("S3-FIFO")].1.mean > 0.0);
    }

    #[test]
    fn sweep_records_timing() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        let records = run_sweep(&spec).unwrap();
        // 5000 requests take at least a microsecond; the field must be real.
        assert!(records[0].sim_micros > 0);
    }

    #[test]
    fn sweep_aborts_on_first_error() {
        let t1 = WorkloadSpec::zipf("t1", 1000, 100, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["NOT-AN-ALGORITHM".into(), "FIFO".into(), "LRU".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        // One worker hits the bad name first, raises the abort flag, and the
        // remaining jobs are never claimed.
        let err = run_sweep(&spec).unwrap_err();
        assert!(format!("{err}").contains("NOT-AN-ALGORITHM"), "{err}");
    }

    /// Satellite regression: an externally aborted sweep must say so —
    /// unclaimed jobs come back `NotRun`, `aborted` is set, and the caller
    /// can tell partial coverage from a clean (possibly empty) run.
    #[test]
    // ORDERING: Relaxed — the abort flag is advisory; no data is published
    // through it, and the outcome is read after run_sweep_with_abort returns.
    fn aborted_sweep_is_marked_not_silently_partial() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let traces: Vec<Trace> = (0..4)
            .map(|i| WorkloadSpec::zipf(format!("t{i}"), 2000, 200, 1.0, i as u64).generate())
            .collect();
        let spec = SweepSpec {
            traces: traces.iter().map(|t| ("d".to_string(), t)).collect(),
            algorithms: vec!["FIFO".into(), "LRU".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        // 4 traces × 1 gang chunk = 4 jobs. Single worker; the abort check
        // runs once before each claim, so returning true from the third
        // check lets exactly two jobs through.
        let checks = AtomicUsize::new(0);
        let outcome = run_sweep_with_abort(&spec, &|| {
            checks.fetch_add(1, Ordering::Relaxed) >= 2
        })
        .unwrap();

        assert!(outcome.aborted, "partial sweep must be flagged");
        assert!(!outcome.is_complete());
        assert_eq!(outcome.jobs.len(), 4);
        let completed = outcome
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Completed)
            .count();
        let not_run: Vec<&JobReport> = outcome.not_run().collect();
        assert_eq!(completed, 2, "{:?}", outcome.jobs);
        assert_eq!(not_run.len(), 2);
        // Records exist only for completed jobs: missing != zero.
        assert_eq!(outcome.records.len(), completed * 2);
        for j in &not_run {
            assert!(
                !outcome.records.iter().any(|r| r.trace == j.trace),
                "NotRun job {j:?} must not have records"
            );
        }
    }

    #[test]
    fn unaborted_sweep_reports_all_jobs_run() {
        let t1 = WorkloadSpec::zipf("t1", 2000, 200, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into(), "LRU".into(), "S3-FIFO".into()],
            config: SimConfig::large(),
            threads: 2,
        };
        let outcome = run_sweep_with_abort(&spec, &|| false).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.not_run().count(), 0);
        assert!(outcome
            .jobs
            .iter()
            .all(|j| j.status == JobStatus::Completed));
        assert_eq!(outcome.records.len(), 3);
    }

    #[test]
    fn min_objects_skip_is_distinguished_from_abort() {
        let t1 = WorkloadSpec::zipf("tiny", 2000, 100, 1.0, 9).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into()],
            config: SimConfig {
                size: crate::engine::CacheSizeSpec::FractionOfObjects(0.001),
                ignore_size: true,
                min_objects: 1000,
                floor_objects: 0,
            },
            threads: 1,
        };
        let outcome = run_sweep_with_abort(&spec, &|| false).unwrap();
        // The job *ran*; the paper's exclusion rule dropped it. That is not
        // an abort and not a missing job.
        assert!(outcome.is_complete());
        assert_eq!(outcome.jobs.len(), 1);
        assert_eq!(outcome.jobs[0].status, JobStatus::SkippedMinObjects);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn per_dataset_means_shape() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into(), "LRU".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        let records = run_sweep(&spec).unwrap();
        let means = per_dataset_means(&records);
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, "d1");
        assert_eq!(means[0].1, "LRU");
    }
}

//! Parallel (trace × algorithm × size) sweeps and the paper's
//! miss-ratio-reduction aggregation.
//!
//! §5.1.2 defines the headline metric: the *miss ratio reduction* of an
//! algorithm relative to FIFO, `(MR_fifo − MR_algo) / MR_fifo`, with the
//! negated inverse when the algorithm is worse so values stay in `[-1, 1]`.

use crate::engine::{simulate_named_many, SimConfig};
use cache_ds::hist::{summarize, Summary};
use cache_trace::Trace;
use cache_types::CacheError;

/// One (trace, algorithm, size) measurement.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Dataset the trace belongs to (empty when standalone).
    pub dataset: String,
    /// Trace name.
    pub trace: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Resolved capacity.
    pub capacity: u64,
    /// Request miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Fraction of evicted objects that were one-hit wonders.
    pub one_hit_eviction_fraction: f64,
    /// Wall-clock time this job's simulation took, in microseconds. Jobs
    /// replayed inside a shared gang ([`simulate_named_many`]) report the
    /// gang's wall time divided evenly across its records.
    pub sim_micros: u64,
}

/// A sweep: every algorithm against every (dataset, trace) pair.
#[derive(Debug)]
pub struct SweepSpec<'a> {
    /// `(dataset name, trace)` pairs.
    pub traces: Vec<(String, &'a Trace)>,
    /// Algorithm names (see `cache_policies::registry`).
    pub algorithms: Vec<String>,
    /// Simulation configuration (size derivation, unit sizes).
    pub config: SimConfig,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

/// How many same-trace jobs one worker replays in a single ganged trace pass
/// (see [`simulate_named_many`]). Ganging amortizes trace streaming and
/// decode across policies, but each ganged policy adds an independent random
/// stream into its own multi-MB slot slab plus its share of prefetch
/// traffic; measured on the dev box (one core, small L3), throughput peaks
/// at a gang of 2 and *degrades* past 4 as the line-fill buffers and TLB
/// saturate. Keep this small.
pub const MAX_GANG: usize = 2;

/// Runs the sweep on a scoped worker pool. Records for configurations
/// skipped by the `min_objects` rule are silently omitted, mirroring the
/// paper's exclusions.
///
/// Work units are chunks of up to [`MAX_GANG`] algorithms against one trace;
/// each chunk replays the trace once, driving every dense-capable algorithm
/// in the chunk simultaneously ([`simulate_named_many`]).
///
/// The first failing job raises a shared abort flag; every worker checks it
/// before claiming the next job, so one bad algorithm name cancels the whole
/// sweep instead of letting the remaining workers grind through their queues.
///
/// # Errors
///
/// Returns the first simulation error (unknown algorithm, bad parameter).
pub fn run_sweep(spec: &SweepSpec<'_>) -> Result<Vec<SweepRecord>, CacheError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let jobs: Vec<(usize, std::ops::Range<usize>)> = (0..spec.traces.len())
        .flat_map(|t| {
            (0..spec.algorithms.len())
                .step_by(MAX_GANG.max(1))
                .map(move |s| (t, s..(s + MAX_GANG).min(spec.algorithms.len())))
        })
        .collect();
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        spec.threads
    };
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: std::sync::Mutex<Vec<SweepRecord>> = std::sync::Mutex::new(Vec::new());
    let first_error: std::sync::Mutex<Option<CacheError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((t, algos)) = jobs.get(i) else { break };
                let (dataset, trace) = &spec.traces[*t];
                let names: Vec<&str> = spec.algorithms[algos.clone()]
                    .iter()
                    .map(String::as_str)
                    .collect();
                let start = std::time::Instant::now();
                match simulate_named_many(&names, trace, &spec.config) {
                    Ok(batch) => {
                        // Records carry the registry name they were requested
                        // under, not the policy's display name.
                        let produced: Vec<(usize, crate::engine::SimResult)> = batch
                            .into_iter()
                            .enumerate()
                            .filter_map(|(j, r)| r.map(|r| (j, r)))
                            .collect();
                        let sim_micros = start.elapsed().as_micros() as u64
                            / produced.len().max(1) as u64;
                        let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
                        for (j, r) in produced {
                            guard.push(SweepRecord {
                                dataset: dataset.clone(),
                                trace: trace.name.clone(),
                                algorithm: names[j].to_string(),
                                capacity: r.capacity,
                                miss_ratio: r.miss_ratio,
                                byte_miss_ratio: r.byte_miss_ratio,
                                one_hit_eviction_fraction: r.one_hit_eviction_fraction,
                                sim_micros,
                            });
                        }
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .get_or_insert(e);
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        return Err(e);
    }
    let mut out = results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    // Deterministic order regardless of worker interleaving.
    out.sort_by(|x, y| {
        (&x.dataset, &x.trace, &x.algorithm).cmp(&(&y.dataset, &y.trace, &y.algorithm))
    });
    Ok(out)
}

/// The paper's bounded miss-ratio-reduction metric (§5.1.2).
pub fn miss_ratio_reduction(mr_fifo: f64, mr_algo: f64) -> f64 {
    if mr_fifo <= 0.0 && mr_algo <= 0.0 {
        return 0.0;
    }
    if mr_algo <= mr_fifo {
        (mr_fifo - mr_algo) / mr_fifo.max(1e-12)
    } else {
        -((mr_algo - mr_fifo) / mr_algo.max(1e-12))
    }
}

/// Groups sweep records per algorithm, computes each trace's reduction
/// against that trace's FIFO record, and summarizes percentiles (Fig. 6).
/// Uses `byte` miss ratios when `byte` is true (§5.2.3).
///
/// Traces missing a FIFO baseline are skipped. Returns
/// `(algorithm, Summary)` pairs sorted by mean reduction, best first.
pub fn summarize_reductions(records: &[SweepRecord], byte: bool) -> Vec<(String, Summary)> {
    use std::collections::BTreeMap;
    let mr = |r: &SweepRecord| {
        if byte {
            r.byte_miss_ratio
        } else {
            r.miss_ratio
        }
    };
    let mut fifo: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            fifo.insert((r.dataset.clone(), r.trace.clone()), mr(r));
        }
    }
    let mut per_algo: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            continue;
        }
        let Some(&base) = fifo.get(&(r.dataset.clone(), r.trace.clone())) else {
            continue;
        };
        per_algo
            .entry(r.algorithm.clone())
            .or_default()
            .push(miss_ratio_reduction(base, mr(r)));
    }
    let mut out: Vec<(String, Summary)> = per_algo
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(a, v)| (a, summarize(&v)))
        .collect();
    out.sort_by(|a, b| b.1.mean.partial_cmp(&a.1.mean).expect("no NaN"));
    out
}

/// Mean reduction per (dataset, algorithm) — the Fig. 7 view.
pub fn per_dataset_means(records: &[SweepRecord]) -> Vec<(String, String, f64)> {
    use std::collections::BTreeMap;
    let mut fifo: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            fifo.insert((r.dataset.clone(), r.trace.clone()), r.miss_ratio);
        }
    }
    let mut acc: BTreeMap<(String, String), (f64, usize)> = BTreeMap::new();
    for r in records {
        if r.algorithm == "FIFO" {
            continue;
        }
        let Some(&base) = fifo.get(&(r.dataset.clone(), r.trace.clone())) else {
            continue;
        };
        let e = acc
            .entry((r.dataset.clone(), r.algorithm.clone()))
            .or_insert((0.0, 0));
        e.0 += miss_ratio_reduction(base, r.miss_ratio);
        e.1 += 1;
    }
    acc.into_iter()
        .map(|((d, a), (sum, n))| (d, a, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_trace::gen::WorkloadSpec;

    #[test]
    fn reduction_formula_matches_paper() {
        assert!((miss_ratio_reduction(0.5, 0.4) - 0.2).abs() < 1e-12);
        // Worse than FIFO: negated inverse, bounded by -1.
        assert!((miss_ratio_reduction(0.4, 0.5) + 0.2).abs() < 1e-12);
        assert_eq!(miss_ratio_reduction(0.5, 0.5), 0.0);
        assert!(miss_ratio_reduction(1e-9, 1.0) >= -1.0);
        assert!(miss_ratio_reduction(1.0, 0.0) <= 1.0);
        assert_eq!(miss_ratio_reduction(0.0, 0.0), 0.0);
    }

    #[test]
    fn sweep_runs_all_combinations() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let t2 = WorkloadSpec::zipf("t2", 5000, 500, 0.8, 2).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1), ("d1".into(), &t2)],
            algorithms: vec!["FIFO".into(), "LRU".into(), "S3-FIFO".into()],
            config: SimConfig::large(),
            threads: 2,
        };
        let records = run_sweep(&spec).unwrap();
        assert_eq!(records.len(), 6);
        // Deterministic ordering.
        let again = run_sweep(&spec).unwrap();
        let names: Vec<_> = records
            .iter()
            .map(|r| (r.trace.clone(), r.algorithm.clone()))
            .collect();
        let names2: Vec<_> = again
            .iter()
            .map(|r| (r.trace.clone(), r.algorithm.clone()))
            .collect();
        assert_eq!(names, names2);
        for (a, b) in records.iter().zip(again.iter()) {
            assert_eq!(a.miss_ratio, b.miss_ratio, "sweep must be reproducible");
        }
    }

    #[test]
    fn summaries_rank_s3fifo_above_lru_on_skew() {
        let traces: Vec<Trace> = (0..4)
            .map(|i| WorkloadSpec::zipf(format!("t{i}"), 20_000, 2000, 1.0, i as u64).generate())
            .collect();
        let spec = SweepSpec {
            traces: traces.iter().map(|t| ("d".to_string(), t)).collect(),
            algorithms: vec!["FIFO".into(), "LRU".into(), "S3-FIFO".into()],
            config: SimConfig::large(),
            threads: 0,
        };
        let records = run_sweep(&spec).unwrap();
        let sums = summarize_reductions(&records, false);
        let pos = |name: &str| sums.iter().position(|(a, _)| a == name).unwrap();
        assert!(
            pos("S3-FIFO") < pos("LRU"),
            "S3-FIFO should rank above LRU: {sums:?}"
        );
        // Reductions vs FIFO must be positive for S3-FIFO here.
        assert!(sums[pos("S3-FIFO")].1.mean > 0.0);
    }

    #[test]
    fn sweep_records_timing() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        let records = run_sweep(&spec).unwrap();
        // 5000 requests take at least a microsecond; the field must be real.
        assert!(records[0].sim_micros > 0);
    }

    #[test]
    fn sweep_aborts_on_first_error() {
        let t1 = WorkloadSpec::zipf("t1", 1000, 100, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["NOT-AN-ALGORITHM".into(), "FIFO".into(), "LRU".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        // One worker hits the bad name first, raises the abort flag, and the
        // remaining jobs are never claimed.
        let err = run_sweep(&spec).unwrap_err();
        assert!(format!("{err}").contains("NOT-AN-ALGORITHM"), "{err}");
    }

    #[test]
    fn per_dataset_means_shape() {
        let t1 = WorkloadSpec::zipf("t1", 5000, 500, 1.0, 1).generate();
        let spec = SweepSpec {
            traces: vec![("d1".into(), &t1)],
            algorithms: vec!["FIFO".into(), "LRU".into()],
            config: SimConfig::large(),
            threads: 1,
        };
        let records = run_sweep(&spec).unwrap();
        let means = per_dataset_means(&records);
        assert_eq!(means.len(), 1);
        assert_eq!(means[0].0, "d1");
        assert_eq!(means[0].1, "LRU");
    }
}

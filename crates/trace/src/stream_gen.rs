//! Out-of-core workload generation: a 2DIO-style seeded generator that
//! writes multi-GB `.ctr` traces straight to disk without ever holding the
//! trace in memory.
//!
//! [`crate::gen::WorkloadSpec`] materializes a `Vec<Request>`, which caps it
//! at a few hundred million requests; the paper's evaluation runs to
//! hundreds of billions. [`StreamSpec`] emits the same workload *shape*
//! knobs (Zipf skew, one-hit wonders, scan bursts, deletes) record by record
//! into a [`crate::ctr::CtrWriter`], so memory stays at the Zipf CDF
//! (8 bytes per core object) regardless of trace length, and adds phase
//! changes — the popularity ranking rotates through the id space at fixed
//! intervals, the workload shift that per-window miss-ratio series exist to
//! expose.
//!
//! Ids are laid out in disjoint dense `u32` ranges so the `.ctr` id space
//! (which sizes the streaming replayer's slot slab) stays proportional to
//! the configured footprint, not the request count:
//!
//! ```text
//! [0, objects)                         Zipf core (popularity rotates per phase)
//! [objects, +scan_space)               scan bursts, sequential with wraparound
//! [objects+scan_space, +fresh_ring)    one-hit wonders, ring-allocated
//! ```
//!
//! The fresh ring reuses ids after `fresh_ring` allocations; a reused id is
//! only observable if the cache (or its ghost) still remembers it, which at
//! realistic ring sizes is billions of requests of separation. Both replay
//! paths see the identical stream either way, so equivalence testing is
//! unaffected.

use crate::ctr::{CtrInfo, CtrLanes, CtrWriter};
use crate::zipf::ZipfSampler;
use cache_ds::rng::mix64;
use cache_ds::SplitMix64;
use cache_types::{CacheError, Op};
use std::io::{Seek, Write};

/// Knobs for a streamed, disk-resident workload.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Total records to emit.
    pub requests: u64,
    /// Distinct objects in the Zipf core.
    pub objects: u64,
    /// Zipf skew of the core (0 = uniform; production KV ≈ 1.0).
    pub alpha: f64,
    /// Fraction of requests that go to fresh one-hit-wonder ids.
    pub one_hit_fraction: f64,
    /// Distinct ids the one-hit stream cycles through (bounds the id space).
    pub fresh_ring: u64,
    /// Approximate fraction of requests inside sequential scan bursts.
    pub scan_fraction: f64,
    /// Length of each scan burst, in requests.
    pub scan_len: u64,
    /// Distinct ids the scans sweep through (with wraparound).
    pub scan_space: u64,
    /// Number of popularity phases; at each phase boundary the core's
    /// rank→id mapping rotates by `objects / phases`, so the hot set changes
    /// identity. 1 = stationary.
    pub phases: u32,
    /// Fraction of requests emitted as deletes of recently issued ids
    /// (enables the `.ctr` op lane when > 0).
    pub delete_fraction: f64,
    /// Object sizes: 1 = unit; otherwise each id gets a deterministic size
    /// in `1..=max_size` (stable across the whole trace).
    pub max_size: u32,
    /// RNG seed; the same spec + seed reproduces the file byte for byte.
    pub seed: u64,
}

impl StreamSpec {
    /// A skewed-core spec with the satellite streams disabled.
    pub fn zipf(requests: u64, objects: u64, alpha: f64, seed: u64) -> Self {
        StreamSpec {
            requests,
            objects,
            alpha,
            one_hit_fraction: 0.0,
            fresh_ring: 1 << 22,
            scan_fraction: 0.0,
            scan_len: 1000,
            scan_space: 1 << 20,
            phases: 1,
            delete_fraction: 0.0,
            max_size: 1,
            seed,
        }
    }

    /// The "paper-shaped" mix: Zipf(1.0) core plus one-hit wonders, periodic
    /// scan bursts, and 4 popularity phases.
    pub fn paper_mix(requests: u64, objects: u64, seed: u64) -> Self {
        StreamSpec {
            one_hit_fraction: 0.1,
            scan_fraction: 0.05,
            phases: 4,
            ..StreamSpec::zipf(requests, objects, 1.0, seed)
        }
    }

    /// Exclusive upper bound on the ids this spec can emit (the `.ctr`
    /// `id_space` is at most this; the file records the exact maximum seen).
    pub fn id_space(&self) -> u64 {
        let scan = if self.scan_fraction > 0.0 { self.scan_space } else { 0 };
        let fresh = if self.one_hit_fraction > 0.0 { self.fresh_ring } else { 0 };
        self.objects + scan + fresh
    }

    fn validate(&self) -> Result<(), CacheError> {
        if self.objects == 0 {
            return Err(CacheError::InvalidParameter(
                "stream spec needs at least one core object".into(),
            ));
        }
        if self.phases == 0 {
            return Err(CacheError::InvalidParameter("phases must be >= 1".into()));
        }
        if self.max_size == 0 {
            return Err(CacheError::InvalidParameter("max_size must be >= 1".into()));
        }
        for (name, v) in [
            ("one_hit_fraction", self.one_hit_fraction),
            ("scan_fraction", self.scan_fraction),
            ("delete_fraction", self.delete_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CacheError::InvalidParameter(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.one_hit_fraction > 0.0 && self.fresh_ring == 0 {
            return Err(CacheError::InvalidParameter(
                "one-hit stream needs fresh_ring > 0".into(),
            ));
        }
        if self.scan_fraction > 0.0 && (self.scan_space == 0 || self.scan_len == 0) {
            return Err(CacheError::InvalidParameter(
                "scan stream needs scan_space > 0 and scan_len > 0".into(),
            ));
        }
        if self.id_space() > 1 << 32 {
            return Err(CacheError::InvalidParameter(format!(
                "id space {} exceeds the dense u32 range",
                self.id_space()
            )));
        }
        Ok(())
    }

    /// Deterministic per-id size in `1..=max_size` (stable for the whole
    /// trace, like a real object store).
    fn size_of(&self, id: u32) -> u32 {
        if self.max_size == 1 {
            1
        } else {
            // Lemire multiply-shift keeps the mapping unbiased without a
            // modulo.
            let h = mix64(u64::from(id) ^ self.seed.rotate_left(17));
            ((u128::from(h) * u128::from(self.max_size)) >> 64) as u32 + 1
        }
    }

    /// Streams the trace into `w` as `.ctr`, one record at a time. Memory
    /// footprint is the Zipf CDF (`8 * objects` bytes) plus fixed-size
    /// state; nothing scales with `requests`. Wrap files in a `BufWriter`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidParameter`] for out-of-range knobs and
    /// propagates I/O errors.
    pub fn write<W: Write + Seek>(&self, w: W) -> Result<(W, CtrInfo), CacheError> {
        self.validate()?;
        let lanes = CtrLanes {
            ops: self.delete_fraction > 0.0,
            ttls: false,
        };
        let mut writer = CtrWriter::create(w, lanes)?;
        let mut rng = SplitMix64::new(self.seed);
        let zipf = ZipfSampler::new(self.objects, self.alpha);

        let scan_base = self.objects;
        let fresh_base = scan_base + if self.scan_fraction > 0.0 { self.scan_space } else { 0 };
        // Probability that a non-burst request *starts* a scan burst, chosen
        // so bursts cover ~scan_fraction of all requests.
        let scan_start_p = if self.scan_fraction > 0.0 {
            self.scan_fraction / self.scan_len as f64
        } else {
            0.0
        };
        let phase_len = (self.requests / u64::from(self.phases)).max(1);
        let phase_stride = self.objects / u64::from(self.phases);

        let mut scan_remaining = 0u64;
        let mut scan_cursor = 0u64;
        let mut fresh_cursor = 0u64;
        // Recent core ids, for deletes of plausibly-resident objects.
        let mut recent = [0u32; 64];
        let mut recent_len = 0usize;

        for t in 0..self.requests {
            let (id, op) = if scan_remaining > 0 {
                scan_remaining -= 1;
                let id = scan_base + scan_cursor;
                scan_cursor = (scan_cursor + 1) % self.scan_space;
                (id as u32, Op::Get)
            } else {
                let u = rng.next_f64();
                if u < scan_start_p {
                    scan_remaining = self.scan_len - 1;
                    let id = scan_base + scan_cursor;
                    scan_cursor = (scan_cursor + 1) % self.scan_space;
                    (id as u32, Op::Get)
                } else if u < scan_start_p + self.one_hit_fraction {
                    let id = fresh_base + (fresh_cursor % self.fresh_ring);
                    fresh_cursor += 1;
                    (id as u32, Op::Get)
                } else if u < scan_start_p + self.one_hit_fraction + self.delete_fraction
                    && recent_len > 0
                {
                    let pick = rng.next_below(recent_len as u64) as usize;
                    (recent[pick], Op::Delete)
                } else {
                    let rank = zipf.sample(&mut rng);
                    let phase = (t / phase_len).min(u64::from(self.phases) - 1);
                    let id = ((rank - 1) + phase * phase_stride) % self.objects;
                    let id = id as u32;
                    recent[t as usize % recent.len()] = id;
                    recent_len = (recent_len + 1).min(recent.len());
                    (id, Op::Get)
                }
            };
            writer.push(id, self.size_of(id), op, 0)?;
        }
        writer.finish()
    }

    /// [`StreamSpec::write`] to a file path, buffered.
    ///
    /// # Errors
    ///
    /// Same as [`StreamSpec::write`].
    pub fn write_path(&self, path: &std::path::Path) -> Result<CtrInfo, CacheError> {
        let file = std::fs::File::create(path)?;
        let (w, info) = self.write(std::io::BufWriter::new(file))?;
        w.into_inner().map_err(|e| CacheError::Io(e.to_string()))?;
        Ok(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::{read_trace, CtrReader};
    use cache_types::Request;
    use std::io::Cursor;

    fn generate(spec: &StreamSpec) -> (Vec<u8>, CtrInfo) {
        let (w, info) = spec.write(Cursor::new(Vec::new())).expect("write");
        (w.into_inner(), info)
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = StreamSpec::paper_mix(20_000, 1000, 42);
        let (a, _) = generate(&spec);
        let (b, _) = generate(&spec);
        assert_eq!(a, b, "same spec + seed must produce identical bytes");
        let (c, _) = generate(&StreamSpec { seed: 43, ..spec });
        assert_ne!(a, c, "a different seed must change the stream");
    }

    #[test]
    fn id_space_bounds_hold() {
        let spec = StreamSpec {
            one_hit_fraction: 0.2,
            scan_fraction: 0.1,
            scan_len: 50,
            scan_space: 500,
            fresh_ring: 300,
            phases: 3,
            ..StreamSpec::zipf(30_000, 800, 1.0, 7)
        };
        let (bytes, info) = generate(&spec);
        assert_eq!(info.records, 30_000);
        assert!(info.id_space <= spec.id_space(), "header space within spec bound");
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let max_id = t.requests.iter().map(|r| r.id).max().expect("non-empty");
        assert_eq!(info.id_space, max_id + 1, "id space is exactly max id + 1");
        // All three id ranges are exercised.
        assert!(t.requests.iter().any(|r| r.id < 800), "core ids");
        assert!(
            t.requests.iter().any(|r| (800..1300).contains(&r.id)),
            "scan ids"
        );
        assert!(t.requests.iter().any(|r| r.id >= 1300), "fresh ids");
    }

    #[test]
    fn one_hit_fraction_is_respected() {
        let spec = StreamSpec {
            one_hit_fraction: 0.25,
            fresh_ring: 1 << 22,
            ..StreamSpec::zipf(40_000, 2000, 1.0, 11)
        };
        let (bytes, _) = generate(&spec);
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let fresh = t.requests.iter().filter(|r| r.id >= 2000).count() as f64;
        let frac = fresh / t.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "one-hit share {frac:.3}");
        // With a large ring and a short trace, every fresh id is seen once.
        let mut seen = std::collections::HashSet::new();
        for r in t.requests.iter().filter(|r| r.id >= 2000) {
            assert!(seen.insert(r.id), "fresh id {} repeated", r.id);
        }
    }

    #[test]
    fn scan_bursts_are_sequential() {
        let spec = StreamSpec {
            scan_fraction: 0.3,
            scan_len: 100,
            scan_space: 10_000,
            ..StreamSpec::zipf(20_000, 500, 1.0, 13)
        };
        let (bytes, _) = generate(&spec);
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let scans = t.requests.iter().filter(|r| r.id >= 500).count() as f64;
        let frac = scans / t.len() as f64;
        assert!((frac - 0.3).abs() < 0.1, "scan share {frac:.3}");
        // Consecutive scan-range requests inside a burst increment by one.
        let mut runs = 0u32;
        for w in t.requests.windows(2) {
            if w[0].id >= 500 && w[1].id == w[0].id + 1 {
                runs += 1;
            }
        }
        assert!(runs > 1000, "expected long sequential runs, saw {runs}");
    }

    #[test]
    fn phases_rotate_the_hot_set() {
        let spec = StreamSpec {
            phases: 2,
            ..StreamSpec::zipf(40_000, 1000, 1.2, 17)
        };
        let (bytes, _) = generate(&spec);
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let half = t.len() / 2;
        let top = |reqs: &[Request]| -> u64 {
            let mut counts = std::collections::HashMap::new();
            for r in reqs {
                *counts.entry(r.id).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(id, _)| id).expect("non-empty")
        };
        let first = top(&t.requests[..half]);
        let second = top(&t.requests[half..]);
        assert_ne!(first, second, "phase change must move the hottest object");
        assert_eq!((first + 500) % 1000, second, "rotation by objects/phases");
    }

    #[test]
    fn deletes_enable_op_lane_and_hit_recent_ids() {
        let spec = StreamSpec {
            delete_fraction: 0.1,
            ..StreamSpec::zipf(10_000, 300, 1.0, 19)
        };
        let (bytes, info) = generate(&spec);
        assert!(info.lanes.ops);
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let dels = t.requests.iter().filter(|r| r.op == Op::Delete).count() as f64;
        let frac = dels / t.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "delete share {frac:.3}");
        assert!(t.requests.iter().filter(|r| r.op == Op::Delete).all(|r| r.id < 300));
    }

    #[test]
    fn sizes_are_stable_per_id() {
        let spec = StreamSpec {
            max_size: 64,
            ..StreamSpec::zipf(5_000, 100, 1.0, 23)
        };
        let (bytes, _) = generate(&spec);
        let (t, _) = read_trace("s", Cursor::new(&bytes)).expect("read");
        let mut sizes = std::collections::HashMap::new();
        for r in &t.requests {
            assert!((1..=64).contains(&r.size));
            assert_eq!(*sizes.entry(r.id).or_insert(r.size), r.size, "id {}", r.id);
        }
        assert!(sizes.values().collect::<std::collections::HashSet<_>>().len() > 10);
    }

    #[test]
    fn fresh_ring_wraps_instead_of_growing() {
        let spec = StreamSpec {
            one_hit_fraction: 0.5,
            fresh_ring: 10,
            ..StreamSpec::zipf(2_000, 50, 1.0, 29)
        };
        let (bytes, info) = generate(&spec);
        assert!(info.id_space <= 60, "id space bounded by the ring");
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("open");
        let mut buf = Vec::new();
        let mut total = 0;
        while reader.read_chunk(&mut buf, 128).expect("chunk") > 0 {
            total += buf.len();
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let base = StreamSpec::zipf(10, 10, 1.0, 1);
        for spec in [
            StreamSpec { objects: 0, ..base.clone() },
            StreamSpec { phases: 0, ..base.clone() },
            StreamSpec { max_size: 0, ..base.clone() },
            StreamSpec { one_hit_fraction: 1.5, ..base.clone() },
            StreamSpec { one_hit_fraction: 0.1, fresh_ring: 0, ..base.clone() },
            StreamSpec { scan_fraction: 0.1, scan_len: 0, ..base.clone() },
            StreamSpec { objects: 1 << 33, ..base.clone() },
        ] {
            assert!(spec.write(Cursor::new(Vec::new())).is_err(), "{spec:?}");
        }
    }
}

//! Seeded out-of-core trace generator: streams a multi-GB `.ctr` workload
//! straight to disk without ever holding the trace in memory.
//!
//! Run: `cargo run --release -p cache-trace --bin trace_gen -- \
//!         --out target/oo_trace.ctr --requests 1000000000 --objects 100000000`
//!
//! Flags:
//!   --out PATH        output `.ctr` file (default `target/oo_trace.ctr`)
//!   --requests N      request count (default 10_000_000)
//!   --objects N       core object universe (default requests / 10)
//!   --alpha F         Zipf skew (default 1.0)
//!   --seed N          RNG seed (default 42)
//!   --mix paper|zipf  `paper` adds one-hit wonders, scan bursts, phase
//!                     changes, and deletes (default); `zipf` is pure IRM
//!   --smoke           tiny deterministic trace for CI (overrides sizes)

use cache_trace::stream_gen::StreamSpec;
use std::path::PathBuf;
use std::time::Instant;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = parse_flag::<String>(&args, "--out")
        .unwrap_or_else(|| "target/oo_trace.ctr".into())
        .into();
    let requests: u64 = if smoke {
        50_000
    } else {
        parse_flag(&args, "--requests").unwrap_or(10_000_000)
    };
    let objects: u64 = if smoke {
        5_000
    } else {
        parse_flag(&args, "--objects").unwrap_or((requests / 10).max(1))
    };
    let alpha: f64 = parse_flag(&args, "--alpha").unwrap_or(1.0);
    let seed: u64 = parse_flag(&args, "--seed").unwrap_or(42);
    let mix: String = parse_flag(&args, "--mix").unwrap_or_else(|| "paper".into());

    let mut spec = match mix.as_str() {
        "paper" => StreamSpec::paper_mix(requests, objects, seed),
        "zipf" => StreamSpec::zipf(requests, objects, alpha, seed),
        other => {
            eprintln!("unknown --mix {other:?} (expected paper|zipf)");
            std::process::exit(2);
        }
    };
    spec.alpha = alpha;
    if smoke {
        // Keep the rings proportionate so the smoke trace still exercises
        // every lane of the generator.
        spec.fresh_ring = 4096;
        spec.scan_space = 4096;
    }

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }

    eprintln!(
        "generating {requests} requests over {objects} objects (mix={mix}, alpha={alpha}, seed={seed}) -> {}",
        out.display()
    );
    let t0 = Instant::now();
    let info = match spec.write_path(&out) {
        Ok(info) => info,
        Err(e) => {
            eprintln!("generation failed: {e}");
            std::process::exit(1);
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {} records, id space {}, {} bytes ({:.2} GB) in {:.1}s ({:.1} M req/s)",
        info.records,
        info.id_space,
        bytes,
        bytes as f64 / 1e9,
        secs,
        info.records as f64 / secs / 1e6
    );
}

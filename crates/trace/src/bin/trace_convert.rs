//! CSV ↔ `.ctr` trace conversion and inspection.
//!
//! Run: `cargo run --release -p cache-trace --bin trace_convert -- <cmd> ...`
//!
//! Commands:
//!   to-ctr <in.csv> <out.ctr>   convert CSV to binary (dense ids + id
//!                               table; malformed lines are skipped and
//!                               counted, like the lossy CSV reader)
//!   to-csv <in.ctr> <out.csv>   convert binary back to CSV with original
//!                               ids (materializes the trace — for traces
//!                               that fit in memory)
//!   info <file.ctr>             print the validated header
//!   verify <a.csv> <b.ctr>      check the two encode the same trace up to
//!                               the id table bijection (exit 1 if not)

use cache_trace::ctr::{read_trace_original_ids, write_trace, CtrReader};
use cache_trace::io::{read_csv_lossy, write_csv};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom};
use std::path::Path;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    exit(1);
}

fn open(path: &str) -> File {
    File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")))
}

fn create(path: &str) -> File {
    File::create(path).unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")))
}

fn trace_name(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".into())
}

fn to_ctr(csv_path: &str, ctr_path: &str) {
    let (trace, report) = read_csv_lossy(trace_name(csv_path), open(csv_path))
        .unwrap_or_else(|e| fail(&format!("reading {csv_path}: {e}")));
    if report.skipped_lines > 0 {
        eprintln!(
            "warning: skipped {} malformed lines (first: {:?})",
            report.skipped_lines,
            report.first_skips.first()
        );
    }
    let mut w = BufWriter::new(create(ctr_path));
    // BufWriter<File> seeks by flushing first, which is exactly the header
    // patch-up `write_trace` needs.
    w.seek(SeekFrom::Start(0))
        .unwrap_or_else(|e| fail(&format!("seeking {ctr_path}: {e}")));
    let (_, info) = write_trace(&trace, w)
        .unwrap_or_else(|e| fail(&format!("writing {ctr_path}: {e}")));
    println!(
        "wrote {} records, id space {}, lanes ops={} ttls={}",
        info.records, info.id_space, info.lanes.ops, info.lanes.ttls
    );
}

fn to_csv(ctr_path: &str, csv_path: &str) {
    let (trace, _info) = read_trace_original_ids(trace_name(ctr_path), open(ctr_path))
        .unwrap_or_else(|e| fail(&format!("reading {ctr_path}: {e}")));
    let mut w = BufWriter::new(create(csv_path));
    write_csv(&trace, &mut w).unwrap_or_else(|e| fail(&format!("writing {csv_path}: {e}")));
    println!("wrote {} requests", trace.len());
}

fn info(ctr_path: &str) {
    let reader = CtrReader::open(open(ctr_path))
        .unwrap_or_else(|e| fail(&format!("reading {ctr_path}: {e}")));
    let i = reader.info();
    println!("records:      {}", i.records);
    println!("id space:     {}", i.id_space);
    println!("record bytes: {}", i.record_bytes);
    println!("op lane:      {}", i.lanes.ops);
    println!("ttl lane:     {}", i.lanes.ttls);
    println!("id table:     {}", i.has_id_table);
}

fn verify(csv_path: &str, ctr_path: &str) {
    let (csv, report) = read_csv_lossy(trace_name(csv_path), open(csv_path))
        .unwrap_or_else(|e| fail(&format!("reading {csv_path}: {e}")));
    if report.skipped_lines > 0 {
        eprintln!("note: {} malformed CSV lines skipped", report.skipped_lines);
    }
    let (ctr, _info) = read_trace_original_ids(trace_name(ctr_path), open(ctr_path))
        .unwrap_or_else(|e| fail(&format!("reading {ctr_path}: {e}")));
    if csv.len() != ctr.len() {
        fail(&format!(
            "length mismatch: {} CSV requests vs {} binary records",
            csv.len(),
            ctr.len()
        ));
    }
    for (i, (a, b)) in csv.requests.iter().zip(&ctr.requests).enumerate() {
        if a.id != b.id || a.size != b.size || a.op != b.op {
            fail(&format!(
                "request {i} differs: csv {a:?} vs binary {b:?}"
            ));
        }
    }
    println!("ok: {} requests identical", csv.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("to-ctr") if args.len() == 4 => to_ctr(&args[2], &args[3]),
        Some("to-csv") if args.len() == 4 => to_csv(&args[2], &args[3]),
        Some("info") if args.len() == 3 => info(&args[2]),
        Some("verify") if args.len() == 4 => verify(&args[2], &args[3]),
        _ => {
            eprintln!(
                "usage: trace_convert to-ctr <in.csv> <out.ctr>\n\
                 \x20      trace_convert to-csv <in.ctr> <out.csv>\n\
                 \x20      trace_convert info <file.ctr>\n\
                 \x20      trace_convert verify <a.csv> <b.ctr>"
            );
            exit(2);
        }
    }
}

//! Trace serialization: a human-readable CSV format and a compact binary
//! format.
//!
//! CSV lines are `id,size,op` (op ∈ {get,set,del}); lines starting with `#`
//! are comments. The binary format is a 16-byte header (`S3FT` magic,
//! version, record count) followed by 13-byte little-endian records.

use crate::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cache_types::{CacheError, Op, Request};
use std::io::{BufRead, BufReader, Read, Write};

const MAGIC: &[u8; 4] = b"S3FT";
const VERSION: u32 = 1;

fn op_code(op: Op) -> u8 {
    match op {
        Op::Get => 0,
        Op::Set => 1,
        Op::Delete => 2,
    }
}

fn code_op(code: u8) -> Result<Op, CacheError> {
    match code {
        0 => Ok(Op::Get),
        1 => Ok(Op::Set),
        2 => Ok(Op::Delete),
        other => Err(CacheError::TraceFormat(format!("bad op code {other}"))),
    }
}

/// Writes a trace as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(trace: &Trace, w: &mut W) -> Result<(), CacheError> {
    writeln!(w, "# trace: {}", trace.name)?;
    writeln!(w, "# id,size,op")?;
    for r in &trace.requests {
        let op = match r.op {
            Op::Get => "get",
            Op::Set => "set",
            Op::Delete => "del",
        };
        writeln!(w, "{},{},{}", r.id, r.size, op)?;
    }
    Ok(())
}

/// Reads a CSV trace; logical times are assigned by line order.
///
/// # Errors
///
/// Returns [`CacheError::TraceFormat`] on malformed lines and propagates
/// I/O errors.
pub fn read_csv<R: Read>(name: impl Into<String>, r: R) -> Result<Trace, CacheError> {
    let reader = BufReader::new(r);
    let mut reqs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let id: u64 = parts
            .next()
            .ok_or_else(|| CacheError::TraceFormat(format!("line {}: missing id", lineno + 1)))?
            .trim()
            .parse()
            .map_err(|e| CacheError::TraceFormat(format!("line {}: bad id: {e}", lineno + 1)))?;
        let size: u32 = match parts.next() {
            Some(s) => s.trim().parse().map_err(|e| {
                CacheError::TraceFormat(format!("line {}: bad size: {e}", lineno + 1))
            })?,
            None => 1,
        };
        let op = match parts.next().map(str::trim) {
            None | Some("get") | Some("") => Op::Get,
            Some("set") => Op::Set,
            Some("del") => Op::Delete,
            Some(other) => {
                return Err(CacheError::TraceFormat(format!(
                    "line {}: unknown op {other:?}",
                    lineno + 1
                )))
            }
        };
        reqs.push(Request {
            id,
            size,
            time: 0,
            op,
        });
    }
    Ok(Trace::new(name, reqs))
}

/// Encodes a trace into the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 13);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for r in &trace.requests {
        buf.put_u64_le(r.id);
        buf.put_u32_le(r.size);
        buf.put_u8(op_code(r.op));
    }
    buf.freeze()
}

/// Decodes a trace from the compact binary format.
///
/// # Errors
///
/// Returns [`CacheError::TraceFormat`] on bad magic, version, or truncation.
pub fn from_binary(name: impl Into<String>, mut data: &[u8]) -> Result<Trace, CacheError> {
    if data.len() < 16 {
        return Err(CacheError::TraceFormat("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CacheError::TraceFormat("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CacheError::TraceFormat(format!("bad version {version}")));
    }
    let n = data.get_u64_le() as usize;
    if data.remaining() < n * 13 {
        return Err(CacheError::TraceFormat(format!(
            "truncated body: {} bytes for {} records",
            data.remaining(),
            n
        )));
    }
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = data.get_u64_le();
        let size = data.get_u32_le();
        let op = code_op(data.get_u8())?;
        reqs.push(Request {
            id,
            size,
            time: 0,
            op,
        });
    }
    Ok(Trace::new(name, reqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;

    #[test]
    fn csv_roundtrip() {
        let t = WorkloadSpec::zipf("z", 1000, 100, 1.0, 1).generate();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv("z", &buf[..]).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn csv_parses_ops_and_defaults() {
        let csv = "# comment\n1,100,get\n2,50,set\n3,0,del\n4\n";
        let t = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.requests[0].op, Op::Get);
        assert_eq!(t.requests[1].op, Op::Set);
        assert_eq!(t.requests[2].op, Op::Delete);
        assert_eq!(t.requests[3].size, 1);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("t", "not-a-number,1,get\n".as_bytes()).is_err());
        assert!(read_csv("t", "1,xyz,get\n".as_bytes()).is_err());
        assert!(read_csv("t", "1,1,frobnicate\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let t = WorkloadSpec::zipf("z", 5000, 300, 0.9, 2).generate();
        let bytes = to_binary(&t);
        let back = from_binary("z", &bytes).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = WorkloadSpec::zipf("z", 10, 5, 1.0, 3).generate();
        let bytes = to_binary(&t);
        assert!(from_binary("z", &bytes[..10]).is_err()); // truncated header
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_binary("z", &bad).is_err()); // bad magic
        let short = &bytes[..bytes.len() - 5];
        assert!(from_binary("z", short).is_err()); // truncated body
    }

    #[test]
    fn binary_rejects_bad_version() {
        let t = WorkloadSpec::zipf("z", 10, 5, 1.0, 3).generate();
        let mut bytes = to_binary(&t).to_vec();
        bytes[4] = 99;
        assert!(from_binary("z", &bytes).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let bytes = to_binary(&t);
        let back = from_binary("empty", &bytes).unwrap();
        assert!(back.is_empty());
    }
}

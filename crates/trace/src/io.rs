//! Trace serialization: a human-readable CSV format and a compact binary
//! format.
//!
//! CSV lines are `id,size,op[,ttl]` (op ∈ {get,set,del}); lines starting
//! with `#` are comments. Missing or empty size defaults to 1; the optional
//! TTL field is validated but not retained. The binary format is a 16-byte
//! header (`S3FT` magic, version, record count) followed by 13-byte
//! little-endian records; the chunk-addressable out-of-core format lives in
//! [`crate::ctr`].

use crate::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cache_types::{CacheError, Op, Request};
use std::io::{BufRead, BufReader, Read, Write};

const MAGIC: &[u8; 4] = b"S3FT";
const VERSION: u32 = 1;

fn op_code(op: Op) -> u8 {
    match op {
        Op::Get => 0,
        Op::Set => 1,
        Op::Delete => 2,
    }
}

fn code_op(code: u8) -> Result<Op, CacheError> {
    match code {
        0 => Ok(Op::Get),
        1 => Ok(Op::Set),
        2 => Ok(Op::Delete),
        other => Err(CacheError::TraceFormat(format!("bad op code {other}"))),
    }
}

/// Writes a trace as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(trace: &Trace, w: &mut W) -> Result<(), CacheError> {
    writeln!(w, "# trace: {}", trace.name)?;
    writeln!(w, "# id,size,op")?;
    for r in &trace.requests {
        let op = match r.op {
            Op::Get => "get",
            Op::Set => "set",
            Op::Delete => "del",
        };
        writeln!(w, "{},{},{}", r.id, r.size, op)?;
    }
    Ok(())
}

/// Outcome of a lossy CSV read: the trace plus what was dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsvReadReport {
    /// Malformed lines skipped.
    pub skipped_lines: u64,
    /// Requests successfully parsed.
    pub parsed_lines: u64,
    /// Line numbers (1-based) and reasons for the first few skips, for
    /// diagnostics without unbounded memory on badly corrupted files.
    pub first_skips: Vec<(u64, String)>,
}

impl CsvReadReport {
    /// Publishes the read's accounting into a metrics scope:
    /// `csv_skipped_lines` and `csv_parsed_lines` counters, accumulated
    /// across reads sharing the scope. Skip *reasons* stay in the report —
    /// metrics carry counts, diagnostics carry text.
    pub fn record_to(&self, scope: &cache_obs::Scope) {
        scope.counter("csv_skipped_lines").add(self.skipped_lines);
        scope.counter("csv_parsed_lines").add(self.parsed_lines);
    }
}

/// How many skip diagnostics a [`CsvReadReport`] retains.
const MAX_SKIP_DIAGNOSTICS: usize = 16;

fn parse_csv_line(line: &str, lineno: usize) -> Result<Request, CacheError> {
    let mut parts = line.split(',');
    let id: u64 = parts
        .next()
        .ok_or_else(|| CacheError::TraceFormat(format!("line {}: missing id", lineno + 1)))?
        .trim()
        .parse()
        .map_err(|e| CacheError::TraceFormat(format!("line {}: bad id: {e}", lineno + 1)))?;
    let size: u32 = match parts.next().map(str::trim) {
        // An empty field means "size unknown" exactly like a missing one:
        // `4,` and `4` both default to 1. (The empty case used to error
        // while the missing case defaulted — exporters that always emit the
        // trailing comma lost every size-less record in lossy mode.)
        None | Some("") => 1,
        Some(s) => s.parse().map_err(|e| {
            CacheError::TraceFormat(format!("line {}: bad size: {e}", lineno + 1))
        })?,
    };
    let op = match parts.next().map(str::trim) {
        None | Some("get") | Some("") => Op::Get,
        Some("set") => Op::Set,
        Some("del") => Op::Delete,
        Some(other) => {
            return Err(CacheError::TraceFormat(format!(
                "line {}: unknown op {other:?}",
                lineno + 1
            )))
        }
    };
    // Optional 4th field: TTL seconds. The simulator does not retain TTLs,
    // but a malformed value is content damage that must be surfaced (and
    // counted in lossy mode), not silently accepted.
    if let Some(ttl) = parts.next().map(str::trim) {
        if !ttl.is_empty() {
            ttl.parse::<u64>().map_err(|e| {
                CacheError::TraceFormat(format!("line {}: bad ttl: {e}", lineno + 1))
            })?;
        }
    }
    // Anything past the TTL is not part of the format; ignoring it would
    // make the skip counters lie about how much of the line was understood.
    if parts.next().is_some() {
        return Err(CacheError::TraceFormat(format!(
            "line {}: too many fields (format is id,size,op[,ttl])",
            lineno + 1
        )));
    }
    Ok(Request {
        id,
        size,
        time: 0,
        op,
    })
}

fn read_csv_inner<R: Read>(
    name: impl Into<String>,
    r: R,
    skip_invalid: bool,
) -> Result<(Trace, CsvReadReport), CacheError> {
    let reader = BufReader::new(r);
    let mut reqs = Vec::new();
    let mut report = CsvReadReport::default();
    for (lineno, line) in reader.lines().enumerate() {
        // Invalid UTF-8 is content damage (skippable in lossy mode; the
        // reader resumes at the next line); real I/O errors never are.
        let line = match line {
            Ok(l) => l,
            Err(e) if skip_invalid && e.kind() == std::io::ErrorKind::InvalidData => {
                report.skipped_lines += 1;
                if report.first_skips.len() < MAX_SKIP_DIAGNOSTICS {
                    report
                        .first_skips
                        .push((lineno as u64 + 1, format!("invalid utf-8: {e}")));
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        // A UTF-8 BOM is encoding furniture, not content: without this
        // strip, the first record of every BOM-prefixed file failed its id
        // parse and vanished silently in lossy mode.
        let line = if lineno == 0 {
            line.strip_prefix('\u{FEFF}').unwrap_or(&line)
        } else {
            line.as_str()
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_csv_line(line, lineno) {
            Ok(req) => {
                report.parsed_lines += 1;
                reqs.push(req);
            }
            Err(e) if skip_invalid => {
                report.skipped_lines += 1;
                if report.first_skips.len() < MAX_SKIP_DIAGNOSTICS {
                    report.first_skips.push((lineno as u64 + 1, e.to_string()));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok((Trace::new(name, reqs), report))
}

/// Reads a CSV trace; logical times are assigned by line order.
///
/// # Errors
///
/// Returns [`CacheError::TraceFormat`] (with the 1-based line number) on
/// the first malformed line and propagates I/O errors. Use
/// [`read_csv_lossy`] to skip malformed lines instead.
pub fn read_csv<R: Read>(name: impl Into<String>, r: R) -> Result<Trace, CacheError> {
    read_csv_inner(name, r, false).map(|(t, _)| t)
}

/// Reads a CSV trace, skipping malformed lines and reporting how many were
/// dropped (plus line numbers and reasons for the first few).
///
/// # Errors
///
/// Propagates I/O errors; malformed *content* never fails this variant.
pub fn read_csv_lossy<R: Read>(
    name: impl Into<String>,
    r: R,
) -> Result<(Trace, CsvReadReport), CacheError> {
    read_csv_inner(name, r, true)
}

/// [`read_csv_lossy`] that also records the skip/parse counters into a
/// metrics scope (see [`CsvReadReport::record_to`]), so silent data loss on
/// corrupt trace files surfaces in every metrics dump.
///
/// # Errors
///
/// Propagates I/O errors; malformed *content* never fails this variant.
pub fn read_csv_lossy_observed<R: Read>(
    name: impl Into<String>,
    r: R,
    scope: &cache_obs::Scope,
) -> Result<(Trace, CsvReadReport), CacheError> {
    let (trace, report) = read_csv_inner(name, r, true)?;
    report.record_to(scope);
    Ok((trace, report))
}

/// Encodes a trace into the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 13);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for r in &trace.requests {
        buf.put_u64_le(r.id);
        buf.put_u32_le(r.size);
        buf.put_u8(op_code(r.op));
    }
    buf.freeze()
}

/// Decodes a trace from the compact binary format.
///
/// # Errors
///
/// Returns [`CacheError::TraceFormat`] on bad magic, version, or truncation.
pub fn from_binary(name: impl Into<String>, mut data: &[u8]) -> Result<Trace, CacheError> {
    if data.len() < 16 {
        return Err(CacheError::TraceFormat("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CacheError::TraceFormat("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(CacheError::TraceFormat(format!("bad version {version}")));
    }
    let n = data.get_u64_le() as usize;
    // checked_mul: a corrupted count must not overflow into a bogus small
    // byte requirement (or panic in debug builds).
    let body = n.checked_mul(13).ok_or_else(|| {
        CacheError::TraceFormat(format!("record count {n} overflows the body size"))
    })?;
    if data.remaining() < body {
        return Err(CacheError::TraceFormat(format!(
            "truncated body: {} bytes for {} records",
            data.remaining(),
            n
        )));
    }
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        let id = data.get_u64_le();
        let size = data.get_u32_le();
        let op = code_op(data.get_u8())?;
        reqs.push(Request {
            id,
            size,
            time: 0,
            op,
        });
    }
    Ok(Trace::new(name, reqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;

    #[test]
    fn csv_roundtrip() {
        let t = WorkloadSpec::zipf("z", 1000, 100, 1.0, 1).generate();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv("z", &buf[..]).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn csv_parses_ops_and_defaults() {
        let csv = "# comment\n1,100,get\n2,50,set\n3,0,del\n4\n";
        let t = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.requests[0].op, Op::Get);
        assert_eq!(t.requests[1].op, Op::Set);
        assert_eq!(t.requests[2].op, Op::Delete);
        assert_eq!(t.requests[3].size, 1);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("t", "not-a-number,1,get\n".as_bytes()).is_err());
        assert!(read_csv("t", "1,xyz,get\n".as_bytes()).is_err());
        assert!(read_csv("t", "1,1,frobnicate\n".as_bytes()).is_err());
    }

    /// Regression: a final line without a trailing newline must still parse
    /// (pinned — `lines()` already handles it, and this keeps it that way).
    #[test]
    fn csv_final_line_without_newline() {
        let t = read_csv("t", "1,10,get\n2,20,set".as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[1].id, 2);
        assert_eq!(t.requests[1].op, Op::Set);
    }

    /// Regression: CRLF line endings must not corrupt the last field.
    #[test]
    fn csv_crlf_line_endings() {
        let t = read_csv("t", "1,10,get\r\n2,20,set\r\n3,30,del\r\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[1].op, Op::Set);
        assert_eq!(t.requests[2].op, Op::Delete);
        // CRLF + no final newline together.
        let t = read_csv("t", "1,10,get\r\n2,20,set".as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    /// Regression: a UTF-8 BOM used to fail the first line's id parse —
    /// a hard error in strict mode and a *silently dropped first record*
    /// in lossy mode.
    #[test]
    fn csv_bom_does_not_eat_first_record() {
        let csv = "\u{FEFF}1,10,get\n2,20,set\n";
        let t = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[0].id, 1);
        let (t, report) = read_csv_lossy("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2, "lossy mode must not drop the first record");
        assert_eq!(report.skipped_lines, 0);
        // A BOM mid-file is real content damage, not furniture.
        let (_, report) = read_csv_lossy("t", "1,1,get\n\u{FEFF}2,1,get\n".as_bytes()).unwrap();
        assert_eq!(report.skipped_lines, 1);
    }

    /// Regression: an empty size field (`4,`) used to error while a missing
    /// one (`4`) defaulted to 1 — exporters that always emit the trailing
    /// comma lost every size-less record in lossy mode.
    #[test]
    fn csv_empty_size_defaults_like_missing() {
        let t = read_csv("t", "4,\n5\n6,,set\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[0].size, 1);
        assert_eq!(t.requests[1].size, 1);
        assert_eq!(t.requests[2].size, 1);
        assert_eq!(t.requests[2].op, Op::Set);
    }

    /// Regression: trailing fields were silently ignored, so a shifted or
    /// over-wide row half-parsed instead of being counted as damage. The
    /// 4th field is an optional numeric TTL; anything further is an error.
    #[test]
    fn csv_extra_fields_are_damage_not_noise() {
        // Valid: optional ttl, possibly empty.
        let t = read_csv("t", "1,10,get,300\n2,20,set,\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        // Invalid: non-numeric ttl, five fields.
        assert!(read_csv("t", "1,10,get,soon\n".as_bytes()).is_err());
        assert!(read_csv("t", "1,10,get,300,surprise\n".as_bytes()).is_err());
        let (t, report) =
            read_csv_lossy("t", "1,10,get,300,surprise\n2,20,get\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(report.skipped_lines, 1, "over-wide rows must be counted");
    }

    /// Lossy accounting exactness: every non-comment, non-empty line is
    /// either parsed or counted as skipped — nothing vanishes.
    #[test]
    fn lossy_accounting_is_exhaustive() {
        let csv = "# c\n1,1,get\nbad\n2,2,set,300\n3,3,del,nope\n\n4,4\nx,y,z,w,v\n";
        let data_lines = csv
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim().starts_with('#'))
            .count() as u64;
        let (t, report) = read_csv_lossy("t", csv.as_bytes()).unwrap();
        assert_eq!(report.parsed_lines, t.len() as u64);
        assert_eq!(report.parsed_lines + report.skipped_lines, data_lines);
        assert_eq!(report.skipped_lines, report.first_skips.len() as u64);
    }

    #[test]
    fn binary_roundtrip() {
        let t = WorkloadSpec::zipf("z", 5000, 300, 0.9, 2).generate();
        let bytes = to_binary(&t);
        let back = from_binary("z", &bytes).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = WorkloadSpec::zipf("z", 10, 5, 1.0, 3).generate();
        let bytes = to_binary(&t);
        assert!(from_binary("z", &bytes[..10]).is_err()); // truncated header
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_binary("z", &bad).is_err()); // bad magic
        let short = &bytes[..bytes.len() - 5];
        assert!(from_binary("z", short).is_err()); // truncated body
    }

    #[test]
    fn binary_rejects_bad_version() {
        let t = WorkloadSpec::zipf("z", 10, 5, 1.0, 3).generate();
        let mut bytes = to_binary(&t).to_vec();
        bytes[4] = 99;
        assert!(from_binary("z", &bytes).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let bytes = to_binary(&t);
        let back = from_binary("empty", &bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn binary_rejects_overflowing_record_count() {
        let mut bytes = to_binary(&Trace::new("empty", vec![])).to_vec();
        // Header: magic(4) version(4) count(8). Claim u64::MAX records.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = from_binary("evil", &bytes).expect_err("must reject");
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn lossy_csv_skips_and_counts() {
        let csv = "# header\n1,100,get\ngarbage line\n2,oops,set\n3,50,del\n,,,\n";
        let (t, report) = read_csv_lossy("t", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2, "two good lines survive");
        assert_eq!(t.requests[0].id, 1);
        assert_eq!(t.requests[1].id, 3);
        assert_eq!(report.skipped_lines, 3);
        assert_eq!(report.first_skips.len(), 3);
        // 1-based line numbers of the bad lines.
        assert_eq!(report.first_skips[0].0, 3);
        assert_eq!(report.first_skips[1].0, 4);
        assert_eq!(report.first_skips[2].0, 6);
    }

    #[test]
    fn lossy_csv_on_clean_input_skips_nothing() {
        let t = WorkloadSpec::zipf("z", 500, 50, 1.0, 4).generate();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let (back, report) = read_csv_lossy("z", &buf[..]).unwrap();
        assert_eq!(t.requests, back.requests);
        assert_eq!(report.skipped_lines, 0);
        assert!(report.first_skips.is_empty());
    }

    /// Satellite regression: reading a corrupt trace *file* through the
    /// observed path must surface the losses in the metrics registry, not
    /// just in the returned report.
    #[test]
    fn corrupt_trace_file_skips_land_in_registry() {
        use cache_obs::{MetricsRegistry, SampleValue};
        let path = std::env::temp_dir().join(format!(
            "s3fifo-corrupt-trace-{}.csv",
            std::process::id()
        ));
        std::fs::write(
            &path,
            b"# corrupt trace\n1,100,get\n\xff\xfe not utf8\ngarbage\n2,50,set\n9,nope,get\n",
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let scope = registry.scope("trace.io");
        let file = std::fs::File::open(&path).unwrap();
        let (t, report) = read_csv_lossy_observed("corrupt", file, &scope).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(t.len(), 2, "the two good lines survive");
        assert_eq!(report.skipped_lines, 3, "{report:?}");
        assert_eq!(report.parsed_lines, 2);
        let counter = |name: &str| {
            registry
                .snapshot()
                .into_iter()
                .find(|m| m.name == format!("trace.io.{name}"))
                .map(|m| match m.value {
                    SampleValue::Counter(v) => v,
                    other => panic!("{name}: expected counter, got {other:?}"),
                })
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(counter("csv_skipped_lines"), 3);
        assert_eq!(counter("csv_parsed_lines"), 2);

        // A second observed read accumulates into the same counters.
        let (_, r2) =
            read_csv_lossy_observed("again", "bad\n7,1,get\n".as_bytes(), &scope).unwrap();
        assert_eq!(r2.skipped_lines, 1);
        assert_eq!(counter("csv_skipped_lines"), 4);
        assert_eq!(counter("csv_parsed_lines"), 3);
    }

    #[test]
    fn lossy_skip_diagnostics_are_bounded() {
        let mut csv = String::new();
        for _ in 0..100 {
            csv.push_str("bad\n");
        }
        let (t, report) = read_csv_lossy("t", csv.as_bytes()).unwrap();
        assert!(t.is_empty());
        assert_eq!(report.skipped_lines, 100);
        assert_eq!(report.first_skips.len(), super::MAX_SKIP_DIAGNOSTICS);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::gen::WorkloadSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        // Round-trip: any generated workload survives CSV and binary I/O.
        #[test]
        fn roundtrip_both_formats(
            objects in 1u64..200,
            requests in 1usize..400,
            seed in 0u64..u64::MAX,
        ) {
            let t = WorkloadSpec::zipf("p", requests, objects, 0.9, seed).generate();
            let mut csv = Vec::new();
            write_csv(&t, &mut csv).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let back = read_csv("p", &csv[..]).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&t.requests, &back.requests);
            let bin = to_binary(&t);
            let back = from_binary("p", &bin).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&t.requests, &back.requests);
        }

        // Corrupting one byte of the binary encoding must never panic: the
        // decoder either errors or returns some (possibly different) trace,
        // but stays memory-safe and terminates.
        #[test]
        fn single_byte_corruption_never_panics(
            seed in 0u64..u64::MAX,
            pos_pick in 0usize..10_000,
            flip in 1u8..=255,
        ) {
            let t = WorkloadSpec::zipf("c", 50, 20, 1.0, seed).generate();
            let mut bytes = to_binary(&t).to_vec();
            let pos = pos_pick % bytes.len();
            bytes[pos] ^= flip;
            // Must not panic; both outcomes are acceptable.
            let _ = from_binary("c", &bytes);
        }

        // Truncation at any point must never panic either.
        #[test]
        fn truncation_never_panics(
            seed in 0u64..u64::MAX,
            cut_pick in 0usize..10_000,
        ) {
            let t = WorkloadSpec::zipf("c", 50, 20, 1.0, seed).generate();
            let bytes = to_binary(&t);
            let cut = cut_pick % (bytes.len() + 1);
            let _ = from_binary("c", &bytes[..cut]);
        }

        // Corrupted CSV bytes: strict mode errors or succeeds (never
        // panics); lossy mode never fails on content at all.
        #[test]
        fn csv_corruption_is_contained(
            seed in 0u64..u64::MAX,
            pos_pick in 0usize..10_000,
            flip in 1u8..=255,
        ) {
            let t = WorkloadSpec::zipf("c", 30, 10, 1.0, seed).generate();
            let mut csv = Vec::new();
            write_csv(&t, &mut csv).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let pos = pos_pick % csv.len();
            csv[pos] ^= flip;
            let _ = read_csv("c", &csv[..]);
            let lossy = read_csv_lossy("c", &csv[..]);
            prop_assert!(lossy.is_ok(), "lossy mode must absorb content damage");
        }
    }
}

//! Synthetic workload generation and trace analysis for the S3-FIFO
//! reproduction.
//!
//! The paper evaluates on 6594 production traces from 14 datasets (Table 1).
//! Those traces are proprietary or many terabytes large, so this crate
//! substitutes seeded synthetic generators whose knobs reproduce the workload
//! *shape* the paper's findings depend on:
//!
//! - [`zipf::ZipfSampler`] — skewed popularity under the independent
//!   reference model (the paper's §3.1 Zipf analysis);
//! - [`gen::WorkloadSpec`] — composable traces mixing a Zipf core, one-hit
//!   wonder streams, sequential scans, and stack-distance temporal locality;
//! - [`corpus`] — a 14-dataset corpus mirroring Table 1's per-dataset
//!   characteristics;
//! - [`analysis`] — one-hit-wonder ratios over full traces and over
//!   sub-sequences (Figs. 1–3), frequency histograms, footprints;
//! - [`io`] — CSV and compact binary trace formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod corpus;
pub mod ctr;
pub mod gen;
pub mod io;
pub mod sampling;
pub mod stream_gen;
pub mod zipf;

use cache_ds::DenseIds;
use cache_types::{Op, Request};
use std::sync::{Arc, OnceLock};

/// The dense-ID view of a trace: every 64-bit object id interned to a
/// contiguous `u32` slot (first-appearance order), plus the per-request slot
/// sequence. Computed once per trace and shared read-only across all
/// simulation jobs replaying it — this is the input to the simulator's dense
/// fast path.
#[derive(Debug)]
pub struct DenseTrace {
    /// The interning table (slot → original id and back).
    pub ids: Arc<DenseIds>,
    /// Per-request dense slot, parallel to `Trace::requests`.
    pub slots: Vec<u32>,
}

/// Aggregate operation/size shape of a trace — what engine routing needs
/// to know about the whole stream. Computed once per trace and cached (see
/// [`Trace::shape`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamShape {
    /// Every request is a [`Op::Get`].
    pub pure_get: bool,
    /// Every request has size 1.
    pub unit_size: bool,
}

/// A named, in-memory request trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable trace name, e.g. `"msr/t03"`.
    pub name: String,
    /// The request sequence. `requests[i].time == i` by construction.
    pub requests: Vec<Request>,
    /// Lazily computed dense-ID view; see [`Trace::dense`]. Cloning a trace
    /// shares the already-computed view (it only depends on the id sequence,
    /// which clones identically).
    dense: OnceLock<Arc<DenseTrace>>,
    /// Lazily computed stream shape; see [`Trace::shape`].
    shape: OnceLock<StreamShape>,
}

impl Trace {
    /// Creates a trace, stamping logical times with the request index.
    pub fn new(name: impl Into<String>, mut requests: Vec<Request>) -> Self {
        for (i, r) in requests.iter_mut().enumerate() {
            r.time = i as u64;
        }
        Trace {
            name: name.into(),
            requests,
            dense: OnceLock::new(),
            shape: OnceLock::new(),
        }
    }

    /// The dense-ID view of this trace, interned on first call and cached.
    ///
    /// Thread-safe: concurrent sweep workers hitting a cold trace race to
    /// intern but exactly one result is kept. Callers must not mutate
    /// `requests` after calling this — the view snapshots the id sequence.
    pub fn dense(&self) -> Arc<DenseTrace> {
        Arc::clone(self.dense.get_or_init(|| {
            let (ids, slots) = DenseIds::intern(self.requests.iter().map(|r| r.id));
            Arc::new(DenseTrace {
                ids: Arc::new(ids),
                slots,
            })
        }))
    }

    /// The aggregate operation/size shape, scanned on first call and cached.
    ///
    /// Engine routing (`simulate_mrc`) consults this on every curve; the
    /// scan over the request array happens once per trace, not once per
    /// call. Same caveat as [`Trace::dense`]: callers must not mutate
    /// `requests` after the first call.
    pub fn shape(&self) -> StreamShape {
        *self.shape.get_or_init(|| {
            let (mut pure_get, mut unit_size) = (true, true);
            for r in &self.requests {
                pure_get &= r.op == Op::Get;
                unit_size &= r.size == 1;
            }
            StreamShape { pure_get, unit_size }
        })
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of distinct objects (the paper's "trace footprint").
    pub fn footprint(&self) -> usize {
        let mut seen = cache_ds::IdSet::default();
        for r in &self.requests {
            seen.insert(r.id);
        }
        seen.len()
    }

    /// Footprint in bytes: the sum of distinct objects' sizes (used for byte
    /// miss ratio cache sizing, §5.2.3).
    pub fn footprint_bytes(&self) -> u64 {
        let mut seen = cache_ds::IdSet::default();
        let mut bytes = 0u64;
        for r in &self.requests {
            if seen.insert(r.id) {
                bytes += u64::from(r.size);
            }
        }
        bytes
    }

    /// Total requested bytes.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.size)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_stamps_times() {
        let t = Trace::new("t", vec![Request::get(5, 99), Request::get(6, 99)]);
        assert_eq!(t.requests[0].time, 0);
        assert_eq!(t.requests[1].time, 1);
    }

    #[test]
    fn footprint_counts_unique() {
        let t = Trace::new(
            "t",
            vec![Request::get(1, 0), Request::get(2, 0), Request::get(1, 0)],
        );
        assert_eq!(t.footprint(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn dense_view_interns_once_and_matches_footprint() {
        let t = Trace::new(
            "t",
            vec![
                Request::get(10, 1),
                Request::get(20, 1),
                Request::get(10, 1),
            ],
        );
        let d1 = t.dense();
        let d2 = t.dense();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(d1.slots, vec![0, 1, 0]);
        assert_eq!(d1.ids.len(), t.footprint());
        assert_eq!(d1.ids.orig(1), 20);
        // A clone shares the computed view.
        let c = t.clone();
        assert!(Arc::ptr_eq(&c.dense(), &d1));
    }

    #[test]
    fn shape_reflects_ops_and_sizes() {
        let pure = Trace::new("p", vec![Request::get(1, 0), Request::get(2, 0)]);
        assert_eq!(
            pure.shape(),
            StreamShape {
                pure_get: true,
                unit_size: true
            }
        );
        let mut wr = Request::get(3, 0);
        wr.op = Op::Set;
        let mixed = Trace::new(
            "m",
            vec![Request::get(1, 0), wr, Request::get_sized(4, 7, 0)],
        );
        let s = mixed.shape();
        assert!(!s.pure_get);
        assert!(!s.unit_size);
        // A clone shares the computed shape.
        assert_eq!(mixed.clone().shape(), s);
    }

    #[test]
    fn footprint_bytes_counts_each_object_once() {
        let t = Trace::new(
            "t",
            vec![
                Request::get_sized(1, 100, 0),
                Request::get_sized(1, 100, 0),
                Request::get_sized(2, 50, 0),
            ],
        );
        assert_eq!(t.footprint_bytes(), 150);
        assert_eq!(t.total_bytes(), 250);
    }
}

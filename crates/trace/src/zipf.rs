//! Zipf popularity sampling under the independent reference model.
//!
//! §3.1 analyzes request sequences whose object popularity follows a Zipf
//! distribution: the object of rank `i` is requested with probability
//! proportional to `1 / i^α`. [`ZipfSampler`] draws ranks from that
//! distribution by inverting a precomputed CDF (exact, O(M) setup, O(log M)
//! per sample, fully deterministic given the RNG stream).

use cache_ds::SplitMix64;

/// Samples ranks `1..=n` with probability ∝ `1 / rank^alpha`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities; `cdf[i]` = P(rank <= i + 1).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `alpha >= 0`
    /// (`alpha == 0` is the uniform distribution).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `alpha` is negative or not finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, which is the
        // zero-based index of the first cdf entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }

    /// Probability of the given rank (1-based).
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank >= 1 && rank <= self.n(), "rank out of range");
        let i = (rank - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn rank_one_is_most_popular() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SplitMix64::new(2);
        let mut counts = vec![0u64; 1001];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[100]);
    }

    #[test]
    fn frequencies_match_probabilities() {
        let z = ZipfSampler::new(50, 0.8);
        let mut rng = SplitMix64::new(3);
        let n = 200_000;
        let mut counts = vec![0u64; 51];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for rank in [1u64, 2, 5, 10] {
            let expected = z.probability(rank) * n as f64;
            let got = counts[rank as usize] as f64;
            assert!(
                (got - expected).abs() < expected * 0.1 + 30.0,
                "rank {rank}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for rank in 1..=10 {
            assert!((z.probability(rank) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_alpha_more_skewed() {
        let flat = ZipfSampler::new(1000, 0.6);
        let steep = ZipfSampler::new(1000, 1.2);
        assert!(steep.probability(1) > flat.probability(1));
        assert!(steep.probability(1000) < flat.probability(1000));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(200, 1.0);
        let sum: f64 = (1..=200).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ZipfSampler::new(100, 1.0);
        let a: Vec<u64> = {
            let mut rng = SplitMix64::new(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SplitMix64::new(7);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    /// Golden sequence: pins the exact sample stream across refactors.
    /// `deterministic_given_seed` only proves run-to-run stability; this
    /// proves *version-to-version* stability, which seeded trace generation
    /// (and every BENCH baseline derived from it) depends on.
    #[test]
    fn golden_sample_sequence() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = SplitMix64::new(42);
        let got: Vec<u64> = (0..16).map(|_| z.sample(&mut rng)).collect();
        assert_eq!(got, GOLDEN_ZIPF_10_1_SEED42);
    }

    const GOLDEN_ZIPF_10_1_SEED42: [u64; 16] =
        [5, 1, 1, 2, 1, 7, 1, 6, 1, 3, 1, 2, 3, 3, 4, 1];

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_one() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        // Structural soundness for any (n, alpha): the CDF is
        // non-decreasing and ends at exactly 1 — the two properties the
        // partition_point inversion relies on.
        #[test]
        fn cdf_is_sound(n in 1u64..256, alpha_centi in 0u64..=250) {
            let alpha = alpha_centi as f64 / 100.0;
            let z = ZipfSampler::new(n, alpha);
            let sum: f64 = (1..=n).map(|r| z.probability(r)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
            for r in 1..=n {
                prop_assert!(z.probability(r) > 0.0, "rank {r} unreachable");
            }
            for pair in (1..=n).collect::<Vec<_>>().windows(2) {
                prop_assert!(
                    z.probability(pair[0]) >= z.probability(pair[1]),
                    "popularity must fall with rank"
                );
            }
        }

        // Small-universe frequency check: with few ranks every rank is hit
        // and rank 1 dominates, for any seed.
        #[test]
        fn small_universe_hits_every_rank(n in 1u64..=8, seed in 0u64..u64::MAX) {
            let z = ZipfSampler::new(n, 1.0);
            let mut rng = SplitMix64::new(seed);
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..4000 {
                let r = z.sample(&mut rng);
                prop_assert!((1..=n).contains(&r));
                counts[r as usize] += 1;
            }
            for r in 1..=n as usize {
                prop_assert!(counts[r] > 0, "rank {r} never sampled in 4000 draws");
            }
            prop_assert_eq!(counts[1..].iter().max(), Some(&counts[1]));
        }
    }
}

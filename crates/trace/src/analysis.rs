//! One-hit-wonder and frequency analysis (§3.1, Figs. 1–3).
//!
//! The paper's motivating observation: the fraction of objects requested
//! exactly once (the *one-hit-wonder ratio*) is much higher in a short
//! request window than over the full trace, because unpopular objects rarely
//! get a second request within the window. These functions reproduce that
//! analysis on any trace.

use cache_ds::{IdMap, SplitMix64};
use cache_types::Request;

/// Fraction of distinct objects with exactly one request in `reqs`.
///
/// Returns 0 for an empty trace.
pub fn one_hit_wonder_ratio(reqs: &[Request]) -> f64 {
    let mut counts: IdMap<u32> = IdMap::default();
    for r in reqs {
        if r.is_read() {
            *counts.entry(r.id).or_insert(0) += 1;
        }
    }
    if counts.is_empty() {
        return 0.0;
    }
    let ones = counts.values().filter(|&&c| c == 1).count();
    ones as f64 / counts.len() as f64
}

/// One-hit-wonder ratio of the window starting at `start` and extending
/// until `unique_objects` distinct objects have been seen (or the trace
/// ends). This is the paper's "sequence length measured in the number of
/// unique objects".
pub fn window_one_hit_wonder_ratio(reqs: &[Request], start: usize, unique_objects: usize) -> f64 {
    let mut counts: IdMap<u32> = IdMap::default();
    for r in reqs[start.min(reqs.len())..].iter().filter(|r| r.is_read()) {
        if counts.len() >= unique_objects && !counts.contains_key(&r.id) {
            break;
        }
        *counts.entry(r.id).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return 0.0;
    }
    let ones = counts.values().filter(|&&c| c == 1).count();
    ones as f64 / counts.len() as f64
}

/// Mean one-hit-wonder ratio over `samples` random windows each containing
/// `fraction` of the trace's unique objects (Fig. 2's measurement: "take
/// random sub-sequences and measure the one-hit-wonder ratios; we repeat 100
/// times and report the mean").
pub fn sampled_window_ohw(reqs: &[Request], fraction: f64, samples: usize, seed: u64) -> f64 {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
    assert!(samples > 0, "need at least one sample");
    let footprint = {
        let mut s = cache_ds::IdSet::default();
        for r in reqs {
            if r.is_read() {
                s.insert(r.id);
            }
        }
        s.len()
    };
    if footprint == 0 {
        return 0.0;
    }
    let target = ((footprint as f64 * fraction).round() as usize).max(1);
    if target >= footprint {
        return one_hit_wonder_ratio(reqs);
    }
    let mut rng = SplitMix64::new(seed);
    let mut acc = 0.0;
    for _ in 0..samples {
        // Windows anchored uniformly over the first 3/4 of the trace so they
        // have room to collect `target` unique objects.
        let limit = (reqs.len() * 3 / 4).max(1);
        let start = rng.next_below(limit as u64) as usize;
        acc += window_one_hit_wonder_ratio(reqs, start, target);
    }
    acc / samples as f64
}

/// Per-object request counts.
pub fn frequency_map(reqs: &[Request]) -> IdMap<u32> {
    let mut counts: IdMap<u32> = IdMap::default();
    for r in reqs {
        if r.is_read() {
            *counts.entry(r.id).or_insert(0) += 1;
        }
    }
    counts
}

/// Summary statistics of a trace, as reported per dataset in Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of read requests.
    pub requests: usize,
    /// Distinct objects.
    pub objects: usize,
    /// Total requested bytes.
    pub request_bytes: u64,
    /// Sum of distinct objects' sizes.
    pub object_bytes: u64,
    /// Full-trace one-hit-wonder ratio.
    pub ohw_full: f64,
    /// Mean OHW over windows holding 10 % of the objects.
    pub ohw_10pct: f64,
    /// Mean OHW over windows holding 1 % of the objects.
    pub ohw_1pct: f64,
}

/// Computes [`TraceStats`] (window OHW uses `samples` random windows).
pub fn trace_stats(reqs: &[Request], samples: usize, seed: u64) -> TraceStats {
    let mut counts: IdMap<u32> = IdMap::default();
    let mut request_bytes = 0u64;
    let mut object_bytes = 0u64;
    let mut requests = 0usize;
    for r in reqs {
        if r.is_read() {
            requests += 1;
            request_bytes += u64::from(r.size);
            if *counts.entry(r.id).or_insert(0) == 0 {
                object_bytes += u64::from(r.size);
            }
            // Invariant: the entry was created two lines above.
            *counts.get_mut(&r.id).expect("just inserted") += 1;
        }
    }
    let objects = counts.len();
    let ones = counts.values().filter(|&&c| c == 1).count();
    let ohw_full = if objects == 0 {
        0.0
    } else {
        ones as f64 / objects as f64
    };
    TraceStats {
        requests,
        objects,
        request_bytes,
        object_bytes,
        ohw_full,
        ohw_10pct: sampled_window_ohw(reqs, 0.10, samples, seed),
        ohw_1pct: sampled_window_ohw(reqs, 0.01, samples, seed ^ 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;

    fn reqs_of(ids: &[u64]) -> Vec<Request> {
        ids.iter()
            .enumerate()
            .map(|(t, &id)| Request::get(id, t as u64))
            .collect()
    }

    /// Fig. 1's toy example: seventeen requests to five objects, with E the
    /// only one-hit wonder → full-trace OHW = 20 %; the 1..7 prefix has two
    /// of four unique objects requested once → 50 %; the 1..4 prefix → 67 %.
    #[test]
    fn fig1_toy_example() {
        // A B A C B A D A B C B A E C A B D  (1-indexed in the paper)
        let (a, b, c, d, e) = (1u64, 2, 3, 4, 5);
        let ids = [a, b, a, c, b, a, d, a, b, c, b, a, e, c, a, b, d];
        let reqs = reqs_of(&ids);
        assert!((one_hit_wonder_ratio(&reqs) - 0.2).abs() < 1e-12);
        // Requests 1..=7 contain A,B,C,D; C and D appear once → 50 %.
        let w = window_one_hit_wonder_ratio(&reqs[..7], 0, 4);
        assert!((w - 0.5).abs() < 1e-12);
        // Requests 1..=4 contain A,B,C; B and C appear once → 67 %.
        let w = window_one_hit_wonder_ratio(&reqs[..4], 0, 3);
        assert!((w - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_zero() {
        assert_eq!(one_hit_wonder_ratio(&[]), 0.0);
    }

    #[test]
    fn all_unique_is_one() {
        let reqs = reqs_of(&[1, 2, 3, 4, 5]);
        assert!((one_hit_wonder_ratio(&reqs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_repeated_is_zero() {
        let reqs = reqs_of(&[1, 2, 1, 2]);
        assert_eq!(one_hit_wonder_ratio(&reqs), 0.0);
    }

    #[test]
    fn window_respects_unique_limit() {
        let reqs = reqs_of(&[1, 1, 2, 3, 4, 5]);
        // Window of 2 uniques starting at 0: sees 1,1,2 → OHW 1/2.
        let w = window_one_hit_wonder_ratio(&reqs, 0, 2);
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shorter_windows_have_higher_ohw_on_zipf() {
        // The paper's core observation (Fig. 2): OHW rises as the window
        // shrinks.
        let t = WorkloadSpec::zipf("z", 200_000, 20_000, 1.0, 9).generate();
        let full = one_hit_wonder_ratio(&t.requests);
        let w50 = sampled_window_ohw(&t.requests, 0.5, 20, 1);
        let w10 = sampled_window_ohw(&t.requests, 0.1, 20, 2);
        let w01 = sampled_window_ohw(&t.requests, 0.01, 20, 3);
        assert!(
            full < w50 && w50 < w10 && w10 < w01,
            "OHW must rise as windows shrink: full {full:.3}, 50% {w50:.3}, 10% {w10:.3}, 1% {w01:.3}"
        );
    }

    #[test]
    fn more_skew_lower_window_ohw() {
        // Fig. 2: more skewed workloads have lower OHW at the same window
        // length (popular objects repeat even in short windows).
        let mild = WorkloadSpec::zipf("z", 100_000, 10_000, 0.6, 11).generate();
        let steep = WorkloadSpec::zipf("z", 100_000, 10_000, 1.2, 11).generate();
        let ohw_mild = sampled_window_ohw(&mild.requests, 0.1, 20, 5);
        let ohw_steep = sampled_window_ohw(&steep.requests, 0.1, 20, 5);
        assert!(
            ohw_steep < ohw_mild,
            "alpha=1.2 OHW {ohw_steep:.3} should be below alpha=0.6 OHW {ohw_mild:.3}"
        );
    }

    #[test]
    fn frequency_map_counts() {
        let reqs = reqs_of(&[1, 1, 1, 2]);
        let m = frequency_map(&reqs);
        assert_eq!(m[&1], 3);
        assert_eq!(m[&2], 1);
    }

    #[test]
    fn trace_stats_consistency() {
        let t = WorkloadSpec::zipf("z", 50_000, 5000, 0.9, 13).generate();
        let s = trace_stats(&t.requests, 10, 1);
        assert_eq!(s.requests, 50_000);
        assert_eq!(s.objects, t.footprint());
        assert!(s.ohw_full <= s.ohw_10pct);
        assert!(s.ohw_10pct <= s.ohw_1pct + 0.05);
        assert_eq!(s.request_bytes, t.total_bytes());
        assert_eq!(s.object_bytes, t.footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        sampled_window_ohw(&[], 0.0, 1, 1);
    }
}

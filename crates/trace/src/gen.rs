//! Composable synthetic workload generation.
//!
//! A [`WorkloadSpec`] mixes the request patterns the paper's trace corpus
//! exhibits:
//!
//! - a **Zipf core** of skewed, independently drawn requests (§3.1),
//!   optionally with a recency boost (block traces exhibit strong temporal
//!   locality on top of skew);
//! - a **one-hit wonder stream** of fresh, never-repeated objects (the CDN
//!   datasets in Table 1 have full-trace one-hit-wonder ratios up to 0.61);
//! - **sequential scans** over a finite block space (the pattern that makes
//!   block caches need scan resistance, §3.2).
//!
//! Specialized generators cover the paper's targeted experiments: pure
//! scans, loops, and the §5.2 two-request adversarial pattern.

use crate::zipf::ZipfSampler;
use crate::Trace;
use cache_ds::{rng::mix64, SplitMix64};
use cache_types::Request;

/// How object sizes are assigned (stable per object id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Every object has the same size. `Fixed(1)` reproduces the paper's
    /// default simulator setting of ignoring sizes (§5.1.2).
    Fixed(u32),
    /// Sizes uniform in `[min, max]`.
    Uniform {
        /// Smallest object size in bytes.
        min: u32,
        /// Largest object size in bytes.
        max: u32,
    },
    /// Heavy-tailed sizes: `min / u^(1/shape)` capped at `cap` (Pareto),
    /// the shape CDN object sizes follow.
    Pareto {
        /// Scale (minimum size) in bytes.
        min: u32,
        /// Tail index; smaller = heavier tail. Typical: 1.5–2.5.
        shape: f64,
        /// Upper cap in bytes.
        cap: u32,
    },
}

impl SizeModel {
    /// Deterministic size for `id` under this model (`salt` decorrelates
    /// sizes across traces).
    pub fn size_of(&self, id: u64, salt: u64) -> u32 {
        match *self {
            SizeModel::Fixed(s) => s.max(1),
            SizeModel::Uniform { min, max } => {
                let (lo, hi) = (min.min(max).max(1), max.max(min).max(1));
                let span = u64::from(hi - lo) + 1;
                lo + (mix64(id ^ salt) % span) as u32
            }
            SizeModel::Pareto { min, shape, cap } => {
                let u = (mix64(id ^ salt) >> 11) as f64 / (1u64 << 53) as f64;
                let u = u.max(1e-12);
                let s = f64::from(min.max(1)) / u.powf(1.0 / shape.max(0.1));
                (s as u32).clamp(min.max(1), cap.max(min).max(1))
            }
        }
    }
}

/// Specification of a mixed synthetic workload.
///
/// # Examples
///
/// ```
/// use cache_trace::gen::WorkloadSpec;
///
/// // 100k Zipf(1.0) requests over 10k objects, fully reproducible.
/// let trace = WorkloadSpec::zipf("demo", 100_000, 10_000, 1.0, 42).generate();
/// assert_eq!(trace.len(), 100_000);
/// assert!(trace.footprint() <= 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Trace name.
    pub name: String,
    /// Number of requests to generate.
    pub requests: usize,
    /// Number of distinct objects in the Zipf core.
    pub zipf_objects: u64,
    /// Zipf skew of the core (0 = uniform; production KV ≈ 1.0).
    pub alpha: f64,
    /// Fraction of requests that go to fresh, never-repeated objects.
    pub one_hit_fraction: f64,
    /// Fraction of requests that belong to sequential scans.
    pub scan_fraction: f64,
    /// Length of each scan run (in objects).
    pub scan_len: u64,
    /// Size of the block space scans walk over; scans revisit this space,
    /// creating loop behaviour when it is small.
    pub scan_space: u64,
    /// Probability that a core request re-requests one of the ~1024 most
    /// recently used core objects instead of an IRM draw (recency boost).
    pub temporal_bias: f64,
    /// Expected number of core-object replacements per request: popularity
    /// ranks keep their probability but are re-assigned to fresh object ids
    /// over time, modelling new content becoming popular (§6.1 observes
    /// this churn on the Twitter workload). 0 disables churn.
    pub churn_per_request: f64,
    /// Fraction of requests that are `Delete` operations targeting a
    /// recently requested object (§4.2: "deletions often arrive soon after
    /// insertions in many workloads"). 0 disables deletes.
    pub delete_fraction: f64,
    /// Object size assignment.
    pub size_model: SizeModel,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A pure Zipf IRM workload (the paper's synthetic baseline).
    pub fn zipf(
        name: impl Into<String>,
        requests: usize,
        objects: u64,
        alpha: f64,
        seed: u64,
    ) -> Self {
        WorkloadSpec {
            name: name.into(),
            requests,
            zipf_objects: objects,
            alpha,
            one_hit_fraction: 0.0,
            scan_fraction: 0.0,
            scan_len: 0,
            scan_space: 0,
            temporal_bias: 0.0,
            churn_per_request: 0.0,
            delete_fraction: 0.0,
            size_model: SizeModel::Fixed(1),
            seed,
        }
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics when `requests == 0` or `zipf_objects == 0` or the component
    /// fractions sum to more than 1.
    pub fn generate(&self) -> Trace {
        assert!(self.requests > 0, "empty workload");
        assert!(self.zipf_objects > 0, "need a non-empty Zipf core");
        assert!(
            self.one_hit_fraction >= 0.0
                && self.scan_fraction >= 0.0
                && self.one_hit_fraction + self.scan_fraction <= 1.0,
            "component fractions must be in [0,1] and sum to <= 1"
        );
        let mut rng = SplitMix64::new(self.seed);
        let size_salt = mix64(self.seed ^ 0x5EED_517E);
        let zipf = ZipfSampler::new(self.zipf_objects, self.alpha);

        // Disjoint id spaces for the three components.
        const CORE_BASE: u64 = 0;
        const SCAN_BASE: u64 = 1 << 40;
        const FRESH_BASE: u64 = 1 << 41;

        // Rank -> object id mapping; churn replaces entries with fresh ids.
        let mut core_ids: Vec<u64> = (1..=self.zipf_objects).map(|r| CORE_BASE + r).collect();
        let mut next_core_id = CORE_BASE + self.zipf_objects + 1;
        let mut churn_acc = 0.0f64;

        let mut fresh_counter = 0u64;
        let mut scan_pos = 0u64;
        let mut scan_remaining = 0u64;
        let scan_space = self.scan_space.max(self.scan_len.max(1));

        // Recency buffer for temporal bias.
        let mut recent: Vec<u64> = Vec::with_capacity(1024);
        let mut recent_at = 0usize;

        let mut reqs = Vec::with_capacity(self.requests);
        // Ring of recently issued ids, for delete targeting.
        let mut issued: Vec<u64> = Vec::with_capacity(256);
        let mut issued_at = 0usize;
        for t in 0..self.requests {
            if self.delete_fraction > 0.0 && !issued.is_empty() {
                // Deletes are generated *in addition to* the request mix so
                // the component fractions keep their meaning.
                if rng.next_f64() < self.delete_fraction {
                    let victim = issued[rng.next_below(issued.len() as u64) as usize];
                    reqs.push(Request::delete(victim, t as u64));
                }
            }
            if self.churn_per_request > 0.0 {
                churn_acc += self.churn_per_request;
                while churn_acc >= 1.0 {
                    let rank = rng.next_below(self.zipf_objects) as usize;
                    core_ids[rank] = next_core_id;
                    next_core_id += 1;
                    churn_acc -= 1.0;
                }
            }
            let u = rng.next_f64();
            let id = if u < self.one_hit_fraction {
                fresh_counter += 1;
                FRESH_BASE + fresh_counter
            } else if u < self.one_hit_fraction + self.scan_fraction && self.scan_len > 0 {
                if scan_remaining == 0 {
                    scan_pos = rng.next_below(scan_space);
                    scan_remaining = self.scan_len;
                }
                let id = SCAN_BASE + (scan_pos % scan_space);
                scan_pos += 1;
                scan_remaining -= 1;
                id
            } else {
                let core_id = if self.temporal_bias > 0.0
                    && !recent.is_empty()
                    && rng.next_f64() < self.temporal_bias
                {
                    recent[rng.next_below(recent.len() as u64) as usize]
                } else {
                    core_ids[(zipf.sample(&mut rng) - 1) as usize]
                };
                if self.temporal_bias > 0.0 {
                    if recent.len() < 1024 {
                        recent.push(core_id);
                    } else {
                        recent[recent_at] = core_id;
                        recent_at = (recent_at + 1) % 1024;
                    }
                }
                core_id
            };
            let size = self.size_model.size_of(id, size_salt);
            reqs.push(Request::get_sized(id, size, t as u64));
            if self.delete_fraction > 0.0 {
                if issued.len() < 256 {
                    issued.push(id);
                } else {
                    issued[issued_at] = id;
                    issued_at = (issued_at + 1) % 256;
                }
            }
        }
        Trace::new(self.name.clone(), reqs)
    }
}

/// A pure sequential scan: ids `0..n`, each requested once.
pub fn scan_trace(name: impl Into<String>, n: u64) -> Trace {
    let reqs = (0..n).map(|i| Request::get(i, i)).collect();
    Trace::new(name, reqs)
}

/// A looping workload: the sequence `0..loop_len` repeated `loops` times.
/// Classic LRU-adversarial pattern — LRU gets zero hits whenever
/// `loop_len > cache size`.
pub fn loop_trace(name: impl Into<String>, loop_len: u64, loops: u64) -> Trace {
    let mut reqs = Vec::with_capacity((loop_len * loops) as usize);
    for l in 0..loops {
        for i in 0..loop_len {
            reqs.push(Request::get(i, l * loop_len + i));
        }
    }
    Trace::new(name, reqs)
}

/// The §5.2 adversarial pattern for S3-FIFO: every object is requested
/// exactly twice, with the second request arriving `gap` requests after the
/// first — far enough that the object has already been evicted from a small
/// probationary queue.
pub fn two_request_adversarial(name: impl Into<String>, objects: u64, gap: u64) -> Trace {
    let mut reqs = Vec::with_capacity(2 * objects as usize);
    let mut t = 0u64;
    for i in 0..objects + gap {
        if i < objects {
            reqs.push(Request::get(i, t));
            t += 1;
        }
        if i >= gap && i - gap < objects {
            reqs.push(Request::get(i - gap, t));
            t += 1;
        }
    }
    Trace::new(name, reqs)
}

/// The §5.2 adversarial pattern *in context*: the two-request stream mixed
/// with a hot working set.
///
/// The hot objects keep the main queue `M` populated (via promotions), which
/// squeezes the small queue `S` down to its 10 % target — only then does the
/// two-request stream's second request "fall out of the small FIFO queue"
/// as §5.2 describes. Every odd request goes to one of `hot_objects` ids;
/// even requests alternate between introducing a new two-request object and
/// re-requesting the one from `gap` pairs ago.
pub fn two_request_adversarial_mixed(
    name: impl Into<String>,
    objects: u64,
    gap: u64,
    hot_objects: u64,
) -> Trace {
    let hot = hot_objects.max(1);
    let mut reqs = Vec::new();
    let mut t = 0u64;
    let mut push = |reqs: &mut Vec<Request>, id: u64| {
        reqs.push(Request::get(id, t));
        t += 1;
    };
    const HOT_BASE: u64 = 1 << 42;
    for i in 0..objects + gap {
        if i < objects {
            push(&mut reqs, i);
            push(&mut reqs, HOT_BASE + (i % hot));
        }
        if i >= gap && i - gap < objects {
            push(&mut reqs, i - gap);
            push(&mut reqs, HOT_BASE + ((i + gap / 2) % hot));
        }
    }
    Trace::new(name, reqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn zipf_spec_generates_requested_length() {
        let t = WorkloadSpec::zipf("z", 10_000, 1000, 1.0, 1).generate();
        assert_eq!(t.len(), 10_000);
        assert!(t.footprint() <= 1000);
        assert!(t.footprint() > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadSpec::zipf("z", 5000, 500, 0.8, 42).generate();
        let b = WorkloadSpec::zipf("z", 5000, 500, 0.8, 42).generate();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::zipf("z", 1000, 500, 0.8, 1).generate();
        let b = WorkloadSpec::zipf("z", 1000, 500, 0.8, 2).generate();
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn one_hit_fraction_raises_ohw() {
        let base = WorkloadSpec::zipf("z", 50_000, 1000, 1.0, 3).generate();
        let mut spec = WorkloadSpec::zipf("z", 50_000, 1000, 1.0, 3);
        spec.one_hit_fraction = 0.3;
        let spiked = spec.generate();
        let ohw_base = analysis::one_hit_wonder_ratio(&base.requests);
        let ohw_spiked = analysis::one_hit_wonder_ratio(&spiked.requests);
        assert!(
            ohw_spiked > ohw_base + 0.2,
            "one-hit stream must raise OHW: {ohw_base} -> {ohw_spiked}"
        );
    }

    #[test]
    fn scan_component_produces_sequential_runs() {
        let mut spec = WorkloadSpec::zipf("z", 20_000, 1000, 1.0, 4);
        spec.scan_fraction = 0.5;
        spec.scan_len = 100;
        spec.scan_space = 5000;
        let t = spec.generate();
        // Count adjacent-id pairs (scan signature).
        let sequential = t
            .requests
            .windows(2)
            .filter(|w| w[1].id == w[0].id + 1)
            .count();
        assert!(
            sequential > 2000,
            "expected many sequential pairs, got {sequential}"
        );
    }

    #[test]
    fn temporal_bias_increases_short_reuse() {
        let short_reuse = |t: &Trace| {
            let mut last: cache_ds::IdMap<u64> = cache_ds::IdMap::default();
            let mut near = 0usize;
            for (i, r) in t.requests.iter().enumerate() {
                if let Some(&p) = last.get(&r.id) {
                    if (i as u64) - p < 64 {
                        near += 1;
                    }
                }
                last.insert(r.id, i as u64);
            }
            near
        };
        let iid = WorkloadSpec::zipf("z", 30_000, 10_000, 0.6, 5).generate();
        let mut spec = WorkloadSpec::zipf("z", 30_000, 10_000, 0.6, 5);
        spec.temporal_bias = 0.5;
        let biased = spec.generate();
        assert!(short_reuse(&biased) > short_reuse(&iid) * 2);
    }

    #[test]
    fn sizes_are_stable_per_id() {
        let mut spec = WorkloadSpec::zipf("z", 20_000, 100, 1.0, 6);
        spec.size_model = SizeModel::Pareto {
            min: 128,
            shape: 1.8,
            cap: 1 << 20,
        };
        let t = spec.generate();
        let mut sizes: cache_ds::IdMap<u32> = cache_ds::IdMap::default();
        for r in &t.requests {
            let prev = sizes.insert(r.id, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "object {} changed size", r.id);
            }
        }
    }

    #[test]
    fn pareto_sizes_heavy_tailed() {
        let m = SizeModel::Pareto {
            min: 100,
            shape: 1.5,
            cap: 1_000_000,
        };
        let sizes: Vec<u32> = (0..10_000u64).map(|i| m.size_of(i, 7)).collect();
        let max = *sizes.iter().max().unwrap();
        let median = {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            max > median * 20,
            "tail too light: max {max}, median {median}"
        );
        assert!(sizes.iter().all(|&s| (100..=1_000_000).contains(&s)));
    }

    #[test]
    fn uniform_sizes_in_range() {
        let m = SizeModel::Uniform { min: 10, max: 20 };
        for i in 0..1000u64 {
            let s = m.size_of(i, 1);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn scan_trace_is_all_unique() {
        let t = scan_trace("s", 1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(t.footprint(), 1000);
        assert!((analysis::one_hit_wonder_ratio(&t.requests) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_trace_repeats() {
        let t = loop_trace("l", 100, 5);
        assert_eq!(t.len(), 500);
        assert_eq!(t.footprint(), 100);
        assert_eq!(t.requests[0].id, t.requests[100].id);
    }

    #[test]
    fn adversarial_each_object_twice() {
        let t = two_request_adversarial("a", 1000, 300);
        assert_eq!(t.len(), 2000);
        assert_eq!(t.footprint(), 1000);
        let mut counts: cache_ds::IdMap<u32> = cache_ds::IdMap::default();
        for r in &t.requests {
            *counts.entry(r.id).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 2));
        // Verify the gap between the two requests of an object.
        let first = t.requests.iter().position(|r| r.id == 500).unwrap();
        let second = t.requests.iter().rposition(|r| r.id == 500).unwrap();
        let gap = second - first;
        assert!(
            (550..=650).contains(&gap),
            "gap {gap} should be about 2x nominal 300 due to interleaving"
        );
    }

    #[test]
    fn delete_fraction_emits_deletes_of_recent_ids() {
        let mut spec = WorkloadSpec::zipf("d", 20_000, 2000, 1.0, 15);
        spec.delete_fraction = 0.1;
        let t = spec.generate();
        let deletes = t
            .requests
            .iter()
            .filter(|r| r.op == cache_types::Op::Delete)
            .count();
        assert!(
            deletes > 1000 && deletes < 3000,
            "expected ~10% deletes, got {deletes}"
        );
        // Every deleted id must have been requested before its delete.
        let mut seen = cache_ds::IdSet::default();
        for r in &t.requests {
            match r.op {
                cache_types::Op::Delete => {
                    assert!(seen.contains(&r.id), "deleted id {} never issued", r.id)
                }
                _ => {
                    seen.insert(r.id);
                }
            }
        }
    }

    #[test]
    fn mixed_adversarial_structure() {
        let t = two_request_adversarial_mixed("a", 1000, 200, 10);
        // Two-request objects each appear exactly twice; hot ids many times.
        let mut counts: cache_ds::IdMap<u32> = cache_ds::IdMap::default();
        for r in &t.requests {
            *counts.entry(r.id).or_insert(0) += 1;
        }
        let two_req: Vec<u32> = (0..1000u64).map(|id| counts[&id]).collect();
        assert!(two_req.iter().all(|&c| c == 2));
        assert!(counts[&(1 << 42)] > 50, "hot ids must be requested often");
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn overfull_fractions_panic() {
        let mut spec = WorkloadSpec::zipf("z", 10, 10, 1.0, 1);
        spec.one_hit_fraction = 0.8;
        spec.scan_fraction = 0.5;
        spec.generate();
    }
}

//! The `.ctr` compact binary trace format — the on-disk representation for
//! out-of-core replays (ROADMAP item 5, the 2DIO direction).
//!
//! The paper's evaluation spans hundreds of billions of requests; a trace at
//! that scale never fits in memory, so the format is built for streaming:
//!
//! - **Fixed-width little-endian records** — record `i` lives at byte
//!   `32 + i * record_bytes`, so the file is chunk-addressable (and
//!   mmap-friendly) without an index.
//! - **Dense `u32` ids** — ids are pre-interned (first-appearance order when
//!   converted from a keyed trace), which is exactly what the simulator's
//!   dense fast path consumes; the streaming replayer sizes its slot slab
//!   from the header's `id_space` and skips interning entirely.
//! - **Optional lanes** — a 1-byte op lane (get/set/delete) and a 4-byte TTL
//!   lane are enabled by header flags; pure-Get unit traces pay 8 bytes per
//!   request.
//! - **Optional id table** — a footer of `id_space` original 64-bit ids
//!   (slot → id) so a converted trace can be turned back into CSV with its
//!   original ids. The replay path never reads it.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CTR1"
//! 4       4     version (= 1)
//! 8       4     flags (bit 0 op lane, bit 1 ttl lane, bit 2 id table)
//! 12      4     record_bytes (must equal 8 + ops + 4*ttls)
//! 16      8     record count
//! 24      8     id_space (max id + 1; every record id < id_space)
//! 32      …     records: u32 id, u32 size, [u8 op], [u32 ttl]
//! …       …     id table: id_space × u64 original ids (iff flag bit 2)
//! ```
//!
//! The reader validates the whole structure at [`CtrReader::open`] (magic,
//! version, unknown flags, redundant `record_bytes`, exact file length) and
//! every record id against `id_space` while decoding, so truncation and
//! corruption surface as [`CacheError::TraceFormat`] — never a panic and
//! never an out-of-bounds slot downstream.

use crate::Trace;
use cache_types::{CacheError, Op, Request};
use std::io::{Read, Seek, SeekFrom, Write};

/// File magic: "CTR1".
pub const CTR_MAGIC: &[u8; 4] = b"CTR1";
/// Current format version.
pub const CTR_VERSION: u32 = 1;
/// Header size in bytes; record 0 starts here.
pub const CTR_HEADER_BYTES: u64 = 32;

const FLAG_OPS: u32 = 1 << 0;
const FLAG_TTLS: u32 = 1 << 1;
const FLAG_ID_TABLE: u32 = 1 << 2;
const KNOWN_FLAGS: u32 = FLAG_OPS | FLAG_TTLS | FLAG_ID_TABLE;

fn op_code(op: Op) -> u8 {
    match op {
        Op::Get => 0,
        Op::Set => 1,
        Op::Delete => 2,
    }
}

fn code_op(code: u8) -> Result<Op, CacheError> {
    match code {
        0 => Ok(Op::Get),
        1 => Ok(Op::Set),
        2 => Ok(Op::Delete),
        other => Err(CacheError::TraceFormat(format!("bad op code {other}"))),
    }
}

/// Which optional record lanes a `.ctr` file carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrLanes {
    /// 1-byte op lane (get/set/delete). Without it every record is a Get.
    pub ops: bool,
    /// 4-byte TTL lane.
    pub ttls: bool,
}

impl CtrLanes {
    fn record_bytes(self) -> u32 {
        8 + u32::from(self.ops) + 4 * u32::from(self.ttls)
    }
}

/// Parsed header of a `.ctr` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrInfo {
    /// Number of records in the file.
    pub records: u64,
    /// Exclusive upper bound on record ids (`max id + 1`; 0 when empty).
    /// The streaming replayer sizes its dense slot domain from this.
    pub id_space: u64,
    /// Record lanes present.
    pub lanes: CtrLanes,
    /// Whether an original-id table footer is present.
    pub has_id_table: bool,
    /// Bytes per record (derivable from `lanes`; stored redundantly in the
    /// header as a corruption check).
    pub record_bytes: u32,
}

fn encode_header(info: &CtrInfo) -> [u8; CTR_HEADER_BYTES as usize] {
    let mut h = [0u8; CTR_HEADER_BYTES as usize];
    h[0..4].copy_from_slice(CTR_MAGIC);
    h[4..8].copy_from_slice(&CTR_VERSION.to_le_bytes());
    let mut flags = 0u32;
    if info.lanes.ops {
        flags |= FLAG_OPS;
    }
    if info.lanes.ttls {
        flags |= FLAG_TTLS;
    }
    if info.has_id_table {
        flags |= FLAG_ID_TABLE;
    }
    h[8..12].copy_from_slice(&flags.to_le_bytes());
    h[12..16].copy_from_slice(&info.record_bytes.to_le_bytes());
    h[16..24].copy_from_slice(&info.records.to_le_bytes());
    h[24..32].copy_from_slice(&info.id_space.to_le_bytes());
    h
}

/// Streaming writer for the `.ctr` format.
///
/// Records are appended one at a time; the header (record count, id space,
/// flags) is patched in place by [`CtrWriter::finish`], so multi-GB traces
/// can be written front to back without buffering. Wrap files in a
/// `BufWriter` — the writer issues one small write per record.
pub struct CtrWriter<W: Write + Seek> {
    w: W,
    lanes: CtrLanes,
    records: u64,
    /// `max id + 1` over everything pushed so far.
    id_space: u64,
}

impl<W: Write + Seek> CtrWriter<W> {
    /// Starts a new `.ctr` stream at the writer's current position 0,
    /// reserving the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(mut w: W, lanes: CtrLanes) -> Result<Self, CacheError> {
        w.seek(SeekFrom::Start(0))?;
        let info = CtrInfo {
            records: 0,
            id_space: 0,
            lanes,
            has_id_table: false,
            record_bytes: lanes.record_bytes(),
        };
        w.write_all(&encode_header(&info))?;
        Ok(CtrWriter {
            w,
            lanes,
            records: 0,
            id_space: 0,
        })
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record. `ttl` is ignored unless the TTL lane is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] when `op` is not a Get and the op
    /// lane is disabled (the record could not be represented); propagates
    /// I/O errors.
    pub fn push(&mut self, id: u32, size: u32, op: Op, ttl: u32) -> Result<(), CacheError> {
        if op != Op::Get && !self.lanes.ops {
            return Err(CacheError::TraceFormat(format!(
                "record {}: op {op:?} needs the op lane (CtrLanes {{ ops: true }})",
                self.records
            )));
        }
        let mut rec = [0u8; 13];
        rec[0..4].copy_from_slice(&id.to_le_bytes());
        rec[4..8].copy_from_slice(&size.to_le_bytes());
        let mut len = 8;
        if self.lanes.ops {
            rec[len] = op_code(op);
            len += 1;
        }
        if self.lanes.ttls {
            rec[len..len + 4].copy_from_slice(&ttl.to_le_bytes());
            len += 4;
        }
        self.w.write_all(&rec[..len])?;
        self.records += 1;
        self.id_space = self.id_space.max(u64::from(id) + 1);
        Ok(())
    }

    /// Appends one request, using its id truncated to `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] when the id exceeds `u32` range
    /// (convert through [`write_trace`], which interns, instead) or the op
    /// cannot be represented; propagates I/O errors.
    pub fn push_request(&mut self, req: &Request) -> Result<(), CacheError> {
        let id = u32::try_from(req.id).map_err(|_| {
            CacheError::TraceFormat(format!(
                "record {}: id {} exceeds the dense u32 space; intern first (write_trace)",
                self.records, req.id
            ))
        })?;
        self.push(id, req.size, req.op, 0)
    }

    fn patch_header(&mut self, has_id_table: bool) -> Result<(), CacheError> {
        let info = CtrInfo {
            records: self.records,
            id_space: self.id_space,
            lanes: self.lanes,
            has_id_table,
            record_bytes: self.lanes.record_bytes(),
        };
        self.w.seek(SeekFrom::Start(0))?;
        self.w.write_all(&encode_header(&info))?;
        self.w.flush()?;
        Ok(())
    }

    /// Patches the header and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> Result<(W, CtrInfo), CacheError> {
        self.patch_header(false)?;
        let info = CtrInfo {
            records: self.records,
            id_space: self.id_space,
            lanes: self.lanes,
            has_id_table: false,
            record_bytes: self.lanes.record_bytes(),
        };
        Ok((self.w, info))
    }

    /// Appends the original-id table footer (`originals[slot]` is the
    /// pre-interning 64-bit id of dense id `slot`), patches the header, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] when `originals.len()` does not
    /// equal the id space actually referenced by the records; propagates I/O
    /// errors.
    pub fn finish_with_id_table(mut self, originals: &[u64]) -> Result<(W, CtrInfo), CacheError> {
        if originals.len() as u64 != self.id_space {
            return Err(CacheError::TraceFormat(format!(
                "id table has {} entries but the records span id space {}",
                originals.len(),
                self.id_space
            )));
        }
        for &orig in originals {
            self.w.write_all(&orig.to_le_bytes())?;
        }
        self.patch_header(true)?;
        let info = CtrInfo {
            records: self.records,
            id_space: self.id_space,
            lanes: self.lanes,
            has_id_table: true,
            record_bytes: self.lanes.record_bytes(),
        };
        Ok((self.w, info))
    }
}

/// Checked streaming reader for the `.ctr` format.
///
/// [`CtrReader::open`] validates the header and the exact file length up
/// front; [`CtrReader::read_chunk`] then decodes fixed-size chunks into a
/// reusable buffer, stamping `Request::time` with the global record index so
/// chunked consumers see exactly what an in-memory [`Trace`] would hold.
#[derive(Debug)]
pub struct CtrReader<R: Read + Seek> {
    r: R,
    info: CtrInfo,
    /// Next record index to read.
    next: u64,
    /// Reusable raw byte buffer for chunk reads.
    buf: Vec<u8>,
}

impl<R: Read + Seek> CtrReader<R> {
    /// Opens and validates a `.ctr` stream.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] on bad magic/version/flags, a
    /// `record_bytes` field inconsistent with the flags, a record count
    /// whose body size overflows, or a stream whose length does not match
    /// the header exactly (truncation and trailing garbage are both
    /// rejected). Propagates I/O errors.
    pub fn open(mut r: R) -> Result<Self, CacheError> {
        r.seek(SeekFrom::Start(0))?;
        let mut h = [0u8; CTR_HEADER_BYTES as usize];
        r.read_exact(&mut h).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CacheError::TraceFormat("truncated header".into())
            } else {
                e.into()
            }
        })?;
        if &h[0..4] != CTR_MAGIC {
            return Err(CacheError::TraceFormat("bad magic".into()));
        }
        let le_u32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let le_u64 = |b: &[u8]| {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        };
        let version = le_u32(&h[4..8]);
        if version != CTR_VERSION {
            return Err(CacheError::TraceFormat(format!("bad version {version}")));
        }
        let flags = le_u32(&h[8..12]);
        if flags & !KNOWN_FLAGS != 0 {
            return Err(CacheError::TraceFormat(format!(
                "unknown flag bits {:#x}",
                flags & !KNOWN_FLAGS
            )));
        }
        let lanes = CtrLanes {
            ops: flags & FLAG_OPS != 0,
            ttls: flags & FLAG_TTLS != 0,
        };
        let record_bytes = le_u32(&h[12..16]);
        if record_bytes != lanes.record_bytes() {
            return Err(CacheError::TraceFormat(format!(
                "record_bytes {record_bytes} inconsistent with flags (expected {})",
                lanes.record_bytes()
            )));
        }
        let records = le_u64(&h[16..24]);
        let id_space = le_u64(&h[24..32]);
        // Ids are stored as u32, so a valid id space never exceeds 2^32.
        if id_space > 1 << 32 {
            return Err(CacheError::TraceFormat(format!(
                "id space {id_space} exceeds the u32 id range"
            )));
        }
        if records > 0 && id_space == 0 {
            return Err(CacheError::TraceFormat(
                "non-empty trace with zero id space".into(),
            ));
        }
        // checked arithmetic: a corrupted count must not overflow into a
        // bogus small expected length.
        let body = records.checked_mul(u64::from(record_bytes)).ok_or_else(|| {
            CacheError::TraceFormat(format!("record count {records} overflows the body size"))
        })?;
        let table = if flags & FLAG_ID_TABLE != 0 {
            id_space.checked_mul(8).ok_or_else(|| {
                CacheError::TraceFormat(format!("id space {id_space} overflows the table size"))
            })?
        } else {
            0
        };
        let expected = CTR_HEADER_BYTES
            .checked_add(body)
            .and_then(|n| n.checked_add(table))
            .ok_or_else(|| CacheError::TraceFormat("file size overflows".into()))?;
        let actual = r.seek(SeekFrom::End(0))?;
        if actual < expected {
            return Err(CacheError::TraceFormat(format!(
                "truncated: {actual} bytes but the header promises {expected} \
                 ({records} records of {record_bytes} bytes{})",
                if table > 0 { " plus an id table" } else { "" }
            )));
        }
        if actual > expected {
            return Err(CacheError::TraceFormat(format!(
                "{} trailing bytes after the promised {expected}",
                actual - expected
            )));
        }
        r.seek(SeekFrom::Start(CTR_HEADER_BYTES))?;
        Ok(CtrReader {
            r,
            info: CtrInfo {
                records,
                id_space,
                lanes,
                has_id_table: flags & FLAG_ID_TABLE != 0,
                record_bytes,
            },
            next: 0,
            buf: Vec::new(),
        })
    }

    /// The validated header.
    pub fn info(&self) -> &CtrInfo {
        &self.info
    }

    /// Index of the next record [`CtrReader::read_chunk`] will return.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Current capacity of the internal raw chunk buffer, in bytes — the
    /// reader's entire heap footprint beyond the header. Streaming callers
    /// report this in their bounded-memory accounting.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Repositions the cursor to record `index` (chunk addressing).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] when `index` exceeds the record
    /// count; propagates I/O errors.
    pub fn seek_record(&mut self, index: u64) -> Result<(), CacheError> {
        if index > self.info.records {
            return Err(CacheError::TraceFormat(format!(
                "seek to record {index} past the {} records in the file",
                self.info.records
            )));
        }
        // In-range by the length check in `open`.
        self.r.seek(SeekFrom::Start(
            CTR_HEADER_BYTES + index * u64::from(self.info.record_bytes),
        ))?;
        self.next = index;
        Ok(())
    }

    /// Reads up to `max` records into `out` (cleared first), stamping each
    /// request's `time` with its global record index. Returns the number of
    /// records read; 0 means end of trace. TTL values, if present, are
    /// validated for length but dropped — use
    /// [`CtrReader::read_chunk_with_ttls`] to keep them.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::TraceFormat`] on a bad op code or an id outside
    /// the header's id space (either means corruption — the file length was
    /// already validated); propagates I/O errors.
    pub fn read_chunk(&mut self, out: &mut Vec<Request>, max: usize) -> Result<usize, CacheError> {
        self.read_chunk_inner(out, None, max)
    }

    /// [`CtrReader::read_chunk`] that also collects the TTL lane (0 when the
    /// file has none) into `ttls`, parallel to `out`.
    ///
    /// # Errors
    ///
    /// Same as [`CtrReader::read_chunk`].
    pub fn read_chunk_with_ttls(
        &mut self,
        out: &mut Vec<Request>,
        ttls: &mut Vec<u32>,
        max: usize,
    ) -> Result<usize, CacheError> {
        self.read_chunk_inner(out, Some(ttls), max)
    }

    fn read_chunk_inner(
        &mut self,
        out: &mut Vec<Request>,
        mut ttls: Option<&mut Vec<u32>>,
        max: usize,
    ) -> Result<usize, CacheError> {
        out.clear();
        if let Some(t) = ttls.as_deref_mut() {
            t.clear();
        }
        let n = (self.info.records - self.next).min(max as u64) as usize;
        if n == 0 {
            return Ok(0);
        }
        let rb = self.info.record_bytes as usize;
        self.buf.resize(n * rb, 0);
        self.r.read_exact(&mut self.buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                // Only reachable if the file shrank after `open` validated
                // its length.
                CacheError::TraceFormat(format!(
                    "trace shrank underneath the reader at record {}",
                    self.next
                ))
            } else {
                e.into()
            }
        })?;
        out.reserve(n);
        let ttl_at = 8 + usize::from(self.info.lanes.ops);
        for (i, rec) in self.buf.chunks_exact(rb).enumerate() {
            let id = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            if u64::from(id) >= self.info.id_space {
                return Err(CacheError::TraceFormat(format!(
                    "record {}: id {id} outside the header id space {}",
                    self.next + i as u64,
                    self.info.id_space
                )));
            }
            let size = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
            let op = if self.info.lanes.ops {
                code_op(rec[8]).map_err(|e| {
                    CacheError::TraceFormat(format!("record {}: {e}", self.next + i as u64))
                })?
            } else {
                Op::Get
            };
            if let Some(t) = ttls.as_deref_mut() {
                t.push(if self.info.lanes.ttls {
                    u32::from_le_bytes([rec[ttl_at], rec[ttl_at + 1], rec[ttl_at + 2], rec[ttl_at + 3]])
                } else {
                    0
                });
            }
            out.push(Request {
                id: u64::from(id),
                size,
                time: self.next + i as u64,
                op,
            });
        }
        self.next += n as u64;
        Ok(n)
    }

    /// Reads the original-id table footer, or `None` when the file has no
    /// table. The read cursor is restored afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn read_id_table(&mut self) -> Result<Option<Vec<u64>>, CacheError> {
        if !self.info.has_id_table {
            return Ok(None);
        }
        let pos = self.next;
        let body = self.info.records * u64::from(self.info.record_bytes);
        self.r.seek(SeekFrom::Start(CTR_HEADER_BYTES + body))?;
        let mut raw = vec![0u8; (self.info.id_space * 8) as usize];
        self.r.read_exact(&mut raw)?;
        let table = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();
        self.seek_record(pos)?;
        Ok(Some(table))
    }
}

/// Writes an in-memory trace as `.ctr`, interning ids to the dense `u32`
/// space (first-appearance order, [`Trace::dense`]) and appending the
/// original-id table so [`read_trace_original_ids`] can reverse the mapping.
/// The op lane is included only when the trace has non-Get requests.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write + Seek>(trace: &Trace, w: W) -> Result<(W, CtrInfo), CacheError> {
    let dense = trace.dense();
    let lanes = CtrLanes {
        ops: !trace.shape().pure_get,
        ttls: false,
    };
    let mut writer = CtrWriter::create(w, lanes)?;
    for (slot, req) in dense.slots.iter().zip(trace.requests.iter()) {
        writer.push(*slot, req.size, req.op, 0)?;
    }
    let originals: Vec<u64> = (0..dense.ids.len() as u32).map(|s| dense.ids.orig(s)).collect();
    writer.finish_with_id_table(&originals)
}

/// Materializes a `.ctr` stream as an in-memory [`Trace`] with its **dense**
/// ids — request for request what the streaming replayer would consume, so
/// in-memory and streamed replays of the same file are bit-identical.
///
/// # Errors
///
/// Same as [`CtrReader::open`] / [`CtrReader::read_chunk`].
pub fn read_trace<R: Read + Seek>(
    name: impl Into<String>,
    r: R,
) -> Result<(Trace, CtrInfo), CacheError> {
    let mut reader = CtrReader::open(r)?;
    let info = *reader.info();
    let mut requests = Vec::with_capacity(info.records.min(1 << 24) as usize);
    let mut chunk = Vec::new();
    while reader.read_chunk(&mut chunk, 1 << 16)? > 0 {
        requests.extend_from_slice(&chunk);
    }
    Ok((Trace::new(name, requests), info))
}

/// [`read_trace`] with the id-table mapping applied, restoring the original
/// 64-bit ids of a converted trace. Files without a table come back with
/// their dense ids (the mapping is the identity).
///
/// # Errors
///
/// Same as [`read_trace`], plus [`CacheError::TraceFormat`] when a record id
/// has no table entry.
pub fn read_trace_original_ids<R: Read + Seek>(
    name: impl Into<String>,
    r: R,
) -> Result<(Trace, CtrInfo), CacheError> {
    let mut reader = CtrReader::open(r)?;
    let info = *reader.info();
    let table = reader.read_id_table()?;
    let mut requests = Vec::with_capacity(info.records.min(1 << 24) as usize);
    let mut chunk = Vec::new();
    while reader.read_chunk(&mut chunk, 1 << 16)? > 0 {
        if let Some(table) = &table {
            for req in &mut chunk {
                // In range: read_chunk validated id < id_space == table.len().
                req.id = table[req.id as usize];
            }
        }
        requests.extend_from_slice(&chunk);
    }
    Ok((Trace::new(name, requests), info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;
    use std::io::Cursor;

    fn encode(trace: &Trace) -> Vec<u8> {
        let (w, _) = write_trace(trace, Cursor::new(Vec::new())).expect("in-memory write");
        w.into_inner()
    }

    #[test]
    fn roundtrip_pure_get_trace() {
        let t = WorkloadSpec::zipf("z", 5000, 300, 0.9, 2).generate();
        let bytes = encode(&t);
        let (back, info) = read_trace("z", Cursor::new(&bytes)).expect("read");
        assert_eq!(info.records, t.len() as u64);
        assert!(!info.lanes.ops, "pure-Get trace needs no op lane");
        assert_eq!(info.record_bytes, 8);
        // Dense ids: same slot sequence as the source's dense view.
        let dense = t.dense();
        for (i, (req, src)) in back.requests.iter().zip(t.requests.iter()).enumerate() {
            assert_eq!(req.id, u64::from(dense.slots[i]));
            assert_eq!(req.size, src.size);
            assert_eq!(req.op, src.op);
            assert_eq!(req.time, i as u64);
        }
    }

    #[test]
    fn roundtrip_restores_original_ids() {
        let mut spec = WorkloadSpec::zipf("z", 2000, 150, 1.0, 5);
        spec.delete_fraction = 0.05;
        let t = spec.generate();
        let bytes = encode(&t);
        let (back, info) = read_trace_original_ids("z", Cursor::new(&bytes)).expect("read");
        assert!(info.lanes.ops, "deletes require the op lane");
        assert!(info.has_id_table);
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn chunked_reads_equal_whole_read() {
        let t = WorkloadSpec::zipf("z", 3000, 200, 1.0, 7).generate();
        let bytes = encode(&t);
        let (whole, _) = read_trace("z", Cursor::new(&bytes)).expect("read");
        for chunk_size in [1usize, 7, 64, 1000, 5000] {
            let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("open");
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                let n = reader.read_chunk(&mut buf, chunk_size).expect("chunk");
                if n == 0 {
                    break;
                }
                assert!(n <= chunk_size);
                got.extend_from_slice(&buf);
            }
            assert_eq!(got, whole.requests, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn seek_record_supports_chunk_addressing() {
        let t = WorkloadSpec::zipf("z", 500, 50, 1.0, 3).generate();
        let bytes = encode(&t);
        let (whole, _) = read_trace("z", Cursor::new(&bytes)).expect("read");
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("open");
        let mut buf = Vec::new();
        reader.seek_record(123).expect("seek");
        reader.read_chunk(&mut buf, 10).expect("chunk");
        assert_eq!(buf, whole.requests[123..133]);
        assert_eq!(buf[0].time, 123, "times are global record indices");
        // Seeking to the end is allowed and reads nothing.
        reader.seek_record(500).expect("seek to end");
        assert_eq!(reader.read_chunk(&mut buf, 10).expect("chunk"), 0);
        // Past the end is an error.
        assert!(reader.seek_record(501).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let bytes = encode(&t);
        let (back, info) = read_trace("empty", Cursor::new(&bytes)).expect("read");
        assert!(back.is_empty());
        assert_eq!(info.records, 0);
        assert_eq!(info.id_space, 0);
    }

    #[test]
    fn ttl_lane_roundtrips() {
        let mut w = CtrWriter::create(
            Cursor::new(Vec::new()),
            CtrLanes { ops: true, ttls: true },
        )
        .expect("create");
        w.push(0, 10, Op::Get, 300).expect("push");
        w.push(1, 20, Op::Set, 600).expect("push");
        w.push(0, 10, Op::Delete, 0).expect("push");
        let (cur, info) = w.finish().expect("finish");
        assert_eq!(info.record_bytes, 13);
        let bytes = cur.into_inner();
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("open");
        let (mut reqs, mut ttls) = (Vec::new(), Vec::new());
        assert_eq!(
            reader.read_chunk_with_ttls(&mut reqs, &mut ttls, 10).expect("chunk"),
            3
        );
        assert_eq!(ttls, vec![300, 600, 0]);
        assert_eq!(reqs[1].op, Op::Set);
        assert_eq!(reqs[2].op, Op::Delete);
        // The plain chunk API drops TTLs but sees the same requests.
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("open");
        let mut plain = Vec::new();
        reader.read_chunk(&mut plain, 10).expect("chunk");
        assert_eq!(plain, reqs);
    }

    #[test]
    fn writer_rejects_unrepresentable_records() {
        let mut w = CtrWriter::create(Cursor::new(Vec::new()), CtrLanes::default())
            .expect("create");
        assert!(w.push(1, 1, Op::Set, 0).is_err(), "Set needs the op lane");
        let mut w = CtrWriter::create(Cursor::new(Vec::new()), CtrLanes::default())
            .expect("create");
        let big = Request {
            id: u64::from(u32::MAX) + 1,
            size: 1,
            time: 0,
            op: Op::Get,
        };
        assert!(w.push_request(&big).is_err(), "id over u32 must be interned");
    }

    #[test]
    fn id_table_length_is_checked() {
        let mut w = CtrWriter::create(Cursor::new(Vec::new()), CtrLanes::default())
            .expect("create");
        w.push(5, 1, Op::Get, 0).expect("push");
        // id space is 6 (max id 5), but only 2 originals supplied.
        assert!(w.finish_with_id_table(&[10, 20]).is_err());
    }

    #[test]
    fn open_rejects_header_corruption() {
        let t = WorkloadSpec::zipf("z", 20, 10, 1.0, 1).generate();
        let good = encode(&t);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            CtrReader::open(Cursor::new(&bad)),
            Err(CacheError::TraceFormat(_))
        ));

        let mut bad = good.clone();
        bad[4] = 9; // version
        assert!(CtrReader::open(Cursor::new(&bad)).is_err());

        let mut bad = good.clone();
        bad[8] |= 0x80; // unknown flag
        assert!(CtrReader::open(Cursor::new(&bad)).is_err());

        let mut bad = good.clone();
        bad[12] = 99; // record_bytes inconsistent with flags
        assert!(CtrReader::open(Cursor::new(&bad)).is_err());

        // Claimed record count overflowing the body size.
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = CtrReader::open(Cursor::new(&bad)).expect_err("must reject");
        assert!(err.to_string().contains("overflow"), "{err}");

        // Truncated and padded files are both rejected.
        assert!(CtrReader::open(Cursor::new(&good[..good.len() - 3])).is_err());
        let mut padded = good.clone();
        padded.push(0);
        let err = CtrReader::open(Cursor::new(&padded)).expect_err("must reject");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn reader_rejects_out_of_space_ids() {
        // Hand-craft a file whose record id exceeds the header id space.
        let mut w = CtrWriter::create(Cursor::new(Vec::new()), CtrLanes::default())
            .expect("create");
        w.push(7, 1, Op::Get, 0).expect("push");
        let (cur, _) = w.finish().expect("finish");
        let mut bytes = cur.into_inner();
        bytes[24..32].copy_from_slice(&3u64.to_le_bytes()); // id space 3 < id 7
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("header is fine");
        let mut buf = Vec::new();
        let err = reader.read_chunk(&mut buf, 10).expect_err("id out of space");
        assert!(err.to_string().contains("id space"), "{err}");
    }

    #[test]
    fn reader_rejects_bad_op_codes() {
        let mut w = CtrWriter::create(
            Cursor::new(Vec::new()),
            CtrLanes { ops: true, ttls: false },
        )
        .expect("create");
        w.push(0, 1, Op::Get, 0).expect("push");
        let (cur, _) = w.finish().expect("finish");
        let mut bytes = cur.into_inner();
        let op_at = CTR_HEADER_BYTES as usize + 8;
        bytes[op_at] = 42;
        let mut reader = CtrReader::open(Cursor::new(&bytes)).expect("header is fine");
        let mut buf = Vec::new();
        assert!(reader.read_chunk(&mut buf, 10).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::gen::WorkloadSpec;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn sample_bytes(seed: u64) -> Vec<u8> {
        let mut spec = WorkloadSpec::zipf("p", 60, 20, 1.0, seed);
        spec.delete_fraction = 0.1;
        let t = spec.generate();
        let (w, _) = write_trace(&t, Cursor::new(Vec::new())).expect("in-memory write");
        w.into_inner()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        // Truncating the file anywhere must error or EOF cleanly, never
        // panic — open() validates length, so every cut is caught there.
        #[test]
        fn truncation_never_panics(seed in 0u64..u64::MAX, cut_pick in 0usize..100_000) {
            let bytes = sample_bytes(seed);
            let cut = cut_pick % (bytes.len() + 1);
            match CtrReader::open(Cursor::new(&bytes[..cut])) {
                Ok(mut r) => {
                    let mut buf = Vec::new();
                    while r.read_chunk(&mut buf, 16).map(|n| n > 0).unwrap_or(false) {}
                }
                Err(_) => {}
            }
        }

        // Flipping any byte must never panic: either the reader errors or
        // returns some decodable (possibly different) trace.
        #[test]
        fn single_byte_corruption_never_panics(
            seed in 0u64..u64::MAX,
            pos_pick in 0usize..100_000,
            flip in 1u8..=255,
        ) {
            let mut bytes = sample_bytes(seed);
            let pos = pos_pick % bytes.len();
            bytes[pos] ^= flip;
            if let Ok(mut r) = CtrReader::open(Cursor::new(&bytes)) {
                let mut buf = Vec::new();
                loop {
                    match r.read_chunk(&mut buf, 16) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                let _ = r.read_id_table();
            }
        }

        // Any generated workload survives the dense round trip with its
        // original ids restored.
        #[test]
        fn roundtrip_restores_requests(
            objects in 1u64..150,
            requests in 1usize..300,
            seed in 0u64..u64::MAX,
        ) {
            let t = WorkloadSpec::zipf("p", requests, objects, 0.9, seed).generate();
            let (w, _) = write_trace(&t, Cursor::new(Vec::new()))
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let bytes = w.into_inner();
            let (back, _) = read_trace_original_ids("p", Cursor::new(&bytes))
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&t.requests, &back.requests);
        }
    }
}

//! A synthetic 14-dataset corpus mirroring Table 1 of the paper.
//!
//! Each [`DatasetSpec`] stands in for one of the paper's trace collections
//! (MSR, Twitter, Tencent CBS, …). The knobs — Zipf skew, the
//! requests-per-object ratio, the one-hit-wonder stream, scan intensity, and
//! temporal locality — are hand-tuned so that the *shape* statistics the
//! paper reports (full-trace vs. windowed one-hit-wonder ratios, block
//! traces being scan-heavy, KV traces being skewed with low OHW) are
//! reproduced. Absolute trace sizes are scaled down by [`CorpusConfig`] so a
//! full sweep runs on one machine; per-trace seeds make everything
//! deterministic.

use crate::gen::{SizeModel, WorkloadSpec};
use crate::Trace;
use cache_ds::rng::mix64;

/// Which kind of cache the dataset was collected from (Table 1's "Cache
/// type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheType {
    /// Block storage trace (MSR, FIU, CloudPhysics, Systor, Tencent CBS,
    /// Alibaba).
    Block,
    /// CDN / object cache trace (CDN 1/2, Tencent Photo, WikiMedia, Meta
    /// CDN).
    Object,
    /// In-memory key-value cache trace (Twitter, Social Network, Meta KV).
    Kv,
}

impl CacheType {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CacheType::Block => "block",
            CacheType::Object => "object",
            CacheType::Kv => "kv",
        }
    }
}

/// Generator parameters for one of the fourteen datasets.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (matching Table 1).
    pub name: &'static str,
    /// Cache type.
    pub cache_type: CacheType,
    /// Zipf skew of the popularity core.
    pub alpha: f64,
    /// Requests per distinct core object (Table 1's #Request / #Object).
    pub requests_per_object: f64,
    /// Fraction of requests belonging to sequential scans.
    pub scan_fraction: f64,
    /// Scan run length.
    pub scan_len: u64,
    /// Recency boost for the core (block traces have strong locality).
    pub temporal_bias: f64,
    /// Core-object turnover over the whole trace, as a fraction of the core
    /// footprint (KV/object caches see constant new-content churn; §6.1).
    pub churn_turnover: f64,
    /// Object size model.
    pub size_model: SizeModel,
    /// Paper-reported one-hit-wonder ratios (full, 10 %, 1 %) from Table 1,
    /// kept for the Table 1 reproduction to print alongside measurements.
    pub paper_ohw: (f64, f64, f64),
}

/// Scale of the generated corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Traces generated per dataset (the paper has 2–4030 per dataset; we
    /// default to a uniform small number).
    pub traces_per_dataset: usize,
    /// Requests per trace.
    pub requests_per_trace: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            traces_per_dataset: 4,
            requests_per_trace: 200_000,
            seed: 0xC0FFEE,
        }
    }
}

impl CorpusConfig {
    /// A tiny corpus for unit tests (2 traces × 20 k requests per dataset).
    pub fn small() -> Self {
        CorpusConfig {
            traces_per_dataset: 2,
            requests_per_trace: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Poisson-approximation estimate of a Zipf IRM core: returns the expected
/// number of objects requested exactly once and the expected number of
/// objects requested at least once, given `m` objects, skew `alpha`, and
/// `requests` total core requests.
fn zipf_core_estimate(m: u64, alpha: f64, requests: f64) -> (f64, f64) {
    let m = m.max(1);
    let mut h = 0.0f64;
    for i in 1..=m {
        h += 1.0 / (i as f64).powf(alpha);
    }
    let mut one_hit = 0.0f64;
    let mut seen = 0.0f64;
    for i in 1..=m {
        let lambda = requests / ((i as f64).powf(alpha) * h);
        let e = (-lambda).exp();
        one_hit += lambda * e;
        seen += 1.0 - e;
    }
    (one_hit, seen)
}

impl DatasetSpec {
    /// Computes the fraction of requests that must go to fresh one-hit
    /// objects so the full-trace one-hit-wonder ratio lands near the
    /// dataset's Table 1 value, via a short fixed-point iteration over the
    /// Poisson estimate of the Zipf core.
    fn calibrate_fresh_fraction(&self, n: f64, rpo: f64, alpha: f64, scan_objs: f64) -> f64 {
        let target = self.paper_ohw.0;
        let s = self.scan_fraction;
        let mut f = 0.01f64;
        for _ in 0..6 {
            let core_reqs = (n * (1.0 - f - s)).max(1.0);
            let m = ((core_reqs / rpo).round() as u64).max(100);
            let (core_ones, core_seen) = zipf_core_estimate(m, alpha, core_reqs);
            // Solve (F + core_ones) / (F + core_seen + scan_objs) = target.
            let fresh = ((target * (core_seen + scan_objs) - core_ones) / (1.0 - target)).max(0.0);
            f = (fresh / n).clamp(0.0, (0.8 - s).max(0.0));
        }
        f
    }

    /// Refines the analytically calibrated fresh fraction with one secant
    /// step against a small generated probe, correcting for effects the
    /// Poisson model ignores (the recency boost steals IRM draws from the
    /// tail, inflating core one-hit wonders).
    fn refine_fresh_fraction(&self, spec: &WorkloadSpec, rpo: f64, target: f64) -> f64 {
        let probe_requests = spec.requests.min(25_000);
        let probe = |f: f64| -> f64 {
            let core_requests = probe_requests as f64 * (1.0 - f - self.scan_fraction);
            let objects = ((core_requests / rpo).round() as u64).max(100);
            let mut p = spec.clone();
            p.requests = probe_requests;
            p.zipf_objects = objects;
            p.one_hit_fraction = f;
            p.scan_space = ((objects as f64 * 1.5) as u64).max(p.scan_len * 4);
            // Churn is defined as turnover over the whole trace; rescale it
            // to the probe's shorter length and smaller core.
            p.churn_per_request = self.churn_turnover * objects as f64 / probe_requests as f64;
            crate::analysis::one_hit_wonder_ratio(&p.generate().requests)
        };
        let cap = (0.7 - self.scan_fraction).max(0.0);
        let mut f_prev = spec.one_hit_fraction;
        let mut y_prev = probe(f_prev);
        if (y_prev - target).abs() < 0.03 {
            return f_prev;
        }
        // Second point: nudge toward the needed direction, then take up to
        // three secant steps.
        let mut f_cur = if y_prev > target {
            (f_prev * 0.4).max(0.001)
        } else {
            (f_prev + 0.05).min(cap)
        };
        for _ in 0..5 {
            let y_cur = probe(f_cur);
            if (y_cur - target).abs() < 0.03 || (y_cur - y_prev).abs() < 1e-6 {
                return f_cur;
            }
            let f_next =
                (f_cur + (target - y_cur) * (f_cur - f_prev) / (y_cur - y_prev)).clamp(0.0, cap);
            f_prev = f_cur;
            y_prev = y_cur;
            f_cur = f_next;
        }
        f_cur
    }

    /// Generates trace `idx` of this dataset under `cfg`. Traces within a
    /// dataset vary in seed, skew (±0.05·idx jitter), and footprint so the
    /// dataset is a distribution, not `n` copies of one trace.
    pub fn trace(&self, cfg: &CorpusConfig, idx: usize) -> Trace {
        let seed = mix64(cfg.seed ^ mix64(self.name.len() as u64) ^ hash_name(self.name))
            .wrapping_add(idx as u64);
        let jitter = 1.0 + 0.15 * ((idx % 5) as f64 - 2.0) / 2.0; // 0.85..1.15
        let rpo = (self.requests_per_object * jitter).max(1.2);
        let alpha = (self.alpha + 0.05 * ((idx % 3) as f64 - 1.0)).max(0.1);
        let n = cfg.requests_per_trace as f64;
        // Rough scan-object count mirrors the scan_space choice below.
        let pre_objects = (n * (1.0 - self.scan_fraction) / rpo).max(100.0);
        let scan_objs = if self.scan_fraction > 0.0 {
            // Scans sweep a space comparable to the core footprint, so a
            // block is touched roughly once per sweep (real storage scans
            // are one-touch within a pass).
            (pre_objects * 1.5).max(self.scan_len as f64 * 4.0)
        } else {
            0.0
        };
        let one_hit_fraction = self.calibrate_fresh_fraction(n, rpo, alpha, scan_objs);
        let core_requests = n * (1.0 - one_hit_fraction - self.scan_fraction);
        let objects = ((core_requests / rpo).round() as u64).max(100);
        let mut spec = WorkloadSpec {
            name: format!("{}/t{idx:02}", self.name),
            requests: cfg.requests_per_trace,
            zipf_objects: objects,
            alpha,
            one_hit_fraction,
            scan_fraction: self.scan_fraction,
            scan_len: self.scan_len,
            scan_space: ((objects as f64 * 1.5) as u64).max(self.scan_len * 4),
            temporal_bias: self.temporal_bias,
            churn_per_request: self.churn_turnover * objects as f64 / n,
            delete_fraction: 0.0,
            size_model: self.size_model,
            seed,
        };
        // One empirical refinement pass against the Table 1 target.
        let refined = self.refine_fresh_fraction(&spec, rpo, self.paper_ohw.0);
        if (refined - spec.one_hit_fraction).abs() > 1e-9 {
            let core_requests = n * (1.0 - refined - self.scan_fraction);
            let objects = ((core_requests / rpo).round() as u64).max(100);
            spec.one_hit_fraction = refined;
            spec.zipf_objects = objects;
            spec.scan_space = ((objects as f64 * 1.5) as u64).max(self.scan_len * 4);
            spec.churn_per_request = self.churn_turnover * objects as f64 / n;
        }
        spec.generate()
    }

    /// Generates every trace of this dataset under `cfg`.
    pub fn traces(&self, cfg: &CorpusConfig) -> Vec<Trace> {
        (0..cfg.traces_per_dataset)
            .map(|i| self.trace(cfg, i))
            .collect()
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0u64, |acc, b| mix64(acc ^ u64::from(b)))
}

/// The fourteen dataset specifications of Table 1.
pub fn datasets() -> Vec<DatasetSpec> {
    use CacheType::*;
    let block_sizes = SizeModel::Fixed(4096);
    let kv_sizes = SizeModel::Uniform { min: 64, max: 1024 };
    let cdn_sizes = SizeModel::Pareto {
        min: 1024,
        shape: 1.8,
        cap: 8 << 20,
    };
    vec![
        DatasetSpec {
            name: "msr",
            cache_type: Block,
            alpha: 0.8,
            requests_per_object: 5.5,
            scan_fraction: 0.15,
            scan_len: 200,
            temporal_bias: 0.30,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.56, 0.74, 0.86),
        },
        DatasetSpec {
            name: "fiu",
            cache_type: Block,
            alpha: 0.9,
            requests_per_object: 25.0,
            scan_fraction: 0.10,
            scan_len: 500,
            temporal_bias: 0.35,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.28, 0.91, 0.91),
        },
        DatasetSpec {
            name: "cloudphysics",
            cache_type: Block,
            alpha: 0.85,
            requests_per_object: 4.3,
            scan_fraction: 0.12,
            scan_len: 300,
            temporal_bias: 0.30,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.40, 0.71, 0.80),
        },
        DatasetSpec {
            name: "cdn1",
            cache_type: Object,
            alpha: 0.8,
            requests_per_object: 12.5,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.10,
            churn_turnover: 0.5,
            size_model: cdn_sizes,
            paper_ohw: (0.42, 0.58, 0.70),
        },
        DatasetSpec {
            name: "tencent_photo",
            cache_type: Object,
            alpha: 0.75,
            requests_per_object: 5.4,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.10,
            churn_turnover: 0.5,
            size_model: cdn_sizes,
            paper_ohw: (0.55, 0.66, 0.74),
        },
        DatasetSpec {
            name: "wiki_cdn",
            cache_type: Object,
            alpha: 0.9,
            requests_per_object: 51.0,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.10,
            churn_turnover: 0.5,
            size_model: cdn_sizes,
            paper_ohw: (0.46, 0.60, 0.80),
        },
        DatasetSpec {
            name: "systor",
            cache_type: Block,
            alpha: 0.85,
            requests_per_object: 8.8,
            scan_fraction: 0.18,
            scan_len: 400,
            temporal_bias: 0.30,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.37, 0.80, 0.94),
        },
        DatasetSpec {
            name: "tencent_cbs",
            cache_type: Block,
            alpha: 0.9,
            requests_per_object: 61.0,
            scan_fraction: 0.10,
            scan_len: 300,
            temporal_bias: 0.25,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.25, 0.73, 0.77),
        },
        DatasetSpec {
            name: "alibaba",
            cache_type: Block,
            alpha: 0.85,
            requests_per_object: 11.6,
            scan_fraction: 0.14,
            scan_len: 250,
            temporal_bias: 0.30,
            churn_turnover: 0.2,
            size_model: block_sizes,
            paper_ohw: (0.36, 0.68, 0.81),
        },
        DatasetSpec {
            name: "twitter",
            cache_type: Kv,
            alpha: 1.0,
            requests_per_object: 18.3,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.15,
            churn_turnover: 0.6,
            size_model: kv_sizes,
            paper_ohw: (0.19, 0.32, 0.42),
        },
        DatasetSpec {
            name: "social_network",
            cache_type: Kv,
            alpha: 1.05,
            requests_per_object: 12.8,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.35,
            churn_turnover: 0.3,
            size_model: kv_sizes,
            paper_ohw: (0.17, 0.28, 0.37),
        },
        DatasetSpec {
            name: "cdn2",
            cache_type: Object,
            alpha: 0.8,
            requests_per_object: 14.0,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.10,
            churn_turnover: 0.5,
            size_model: cdn_sizes,
            paper_ohw: (0.49, 0.58, 0.64),
        },
        DatasetSpec {
            name: "meta_kv",
            cache_type: Kv,
            alpha: 0.95,
            requests_per_object: 20.0,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.15,
            churn_turnover: 0.6,
            size_model: kv_sizes,
            paper_ohw: (0.51, 0.53, 0.61),
        },
        DatasetSpec {
            name: "meta_cdn",
            cache_type: Object,
            alpha: 0.75,
            requests_per_object: 3.0,
            scan_fraction: 0.0,
            scan_len: 0,
            temporal_bias: 0.10,
            churn_turnover: 0.5,
            size_model: cdn_sizes,
            paper_ohw: (0.61, 0.76, 0.81),
        },
    ]
}

/// Convenience: an MSR-like block trace (used by Figs. 2, 4, 10 which single
/// out `MSR hm_0`).
pub fn msr_like(requests: usize, seed: u64) -> Trace {
    let ds = &datasets()[0];
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: requests,
        seed,
    };
    let mut t = ds.trace(&cfg, 0);
    t.name = "msr-like".into();
    t
}

/// Convenience: a Twitter-like KV trace (Figs. 2, 4, 10 use Twitter
/// cluster 52).
pub fn twitter_like(requests: usize, seed: u64) -> Trace {
    // Invariant: the built-in dataset registry always includes "twitter".
    let ds = datasets()
        .into_iter()
        .find(|d| d.name == "twitter")
        .expect("twitter dataset exists");
    let cfg = CorpusConfig {
        traces_per_dataset: 1,
        requests_per_trace: requests,
        seed,
    };
    let mut t = ds.trace(&cfg, 0);
    t.name = "twitter-like".into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn fourteen_datasets() {
        let ds = datasets();
        assert_eq!(ds.len(), 14);
        let names: std::collections::HashSet<_> = ds.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 14, "dataset names must be unique");
    }

    #[test]
    fn traces_are_deterministic() {
        let cfg = CorpusConfig::small();
        let ds = &datasets()[0];
        let a = ds.trace(&cfg, 0);
        let b = ds.trace(&cfg, 0);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn traces_within_dataset_differ() {
        let cfg = CorpusConfig::small();
        let ds = &datasets()[0];
        let a = ds.trace(&cfg, 0);
        let b = ds.trace(&cfg, 1);
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn corpus_scale_respected() {
        let cfg = CorpusConfig::small();
        let ds = &datasets()[3];
        let traces = ds.traces(&cfg);
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.len() == 20_000));
    }

    #[test]
    fn kv_traces_have_low_ohw_block_higher() {
        let cfg = CorpusConfig {
            traces_per_dataset: 1,
            requests_per_trace: 100_000,
            seed: 5,
        };
        let ds = datasets();
        let twitter = ds.iter().find(|d| d.name == "twitter").unwrap();
        let msr = ds.iter().find(|d| d.name == "msr").unwrap();
        let ohw_tw = analysis::one_hit_wonder_ratio(&twitter.trace(&cfg, 0).requests);
        let ohw_msr = analysis::one_hit_wonder_ratio(&msr.trace(&cfg, 0).requests);
        assert!(
            ohw_tw < ohw_msr,
            "twitter OHW {ohw_tw:.3} should be below msr OHW {ohw_msr:.3}"
        );
        assert!(ohw_tw < 0.35, "twitter-like OHW too high: {ohw_tw:.3}");
        assert!(ohw_msr > 0.35, "msr-like OHW too low: {ohw_msr:.3}");
    }

    #[test]
    fn window_ohw_rises_for_every_dataset() {
        let cfg = CorpusConfig {
            traces_per_dataset: 1,
            requests_per_trace: 60_000,
            seed: 7,
        };
        for ds in datasets() {
            let t = ds.trace(&cfg, 0);
            let full = analysis::one_hit_wonder_ratio(&t.requests);
            let w10 = analysis::sampled_window_ohw(&t.requests, 0.10, 10, 3);
            assert!(
                w10 > full,
                "{}: window OHW {w10:.3} must exceed full-trace OHW {full:.3}",
                ds.name
            );
        }
    }

    #[test]
    fn helper_traces_have_names() {
        assert_eq!(msr_like(5000, 1).name, "msr-like");
        assert_eq!(twitter_like(5000, 1).name, "twitter-like");
    }
}

//! Spatial (hash-based) trace sampling — SHARDS-style miniature simulation.
//!
//! §6.2.3 points to "downsized simulations using spatial sampling"
//! (Waldspurger et al.) as the way to pick cache parameters: keep each
//! *object* with probability `rate` (decided by a hash of its id, so every
//! request to a kept object survives), and run the simulation with a cache
//! scaled by the same factor. Under hash sampling the miss ratio of the
//! miniature is an unbiased estimate of the full trace's.

use crate::Trace;
use cache_ds::rng::mix64;
use cache_types::Request;

/// A spatially sampled trace plus the scale factor to apply to cache sizes.
#[derive(Debug, Clone)]
pub struct SampledTrace {
    /// The miniature trace (all requests to the kept objects, in order).
    pub trace: Trace,
    /// The sampling rate actually configured.
    pub rate: f64,
}

impl SampledTrace {
    /// Scales a full-trace cache capacity down to the miniature.
    pub fn scale_capacity(&self, full_capacity: u64) -> u64 {
        ((full_capacity as f64 * self.rate).round() as u64).max(1)
    }
}

/// Keeps every request whose object hashes below `rate` (SHARDS' spatial
/// filter), preserving request order.
///
/// # Panics
///
/// Panics when `rate` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use cache_trace::gen::WorkloadSpec;
/// use cache_trace::sampling::spatial_sample;
///
/// let full = WorkloadSpec::zipf("t", 50_000, 5_000, 1.0, 1).generate();
/// let mini = spatial_sample(&full, 0.1, 7);
/// // Simulate the miniature at a 10x smaller cache for ~10x less work.
/// assert_eq!(mini.scale_capacity(1000), 100);
/// ```
pub fn spatial_sample(trace: &Trace, rate: f64, salt: u64) -> SampledTrace {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    // rate == 1.0 must keep every request *by construction*. `rate *
    // u64::MAX as f64` rounds to 2^64 (not representable as u64), so the
    // old code kept everything only by the accident of f64→u64 cast
    // saturation; make the identity case explicit instead of load-bearing.
    let threshold = if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    };
    let requests: Vec<Request> = trace
        .requests
        .iter()
        .filter(|r| mix64(r.id ^ salt) <= threshold)
        .copied()
        .collect();
    SampledTrace {
        trace: Trace::new(format!("{}@{rate}", trace.name), requests),
        rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;

    #[test]
    fn sampling_keeps_object_fraction() {
        let t = WorkloadSpec::zipf("s", 100_000, 20_000, 0.8, 3).generate();
        let s = spatial_sample(&t, 0.1, 1);
        let kept = s.trace.footprint() as f64 / t.footprint() as f64;
        assert!(
            (kept - 0.1).abs() < 0.02,
            "kept {kept:.3} of objects at rate 0.1"
        );
    }

    #[test]
    fn all_requests_of_kept_objects_survive() {
        let t = WorkloadSpec::zipf("s", 50_000, 5000, 1.0, 4).generate();
        let s = spatial_sample(&t, 0.2, 2);
        // Per-object request counts must be identical to the full trace.
        let count = |reqs: &[cache_types::Request], id| reqs.iter().filter(|r| r.id == id).count();
        let sampled_ids: std::collections::HashSet<u64> =
            s.trace.requests.iter().map(|r| r.id).collect();
        for &id in sampled_ids.iter().take(50) {
            assert_eq!(
                count(&t.requests, id),
                count(&s.trace.requests, id),
                "object {id} lost requests in sampling"
            );
        }
    }

    #[test]
    fn rate_one_is_identity_modulo_name() {
        let t = WorkloadSpec::zipf("s", 10_000, 1000, 1.0, 5).generate();
        let s = spatial_sample(&t, 1.0, 9);
        assert_eq!(s.trace.len(), t.len());
    }

    /// Sampling variance is dominated by whether individual Zipf-head
    /// objects are kept, so the estimator tests use a flatter head
    /// (α = 0.7) and average over several hash salts, as SHARDS users do in
    /// practice.
    fn mean_mini_mr(
        t: &Trace,
        full_cap: u64,
        rate: f64,
        build: &dyn Fn(u64) -> Box<dyn cache_types::Policy>,
    ) -> f64 {
        use cache_types::policy::run_trace;
        let salts = [7u64, 77, 777];
        let mut acc = 0.0;
        for &salt in &salts {
            let s = spatial_sample(t, rate, salt);
            let mut mini = build(s.scale_capacity(full_cap));
            acc += run_trace(mini.as_mut(), &s.trace.requests).miss_ratio();
        }
        acc / salts.len() as f64
    }

    #[test]
    fn miniature_miss_ratio_estimates_full() {
        // The SHARDS property: simulate the miniature at a scaled cache and
        // get (approximately) the full-trace miss ratio.
        use cache_types::policy::run_trace;
        let t = WorkloadSpec::zipf("s", 200_000, 20_000, 0.7, 6).generate();
        let full_cap = 2000u64;
        let mut full = cache_policies::Lru::new(full_cap).unwrap();
        let full_mr = run_trace(&mut full, &t.requests).miss_ratio();
        let mini_mr = mean_mini_mr(&t, full_cap, 0.2, &|cap| {
            Box::new(cache_policies::Lru::new(cap).unwrap())
        });
        assert!(
            (mini_mr - full_mr).abs() < 0.05,
            "miniature MR {mini_mr:.4} vs full MR {full_mr:.4}"
        );
    }

    #[test]
    fn s3fifo_miniature_estimates_full() {
        use cache_types::policy::run_trace;
        let t = WorkloadSpec::zipf("s", 200_000, 20_000, 0.7, 8).generate();
        let full_cap = 2000u64;
        let mut full = s3fifo::S3Fifo::new(full_cap).unwrap();
        let full_mr = run_trace(&mut full, &t.requests).miss_ratio();
        let mini_mr = mean_mini_mr(&t, full_cap, 0.2, &|cap| {
            Box::new(s3fifo::S3Fifo::new(cap).unwrap())
        });
        assert!(
            (mini_mr - full_mr).abs() < 0.05,
            "miniature MR {mini_mr:.4} vs full MR {full_mr:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_panics() {
        let t = WorkloadSpec::zipf("s", 10, 10, 1.0, 1).generate();
        spatial_sample(&t, 0.0, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::gen::WorkloadSpec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        // Regression: rate 1.0 keeps every request verbatim, for any salt.
        #[test]
        fn rate_one_keeps_everything(seed in 0u64..u64::MAX, salt in 0u64..u64::MAX) {
            let t = WorkloadSpec::zipf("p", 500, 100, 1.0, seed).generate();
            let s = spatial_sample(&t, 1.0, salt);
            prop_assert_eq!(&s.trace.requests, &t.requests);
        }

        // Same (trace, rate, salt) → same sample, always.
        #[test]
        fn sampling_is_deterministic(
            seed in 0u64..u64::MAX,
            salt in 0u64..u64::MAX,
            rate_milli in 1u64..=1000,
        ) {
            let rate = rate_milli as f64 / 1000.0;
            let t = WorkloadSpec::zipf("p", 300, 80, 1.0, seed).generate();
            let a = spatial_sample(&t, rate, salt);
            let b = spatial_sample(&t, rate, salt);
            prop_assert_eq!(&a.trace.requests, &b.trace.requests);
        }

        // Raising the rate only ever *adds* objects (same salt): the lower
        // rate's sample is a subsequence filter of the higher rate's.
        #[test]
        fn sampling_is_monotone_in_rate(
            seed in 0u64..u64::MAX,
            salt in 0u64..u64::MAX,
            lo_milli in 1u64..=999,
            extra_milli in 1u64..=999,
        ) {
            let lo = lo_milli as f64 / 1000.0;
            let hi = ((lo_milli + extra_milli).min(1000)) as f64 / 1000.0;
            let t = WorkloadSpec::zipf("p", 400, 120, 1.0, seed).generate();
            let small = spatial_sample(&t, lo, salt);
            let big = spatial_sample(&t, hi, salt);
            let big_ids: std::collections::HashSet<u64> =
                big.trace.requests.iter().map(|r| r.id).collect();
            for r in &small.trace.requests {
                prop_assert!(big_ids.contains(&r.id), "object {} vanished as rate rose", r.id);
            }
        }
    }
}

//! Edge-case battery run against every algorithm in the registry: tiny
//! capacities, oversized objects, deletes, overwrites, and empty traces
//! must never panic or violate capacity.

use cache_policies::registry::{build, ALL_ALGORITHMS};
use cache_types::{Op, Request};

fn drive(name: &str, capacity: u64, reqs: &[Request]) {
    let mut p = build(name, capacity, Some(reqs)).expect("buildable");
    let mut evs = Vec::new();
    for r in reqs {
        evs.clear();
        p.request(r, &mut evs);
        assert!(
            p.used() <= capacity,
            "{name}: used {} > capacity {capacity}",
            p.used()
        );
        for e in &evs {
            assert!(e.size > 0 || r.op != Op::Get || true);
            assert!(
                !p.contains(e.id),
                "{name}: evicted id {} still present",
                e.id
            );
        }
    }
}

#[test]
fn capacity_one() {
    let reqs: Vec<Request> = (0..200u64).map(|i| Request::get(i % 7, i)).collect();
    for name in ALL_ALGORITHMS {
        drive(name, 1, &reqs);
    }
}

#[test]
fn capacity_two_with_repeats() {
    let reqs: Vec<Request> = (0..300u64).map(|i| Request::get(i % 3, i)).collect();
    for name in ALL_ALGORITHMS {
        drive(name, 2, &reqs);
    }
}

#[test]
fn oversized_objects_are_rejected_not_fatal() {
    let mut reqs = Vec::new();
    for i in 0..100u64 {
        // Alternate cacheable and oversized objects.
        let size = if i % 2 == 0 { 2 } else { 100 };
        reqs.push(Request::get_sized(i, size, i));
    }
    for name in ALL_ALGORITHMS {
        let mut p = build(name, 10, Some(&reqs)).expect("buildable");
        let mut evs = Vec::new();
        for r in &reqs {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 10, "{name}: oversized object admitted");
        }
    }
}

#[test]
fn deletes_interleaved_with_gets() {
    let mut reqs = Vec::new();
    let mut t = 0u64;
    for round in 0..50u64 {
        for i in 0..10u64 {
            reqs.push(Request::get(round * 10 + i, t));
            t += 1;
        }
        for i in 0..5u64 {
            reqs.push(Request::delete(round * 10 + i, t));
            t += 1;
        }
    }
    for name in ALL_ALGORITHMS {
        let mut p = build(name, 20, Some(&reqs)).expect("buildable");
        let mut evs = Vec::new();
        for r in &reqs {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 20, "{name}: over capacity with deletes");
        }
    }
}

#[test]
fn sets_overwrite_with_new_sizes() {
    let mut reqs = Vec::new();
    for i in 0..200u64 {
        let id = i % 9;
        let size = 1 + (i % 4) as u32;
        reqs.push(Request {
            id,
            size,
            time: i,
            op: Op::Set,
        });
    }
    for name in ALL_ALGORITHMS {
        let mut p = build(name, 12, Some(&reqs)).expect("buildable");
        let mut evs = Vec::new();
        for r in &reqs {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 12, "{name}: over capacity with sets");
        }
    }
}

#[test]
fn empty_trace_is_fine() {
    for name in ALL_ALGORITHMS {
        let p = build(name, 10, Some(&[])).expect("buildable");
        assert_eq!(p.len(), 0);
        assert_eq!(p.used(), 0);
        assert!(p.is_empty());
    }
}

#[test]
fn stats_are_consistent_for_every_algorithm() {
    let reqs: Vec<Request> = (0..5000u64)
        .map(|i| Request::get((i * i) % 400, i))
        .collect();
    for name in ALL_ALGORITHMS {
        let mut p = build(name, 50, Some(&reqs)).expect("buildable");
        let stats = cache_types::policy::run_trace(p.as_mut(), &reqs);
        assert_eq!(stats.gets, 5000, "{name}");
        assert!(stats.misses <= stats.gets, "{name}");
        assert!(
            stats.miss_ratio() > 0.0 && stats.miss_ratio() <= 1.0,
            "{name}"
        );
        assert_eq!(stats.get_bytes, 5000, "{name}");
    }
}

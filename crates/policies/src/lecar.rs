//! LeCaR — Learning Cache Replacement (Vietri et al., HotStorage '18).
//!
//! LeCaR maintains one cache whose eviction decisions are delegated to one
//! of two experts — LRU and LFU — chosen at random according to learned
//! weights. Each expert has a ghost history of its evictions; a miss that
//! hits an expert's history means that expert's past decision was a mistake,
//! and the *other* expert's weight is multiplicatively increased (regret
//! minimization with discounted rewards).

use crate::util::{GhostList, Meta};
use cache_ds::{DList, Handle, IdMap, SplitMix64};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};
use std::collections::BTreeSet;

struct Entry {
    /// Handle in the LRU list.
    handle: Handle,
    /// Access count (LFU key component).
    freq: u64,
    meta: Meta,
}

/// The LeCaR eviction algorithm with the published defaults
/// (learning rate 0.45, discount `0.005^(1/N)`).
pub struct LeCar {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// LRU order; head = MRU.
    lru: DList<ObjId>,
    /// LFU order: (freq, insertion sequence, id); minimum = LFU victim.
    lfu: BTreeSet<(u64, u64, ObjId)>,
    /// Sequence numbers for LFU tie-breaking (FIFO among equal freq).
    seq: u64,
    seq_of: IdMap<u64>,
    /// Expert weights.
    w_lru: f64,
    w_lfu: f64,
    learning_rate: f64,
    discount: f64,
    /// Eviction histories.
    h_lru: GhostList,
    h_lfu: GhostList,
    /// Eviction time of ghosts, for discounted regret.
    ghost_time: IdMap<u64>,
    now: u64,
    rng: SplitMix64,
    stats: PolicyStats,
}

impl LeCar {
    /// Creates a LeCaR cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(LeCar {
            capacity,
            used: 0,
            table: IdMap::default(),
            lru: DList::new(),
            lfu: BTreeSet::new(),
            seq: 0,
            seq_of: IdMap::default(),
            w_lru: 0.5,
            w_lfu: 0.5,
            learning_rate: 0.45,
            discount: 0.005f64.powf(1.0 / capacity as f64),
            h_lru: GhostList::new(capacity),
            h_lfu: GhostList::new(capacity),
            ghost_time: IdMap::default(),
            now: 0,
            rng: SplitMix64::new(0x1eca2),
            stats: PolicyStats::default(),
        })
    }

    /// Current (w_lru, w_lfu) weights.
    pub fn weights(&self) -> (f64, f64) {
        (self.w_lru, self.w_lfu)
    }

    fn lfu_key(&self, id: ObjId) -> (u64, u64, ObjId) {
        let e = &self.table[&id];
        (e.freq, self.seq_of[&id], id)
    }

    /// Applies the discounted multiplicative-weights update after a ghost
    /// hit at distance `age` requests in the past, punishing `mistaken_lru`.
    fn reward(&mut self, age: u64, mistaken_lru: bool) {
        let r = self.discount.powf(age as f64);
        if mistaken_lru {
            self.w_lfu *= (self.learning_rate * r).exp();
        } else {
            self.w_lru *= (self.learning_rate * r).exp();
        }
        let total = self.w_lru + self.w_lfu;
        self.w_lru /= total;
        self.w_lfu /= total;
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        let lru_victim = self.lru.back().copied();
        let lfu_victim = self.lfu.iter().next().map(|&(_, _, id)| id);
        let (Some(lv), Some(fv)) = (lru_victim, lfu_victim) else {
            return;
        };
        let use_lru = lv == fv || self.rng.next_f64() < self.w_lru;
        let victim = if use_lru { lv } else { fv };
        let key = self.lfu_key(victim);
        // Invariant: the victim came from a non-empty queue of tabled ids.
        let entry = self.table.remove(&victim).expect("victim in table");
        self.lru.remove(entry.handle);
        self.lfu.remove(&key);
        self.seq_of.remove(&victim);
        self.used -= u64::from(entry.meta.size);
        self.stats.evictions += 1;
        evicted.push(entry.meta.eviction(victim, false));
        if lv != fv {
            if use_lru {
                self.h_lru.insert(victim, entry.meta.size);
            } else {
                self.h_lfu.insert(victim, entry.meta.size);
            }
            self.ghost_time.insert(victim, self.now);
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.lru.push_front(req.id);
        self.seq += 1;
        self.seq_of.insert(req.id, self.seq);
        self.table.insert(
            req.id,
            Entry {
                handle,
                freq: 1,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.lfu.insert((1, self.seq, req.id));
        self.used += u64::from(req.size);
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let old_key = self.lfu_key(id);
        // Invariant: on_hit fires only after a successful lookup.
        let e = self.table.get_mut(&id).expect("hit id in table");
        e.meta.touch(now);
        e.freq += 1;
        let new_key = (e.freq, old_key.1, id);
        let h = e.handle;
        self.lru.move_to_front(h);
        self.lfu.remove(&old_key);
        self.lfu.insert(new_key);
    }

    fn learn_from_ghosts(&mut self, id: ObjId) {
        let age = self
            .ghost_time
            .get(&id)
            .map(|&t| self.now.saturating_sub(t))
            .unwrap_or(0);
        if self.h_lru.remove(id) {
            self.reward(age, true);
            self.ghost_time.remove(&id);
        } else if self.h_lfu.remove(id) {
            self.reward(age, false);
            self.ghost_time.remove(&id);
        }
        // Bound the side table.
        if self.ghost_time.len() > 4 * (self.h_lru.len() + self.h_lfu.len() + 16) {
            let live: Vec<ObjId> = self
                .ghost_time
                .keys()
                .copied()
                .filter(|&g| self.h_lru.contains(g) || self.h_lfu.contains(g))
                .collect();
            let mut fresh: IdMap<u64> = IdMap::default();
            for g in live {
                fresh.insert(g, self.ghost_time[&g]);
            }
            self.ghost_time = fresh;
        }
    }

    fn delete(&mut self, id: ObjId) {
        if self.table.contains_key(&id) {
            let key = self.lfu_key(id);
            // Invariant: contains_key just succeeded.
            let e = self.table.remove(&id).expect("entry exists");
            self.lru.remove(e.handle);
            self.lfu.remove(&key);
            self.seq_of.remove(&id);
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for LeCar {
    fn name(&self) -> String {
        "LeCaR".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        self.now += 1;
        match req.op {
            Op::Get => {
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.learn_from_ghosts(req.id);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn weights_stay_normalized() {
        let mut p = LeCar::new(32).unwrap();
        let trace = test_trace(10_000, 500, 61);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            let (a, b) = p.weights();
            assert!((a + b - 1.0).abs() < 1e-9);
            assert!(a > 0.0 && b > 0.0);
        }
    }

    #[test]
    fn lfu_pressure_shifts_weights() {
        // Workload where the experts disagree: a high-frequency hot set
        // (which LFU protects and LRU lets age out during scans) plus a
        // stream of cold objects. Every time the LRU expert's choice evicts
        // a hot object, its next request hits the LRU history and rewards
        // the LFU expert.
        let mut p = LeCar::new(20).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        for round in 0..100u64 {
            // Three passes over the hot set so surviving hot ids accumulate
            // frequency and the LFU expert's victim (a cold object) diverges
            // from the LRU expert's victim (the stalest hot id).
            for _rep in 0..3 {
                for id in 0..10u64 {
                    evs.clear();
                    p.request(&Request::get(id, t), &mut evs);
                    t += 1;
                }
            }
            // Cold stream short enough that mistakenly-evicted hot ids are
            // still inside the (cache-sized) LRU history window when the
            // next round re-requests them.
            for j in 0..15u64 {
                evs.clear();
                p.request(&Request::get(100_000 + round * 15 + j, t), &mut evs);
                t += 1;
            }
        }
        let (w_lru, w_lfu) = p.weights();
        assert!(
            w_lfu > w_lru,
            "LFU expert should dominate: w_lru {w_lru:.3}, w_lfu {w_lfu:.3}"
        );
    }

    #[test]
    fn capacity_bounded() {
        let mut p = LeCar::new(64).unwrap();
        let trace = test_trace(20_000, 1000, 67);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 64);
        }
    }

    #[test]
    fn competitive_with_lru() {
        let trace = test_trace(30_000, 2000, 71);
        let mut lc = LeCar::new(64).unwrap();
        let mut lru = crate::lru::Lru::new(64).unwrap();
        let mr_lc = miss_ratio_of(&mut lc, &trace);
        let mr_lru = miss_ratio_of(&mut lru, &trace);
        assert!(
            mr_lc <= mr_lru + 0.03,
            "LeCaR {mr_lc:.4} should be near LRU {mr_lru:.4}"
        );
    }

    #[test]
    fn basics() {
        let mut p = LeCar::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(LeCar::new(0).is_err());
    }
}

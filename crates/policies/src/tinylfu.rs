//! W-TinyLFU (Einziger, Friedman & Manes, ACM ToS '17).
//!
//! §5.2 calls TinyLFU "the closest competitor" to S3-FIFO. A small LRU
//! *window* (1 % of the cache by default; `TinyLFU-0.1` uses 10 %) absorbs
//! new objects; the main region is a 2-segment SLRU (80 % protected). A
//! count-min sketch with a doorkeeper estimates frequencies over a sliding
//! window. When the window overflows, its LRU candidate is admitted to the
//! main region only if its estimated frequency beats the main region's
//! eviction candidate — the comparison §5.2 blames for TinyLFU's failure
//! mode: "if the tail object in the SLRU happens to have a very high
//! frequency, it may lead to the eviction of an excessive number of new and
//! potentially useful objects."

use crate::util::Meta;
use cache_ds::{DList, Doorkeeper, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Window,
    Probation,
    Protected,
}

struct Entry {
    handle: Handle,
    loc: Loc,
    meta: Meta,
}

/// The W-TinyLFU eviction algorithm.
pub struct TinyLfu {
    capacity: u64,
    window_capacity: u64,
    protected_capacity: u64,
    window: DList<ObjId>,
    probation: DList<ObjId>,
    protected: DList<ObjId>,
    window_used: u64,
    probation_used: u64,
    protected_used: u64,
    table: IdMap<Entry>,
    sketch: Doorkeeper,
    window_ratio: f64,
    stats: PolicyStats,
}

impl TinyLfu {
    /// Creates a W-TinyLFU cache with the classic 1 % window.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        Self::with_window(capacity, 0.01)
    }

    /// Creates a W-TinyLFU cache with a window of `window_ratio` of the
    /// capacity (the paper evaluates 0.01 and 0.1).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] for a zero capacity or a ratio outside (0,1).
    pub fn with_window(capacity: u64, window_ratio: f64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(window_ratio > 0.0 && window_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "window_ratio must be in (0,1), got {window_ratio}"
            )));
        }
        let window_capacity = ((capacity as f64 * window_ratio).round() as u64).max(1);
        let main = capacity.saturating_sub(window_capacity).max(1);
        Ok(TinyLfu {
            capacity,
            window_capacity,
            protected_capacity: (main * 8 / 10).max(1),
            window: DList::new(),
            probation: DList::new(),
            protected: DList::new(),
            window_used: 0,
            probation_used: 0,
            protected_used: 0,
            table: IdMap::default(),
            sketch: Doorkeeper::new((capacity as usize).clamp(16, 1 << 22)),
            window_ratio,
            stats: PolicyStats::default(),
        })
    }

    fn used_total(&self) -> u64 {
        self.window_used + self.probation_used + self.protected_used
    }

    fn list(&mut self, loc: Loc) -> &mut DList<ObjId> {
        match loc {
            Loc::Window => &mut self.window,
            Loc::Probation => &mut self.probation,
            Loc::Protected => &mut self.protected,
        }
    }

    fn used_of(&mut self, loc: Loc) -> &mut u64 {
        match loc {
            Loc::Window => &mut self.window_used,
            Loc::Probation => &mut self.probation_used,
            Loc::Protected => &mut self.protected_used,
        }
    }

    fn remove_from(&mut self, id: ObjId) -> (Loc, Meta) {
        // Invariant: callers only remove resident ids.
        let entry = self.table.remove(&id).expect("id in table");
        self.list(entry.loc).remove(entry.handle);
        *self.used_of(entry.loc) -= u64::from(entry.meta.size);
        (entry.loc, entry.meta)
    }

    fn insert_into(&mut self, id: ObjId, loc: Loc, meta: Meta) {
        let handle = self.list(loc).push_front(id);
        *self.used_of(loc) += u64::from(meta.size);
        self.table.insert(id, Entry { handle, loc, meta });
    }

    /// Demotes protected-segment overflow into probation.
    fn rebalance_protected(&mut self) {
        while self.protected_used > self.protected_capacity {
            let Some(id) = self.protected.pop_back() else {
                break;
            };
            // Invariant: protected ids are always tabled.
            let e = self.table.get_mut(&id).expect("protected id in table");
            self.protected_used -= u64::from(e.meta.size);
            e.loc = Loc::Probation;
            e.handle = self.probation.push_front(id);
            self.probation_used += u64::from(e.meta.size);
        }
    }

    /// The TinyLFU admission duel: when the window overflows, its tail
    /// candidate fights the main region's eviction candidate on estimated
    /// frequency; the loser is evicted.
    fn maintain(&mut self, evicted: &mut Vec<Eviction>) {
        while self.window_used > self.window_capacity {
            let Some(&candidate) = self.window.back() else {
                break;
            };
            let (_, meta) = self.remove_from(candidate);
            // While the cache is not yet full, admit without a duel.
            if self.used_total() + u64::from(meta.size) <= self.capacity {
                self.insert_into(candidate, Loc::Probation, meta);
                continue;
            }
            // Main region victim comes from probation (or protected when
            // probation is empty).
            let victim = self
                .probation
                .back()
                .or_else(|| self.protected.back())
                .copied();
            match victim {
                None => {
                    // Main region empty: admit unconditionally.
                    self.insert_into(candidate, Loc::Probation, meta);
                }
                Some(v) => {
                    if self.sketch.estimate(candidate) > self.sketch.estimate(v) {
                        // Main-region victims are not window (probationary)
                        // demotions for the Fig. 10 metric.
                        let (_vloc, vmeta) = self.remove_from(v);
                        self.stats.evictions += 1;
                        evicted.push(vmeta.eviction(v, false));
                        self.insert_into(candidate, Loc::Probation, meta);
                    } else {
                        // The window candidate loses the duel: this is the
                        // quick demotion the paper measures.
                        self.stats.evictions += 1;
                        evicted.push(meta.eviction(candidate, true));
                    }
                }
            }
        }
        // The admission above may have overfilled the main region.
        while self.used_total() > self.capacity {
            let victim = self
                .probation
                .back()
                .or_else(|| self.protected.back())
                .copied();
            let Some(v) = victim else { break };
            let (_vloc, vmeta) = self.remove_from(v);
            self.stats.evictions += 1;
            evicted.push(vmeta.eviction(v, false));
        }
    }

    fn on_hit(&mut self, id: ObjId, now: u64) {
        let (loc, handle) = {
            // Invariant: on_hit fires only after a successful lookup.
            let e = self.table.get_mut(&id).expect("hit id in table");
            e.meta.touch(now);
            (e.loc, e.handle)
        };
        match loc {
            Loc::Window => {
                self.window.move_to_front(handle);
            }
            Loc::Probation => {
                // Promote to protected.
                let (_, meta) = self.remove_from(id);
                self.insert_into(id, Loc::Protected, meta);
                self.rebalance_protected();
            }
            Loc::Protected => {
                self.protected.move_to_front(handle);
            }
        }
    }

    fn miss_insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        self.insert_into(req.id, Loc::Window, Meta::new(req.size, req.time));
        self.maintain(evicted);
    }

    fn delete(&mut self, id: ObjId) {
        if self.table.contains_key(&id) {
            self.remove_from(id);
        }
    }
}

impl Policy for TinyLfu {
    fn name(&self) -> String {
        if (self.window_ratio - 0.01).abs() < 1e-9 {
            "TinyLFU".into()
        } else {
            format!("TinyLFU-{:.1}", self.window_ratio)
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                self.sketch.record(req.id);
                if self.table.contains_key(&req.id) {
                    self.on_hit(req.id, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.miss_insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.miss_insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn frequent_objects_admitted_over_onehits() {
        let mut p = TinyLfu::with_window(100, 0.1).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Make ids 0..5 frequent in the sketch and resident.
        for _ in 0..5 {
            for id in 0..5u64 {
                evs.clear();
                p.request(&Request::get(id, t), &mut evs);
                t += 1;
            }
        }
        // Flood with one-hit wonders.
        for id in 1000..1400u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (0..5u64).filter(|&id| p.contains(id)).count();
        assert_eq!(survivors, 5, "frequent objects must survive the flood");
    }

    #[test]
    fn window_absorbs_new_objects() {
        let mut p = TinyLfu::with_window(100, 0.1).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        assert_eq!(p.table[&1].loc, Loc::Window);
    }

    #[test]
    fn probation_hit_promotes_to_protected() {
        let mut p = TinyLfu::with_window(100, 0.1).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        // Get id 1 into probation: make it frequent, then push it out of the
        // window (window capacity 10).
        for _ in 0..3 {
            p.request(&Request::get(1, t), &mut evs);
            t += 1;
        }
        for id in 100..120u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        if p.table.get(&1).map(|e| e.loc) == Some(Loc::Probation) {
            evs.clear();
            p.request(&Request::get(1, t), &mut evs);
            assert_eq!(p.table[&1].loc, Loc::Protected);
        }
    }

    #[test]
    fn capacity_bounded() {
        let mut p = TinyLfu::new(64).unwrap();
        let trace = test_trace(20_000, 1000, 41);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 64);
        }
    }

    #[test]
    fn beats_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 43);
        let mut tl = TinyLfu::with_window(64, 0.1).unwrap();
        let mut f = crate::fifo::Fifo::new(64).unwrap();
        let mr_t = miss_ratio_of(&mut tl, &trace);
        let mr_f = miss_ratio_of(&mut f, &trace);
        assert!(mr_t < mr_f, "TinyLFU {mr_t:.4} vs FIFO {mr_f:.4}");
    }

    #[test]
    fn names_for_window_sizes() {
        assert_eq!(TinyLfu::new(100).unwrap().name(), "TinyLFU");
        assert_eq!(
            TinyLfu::with_window(100, 0.1).unwrap().name(),
            "TinyLFU-0.1"
        );
    }

    #[test]
    fn basics() {
        let mut p = TinyLfu::new(100).unwrap();
        check_policy_basics(&mut p, 100);
        let mut p = TinyLfu::with_window(100, 0.1).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TinyLfu::new(0).is_err());
        assert!(TinyLfu::with_window(10, 0.0).is_err());
        assert!(TinyLfu::with_window(10, 1.0).is_err());
    }
}

//! CLOCK / FIFO-Reinsertion / Second Chance.
//!
//! The paper's footnote 1: "FIFO-Reinsertion, Second chance, and CLOCK are
//! different implementations of the same algorithm." On a hit the object's
//! reference counter is set/bumped; at eviction the tail object is reinserted
//! (with the counter decremented) until an unreferenced object is found.
//!
//! `bits = 1` is the classic CLOCK; `bits = 2` matches the counter S3-FIFO
//! uses inside its main queue.

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

struct Entry {
    handle: Handle,
    freq: u8,
    meta: Meta,
}

/// FIFO with reinsertion of referenced objects.
pub struct Clock {
    capacity: u64,
    used: u64,
    max_freq: u8,
    table: IdMap<Entry>,
    queue: DList<ObjId>,
    stats: PolicyStats,
}

impl Clock {
    /// Creates a CLOCK cache with a reference counter of `bits` bits
    /// (counter saturates at `2^bits - 1`).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when `capacity == 0` or `bits` is 0 or > 7.
    pub fn new(capacity: u64, bits: u8) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if bits == 0 || bits > 7 {
            return Err(CacheError::InvalidParameter(format!(
                "bits must be in 1..=7, got {bits}"
            )));
        }
        Ok(Clock {
            capacity,
            used: 0,
            max_freq: (1u8 << bits) - 1,
            table: IdMap::default(),
            queue: DList::new(),
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        while let Some(&tail_id) = self.queue.back() {
            // Invariant: queued ids are always tabled.
            let e = self.table.get_mut(&tail_id).expect("tail in table");
            if e.freq > 0 {
                e.freq -= 1;
                let h = e.handle;
                self.queue.move_to_front(h);
            } else {
                // Invariant: queued ids are always tabled.
                let entry = self.table.remove(&tail_id).expect("entry exists");
                self.queue.remove(entry.handle);
                self.used -= u64::from(entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(tail_id, false));
                return;
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.queue.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                freq: 0,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            self.queue.remove(e.handle);
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Clock {
    fn name(&self) -> String {
        if self.max_freq == 1 {
            "CLOCK".into()
        } else {
            format!("CLOCK-{}bit", (self.max_freq + 1).trailing_zeros())
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.freq = (e.freq + 1).min(self.max_freq);
                    e.meta.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        crate::util::validate_single_queue(
            &self.name(),
            self.capacity,
            self.used,
            self.table.len(),
            self.queue.iter(),
            |id| self.table.get(&id).map(|e| e.meta.size),
        )?;
        for (id, e) in self.table.iter() {
            if e.freq > self.max_freq {
                return Err(format!(
                    "CLOCK: freq {} of {id} exceeds counter cap {}",
                    e.freq, self.max_freq
                ));
            }
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn referenced_objects_get_second_chance() {
        let mut p = Clock::new(2, 1).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        p.request(&Request::get(2, 1), &mut evs);
        p.request(&Request::get(1, 2), &mut evs); // ref bit set on 1
        evs.clear();
        p.request(&Request::get(3, 3), &mut evs);
        // 1 is at the tail but referenced: it is reinserted and 2 evicted.
        assert_eq!(evs[0].id, 2);
        assert!(p.contains(1));
    }

    #[test]
    fn unreferenced_objects_evicted_fifo() {
        let mut p = Clock::new(3, 1).unwrap();
        let mut evs = Vec::new();
        for id in 1..=3 {
            p.request(&Request::get(id, id), &mut evs);
        }
        evs.clear();
        p.request(&Request::get(4, 10), &mut evs);
        assert_eq!(evs[0].id, 1);
    }

    #[test]
    fn two_bit_counter_survives_two_rounds() {
        let mut p = Clock::new(2, 2).unwrap();
        let mut evs = Vec::new();
        p.request(&Request::get(1, 0), &mut evs);
        // Three hits saturate freq at 3.
        for t in 1..4 {
            p.request(&Request::get(1, t), &mut evs);
        }
        // Each new insertion decrements 1's counter once; it survives three
        // eviction scans.
        for (i, id) in (10..13u64).enumerate() {
            evs.clear();
            p.request(&Request::get(id, 4 + i as u64), &mut evs);
        }
        assert!(p.contains(1), "freq-3 object must survive 3 scans");
    }

    #[test]
    fn beats_fifo_on_skew() {
        let trace = test_trace(30_000, 2000, 9);
        let mut clock = Clock::new(64, 1).unwrap();
        let mut fifo = crate::fifo::Fifo::new(64).unwrap();
        let mr_c = miss_ratio_of(&mut clock, &trace);
        let mr_f = miss_ratio_of(&mut fifo, &trace);
        assert!(mr_c <= mr_f, "CLOCK {mr_c:.4} vs FIFO {mr_f:.4}");
    }

    #[test]
    fn basics() {
        let mut p = Clock::new(100, 1).unwrap();
        check_policy_basics(&mut p, 100);
        let mut p = Clock::new(100, 2).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Clock::new(0, 1).is_err());
        assert!(Clock::new(10, 0).is_err());
        assert!(Clock::new(10, 8).is_err());
    }

    #[test]
    fn name_reflects_bits() {
        assert_eq!(Clock::new(10, 1).unwrap().name(), "CLOCK");
        assert_eq!(Clock::new(10, 2).unwrap().name(), "CLOCK-2bit");
    }
}

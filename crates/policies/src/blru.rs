//! B-LRU — Bloom-filter-admission LRU (§5.2 "Common algorithms").
//!
//! A Bloom filter in front of an LRU cache rejects objects on their first
//! request: only ids that have been seen before are admitted. This is the
//! common CDN trick for one-hit wonders, and the paper's point is its cost:
//! "the second requests to all objects [are] cache misses, which leads to
//! mediocre efficiency."
//!
//! Two rotating Bloom filters bound memory: when the active filter fills,
//! it becomes the previous filter and a fresh one takes over; membership is
//! the union of both.

use crate::lru::Lru;
use cache_ds::BloomFilter;
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

/// LRU with Bloom-filter admission.
pub struct BloomLru {
    inner: Lru,
    active: BloomFilter,
    previous: BloomFilter,
    /// Insertions after which the filters rotate.
    rotate_at: u64,
    stats: PolicyStats,
}

impl BloomLru {
    /// Creates a B-LRU cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        let inner = Lru::new(capacity)?;
        // Size each filter for ~8 "generations" of the cache's objects.
        let expected = (capacity as usize).clamp(1024, 1 << 24);
        Ok(BloomLru {
            inner,
            active: BloomFilter::new(expected, 0.01),
            previous: BloomFilter::new(expected, 0.01),
            rotate_at: expected as u64,
            stats: PolicyStats::default(),
        })
    }

    fn seen(&self, id: ObjId) -> bool {
        self.active.contains(id) || self.previous.contains(id)
    }

    fn record(&mut self, id: ObjId) {
        self.active.insert(id);
        if self.active.inserted() >= self.rotate_at {
            std::mem::swap(&mut self.active, &mut self.previous);
            self.active.clear();
        }
    }
}

impl Policy for BloomLru {
    fn name(&self) -> String {
        "B-LRU".into()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.inner.contains(id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.inner.contains(req.id) {
                    // Delegate the hit to keep LRU ordering and inner stats.
                    let out = self.inner.request(req, evicted);
                    debug_assert!(out.is_hit());
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else {
                    self.stats.record_get(req.size, true);
                    if self.seen(req.id) {
                        // Second-or-later request: admit.
                        let out = self.inner.request(req, evicted);
                        self.stats.evictions = self.inner.stats().evictions;
                        if out == Outcome::Uncacheable {
                            Outcome::Uncacheable
                        } else {
                            Outcome::Miss
                        }
                    } else {
                        // First sighting: reject, remember.
                        self.record(req.id);
                        Outcome::Miss
                    }
                }
            }
            Op::Set | Op::Delete => self.inner.request(req, evicted),
        }
    }

    fn stats(&self) -> PolicyStats {
        let mut s = self.stats;
        s.evictions = self.inner.stats().evictions;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn first_request_rejected_second_admitted() {
        let mut p = BloomLru::new(10).unwrap();
        let mut evs = Vec::new();
        assert!(p.request(&Request::get(1, 0), &mut evs).is_miss());
        assert!(!p.contains(1), "first request must not be admitted");
        assert!(p.request(&Request::get(1, 1), &mut evs).is_miss());
        assert!(p.contains(1), "second request admits");
        assert!(p.request(&Request::get(1, 2), &mut evs).is_hit());
    }

    #[test]
    fn one_hit_wonders_never_enter() {
        let mut p = BloomLru::new(10).unwrap();
        let mut evs = Vec::new();
        for id in 0..1000u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        // A pure scan admits almost nothing; the handful of Bloom false
        // positives (≈1 %) are the only possible admissions.
        assert!(p.len() <= 5, "admitted {} of 1000 scan objects", p.len());
        assert_eq!(p.stats().misses, 1000);
    }

    #[test]
    fn filter_rotation_bounds_memory() {
        let mut p = BloomLru::new(16).unwrap();
        let mut evs = Vec::new();
        // Far more distinct ids than a single filter generation.
        for id in 0..10_000u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        // Ids seen long ago have been rotated out: a second request for a
        // very old id is once again rejected (probabilistically; id 0 was
        // 10k insertions ago with rotate_at 1024).
        let before = p.len();
        p.request(&Request::get(0, 20_000), &mut evs);
        assert_eq!(p.len(), before, "rotated-out id must be rejected again");
    }

    #[test]
    fn worse_than_lru_when_reuse_is_quick() {
        // The paper: "an object's second request often arrives soon after
        // the first request (temporal locality)" and B-LRU turns every such
        // second request into a miss. Back-to-back pairs make it stark: LRU
        // hits half the requests, B-LRU none.
        let mut reqs = Vec::new();
        for i in 0..5000u64 {
            reqs.push(Request::get(i, 2 * i));
            reqs.push(Request::get(i, 2 * i + 1));
        }
        let mut b = BloomLru::new(64).unwrap();
        let mut l = crate::lru::Lru::new(64).unwrap();
        let mr_b = miss_ratio_of(&mut b, &reqs);
        let mr_l = miss_ratio_of(&mut l, &reqs);
        assert!((mr_l - 0.5).abs() < 0.01, "LRU should hit ~half: {mr_l}");
        assert!(mr_b > 0.9, "B-LRU should miss nearly all: {mr_b}");
    }

    #[test]
    fn capacity_bounded_and_stats_sane() {
        // `check_policy_basics` expects a hit on the second request to a
        // fresh id, which B-LRU deliberately misses; check the remaining
        // invariants by hand.
        let _ = check_policy_basics; // pattern documented above
        let mut p = BloomLru::new(100).unwrap();
        let trace = test_trace(20_000, 1000, 109);
        let mut evs = Vec::new();
        for r in &trace {
            evs.clear();
            p.request(r, &mut evs);
            assert!(p.used() <= 100);
        }
        let s = p.stats();
        assert_eq!(s.gets, 20_000);
        assert!(s.misses <= s.gets);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(BloomLru::new(0).is_err());
    }
}

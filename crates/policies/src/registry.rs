//! Build policies by name — the factory the sweep engine and benchmark
//! binaries use.

use crate::{
    Arc, Belady, BloomLru, Cacheus, Clock, Fifo, FifoMerge, LeCar, Lhd, Lirs, Lru, LruK, Sieve,
    Slru, TinyLfu, TwoQ,
};
use cache_types::{CacheError, Policy, Request};
use s3fifo::{Qdlp, QdlpConfig, QueueKind, S3Fifo, S3FifoConfig, S3FifoD};

/// Names of the algorithms compared in Fig. 6 (S3-FIFO plus the twelve
/// state-of-the-art baselines and FIFO itself).
pub const FIG6_ALGORITHMS: &[&str] = &[
    "S3-FIFO",
    "TinyLFU",
    "TinyLFU-0.1",
    "LIRS",
    "2Q",
    "SLRU",
    "ARC",
    "CACHEUS",
    "LeCaR",
    "LHD",
    "FIFO-Merge",
    "B-LRU",
    "CLOCK",
    "LRU",
];

/// Every name [`build`] accepts.
pub const ALL_ALGORITHMS: &[&str] = &[
    "FIFO",
    "LRU",
    "CLOCK",
    "CLOCK-2bit",
    "SIEVE",
    "SLRU",
    "2Q",
    "ARC",
    "LIRS",
    "TinyLFU",
    "TinyLFU-0.1",
    "LRU-2",
    "LeCaR",
    "CACHEUS",
    "LHD",
    "B-LRU",
    "FIFO-Merge",
    "S3-FIFO",
    "S3-FIFO-D",
    "QDLP-LRU-LRU",
    "QDLP-LRU-FIFO",
    "QDLP-FIFO-LRU",
    "S3-FIFO-Sieve",
    "Belady",
];

/// Builds the named policy at the given byte capacity.
///
/// `trace` is required only by `"Belady"` (the offline-optimal policy needs
/// the future); pass `None` for online algorithms.
///
/// `"S3-FIFO(r)"` with a literal float `r` (e.g. `"S3-FIFO(0.25)"`) selects
/// a non-default small-queue ratio, as does `"TinyLFU(r)"` for the window.
///
/// # Errors
///
/// Returns [`CacheError::InvalidParameter`] for an unknown name, a missing
/// trace for Belady, or an invalid embedded parameter.
pub fn build(
    name: &str,
    capacity: u64,
    trace: Option<&[Request]>,
) -> Result<Box<dyn Policy>, CacheError> {
    // Parameterized forms: NAME(float).
    if let Some(ratio) = parse_param(name, "S3-FIFO") {
        let cfg = S3FifoConfig {
            small_ratio: ratio?,
            ..Default::default()
        };
        return Ok(Box::new(S3Fifo::with_config(capacity, cfg)?));
    }
    if let Some(ratio) = parse_param(name, "TinyLFU") {
        return Ok(Box::new(TinyLfu::with_window(capacity, ratio?)?));
    }
    Ok(match name {
        "FIFO" => Box::new(Fifo::new(capacity)?),
        "LRU" => Box::new(Lru::new(capacity)?),
        "CLOCK" => Box::new(Clock::new(capacity, 1)?),
        "CLOCK-2bit" => Box::new(Clock::new(capacity, 2)?),
        "SIEVE" => Box::new(Sieve::new(capacity)?),
        "SLRU" => Box::new(Slru::new(capacity)?),
        "2Q" => Box::new(TwoQ::new(capacity)?),
        "ARC" => Box::new(Arc::new(capacity)?),
        "LIRS" => Box::new(Lirs::new(capacity)?),
        "TinyLFU" => Box::new(TinyLfu::new(capacity)?),
        "TinyLFU-0.1" => Box::new(TinyLfu::with_window(capacity, 0.1)?),
        "LRU-2" => Box::new(LruK::new(capacity)?),
        "LeCaR" => Box::new(LeCar::new(capacity)?),
        "CACHEUS" => Box::new(Cacheus::new(capacity)?),
        "LHD" => Box::new(Lhd::new(capacity)?),
        "B-LRU" => Box::new(BloomLru::new(capacity)?),
        "FIFO-Merge" => Box::new(FifoMerge::new(capacity)?),
        "S3-FIFO" => Box::new(S3Fifo::new(capacity)?),
        "S3-FIFO-D" => Box::new(S3FifoD::new(capacity)?),
        "QDLP-LRU-LRU" => Box::new(Qdlp::new(
            capacity,
            QdlpConfig {
                small: QueueKind::Lru,
                main: QueueKind::Lru,
                ..Default::default()
            },
        )?),
        "QDLP-LRU-FIFO" => Box::new(Qdlp::new(
            capacity,
            QdlpConfig {
                small: QueueKind::Lru,
                main: QueueKind::Fifo,
                ..Default::default()
            },
        )?),
        "QDLP-FIFO-LRU" => Box::new(Qdlp::new(
            capacity,
            QdlpConfig {
                small: QueueKind::Fifo,
                main: QueueKind::Lru,
                ..Default::default()
            },
        )?),
        // §7's suggested extension: SIEVE replaces the main FIFO queue.
        "S3-FIFO-Sieve" => Box::new(Qdlp::new(
            capacity,
            QdlpConfig {
                small: QueueKind::Fifo,
                main: QueueKind::Sieve,
                ..Default::default()
            },
        )?),
        "Belady" => {
            let trace = trace
                .ok_or_else(|| CacheError::InvalidParameter("Belady requires the trace".into()))?;
            Box::new(Belady::new(capacity, trace)?)
        }
        other => {
            return Err(CacheError::InvalidParameter(format!(
                "unknown algorithm {other:?}"
            )))
        }
    })
}

/// Builds the dense-ID fast-path variant of the named policy, or `None`
/// when the algorithm has no dense implementation (the simulator then falls
/// back to the keyed path).
///
/// Dense variants exist for the core queue policies: FIFO, LRU, CLOCK,
/// CLOCK-2bit, SIEVE, SLRU, 2Q, S3-FIFO, and `"S3-FIFO(r)"`. Each is
/// decision-identical to its keyed sibling (enforced by the simulator's
/// equivalence test).
///
/// # Errors
///
/// Returns [`CacheError`] for an invalid capacity or embedded parameter.
/// An *unknown* name is `Ok(None)` here, not an error: the keyed
/// [`build`] is the authority on name validity.
pub fn build_dense(
    name: &str,
    capacity: u64,
    ids: &std::sync::Arc<cache_ds::DenseIds>,
) -> Result<Option<Box<dyn cache_types::DensePolicy>>, CacheError> {
    use crate::dense::{
        DenseClock, DenseFifo, DenseLru, DenseS3Fifo, DenseSieve, DenseSlru, DenseTwoQ,
    };
    if let Some(ratio) = parse_param(name, "S3-FIFO") {
        let cfg = S3FifoConfig {
            small_ratio: ratio?,
            ..Default::default()
        };
        return Ok(Some(Box::new(DenseS3Fifo::with_config(capacity, cfg, ids)?)));
    }
    Ok(match name {
        "FIFO" => Some(Box::new(DenseFifo::new(capacity, ids)?)),
        "LRU" => Some(Box::new(DenseLru::new(capacity, ids)?)),
        "CLOCK" => Some(Box::new(DenseClock::new(capacity, 1, ids)?)),
        "CLOCK-2bit" => Some(Box::new(DenseClock::new(capacity, 2, ids)?)),
        "SIEVE" => Some(Box::new(DenseSieve::new(capacity, ids)?)),
        "SLRU" => Some(Box::new(DenseSlru::new(capacity, ids)?)),
        "2Q" => Some(Box::new(DenseTwoQ::new(capacity, ids)?)),
        "S3-FIFO" => Some(Box::new(DenseS3Fifo::new(capacity, ids)?)),
        _ => None,
    })
}

/// [`build_dense`] over a pre-sized dense id domain `0..domain` with no
/// interning table — the entry point for streamed `.ctr` replay, where ids
/// arrive already dense and the domain comes from the trace header.
/// Decision-identical to [`build_dense`] for the same domain size.
///
/// # Errors
///
/// Returns [`CacheError`] for an invalid capacity or embedded parameter.
/// An *unknown* name is `Ok(None)`, mirroring [`build_dense`].
pub fn build_dense_domain(
    name: &str,
    capacity: u64,
    domain: usize,
) -> Result<Option<Box<dyn cache_types::DensePolicy>>, CacheError> {
    use crate::dense::{
        DenseClock, DenseFifo, DenseLru, DenseS3Fifo, DenseSieve, DenseSlru, DenseTwoQ,
    };
    if let Some(ratio) = parse_param(name, "S3-FIFO") {
        let cfg = S3FifoConfig {
            small_ratio: ratio?,
            ..Default::default()
        };
        return Ok(Some(Box::new(DenseS3Fifo::with_config_domain(
            capacity, cfg, domain,
        )?)));
    }
    Ok(match name {
        "FIFO" => Some(Box::new(DenseFifo::with_domain(capacity, domain)?)),
        "LRU" => Some(Box::new(DenseLru::with_domain(capacity, domain)?)),
        "CLOCK" => Some(Box::new(DenseClock::with_domain(capacity, 1, domain)?)),
        "CLOCK-2bit" => Some(Box::new(DenseClock::with_domain(capacity, 2, domain)?)),
        "SIEVE" => Some(Box::new(DenseSieve::with_domain(capacity, domain)?)),
        "SLRU" => Some(Box::new(DenseSlru::with_domain(capacity, domain)?)),
        "2Q" => Some(Box::new(DenseTwoQ::with_domain(capacity, domain)?)),
        "S3-FIFO" => Some(Box::new(DenseS3Fifo::with_config_domain(
            capacity,
            S3FifoConfig::default(),
            domain,
        )?)),
        _ => None,
    })
}

/// Builds the multi-capacity MRC engine for the named policy over a whole
/// capacity grid, or `None` when the algorithm has no multi-capacity
/// implementation (callers then fall back to a per-capacity sweep).
///
/// Multi-capacity engines exist for the FIFO family: FIFO, CLOCK,
/// CLOCK-2bit, SIEVE, S3-FIFO, and `"S3-FIFO(r)"`. Every lane is
/// decision-identical to the single-capacity dense policy at that grid
/// point (enforced by `crates/sim/tests/mrc_equivalence.rs` and the
/// `cache-check` MRC differential). FIFO builds [`crate::MrcFifo`] here —
/// the exact insertion-index engine ([`crate::MrcExactFifo`]) has stream
/// preconditions only the simulator can check, so `simulate_mrc` constructs
/// it directly.
///
/// # Errors
///
/// Returns [`CacheError`] for an invalid grid or embedded parameter. An
/// *unknown* name is `Ok(None)`, mirroring [`build_dense`].
pub fn build_mrc(
    name: &str,
    capacities: &[u64],
    ids: &std::sync::Arc<cache_ds::DenseIds>,
) -> Result<Option<Box<dyn crate::MultiCapacityPolicy>>, CacheError> {
    use crate::dense::{MrcClock, MrcFifo, MrcS3Fifo, MrcSieve};
    if let Some(ratio) = parse_param(name, "S3-FIFO") {
        let cfg = S3FifoConfig {
            small_ratio: ratio?,
            ..Default::default()
        };
        return Ok(Some(Box::new(MrcS3Fifo::with_config(capacities, cfg, ids)?)));
    }
    Ok(match name {
        "FIFO" => Some(Box::new(MrcFifo::new(capacities, ids)?)),
        "CLOCK" => Some(Box::new(MrcClock::new(capacities, 1, ids)?)),
        "CLOCK-2bit" => Some(Box::new(MrcClock::new(capacities, 2, ids)?)),
        "SIEVE" => Some(Box::new(MrcSieve::new(capacities, ids)?)),
        "S3-FIFO" => Some(Box::new(MrcS3Fifo::new(capacities, ids)?)),
        _ => None,
    })
}

/// Builds the *turbo* multi-capacity MRC engine for the named policy — the
/// pure-`Get` unit-size specialisation with bitmap residency and
/// timestamp-derived reference state (see `cache_policies::dense::mrc`'s
/// turbo module). `None` when the algorithm has no turbo lane or the grid
/// exceeds [`crate::MAX_TURBO_LANES`] points; callers then fall back to
/// [`build_mrc`]. FIFO is also `None`: under the same stream preconditions
/// `simulate_mrc` routes it to the exact insertion-index engine, which is
/// strictly cheaper.
///
/// The caller is responsible for the stream preconditions (every request a
/// `Get`, sizes ignored, fewer than `u32::MAX` requests); the engines
/// `debug_assert!` them per request.
///
/// # Errors
///
/// Returns [`CacheError`] for an invalid grid or embedded parameter. An
/// *unknown* name is `Ok(None)`, mirroring [`build_dense`].
pub fn build_mrc_turbo(
    name: &str,
    capacities: &[u64],
    ids: &std::sync::Arc<cache_ds::DenseIds>,
) -> Result<Option<Box<dyn crate::MultiCapacityPolicy>>, CacheError> {
    use crate::dense::{MrcTurboClock, MrcTurboS3Fifo, MrcTurboSieve, MAX_TURBO_LANES};
    if capacities.len() > MAX_TURBO_LANES {
        return Ok(None);
    }
    if let Some(ratio) = parse_param(name, "S3-FIFO") {
        let cfg = S3FifoConfig {
            small_ratio: ratio?,
            ..Default::default()
        };
        return Ok(Some(Box::new(MrcTurboS3Fifo::with_config(
            capacities, cfg, ids,
        )?)));
    }
    Ok(match name {
        "CLOCK" => Some(Box::new(MrcTurboClock::new(capacities, 1, ids)?)),
        "CLOCK-2bit" => Some(Box::new(MrcTurboClock::new(capacities, 2, ids)?)),
        "SIEVE" => Some(Box::new(MrcTurboSieve::new(capacities, ids)?)),
        "S3-FIFO" => Some(Box::new(MrcTurboS3Fifo::new(capacities, ids)?)),
        _ => None,
    })
}

/// Parses `"<prefix>(<float>)"`, returning `Some(Ok(float))` on a match,
/// `Some(Err)` on a malformed parameter, `None` when the name does not have
/// that parameterized shape.
fn parse_param(name: &str, prefix: &str) -> Option<Result<f64, CacheError>> {
    let rest = name.strip_prefix(prefix)?;
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(
        inner
            .parse::<f64>()
            .map_err(|e| CacheError::InvalidParameter(format!("bad parameter in {name:?}: {e}"))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_types::policy::run_trace;
    use cache_types::Request;

    #[test]
    fn builds_every_listed_algorithm() {
        let trace: Vec<Request> = (0..100u64).map(|i| Request::get(i % 37, i)).collect();
        for name in ALL_ALGORITHMS {
            let mut p = build(name, 16, Some(&trace)).unwrap_or_else(|e| {
                panic!("failed to build {name}: {e}");
            });
            let stats = run_trace(p.as_mut(), &trace);
            assert_eq!(stats.gets, 100, "{name} lost requests");
            assert!(p.used() <= 16, "{name} over capacity");
        }
    }

    #[test]
    fn fig6_algorithms_are_buildable() {
        for name in FIG6_ALGORITHMS {
            assert!(build(name, 100, None).is_ok(), "cannot build {name}");
        }
    }

    #[test]
    fn parameterized_names() {
        let p = build("S3-FIFO(0.25)", 100, None).unwrap();
        assert_eq!(p.name(), "S3-FIFO(0.25)");
        let p = build("TinyLFU(0.2)", 100, None).unwrap();
        assert_eq!(p.name(), "TinyLFU-0.2");
        assert!(build("S3-FIFO(zzz)", 100, None).is_err());
    }

    #[test]
    fn unknown_name_errors() {
        assert!(build("MRU", 100, None).is_err());
    }

    #[test]
    fn belady_needs_trace() {
        assert!(build("Belady", 100, None).is_err());
        assert!(build("Belady", 100, Some(&[])).is_ok());
    }
}

//! SIEVE eviction (referenced in §7 as a simpler-than-LRU algorithm).
//!
//! SIEVE keeps a FIFO-ordered queue and a moving *hand*. On a hit the object's
//! visited bit is set (no movement). At eviction the hand walks from the tail
//! toward the head: visited objects have their bit cleared and **retain their
//! position** (unlike CLOCK, which reinserts them at the head); the first
//! non-visited object is evicted and the hand stays just before it. New
//! objects are inserted at the head.
//!
//! The paper notes SIEVE "can be used to replace the large FIFO queue in
//! S3-FIFO to further improve efficiency"; the `ablation_queue_type` bench
//! exercises that idea indirectly via the ablation matrix.

use crate::util::Meta;
use cache_ds::{DList, Handle, IdMap};
use cache_types::{CacheError, Eviction, ObjId, Op, Outcome, Policy, PolicyStats, Request};

struct Entry {
    handle: Handle,
    visited: bool,
    meta: Meta,
}

/// The SIEVE eviction algorithm.
pub struct Sieve {
    capacity: u64,
    used: u64,
    table: IdMap<Entry>,
    /// Head = newest insert.
    queue: DList<ObjId>,
    /// The hand: next eviction candidate. `None` means "start at the tail".
    hand: Option<Handle>,
    stats: PolicyStats,
}

impl Sieve {
    /// Creates a SIEVE cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(Sieve {
            capacity,
            used: 0,
            table: IdMap::default(),
            queue: DList::new(),
            hand: None,
            stats: PolicyStats::default(),
        })
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        // Resume from the hand, or from the tail when the hand is invalid
        // (start, wrap-around, or the pointed-to node was deleted).
        let mut cur = self
            .hand
            .filter(|&h| self.queue.get(h).is_some())
            .or_else(|| self.queue.back_handle());
        while let Some(h) = cur {
            // Invariant: the hand was just validated; queued ids are always tabled.
            let id = *self.queue.get(h).expect("hand points at live node");
            let e = self.table.get_mut(&id).expect("queued id in table");
            if e.visited {
                e.visited = false;
                // Move toward the head; wrap to the tail at the end.
                cur = self
                    .queue
                    .prev_handle(h)
                    .or_else(|| self.queue.back_handle());
            } else {
                // Evict; the hand moves to the neighbour toward the head.
                self.hand = self.queue.prev_handle(h);
                let entry = self.table.remove(&id).expect("entry exists");
                self.queue.remove(entry.handle);
                self.used -= u64::from(entry.meta.size);
                self.stats.evictions += 1;
                evicted.push(entry.meta.eviction(id, false));
                return;
            }
        }
    }

    fn insert(&mut self, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.table.is_empty() {
            self.evict_one(evicted);
        }
        let handle = self.queue.push_front(req.id);
        self.table.insert(
            req.id,
            Entry {
                handle,
                visited: false,
                meta: Meta::new(req.size, req.time),
            },
        );
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, id: ObjId) {
        if let Some(e) = self.table.remove(&id) {
            if self.hand == Some(e.handle) {
                self.hand = self.queue.prev_handle(e.handle);
            }
            self.queue.remove(e.handle);
            self.used -= u64::from(e.meta.size);
        }
    }
}

impl Policy for Sieve {
    fn name(&self) -> String {
        "SIEVE".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.table.len()
    }

    fn contains(&self, id: ObjId) -> bool {
        self.table.contains_key(&id)
    }

    fn request(&mut self, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if let Some(e) = self.table.get_mut(&req.id) {
                    e.visited = true;
                    e.meta.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(req.id);
                if u64::from(req.size) <= self.capacity {
                    self.insert(req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(req.id);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        crate::util::validate_single_queue(
            "SIEVE",
            self.capacity,
            self.used,
            self.table.len(),
            self.queue.iter(),
            |id| self.table.get(&id).map(|e| e.meta.size),
        )?;
        if let Some(h) = self.hand {
            if let Some(&id) = self.queue.get(h) {
                if !self.table.contains_key(&id) {
                    return Err(format!("SIEVE: hand points at {id} missing from table"));
                }
            }
            // A hand handle whose node was evicted/deleted is tolerated:
            // evict_one re-validates it and falls back to the tail.
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{check_policy_basics, miss_ratio_of, test_trace};

    #[test]
    fn visited_objects_survive_in_place() {
        let mut p = Sieve::new(3).unwrap();
        let mut evs = Vec::new();
        for id in 1..=3u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        p.request(&Request::get(1, 10), &mut evs); // visit tail object 1
        evs.clear();
        p.request(&Request::get(4, 11), &mut evs);
        // Hand starts at tail (1), clears its bit, moves to 2, evicts 2.
        assert_eq!(evs[0].id, 2);
        assert!(p.contains(1));
    }

    #[test]
    fn hand_persists_across_evictions() {
        let mut p = Sieve::new(3).unwrap();
        let mut evs = Vec::new();
        for id in 1..=3u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        // Visit everything once.
        for (t, id) in (1..=3u64).enumerate() {
            p.request(&Request::get(id, 10 + t as u64), &mut evs);
        }
        evs.clear();
        p.request(&Request::get(4, 20), &mut evs);
        // All were visited; the hand sweeps 1,2,3 clearing bits, wraps, and
        // evicts object 1 (oldest, bit now clear).
        assert_eq!(evs[0].id, 1);
        evs.clear();
        p.request(&Request::get(5, 21), &mut evs);
        // Hand continues from where it stopped: evicts 2 next (bit cleared
        // in the previous sweep).
        assert_eq!(evs[0].id, 2);
    }

    #[test]
    fn scan_does_not_displace_visited_working_set() {
        let mut p = Sieve::new(10).unwrap();
        let mut evs = Vec::new();
        let mut t = 0u64;
        for id in 1..=5u64 {
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        for _ in 0..3 {
            for id in 1..=5u64 {
                p.request(&Request::get(id, t), &mut evs);
                t += 1;
            }
        }
        // Scan of one-time objects.
        for id in 100..150u64 {
            evs.clear();
            p.request(&Request::get(id, t), &mut evs);
            t += 1;
        }
        let survivors = (1..=5u64).filter(|&id| p.contains(id)).count();
        assert!(survivors >= 4, "only {survivors}/5 hot objects survived");
    }

    #[test]
    fn delete_on_hand_position_is_safe() {
        let mut p = Sieve::new(3).unwrap();
        let mut evs = Vec::new();
        for id in 1..=3u64 {
            p.request(&Request::get(id, id), &mut evs);
        }
        p.request(&Request::get(1, 5), &mut evs);
        p.request(&Request::get(4, 6), &mut evs); // hand now points near 1
        p.request(&Request::delete(1, 7), &mut evs);
        // Further inserts must not panic.
        for id in 10..20u64 {
            p.request(&Request::get(id, 10 + id), &mut evs);
        }
        assert!(p.used() <= 3);
    }

    #[test]
    fn competitive_with_lru_on_skew() {
        let trace = test_trace(30_000, 2000, 5);
        let mut sieve = Sieve::new(64).unwrap();
        let mut lru = crate::lru::Lru::new(64).unwrap();
        let mr_s = miss_ratio_of(&mut sieve, &trace);
        let mr_l = miss_ratio_of(&mut lru, &trace);
        assert!(
            mr_s <= mr_l + 0.02,
            "SIEVE {mr_s:.4} should be close to or better than LRU {mr_l:.4}"
        );
    }

    #[test]
    fn basics() {
        let mut p = Sieve::new(100).unwrap();
        check_policy_basics(&mut p, 100);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(Sieve::new(0).is_err());
    }
}

//! Dense-ID policy implementations — the simulator's fast replay path.
//!
//! Each policy here is a line-for-line mirror of its keyed sibling
//! ([`crate::fifo::Fifo`], [`crate::lru::Lru`], …) with the per-key
//! `HashMap<ObjId, Entry>` replaced by plain `Vec`s indexed by the trace's
//! interned dense slot (the intrusive-array layout libCacheSim uses). A
//! request costs a couple of array loads instead of a hash probe, which is
//! where sweep replay time goes.
//!
//! Equivalence is a hard requirement, not an aspiration: slots and original
//! ids are in bijection, every structural decision (eviction scan order,
//! ghost tombstone semantics, promote thresholds) is copied verbatim from
//! the keyed implementation, and `crates/sim/tests/equivalence.rs` asserts
//! bit-identical miss ratios and eviction counts for every policy across
//! workload shapes.

mod ghost;
pub mod mrc;
mod multi;
mod s3fifo;
mod simple;
mod slab;

pub use mrc::{
    MrcClock, MrcExactFifo, MrcFifo, MrcS3Fifo, MrcSieve, MrcTurboClock, MrcTurboS3Fifo,
    MrcTurboSieve, MultiCapacityPolicy, MAX_TURBO_LANES,
};
pub use multi::{DenseSlru, DenseTwoQ};
pub use s3fifo::DenseS3Fifo;
pub use simple::{DenseClock, DenseFifo, DenseLru, DenseSieve};

pub(crate) use ghost::SlotGhost;
pub(crate) use slab::{DenseSlab, PackedQueue};

use cache_types::{DensePolicy, Eviction, Request};

/// The replay loop every dense policy's [`DensePolicy::replay`] override
/// delegates to. Because `P` is a concrete type here, `request_dense`
/// resolves statically and the whole per-request path inlines into one loop
/// body — the trait's default `replay` runs the same loop but pays a virtual
/// call per request.
/// How many requests ahead the replay loop warms slot state. Far enough to
/// overlap a DRAM round-trip with useful work, near enough that the warmed
/// line is still cached when its request executes.
const LOOKAHEAD: usize = 12;

#[inline]
pub(crate) fn replay_loop<P: DensePolicy>(
    policy: &mut P,
    slots: &[u32],
    requests: &[Request],
    ignore_size: bool,
    on_eviction: &mut dyn FnMut(usize, &Eviction),
) {
    assert_eq!(slots.len(), requests.len(), "slot/request length mismatch");
    let mut evs: Vec<Eviction> = Vec::with_capacity(16);
    for (i, (&slot, r)) in slots.iter().zip(requests.iter()).enumerate() {
        if let Some(&ahead) = slots.get(i + LOOKAHEAD) {
            policy.prefetch(ahead);
        }
        let req = if ignore_size {
            Request { size: 1, ..(*r) }
        } else {
            *r
        };
        evs.clear();
        policy.request_dense(slot, &req, &mut evs);
        for e in &evs {
            on_eviction(i, e);
        }
    }
}

/// Implements [`DensePolicy::replay`] as a monomorphized [`replay_loop`]
/// call and [`DensePolicy::prefetch`] as a slot-state warming read; used
/// inside each dense policy's `impl DensePolicy` block (they all store
/// their per-slot state in a `slab` field).
macro_rules! impl_dense_replay {
    ($($ghost:ident),*) => {
        fn prefetch(&self, slot: u32) {
            // Non-retiring hardware hints; see `cache_ds::prefetch_read`.
            // Besides the upcoming request's slot, each policy warms its
            // eviction cursor(s) via `prefetch_extra`, and policies with a
            // ghost list name it as a macro argument so its presence mark
            // is warmed too.
            cache_ds::prefetch_read(&self.slab.slots, slot as usize);
            self.prefetch_extra();
            $(self.$ghost.warm(slot);)*
        }

        fn replay(
            &mut self,
            slots: &[u32],
            requests: &[cache_types::Request],
            ignore_size: bool,
            on_eviction: &mut dyn FnMut(usize, &cache_types::Eviction),
        ) {
            crate::dense::replay_loop(self, slots, requests, ignore_size, on_eviction);
        }
    };
}
pub(crate) use impl_dense_replay;

//! Dense mirrors of the single-queue policies: FIFO, LRU, CLOCK, SIEVE.
//!
//! Slot-state conventions (see [`super::slab::Slot`]): `tag` is the
//! residency flag (0 = absent, 1 = resident); `freq` holds the CLOCK
//! reference counter and the SIEVE visited bit.

use super::{impl_dense_replay, DenseSlab, PackedQueue};
use cache_ds::{DenseIds, NIL};
use cache_types::{CacheError, DensePolicy, Eviction, Op, Outcome, PolicyStats, Request};
use std::sync::Arc;

const ABSENT: u8 = 0;
const RESIDENT: u8 = 1;

/// Dense mirror of [`crate::fifo::Fifo`].
pub struct DenseFifo {
    capacity: u64,
    used: u64,
    slab: DenseSlab,
    /// Head = newest insert, tail = next eviction.
    queue: PackedQueue,
    stats: PolicyStats,
}

impl DenseFifo {
    /// Creates a FIFO cache of `capacity` bytes over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, ids.len())
    }

    /// [`DenseFifo::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table (the streaming replayer's entry point — `.ctr` ids
    /// are already dense). Decision-identical to [`DenseFifo::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn with_domain(capacity: u64, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(DenseFifo {
            capacity,
            used: 0,
            slab: DenseSlab::with_domain(domain),
            queue: PackedQueue::new(),
            stats: PolicyStats::default(),
        })
    }

    /// Warms the next eviction candidate (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        self.slab.warm_tail(&self.queue);
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(s) = self.queue.pop_back(&mut self.slab.slots) {
            self.slab.slots[s as usize].tag = ABSENT;
            self.used -= u64::from(self.slab.size(s));
            self.stats.evictions += 1;
            evicted.push(self.slab.eviction(s, false));
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.queue.is_empty() {
            self.evict_one(evicted);
        }
        self.queue.push_front(&mut self.slab.slots, slot);
        let s = &mut self.slab.slots[slot as usize];
        s.tag = RESIDENT;
        s.on_insert(req);
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, slot: u32) {
        if std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) == RESIDENT {
            self.queue.remove(&mut self.slab.slots, slot);
            self.used -= u64::from(self.slab.size(slot));
        }
    }
}

impl DensePolicy for DenseFifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.queue.len() as usize
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag == RESIDENT {
                    self.slab.slots[slot as usize].touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        super::slab::validate_packed_queue(
            "FIFO",
            self.capacity,
            self.used,
            &self.slab,
            &self.queue,
            RESIDENT,
            None,
        )
    }

    impl_dense_replay!();

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Dense mirror of [`crate::lru::Lru`].
pub struct DenseLru {
    capacity: u64,
    used: u64,
    slab: DenseSlab,
    /// Head = most recently used, tail = next eviction.
    queue: PackedQueue,
    stats: PolicyStats,
}

impl DenseLru {
    /// Creates an LRU cache of `capacity` bytes over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, ids.len())
    }

    /// [`DenseLru::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table. Decision-identical to [`DenseLru::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn with_domain(capacity: u64, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(DenseLru {
            capacity,
            used: 0,
            slab: DenseSlab::with_domain(domain),
            queue: PackedQueue::new(),
            stats: PolicyStats::default(),
        })
    }

    /// Warms the next eviction candidate (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        self.slab.warm_tail(&self.queue);
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if let Some(s) = self.queue.pop_back(&mut self.slab.slots) {
            self.slab.slots[s as usize].tag = ABSENT;
            self.used -= u64::from(self.slab.size(s));
            self.stats.evictions += 1;
            evicted.push(self.slab.eviction(s, false));
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.queue.is_empty() {
            self.evict_one(evicted);
        }
        self.queue.push_front(&mut self.slab.slots, slot);
        let s = &mut self.slab.slots[slot as usize];
        s.tag = RESIDENT;
        s.on_insert(req);
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, slot: u32) {
        if std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) == RESIDENT {
            self.queue.remove(&mut self.slab.slots, slot);
            self.used -= u64::from(self.slab.size(slot));
        }
    }
}

impl DensePolicy for DenseLru {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.queue.len() as usize
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag == RESIDENT {
                    self.slab.slots[slot as usize].touch(req.time);
                    self.queue.move_to_front(&mut self.slab.slots, slot);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        super::slab::validate_packed_queue(
            "LRU",
            self.capacity,
            self.used,
            &self.slab,
            &self.queue,
            RESIDENT,
            None,
        )
    }

    impl_dense_replay!();

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Dense mirror of [`crate::clock::Clock`].
pub struct DenseClock {
    capacity: u64,
    used: u64,
    max_freq: u8,
    slab: DenseSlab,
    queue: PackedQueue,
    stats: PolicyStats,
}

impl DenseClock {
    /// Creates a CLOCK cache with a reference counter of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when `capacity == 0` or `bits` is 0 or > 7.
    pub fn new(capacity: u64, bits: u8, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, bits, ids.len())
    }

    /// [`DenseClock::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table. Decision-identical to [`DenseClock::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when `capacity == 0` or `bits` is 0 or > 7.
    pub fn with_domain(capacity: u64, bits: u8, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if bits == 0 || bits > 7 {
            return Err(CacheError::InvalidParameter(format!(
                "bits must be in 1..=7, got {bits}"
            )));
        }
        Ok(DenseClock {
            capacity,
            used: 0,
            max_freq: (1u8 << bits) - 1,
            slab: DenseSlab::with_domain(domain),
            queue: PackedQueue::new(),
            stats: PolicyStats::default(),
        })
    }

    /// Warms the next eviction candidate (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        self.slab.warm_tail(&self.queue);
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        while let Some(tail) = self.queue.tail() {
            let t = tail as usize;
            if self.slab.slots[t].freq > 0 {
                self.slab.slots[t].freq -= 1;
                self.queue.move_to_front(&mut self.slab.slots, tail);
            } else {
                self.queue.remove(&mut self.slab.slots, tail);
                self.slab.slots[t].tag = ABSENT;
                self.used -= u64::from(self.slab.size(tail));
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(tail, false));
                return;
            }
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.queue.is_empty() {
            self.evict_one(evicted);
        }
        self.queue.push_front(&mut self.slab.slots, slot);
        let s = &mut self.slab.slots[slot as usize];
        s.tag = RESIDENT;
        s.freq = 0;
        s.on_insert(req);
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, slot: u32) {
        if std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) == RESIDENT {
            self.queue.remove(&mut self.slab.slots, slot);
            self.used -= u64::from(self.slab.size(slot));
        }
    }
}

impl DensePolicy for DenseClock {
    fn name(&self) -> String {
        if self.max_freq == 1 {
            "CLOCK".into()
        } else {
            format!("CLOCK-{}bit", (self.max_freq + 1).trailing_zeros())
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.queue.len() as usize
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag == RESIDENT {
                    let s = &mut self.slab.slots[slot as usize];
                    s.freq = (s.freq + 1).min(self.max_freq);
                    s.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        super::slab::validate_packed_queue(
            &DensePolicy::name(self),
            self.capacity,
            self.used,
            &self.slab,
            &self.queue,
            RESIDENT,
            Some(self.max_freq),
        )
    }

    impl_dense_replay!();

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Dense mirror of [`crate::sieve::Sieve`]. The visited bit lives in the
/// slot's `freq` field.
pub struct DenseSieve {
    capacity: u64,
    used: u64,
    slab: DenseSlab,
    /// Head = newest insert.
    queue: PackedQueue,
    /// The hand: next eviction candidate. `NIL` means "start at the tail".
    /// Invariant: when not `NIL`, points at a slot currently in the queue
    /// (eviction and delete both step it off a node before removal — the
    /// dense equivalent of the keyed version's stale-handle filter).
    hand: u32,
    stats: PolicyStats,
}

impl DenseSieve {
    /// Creates a SIEVE cache of `capacity` bytes over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, ids.len())
    }

    /// [`DenseSieve::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table. Decision-identical to [`DenseSieve::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn with_domain(capacity: u64, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(DenseSieve {
            capacity,
            used: 0,
            slab: DenseSlab::with_domain(domain),
            queue: PackedQueue::new(),
            hand: NIL,
            stats: PolicyStats::default(),
        })
    }

    /// Warms the next eviction candidate: the hand, or the tail when the
    /// hand is unset (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        if self.hand != NIL {
            self.slab.warm_slot(self.hand);
        } else {
            self.slab.warm_tail(&self.queue);
        }
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        // Resume from the hand, or from the tail at start / after wrap.
        let mut cur = if self.hand != NIL {
            Some(self.hand)
        } else {
            self.queue.tail()
        };
        while let Some(s) = cur {
            if self.slab.slots[s as usize].freq != 0 {
                self.slab.slots[s as usize].freq = 0;
                // Move toward the head; wrap to the tail at the end.
                cur = self
                    .queue
                    .toward_head(&self.slab.slots, s)
                    .or_else(|| self.queue.tail());
            } else {
                // Evict; the hand moves to the neighbour toward the head.
                self.hand = self
                    .queue
                    .toward_head(&self.slab.slots, s)
                    .unwrap_or(NIL);
                self.queue.remove(&mut self.slab.slots, s);
                self.slab.slots[s as usize].tag = ABSENT;
                self.used -= u64::from(self.slab.size(s));
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(s, false));
                return;
            }
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used + u64::from(req.size) > self.capacity && !self.queue.is_empty() {
            self.evict_one(evicted);
        }
        self.queue.push_front(&mut self.slab.slots, slot);
        let s = &mut self.slab.slots[slot as usize];
        s.tag = RESIDENT;
        s.freq = 0;
        s.on_insert(req);
        self.used += u64::from(req.size);
    }

    fn delete(&mut self, slot: u32) {
        if std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) == RESIDENT {
            if self.hand == slot {
                self.hand = self
                    .queue
                    .toward_head(&self.slab.slots, slot)
                    .unwrap_or(NIL);
            }
            self.queue.remove(&mut self.slab.slots, slot);
            self.used -= u64::from(self.slab.size(slot));
        }
    }
}

impl DensePolicy for DenseSieve {
    fn name(&self) -> String {
        "SIEVE".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn len(&self) -> usize {
        self.queue.len() as usize
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag == RESIDENT {
                    let s = &mut self.slab.slots[slot as usize];
                    s.freq = 1;
                    s.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    fn validate(&self) -> Result<(), String> {
        super::slab::validate_packed_queue(
            "SIEVE",
            self.capacity,
            self.used,
            &self.slab,
            &self.queue,
            RESIDENT,
            Some(1),
        )?;
        if self.hand != NIL && self.slab.slots[self.hand as usize].tag != RESIDENT {
            return Err(format!("SIEVE: hand points at non-resident slot {}", self.hand));
        }
        Ok(())
    }

    impl_dense_replay!();

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

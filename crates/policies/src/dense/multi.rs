//! Dense mirrors of the multi-queue policies: 2Q and SLRU.
//!
//! Slot-state conventions (see [`super::slab::Slot`]): 2Q keeps its queue
//! tag (`ABSENT`/`A1IN`/`AM`) in `tag`; SLRU stores `segment + 1` in `tag`
//! so that 0 keeps meaning "absent".

use super::{impl_dense_replay, DenseSlab, PackedQueue, SlotGhost};
use cache_ds::DenseIds;
use cache_types::{CacheError, DensePolicy, Eviction, Op, Outcome, PolicyStats, Request};
use std::sync::Arc;

/// Where a 2Q slot currently lives.
const ABSENT: u8 = 0;
const A1IN: u8 = 1;
const AM: u8 = 2;

/// Dense mirror of [`crate::twoq::TwoQ`] (Kin = 25 %, Kout = 50 %).
pub struct DenseTwoQ {
    capacity: u64,
    a1in_capacity: u64,
    slab: DenseSlab,
    a1in: PackedQueue,
    am: PackedQueue,
    a1out: SlotGhost,
    a1in_used: u64,
    am_used: u64,
    stats: PolicyStats,
}

impl DenseTwoQ {
    /// Creates a 2Q cache with the classic 25 %/50 % parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, ids.len())
    }

    /// [`DenseTwoQ::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table. Decision-identical to [`DenseTwoQ::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn with_domain(capacity: u64, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        let slab = DenseSlab::with_domain(domain);
        let a1in_capacity = ((capacity as f64 * 0.25).round() as u64).max(1);
        Ok(DenseTwoQ {
            capacity,
            a1in_capacity,
            a1out: SlotGhost::new(slab.len(), (capacity as f64 * 0.5).round() as u64),
            slab,
            a1in: PackedQueue::new(),
            am: PackedQueue::new(),
            a1in_used: 0,
            am_used: 0,
            stats: PolicyStats::default(),
        })
    }

    fn used_total(&self) -> u64 {
        self.a1in_used + self.am_used
    }

    /// Warms both queues' next eviction candidates (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        self.slab.warm_tail(&self.a1in);
        self.slab.warm_tail(&self.am);
    }

    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        if self.a1in_used >= self.a1in_capacity || self.am.is_empty() {
            if let Some(s) = self.a1in.pop_back(&mut self.slab.slots) {
                self.slab.slots[s as usize].tag = ABSENT;
                let size = self.slab.size(s);
                self.a1in_used -= u64::from(size);
                self.a1out.insert(s, size);
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(s, true));
                return;
            }
        }
        if let Some(s) = self.am.pop_back(&mut self.slab.slots) {
            self.slab.slots[s as usize].tag = ABSENT;
            self.am_used -= u64::from(self.slab.size(s));
            self.stats.evictions += 1;
            evicted.push(self.slab.eviction(s, false));
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        // Decide A1out membership before evicting: eviction inserts into
        // A1out and could displace the entry being looked up.
        let in_a1out = self.a1out.remove(slot);
        while self.used_total() + u64::from(req.size) > self.capacity
            && (!self.a1in.is_empty() || !self.am.is_empty())
        {
            self.evict_one(evicted);
        }
        if in_a1out {
            // A1out hit: the second chance promotes straight into Am.
            self.am_used += u64::from(req.size);
            self.am.push_front(&mut self.slab.slots, slot);
            self.slab.slots[slot as usize].tag = AM;
        } else {
            self.a1in_used += u64::from(req.size);
            self.a1in.push_front(&mut self.slab.slots, slot);
            self.slab.slots[slot as usize].tag = A1IN;
        }
        self.slab.slots[slot as usize].on_insert(req);
    }

    fn delete(&mut self, slot: u32) {
        match std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) {
            A1IN => {
                self.a1in.remove(&mut self.slab.slots, slot);
                self.a1in_used -= u64::from(self.slab.size(slot));
            }
            AM => {
                self.am.remove(&mut self.slab.slots, slot);
                self.am_used -= u64::from(self.slab.size(slot));
            }
            _ => {}
        }
    }
}

impl DensePolicy for DenseTwoQ {
    fn name(&self) -> String {
        "2Q".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        (self.a1in.len() + self.am.len()) as usize
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                let tag = self.slab.slots[slot as usize].tag;
                if tag != ABSENT {
                    self.slab.slots[slot as usize].touch(req.time);
                    // A1in hits do nothing (FIFO); Am hits promote.
                    if tag == AM {
                        self.am.move_to_front(&mut self.slab.slots, slot);
                    }
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    impl_dense_replay!(a1out);

    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "2Q: used {} > capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        let mut queued = 0usize;
        for (queue, tag, used, name) in [
            (&self.a1in, A1IN, self.a1in_used, "A1in"),
            (&self.am, AM, self.am_used, "Am"),
        ] {
            let mut bytes = 0u64;
            let mut count = 0u32;
            for slot in queue.iter(&self.slab.slots) {
                let s = &self.slab.slots[slot as usize];
                if s.tag != tag {
                    return Err(format!(
                        "2Q: slot {slot} sits in {name} but is tagged {}",
                        s.tag
                    ));
                }
                if self.a1out.contains(slot) {
                    return Err(format!("2Q: slot {slot} is both resident and in A1out"));
                }
                bytes += u64::from(s.size);
                count += 1;
                queued += 1;
            }
            if count != queue.len() {
                return Err(format!(
                    "2Q: {name} links walk {count} slots but len says {}",
                    queue.len()
                ));
            }
            if bytes != used {
                return Err(format!("2Q: {name} bytes {bytes} != accounted {used}"));
            }
        }
        let tagged = self.slab.slots.iter().filter(|s| s.tag != ABSENT).count();
        if tagged != queued {
            return Err(format!(
                "2Q: {tagged} slots carry a residency tag but {queued} are queued"
            ));
        }
        self.a1out.validate().map_err(|e| format!("2Q A1out: {e}"))
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

const SEGMENTS: usize = 4;

/// Dense mirror of [`crate::slru::Slru`] (four equal segments). `tag` holds
/// `segment + 1`; 0 means absent.
pub struct DenseSlru {
    capacity: u64,
    seg_capacity: u64,
    seg_used: [u64; SEGMENTS],
    slab: DenseSlab,
    /// `segs[0]` is the probationary segment; `segs[3]` the most protected.
    segs: [PackedQueue; SEGMENTS],
    stats: PolicyStats,
}

impl DenseSlru {
    /// Creates a 4-segment SLRU of `capacity` bytes over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_domain(capacity, ids.len())
    }

    /// [`DenseSlru::new`] over a pre-sized dense domain `0..domain` with no
    /// interning table. Decision-identical to [`DenseSlru::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn with_domain(capacity: u64, domain: usize) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        Ok(DenseSlru {
            capacity,
            seg_capacity: (capacity / SEGMENTS as u64).max(1),
            seg_used: [0; SEGMENTS],
            slab: DenseSlab::with_domain(domain),
            segs: [PackedQueue::new(); SEGMENTS],
            stats: PolicyStats::default(),
        })
    }

    /// Warms every segment's next eviction candidate (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        for q in &self.segs {
            self.slab.warm_tail(q);
        }
    }

    fn seg_of(&self, slot: u32) -> Option<usize> {
        let tag = self.slab.slots[slot as usize].tag;
        if tag == 0 {
            None
        } else {
            Some(tag as usize - 1)
        }
    }

    fn used_total(&self) -> u64 {
        self.seg_used.iter().sum()
    }

    fn len_total(&self) -> usize {
        self.segs.iter().map(|q| q.len() as usize).sum()
    }

    /// Demotes tails of segment `seg` into segment `seg - 1` until the
    /// segment fits its share; cascades down to segment 0.
    fn rebalance_from(&mut self, seg: usize) {
        for s in (1..=seg).rev() {
            while self.seg_used[s] > self.seg_capacity {
                let Some(slot) = self.segs[s].pop_back(&mut self.slab.slots) else {
                    break;
                };
                let size = u64::from(self.slab.size(slot));
                self.seg_used[s] -= size;
                self.slab.slots[slot as usize].tag = s as u8; // (s - 1) + 1
                self.segs[s - 1].push_front(&mut self.slab.slots, slot);
                self.seg_used[s - 1] += size;
            }
        }
    }

    /// Evicts one object from the lowest non-empty segment.
    fn evict_one(&mut self, evicted: &mut Vec<Eviction>) {
        for s in 0..SEGMENTS {
            if let Some(slot) = self.segs[s].pop_back(&mut self.slab.slots) {
                self.slab.slots[slot as usize].tag = 0;
                self.seg_used[s] -= u64::from(self.slab.size(slot));
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(slot, s == 0));
                return;
            }
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        while self.used_total() + u64::from(req.size) > self.capacity && self.len_total() > 0 {
            self.evict_one(evicted);
        }
        self.segs[0].push_front(&mut self.slab.slots, slot);
        let s = &mut self.slab.slots[slot as usize];
        s.tag = 1;
        s.on_insert(req);
        self.seg_used[0] += u64::from(req.size);
    }

    fn on_hit(&mut self, slot: u32, now: u64) {
        self.slab.slots[slot as usize].touch(now);
        // Invariant: a hit slot is owned by exactly one segment.
        let seg = self.seg_of(slot).expect("hit on resident slot");
        let size = u64::from(self.slab.size(slot));
        let target = (seg + 1).min(SEGMENTS - 1);
        if target == seg {
            self.segs[seg].move_to_front(&mut self.slab.slots, slot);
            return;
        }
        self.segs[seg].remove(&mut self.slab.slots, slot);
        self.seg_used[seg] -= size;
        self.segs[target].push_front(&mut self.slab.slots, slot);
        self.seg_used[target] += size;
        self.slab.slots[slot as usize].tag = (target + 1) as u8;
        self.rebalance_from(target);
    }

    fn delete(&mut self, slot: u32) {
        let tag = std::mem::replace(&mut self.slab.slots[slot as usize].tag, 0);
        if tag != 0 {
            let seg = tag as usize - 1;
            self.segs[seg].remove(&mut self.slab.slots, slot);
            self.seg_used[seg] -= u64::from(self.slab.size(slot));
        }
    }
}

impl DensePolicy for DenseSlru {
    fn name(&self) -> String {
        "SLRU".into()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.len_total()
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag != 0 {
                    self.on_hit(slot, req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    impl_dense_replay!();

    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "SLRU: used {} > capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        let mut queued = 0usize;
        for (seg, queue) in self.segs.iter().enumerate() {
            let mut bytes = 0u64;
            let mut count = 0u32;
            for slot in queue.iter(&self.slab.slots) {
                let s = &self.slab.slots[slot as usize];
                if s.tag != (seg + 1) as u8 {
                    return Err(format!(
                        "SLRU: slot {slot} sits in segment {seg} but is tagged {}",
                        s.tag
                    ));
                }
                bytes += u64::from(s.size);
                count += 1;
                queued += 1;
            }
            if count != queue.len() {
                return Err(format!(
                    "SLRU: segment {seg} links walk {count} slots but len says {}",
                    queue.len()
                ));
            }
            if bytes != self.seg_used[seg] {
                return Err(format!(
                    "SLRU: segment {seg} bytes {bytes} != accounted {}",
                    self.seg_used[seg]
                ));
            }
            if seg > 0 && self.seg_used[seg] > self.seg_capacity {
                return Err(format!(
                    "SLRU: segment {seg} holds {} > share {}",
                    self.seg_used[seg], self.seg_capacity
                ));
            }
        }
        let tagged = self.slab.slots.iter().filter(|s| s.tag != 0).count();
        if tagged != queued {
            return Err(format!(
                "SLRU: {tagged} slots carry a residency tag but {queued} are queued"
            ));
        }
        Ok(())
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

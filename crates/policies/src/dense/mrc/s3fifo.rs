//! Ganged multi-capacity S3-FIFO — one small/main/ghost triple per grid
//! point, all sharing the interleaved [`Lanes`] arrays.
//!
//! Each lane copies [`super::super::DenseS3Fifo`] decision for decision
//! (promotion threshold, ghost-before-make-room lookup, single post-insert
//! `M` trim, tombstone ghost quirks — see [`super::super::SlotGhost`]). The
//! per-`(slot, lane)` byte packs the queue tag (bits 0–1), the capped 2-bit
//! frequency (bits 2–3), and the ghost presence mark (bit 4); a resident
//! slot never carries the ghost mark — the same invariant
//! [`super::super::DenseS3Fifo::validate`] enforces — so tag/freq updates
//! can overwrite the low bits without consulting the ghost.

use super::{impl_mrc_replay, validate_grid, LaneQueue, Lanes, MultiCapacityPolicy};
use cache_ds::DenseIds;
use cache_types::{CacheError, Op, PolicyStats, Request};
use s3fifo::S3FifoConfig;
use std::collections::VecDeque;
use std::sync::Arc;

/// Queue tag in bits 0–1 of the state byte.
const TAG_MASK: u8 = 0x03;
const ABSENT: u8 = 0;
const SMALL: u8 = 1;
const MAIN: u8 = 2;
/// Capped 2-bit access counter in bits 2–3.
const FREQ_SHIFT: u8 = 2;
const FREQ_MASK: u8 = 0x0C;
/// Ghost presence mark in bit 4.
const GHOST: u8 = 0x10;

#[inline]
fn freq_of(st: u8) -> u8 {
    (st & FREQ_MASK) >> FREQ_SHIFT
}

/// Per-lane S3-FIFO bookkeeping; queue links live in the shared [`Lanes`]
/// (a slot sits in at most one data queue per lane, so `small` and `main`
/// share the link arrays exactly like the dense slab shares its links).
struct LaneS3 {
    capacity: u64,
    s_capacity: u64,
    m_capacity: u64,
    s_used: u64,
    m_used: u64,
    small: LaneQueue,
    main: LaneQueue,
    /// Ghost FIFO entries `(slot, size)`, tombstones included; the presence
    /// mark is bit 4 of the lane's state byte.
    ghost_fifo: VecDeque<(u32, u32)>,
    ghost_used: u64,
    ghost_cap: u64,
    ghost_hits: u64,
    stats: PolicyStats,
}

impl LaneS3 {
    fn new(capacity: u64, cfg: &S3FifoConfig) -> Self {
        // Same capacity derivation as `DenseS3Fifo::with_config`.
        let s_capacity = ((capacity as f64 * cfg.small_ratio).round() as u64).max(1);
        let m_capacity = capacity.saturating_sub(s_capacity).max(1);
        let ghost_cap = (m_capacity as f64 * cfg.ghost_ratio).round() as u64;
        LaneS3 {
            capacity,
            s_capacity,
            m_capacity,
            s_used: 0,
            m_used: 0,
            small: LaneQueue::new(),
            main: LaneQueue::new(),
            ghost_fifo: VecDeque::new(),
            ghost_used: 0,
            ghost_cap,
            ghost_hits: 0,
            stats: PolicyStats::default(),
        }
    }

    fn used_total(&self) -> u64 {
        self.s_used + self.m_used
    }

    fn len_total(&self) -> u32 {
        self.small.len + self.main.len
    }
}

/// Multi-capacity S3-FIFO: one ganged lane (S + M + ghost) per grid point,
/// mirroring [`super::super::DenseS3Fifo`] per lane.
pub struct MrcS3Fifo {
    caps: Vec<u64>,
    cfg: S3FifoConfig,
    lanes: Lanes,
    metas: Vec<LaneS3>,
}

impl MrcS3Fifo {
    /// Creates one S3-FIFO lane per grid capacity with default parameters
    /// (S = 10 %).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_config(capacities, S3FifoConfig::default(), ids)
    }

    /// Creates one S3-FIFO lane per grid capacity with an explicit
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero, or
    /// the configuration is invalid (same rules as
    /// [`super::super::DenseS3Fifo::with_config`]).
    pub fn with_config(
        capacities: &[u64],
        cfg: S3FifoConfig,
        ids: &Arc<DenseIds>,
    ) -> Result<Self, CacheError> {
        validate_grid(capacities)?;
        if !(cfg.small_ratio > 0.0 && cfg.small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {}",
                cfg.small_ratio
            )));
        }
        if cfg.ghost_ratio < 0.0 {
            return Err(CacheError::InvalidParameter(
                "ghost_ratio must be >= 0".into(),
            ));
        }
        Ok(MrcS3Fifo {
            caps: capacities.to_vec(),
            lanes: Lanes::new(ids.len(), capacities.len()),
            metas: capacities.iter().map(|&c| LaneS3::new(c, &cfg)).collect(),
            cfg,
        })
    }

    // ---- per-lane ghost, replicating `SlotGhost` on the state bit -------

    fn ghost_insert(&mut self, lane: usize, slot: u32, size: u32) {
        if self.metas[lane].ghost_cap == 0 {
            return;
        }
        let i = self.lanes.at(slot, lane);
        if self.lanes.state[i] & GHOST == 0 {
            self.lanes.state[i] |= GHOST;
            self.metas[lane].ghost_fifo.push_back((slot, size));
            self.metas[lane].ghost_used += u64::from(size);
        }
        while self.metas[lane].ghost_used > self.metas[lane].ghost_cap {
            if let Some((old, sz)) = self.metas[lane].ghost_fifo.pop_front() {
                // Tombstones stay charged, so the subtraction is
                // unconditional; clearing the mark of a re-inserted slot's
                // newer entry is the keyed ghost's deliberate quirk.
                self.metas[lane].ghost_used -= u64::from(sz);
                let oi = self.lanes.at(old, lane);
                self.lanes.state[oi] &= !GHOST;
            } else {
                break;
            }
        }
    }

    // ---- eviction paths, mirroring `DenseS3Fifo` ------------------------

    fn evict_small(&mut self, lane: usize) {
        while let Some(tail) = self.metas[lane].small.tail() {
            let i = self.lanes.at(tail, lane);
            let size = self.lanes.size[i];
            if freq_of(self.lanes.state[i]) > self.cfg.promote_threshold {
                // Promote to M; access bits are cleared during the move.
                self.lanes.remove(&mut self.metas[lane].small, lane, tail);
                self.metas[lane].s_used -= u64::from(size);
                self.lanes.push_front(&mut self.metas[lane].main, lane, tail);
                self.lanes.state[i] = MAIN;
                self.metas[lane].m_used += u64::from(size);
                if self.metas[lane].m_used > self.metas[lane].m_capacity {
                    self.evict_main(lane);
                }
            } else {
                self.lanes.remove(&mut self.metas[lane].small, lane, tail);
                self.metas[lane].s_used -= u64::from(size);
                self.lanes.state[i] = ABSENT;
                self.ghost_insert(lane, tail, size);
                self.metas[lane].stats.evictions += 1;
                return;
            }
        }
        // S drained without evicting anything: fall back to M.
        if !self.metas[lane].main.is_empty() {
            self.evict_main(lane);
        }
    }

    fn evict_main(&mut self, lane: usize) {
        while let Some(tail) = self.metas[lane].main.tail() {
            let i = self.lanes.at(tail, lane);
            let freq = freq_of(self.lanes.state[i]);
            if freq > 0 {
                // Reinsert at the head with frequency decreased by one.
                self.lanes.move_to_front(&mut self.metas[lane].main, lane, tail);
                self.lanes.state[i] = MAIN | ((freq - 1) << FREQ_SHIFT);
            } else {
                self.lanes.remove(&mut self.metas[lane].main, lane, tail);
                self.metas[lane].m_used -= u64::from(self.lanes.size[i]);
                self.lanes.state[i] = ABSENT;
                self.metas[lane].stats.evictions += 1;
                return;
            }
        }
    }

    fn make_room(&mut self, lane: usize, need: u32) {
        while self.metas[lane].used_total() + u64::from(need) > self.metas[lane].capacity {
            if self.metas[lane].s_used >= self.metas[lane].s_capacity
                || self.metas[lane].main.is_empty()
            {
                self.evict_small(lane);
            } else {
                self.evict_main(lane);
            }
            if self.metas[lane].len_total() == 0 {
                break;
            }
        }
    }

    fn insert(&mut self, lane: usize, slot: u32, req: &Request) {
        let i = self.lanes.at(slot, lane);
        // Ghost membership is decided before making room: the eviction loop
        // inserts into the ghost itself and could otherwise displace exactly
        // the entry being looked up.
        let in_ghost = self.lanes.state[i] & GHOST != 0;
        self.make_room(lane, req.size);
        let tag = if in_ghost {
            let gi = self.lanes.at(slot, lane);
            self.lanes.state[gi] &= !GHOST;
            self.metas[lane].ghost_hits += 1;
            self.metas[lane].m_used += u64::from(req.size);
            self.lanes.push_front(&mut self.metas[lane].main, lane, slot);
            MAIN
        } else {
            self.metas[lane].s_used += u64::from(req.size);
            self.lanes.push_front(&mut self.metas[lane].small, lane, slot);
            SMALL
        };
        let i = self.lanes.at(slot, lane);
        self.lanes.state[i] = tag; // freq 0; ghost mark is clear either way
        self.lanes.size[i] = req.size;
        // A ghost-hit insert into M can overflow M; trim one object now,
        // exactly like `DenseS3Fifo::insert`.
        if tag == MAIN && self.metas[lane].m_used > self.metas[lane].m_capacity {
            self.evict_main(lane);
        }
    }

    fn delete(&mut self, lane: usize, slot: u32) {
        let i = self.lanes.at(slot, lane);
        let st = self.lanes.state[i];
        self.lanes.state[i] = st & GHOST; // clear tag + freq, keep the mark
        match st & TAG_MASK {
            SMALL => {
                self.lanes.remove(&mut self.metas[lane].small, lane, slot);
                self.metas[lane].s_used -= u64::from(self.lanes.size[i]);
            }
            MAIN => {
                self.lanes.remove(&mut self.metas[lane].main, lane, slot);
                self.metas[lane].m_used -= u64::from(self.lanes.size[i]);
            }
            _ => {}
        }
    }
}

impl MultiCapacityPolicy for MrcS3Fifo {
    fn name(&self) -> String {
        format!("S3-FIFO({:.2})", self.cfg.small_ratio)
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        let base = slot as usize * self.lanes.k;
        match req.op {
            Op::Get => {
                for lane in 0..self.lanes.k {
                    let st = self.lanes.state[base + lane];
                    if st & TAG_MASK != ABSENT {
                        // Hit: bump the capped counter.
                        let freq = (freq_of(st) + 1).min(3);
                        self.lanes.state[base + lane] =
                            (st & !FREQ_MASK) | (freq << FREQ_SHIFT);
                        self.metas[lane].stats.record_get(req.size, false);
                    } else if u64::from(req.size) > self.metas[lane].capacity {
                        self.metas[lane].stats.record_get(req.size, true);
                    } else {
                        self.metas[lane].stats.record_get(req.size, true);
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Set => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                    if u64::from(req.size) <= self.metas[lane].capacity {
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Delete => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                }
            }
        }
    }

    fn prefetch(&self, slot: u32) {
        self.lanes.warm_row(slot);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.metas.iter().map(|m| m.stats).collect()
    }

    fn validate(&self) -> Result<(), String> {
        for (lane, meta) in self.metas.iter().enumerate() {
            if meta.used_total() > meta.capacity {
                return Err(format!(
                    "S3 lane {lane}: used {} > capacity {}",
                    meta.used_total(),
                    meta.capacity
                ));
            }
            // No `m_used <= m_capacity` assertion — single-object trims can
            // leave M transiently over budget with sized objects, exactly
            // like the dense/keyed implementations.
            let mut queued = 0usize;
            for (queue, tag, used, name) in [
                (&meta.small, SMALL, meta.s_used, "small"),
                (&meta.main, MAIN, meta.m_used, "main"),
            ] {
                let mut bytes = 0u64;
                let mut count = 0u32;
                for slot in self.lanes.iter(queue, lane) {
                    let i = self.lanes.at(slot, lane);
                    let st = self.lanes.state[i];
                    if st & TAG_MASK != tag {
                        return Err(format!(
                            "S3 lane {lane}: slot {slot} sits in {name} but is tagged {}",
                            st & TAG_MASK
                        ));
                    }
                    if st & GHOST != 0 {
                        return Err(format!(
                            "S3 lane {lane}: slot {slot} is both resident and ghost-marked"
                        ));
                    }
                    bytes += u64::from(self.lanes.size[i]);
                    count += 1;
                    queued += 1;
                }
                if count != queue.len {
                    return Err(format!(
                        "S3 lane {lane}: {name} links walk {count} slots but len says {}",
                        queue.len
                    ));
                }
                if bytes != used {
                    return Err(format!(
                        "S3 lane {lane}: {name} bytes {bytes} != accounted {used}"
                    ));
                }
            }
            let tagged = self
                .lanes
                .state
                .iter()
                .skip(lane)
                .step_by(self.lanes.k)
                .filter(|&&st| st & TAG_MASK != ABSENT)
                .count();
            if tagged != queued {
                return Err(format!(
                    "S3 lane {lane}: {tagged} slots carry a residency tag but {queued} queued"
                ));
            }
            // Ghost invariants, mirroring `SlotGhost::validate`.
            if meta.ghost_used > meta.ghost_cap {
                return Err(format!(
                    "S3 lane {lane}: ghost used {} > capacity {}",
                    meta.ghost_used, meta.ghost_cap
                ));
            }
            let bytes: u64 = meta.ghost_fifo.iter().map(|&(_, s)| u64::from(s)).sum();
            if bytes != meta.ghost_used {
                return Err(format!(
                    "S3 lane {lane}: ghost slot bytes {bytes} != accounted {}",
                    meta.ghost_used
                ));
            }
            let marked = self
                .lanes
                .state
                .iter()
                .skip(lane)
                .step_by(self.lanes.k)
                .filter(|&&st| st & GHOST != 0)
                .count();
            let live = meta
                .ghost_fifo
                .iter()
                .filter(|&&(s, _)| self.lanes.state[self.lanes.at(s, lane)] & GHOST != 0)
                .count();
            if live < marked {
                return Err(format!(
                    "S3 lane {lane}: ghost marks {marked} slots but only {live} own entries"
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay!();
}

#[cfg(test)]
mod tests {
    use super::super::super::DenseS3Fifo;
    use super::*;
    use cache_types::DensePolicy;

    fn workload(len: usize, universe: u64, max_size: u32) -> (Vec<Request>, Vec<u32>, Arc<DenseIds>) {
        let mut state = 0x1357_9BDF_2468_ACE0u64;
        let mut reqs = Vec::with_capacity(len);
        for t in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            let id = if roll % 2 == 0 {
                roll % (universe / 8).max(1)
            } else {
                roll % universe
            };
            let op = match roll % 10 {
                0 => Op::Set,
                1 => Op::Delete,
                _ => Op::Get,
            };
            reqs.push(Request {
                id,
                size: 1 + (roll % u64::from(max_size)) as u32,
                time: t as u64,
                op,
            });
        }
        let (ids, slots) = DenseIds::intern(reqs.iter().map(|r| r.id));
        (reqs, slots, Arc::new(ids))
    }

    const GRID: [u64; 8] = [1, 2, 3, 5, 9, 9, 17, 40];

    #[test]
    fn s3_lanes_match_dense_s3fifo() {
        for ratio in [0.1, 0.25] {
            for (max_size, ignore) in [(1u32, true), (6, false)] {
                let (reqs, slots, ids) = workload(3000, 64, max_size);
                let cfg = S3FifoConfig {
                    small_ratio: ratio,
                    ..Default::default()
                };
                let mut m = MrcS3Fifo::with_config(&GRID, cfg, &ids).expect("valid grid and cfg");
                // Invariant: GRID is non-empty and zero-free; ratio in (0,1).
                m.replay(&slots, &reqs, ignore);
                m.validate().expect("ganged S3 invariants hold");
                // Invariant: validate only fails on an engine bug under test.
                let lanes = m.lane_stats();
                for (lane, &cap) in m.capacities().iter().enumerate() {
                    let mut dense =
                        DenseS3Fifo::with_config(cap, cfg, &ids).expect("capacity > 0");
                    // Invariant: every GRID capacity is positive.
                    dense.replay(&slots, &reqs, ignore, &mut |_, _| {});
                    assert_eq!(lanes[lane], dense.stats(), "ratio {ratio} capacity {cap}");
                    assert_eq!(
                        lanes[lane].miss_ratio().to_bits(),
                        dense.stats().miss_ratio().to_bits(),
                        "ratio {ratio} capacity {cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn name_embeds_ratio_and_bad_configs_error() {
        let (_, _, ids) = workload(10, 8, 1);
        let m = MrcS3Fifo::new(&[4], &ids).expect("valid grid");
        // Invariant: a single positive capacity is a valid grid.
        assert_eq!(MultiCapacityPolicy::name(&m), "S3-FIFO(0.10)");
        assert!(MrcS3Fifo::new(&[], &ids).is_err());
        assert!(MrcS3Fifo::new(&[0, 2], &ids).is_err());
        let bad = S3FifoConfig {
            small_ratio: 1.5,
            ..Default::default()
        };
        assert!(MrcS3Fifo::with_config(&[4], bad, &ids).is_err());
        let bad_ghost = S3FifoConfig {
            ghost_ratio: -0.5,
            ..Default::default()
        };
        assert!(MrcS3Fifo::with_config(&[4], bad_ghost, &ids).is_err());
    }
}

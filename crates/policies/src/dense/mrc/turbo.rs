//! Timestamp-derived multi-capacity lanes for pure-`Get` unit-size streams.
//!
//! The interleaved linked-list lanes in [`super::gang`] and
//! [`super::s3fifo`] are general — they take writes, deletes, and sized
//! objects — but their per-(slot, lane) state is `k`× the footprint of one
//! single-capacity policy, so on large traces the hit path falls out of
//! cache exactly where the per-capacity sweep stays resident, and a `Get`
//! that hits still pays one state write per lane. The engines here
//! specialise to the restricted streams `simulate_mrc` sees in practice
//! (pure `Get`, size 1, fewer than `u32::MAX` requests, ≤ 64 grid points)
//! and collapse the per-request cost to near the exact-FIFO engine's:
//!
//! - **Residency is one bitmap word.** `hdr[slot].res` holds one bit per
//!   lane, so a `Get` answers hit/miss for the *whole grid* from a single
//!   load, and a hit writes nothing per lane.
//! - **Reference state is derived, not stored.** `hdr[slot].acc` counts the
//!   slot's accesses; each queue entry remembers the counter value `mark`
//!   (and a folded base frequency `f0`) from when the policy last touched
//!   it. Under pure `Get`s an object's residency in a lane is one
//!   continuous interval, every access inside it is a hit, and CLOCK /
//!   S3-FIFO frequencies only *increase* between policy touch-points — so
//!   the capped counter at scan time is exactly
//!   `min(f0 + (acc - mark), max)`, and SIEVE's visited bit is exactly
//!   `acc > mark`. Hits never touch per-lane state; scans re-fold.
//! - **Queues are arrays, not linked lists.** CLOCK's move-to-front cycle
//!   is a fixed circular buffer with a hand (survivors stay put, the victim
//!   is replaced in place); SIEVE is a grow-only vector with tombstones, a
//!   hand index, and amortised compaction; S3-FIFO's queues are
//!   `VecDeque`s (every operation is a tail pop or head push). Eviction
//!   scans walk sequential memory.
//!
//! Each lane still makes byte-for-byte the decisions of the single-capacity
//! dense policy of the same name; `crates/sim/tests/mrc_equivalence.rs` and
//! `cache-check`'s MRC differential (pure-Get unit mode) pin the
//! equivalence. FIFO needs no lane here: the insertion-index engine in
//! [`super::exact`] already covers it under the same preconditions.

use super::{impl_mrc_replay_pure_get, validate_grid, MultiCapacityPolicy};
use cache_ds::{prefetch_read, DenseIds};
use s3fifo::S3FifoConfig;
use cache_types::{CacheError, Op, PolicyStats, Request};
use std::collections::VecDeque;
use std::sync::Arc;

/// Lane-count ceiling: residency and ghost marks are one `u64` per slot.
pub const MAX_TURBO_LANES: usize = 64;

/// Per-slot header shared by all lanes: residency bitmap + access counter.
/// One cache line covers four slots, so the all-hit path for a 64-point
/// grid touches a single line.
#[derive(Clone, Copy, Default)]
struct SlotHdr {
    /// Bit `lane` set ⇔ the slot is resident in that lane.
    res: u64,
    /// Accesses to this slot so far (monotone; the trace-length gate keeps
    /// it below `u32::MAX`).
    acc: u32,
}

/// Per-slot header for S3-FIFO lanes: adds the ghost-membership bitmap.
#[derive(Clone, Copy, Default)]
struct S3SlotHdr {
    res: u64,
    /// Bit `lane` set ⇔ the slot is ghost-marked in that lane.
    ghost: u64,
    acc: u32,
}

/// Bitmask selecting all `k` lanes.
fn lane_mask(k: usize) -> u64 {
    if k == MAX_TURBO_LANES {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// The capped reference counter an entry would hold had every access been
/// applied eagerly: `f0` accesses were folded in at the last policy touch
/// (insert or scan) when the slot's counter read `mark`; everything since
/// is a hit, and capping commutes with pure increments.
#[inline]
fn derived_freq(f0: u8, acc_now: u32, mark: u32, max_freq: u8) -> u8 {
    debug_assert!(acc_now >= mark, "access counter moved backwards");
    (u64::from(f0) + u64::from(acc_now - mark)).min(u64::from(max_freq)) as u8
}

/// Grid + lane-count validation shared by the turbo constructors.
fn validate_turbo_grid(capacities: &[u64]) -> Result<(), CacheError> {
    validate_grid(capacities)?;
    if capacities.len() > MAX_TURBO_LANES {
        return Err(CacheError::InvalidParameter(format!(
            "turbo MRC lanes hold residency in one u64: grid has {} points, max {}",
            capacities.len(),
            MAX_TURBO_LANES
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

/// One CLOCK queue entry; `f0`/`mark` fold the reference counter as of the
/// last policy touch (see [`derived_freq`]).
#[derive(Clone, Copy)]
struct ClockEntry {
    slot: u32,
    mark: u32,
    f0: u8,
}

struct ClockLane {
    capacity: u64,
    /// Circular buffer once full (`ring.len() == capacity`); before that, a
    /// plain vector in insertion order with the hand parked at 0.
    ring: Vec<ClockEntry>,
    hand: usize,
    misses: u64,
    evictions: u64,
}

/// Multi-capacity CLOCK over pure-`Get` unit-size streams, lane-for-lane
/// decision-identical to [`super::gang::MrcClock`] (and so to
/// [`crate::dense::DenseClock`]).
///
/// The linked queue's eviction cycle — decrement and move survivors to the
/// head, evict the first zero-count tail, insert the new object at the head
/// — is a fixed circular buffer in disguise: survivors keep their cell (the
/// hand walks past them), the victim's cell is overwritten by the new
/// object, and the hand ends up just past it, which is exactly the queue
/// order the linked form produces.
pub struct MrcTurboClock {
    caps: Vec<u64>,
    max_freq: u8,
    mask: u64,
    hdr: Vec<SlotHdr>,
    lanes: Vec<ClockLane>,
    gets: u64,
}

impl MrcTurboClock {
    /// Creates one CLOCK lane per grid capacity with a `bits`-bit counter.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty, contains a zero, has
    /// more than [`MAX_TURBO_LANES`] points, or `bits` is outside `1..=7`.
    pub fn new(capacities: &[u64], bits: u8, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_turbo_grid(capacities)?;
        if !(1..=7).contains(&bits) {
            return Err(CacheError::InvalidParameter(format!(
                "CLOCK bits must be in 1..=7, got {bits}"
            )));
        }
        Ok(MrcTurboClock {
            caps: capacities.to_vec(),
            max_freq: (1u8 << bits) - 1,
            mask: lane_mask(capacities.len()),
            hdr: vec![SlotHdr::default(); ids.len()],
            lanes: capacities
                .iter()
                .map(|&capacity| ClockLane {
                    capacity,
                    ring: Vec::new(),
                    hand: 0,
                    misses: 0,
                    evictions: 0,
                })
                .collect(),
            gets: 0,
        })
    }

    /// One request's worth of work — the slot is all a pure-`Get`
    /// unit-size request carries (see `impl_mrc_replay_pure_get`).
    #[inline]
    fn step(&mut self, slot: u32) {
        self.gets += 1;
        let h = &mut self.hdr[slot as usize];
        h.acc += 1;
        let a = h.acc;
        // A hit is over here: frequency is implied by the counter bump.
        let mut miss = !h.res & self.mask;
        while miss != 0 {
            let lane = miss.trailing_zeros() as usize;
            miss &= miss - 1;
            self.insert(lane, slot, a);
        }
    }

    /// Miss path for one lane: fill until the ring reaches capacity, then
    /// run the hand until a zero-frequency victim is replaced in place.
    fn insert(&mut self, lane: usize, slot: u32, a: u32) {
        let max_freq = self.max_freq;
        let hdr = &mut self.hdr;
        let l = &mut self.lanes[lane];
        let bit = 1u64 << lane;
        l.misses += 1;
        if (l.ring.len() as u64) < l.capacity {
            l.ring.push(ClockEntry { slot, mark: a, f0: 0 });
            hdr[slot as usize].res |= bit;
            return;
        }
        let len = l.ring.len();
        loop {
            let e = l.ring[l.hand];
            let ea = hdr[e.slot as usize].acc;
            let freq = derived_freq(e.f0, ea, e.mark, max_freq);
            if freq > 0 {
                // Survivor: fold the decremented count, advance the hand.
                l.ring[l.hand] = ClockEntry {
                    slot: e.slot,
                    mark: ea,
                    f0: freq - 1,
                };
                l.hand += 1;
                if l.hand == len {
                    l.hand = 0;
                }
            } else {
                hdr[e.slot as usize].res &= !bit;
                l.ring[l.hand] = ClockEntry { slot, mark: a, f0: 0 };
                l.hand += 1;
                if l.hand == len {
                    l.hand = 0;
                }
                l.evictions += 1;
                hdr[slot as usize].res |= bit;
                // Warm the likely victim of this lane's next miss.
                prefetch_read(hdr, l.ring[l.hand].slot as usize);
                return;
            }
        }
    }
}

impl MultiCapacityPolicy for MrcTurboClock {
    fn name(&self) -> String {
        if self.max_freq == 1 {
            "CLOCK".into()
        } else {
            format!("CLOCK-{}bit", (self.max_freq + 1).trailing_zeros())
        }
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        debug_assert_eq!(req.op, Op::Get, "turbo MRC requires pure-Get traces");
        debug_assert_eq!(req.size, 1, "turbo MRC requires unit sizes");
        self.step(slot);
    }

    fn prefetch(&self, slot: u32) {
        prefetch_read(&self.hdr, slot as usize);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.lanes
            .iter()
            .map(|l| PolicyStats {
                gets: self.gets,
                misses: l.misses,
                evictions: l.evictions,
                get_bytes: self.gets,
                miss_bytes: l.misses,
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        for (lane, l) in self.lanes.iter().enumerate() {
            let bit = 1u64 << lane;
            if l.ring.len() as u64 > l.capacity {
                return Err(format!(
                    "turbo CLOCK lane {lane}: ring {} exceeds capacity {}",
                    l.ring.len(),
                    l.capacity
                ));
            }
            if !l.ring.is_empty() && l.hand >= l.ring.len() {
                return Err(format!("turbo CLOCK lane {lane}: hand out of range"));
            }
            let mut seen = vec![false; self.hdr.len()];
            for e in &l.ring {
                let s = e.slot as usize;
                if seen[s] {
                    return Err(format!("turbo CLOCK lane {lane}: slot {s} ringed twice"));
                }
                seen[s] = true;
                if self.hdr[s].res & bit == 0 {
                    return Err(format!(
                        "turbo CLOCK lane {lane}: slot {s} ringed but not marked resident"
                    ));
                }
                if e.mark > self.hdr[s].acc {
                    return Err(format!("turbo CLOCK lane {lane}: mark ahead of counter"));
                }
                if e.f0 > self.max_freq {
                    return Err(format!(
                        "turbo CLOCK lane {lane}: folded freq {} exceeds cap {}",
                        e.f0, self.max_freq
                    ));
                }
            }
            let marked = self.hdr.iter().filter(|h| h.res & bit != 0).count();
            if marked != l.ring.len() {
                return Err(format!(
                    "turbo CLOCK lane {lane}: {marked} resident marks vs {} ring entries",
                    l.ring.len()
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay_pure_get!();
}

// ---------------------------------------------------------------------------
// SIEVE
// ---------------------------------------------------------------------------

/// Tombstone marker in a SIEVE lane's buffer.
const TOMB: u32 = u32::MAX;

/// One SIEVE buffer entry; visited ⇔ `hdr[slot].acc > mark`.
#[derive(Clone, Copy)]
struct SieveEntry {
    slot: u32,
    mark: u32,
}

struct SieveLane {
    capacity: u64,
    /// Entries in insertion order, tail (oldest) at the lowest live index,
    /// head at the end; evictions leave [`TOMB`] holes that compaction
    /// squeezes out once they outnumber live entries.
    buf: Vec<SieveEntry>,
    live: u64,
    /// Lower bound on the tail's index; advanced lazily over tombstones.
    tail: usize,
    /// Resume point of the eviction scan (`None` = start at the tail),
    /// always a live index.
    hand: Option<usize>,
    misses: u64,
    evictions: u64,
}

impl SieveLane {
    /// Index of the oldest live entry, advancing the cached lower bound.
    /// Callers guarantee at least one live entry.
    fn tail_idx(&mut self) -> usize {
        while self.buf[self.tail].slot == TOMB {
            self.tail += 1;
        }
        self.tail
    }

    /// Next live index strictly above `cur` (toward the head), if any.
    fn next_live(&self, cur: usize) -> Option<usize> {
        self.buf[cur + 1..]
            .iter()
            .position(|e| e.slot != TOMB)
            .map(|off| cur + 1 + off)
    }
}

/// Multi-capacity SIEVE over pure-`Get` unit-size streams, lane-for-lane
/// decision-identical to [`super::gang::MrcSieve`] (and so to
/// [`crate::dense::DenseSieve`]).
///
/// SIEVE never reorders its queue — the hand does the aging in place — so
/// the queue is a grow-only vector: inserts append at the head end,
/// evictions tombstone at the hand, and the scan is a forward walk over
/// contiguous entries instead of a pointer chase.
pub struct MrcTurboSieve {
    caps: Vec<u64>,
    mask: u64,
    hdr: Vec<SlotHdr>,
    lanes: Vec<SieveLane>,
    gets: u64,
}

impl MrcTurboSieve {
    /// Creates one SIEVE lane per grid capacity over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty, contains a zero, or
    /// has more than [`MAX_TURBO_LANES`] points.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_turbo_grid(capacities)?;
        Ok(MrcTurboSieve {
            caps: capacities.to_vec(),
            mask: lane_mask(capacities.len()),
            hdr: vec![SlotHdr::default(); ids.len()],
            lanes: capacities
                .iter()
                .map(|&capacity| SieveLane {
                    capacity,
                    buf: Vec::new(),
                    live: 0,
                    tail: 0,
                    hand: None,
                    misses: 0,
                    evictions: 0,
                })
                .collect(),
            gets: 0,
        })
    }

    /// Eviction scan: resume at the hand (else the tail), clear visited
    /// survivors in place, tombstone the first unvisited entry.
    fn evict(&mut self, lane: usize) {
        let hdr = &mut self.hdr;
        let l = &mut self.lanes[lane];
        let bit = 1u64 << lane;
        let mut cur = match l.hand {
            Some(h) => h,
            None => l.tail_idx(),
        };
        loop {
            let e = l.buf[cur];
            let ea = hdr[e.slot as usize].acc;
            if ea > e.mark {
                // Visited: clear (fold the counter) and move toward the
                // head, wrapping to the tail like the linked scan.
                l.buf[cur].mark = ea;
                cur = match l.next_live(cur) {
                    Some(n) => n,
                    None => l.tail_idx(),
                };
            } else {
                l.buf[cur].slot = TOMB;
                l.live -= 1;
                hdr[e.slot as usize].res &= !bit;
                l.evictions += 1;
                l.hand = l.next_live(cur);
                if let Some(h) = l.hand {
                    prefetch_read(hdr, l.buf[h].slot as usize);
                }
                return;
            }
        }
    }

    /// One request's worth of work — the slot is all a pure-`Get`
    /// unit-size request carries (see `impl_mrc_replay_pure_get`).
    #[inline]
    fn step(&mut self, slot: u32) {
        self.gets += 1;
        let h = &mut self.hdr[slot as usize];
        h.acc += 1;
        let a = h.acc;
        let mut miss = !h.res & self.mask;
        while miss != 0 {
            let lane = miss.trailing_zeros() as usize;
            miss &= miss - 1;
            self.insert(lane, slot, a);
        }
    }

    /// Miss path for one lane: evict once when full (unit sizes free
    /// exactly one object), append at the head, compact when tombstones
    /// outnumber live entries.
    fn insert(&mut self, lane: usize, slot: u32, a: u32) {
        if self.lanes[lane].live == self.lanes[lane].capacity {
            self.evict(lane);
        }
        let l = &mut self.lanes[lane];
        l.misses += 1;
        l.buf.push(SieveEntry { slot, mark: a });
        l.live += 1;
        self.hdr[slot as usize].res |= 1u64 << lane;
        if l.buf.len() >= 64 && l.buf.len() as u64 >= 2 * l.live {
            // Squeeze out tombstones in place, remapping the hand.
            let mut new_hand = None;
            let mut w = 0usize;
            for r in 0..l.buf.len() {
                let e = l.buf[r];
                if e.slot != TOMB {
                    if l.hand == Some(r) {
                        new_hand = Some(w);
                    }
                    l.buf[w] = e;
                    w += 1;
                }
            }
            l.buf.truncate(w);
            l.hand = new_hand;
            l.tail = 0;
        }
    }
}

impl MultiCapacityPolicy for MrcTurboSieve {
    fn name(&self) -> String {
        "SIEVE".into()
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        debug_assert_eq!(req.op, Op::Get, "turbo MRC requires pure-Get traces");
        debug_assert_eq!(req.size, 1, "turbo MRC requires unit sizes");
        self.step(slot);
    }

    fn prefetch(&self, slot: u32) {
        prefetch_read(&self.hdr, slot as usize);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.lanes
            .iter()
            .map(|l| PolicyStats {
                gets: self.gets,
                misses: l.misses,
                evictions: l.evictions,
                get_bytes: self.gets,
                miss_bytes: l.misses,
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        for (lane, l) in self.lanes.iter().enumerate() {
            let bit = 1u64 << lane;
            if l.live > l.capacity {
                return Err(format!(
                    "turbo SIEVE lane {lane}: {} live entries exceed capacity {}",
                    l.live, l.capacity
                ));
            }
            let mut live = 0u64;
            let mut seen = vec![false; self.hdr.len()];
            for e in &l.buf {
                if e.slot == TOMB {
                    continue;
                }
                live += 1;
                let s = e.slot as usize;
                if seen[s] {
                    return Err(format!("turbo SIEVE lane {lane}: slot {s} queued twice"));
                }
                seen[s] = true;
                if self.hdr[s].res & bit == 0 {
                    return Err(format!(
                        "turbo SIEVE lane {lane}: slot {s} queued but not marked resident"
                    ));
                }
                if e.mark > self.hdr[s].acc {
                    return Err(format!("turbo SIEVE lane {lane}: mark ahead of counter"));
                }
            }
            if live != l.live {
                return Err(format!(
                    "turbo SIEVE lane {lane}: counted {live} live entries, cached {}",
                    l.live
                ));
            }
            let marked = self.hdr.iter().filter(|h| h.res & bit != 0).count() as u64;
            if marked != l.live {
                return Err(format!(
                    "turbo SIEVE lane {lane}: {marked} resident marks vs {} live entries",
                    l.live
                ));
            }
            if let Some(h) = l.hand {
                if h >= l.buf.len() || l.buf[h].slot == TOMB {
                    return Err(format!("turbo SIEVE lane {lane}: hand on a dead entry"));
                }
            }
        }
        Ok(())
    }

    impl_mrc_replay_pure_get!();
}

// ---------------------------------------------------------------------------
// S3-FIFO
// ---------------------------------------------------------------------------

/// One S3-FIFO queue entry (small or main); frequency derives exactly like
/// CLOCK's, capped at 3.
#[derive(Clone, Copy)]
struct S3Entry {
    slot: u32,
    mark: u32,
    f0: u8,
}

struct S3Lane {
    capacity: u64,
    s_capacity: u64,
    m_capacity: u64,
    ghost_cap: u64,
    /// Small and main FIFO queues: tail at the front, head at the back, so
    /// every queue operation — including main's lazy-promotion
    /// move-to-front — is a `pop_front`/`push_back` pair.
    small: VecDeque<S3Entry>,
    main: VecDeque<S3Entry>,
    /// Ghost entry order; membership lives in the per-slot `ghost` bitmap,
    /// and stale entries whose mark was re-cleared stay charged, exactly
    /// like the keyed [`cache_core`] ghost and [`super::s3fifo`]'s
    /// `SlotGhost` replica.
    ghost_fifo: VecDeque<u32>,
    ghost_used: u64,
    ghost_hits: u64,
    misses: u64,
    evictions: u64,
}

impl S3Lane {
    fn ghost_insert(&mut self, hdr: &mut [S3SlotHdr], bit: u64, slot: u32) {
        if self.ghost_cap == 0 {
            return;
        }
        let h = &mut hdr[slot as usize];
        if h.ghost & bit == 0 {
            h.ghost |= bit;
            self.ghost_fifo.push_back(slot);
            self.ghost_used += 1;
        }
        while self.ghost_used > self.ghost_cap {
            if let Some(old) = self.ghost_fifo.pop_front() {
                // Tombstones stay charged; popping one clears the mark of a
                // re-inserted slot's newer entry — the keyed ghost's quirk.
                self.ghost_used -= 1;
                hdr[old as usize].ghost &= !bit;
            } else {
                break;
            }
        }
    }

    fn evict_main(&mut self, hdr: &mut [S3SlotHdr], bit: u64) {
        while let Some(&e) = self.main.front() {
            let ea = hdr[e.slot as usize].acc;
            let freq = derived_freq(e.f0, ea, e.mark, 3);
            if freq > 0 {
                // Reinsert at the head with frequency decreased by one.
                self.main.pop_front();
                self.main.push_back(S3Entry {
                    slot: e.slot,
                    mark: ea,
                    f0: freq - 1,
                });
            } else {
                self.main.pop_front();
                hdr[e.slot as usize].res &= !bit;
                self.evictions += 1;
                return;
            }
        }
    }

    fn evict_small(&mut self, hdr: &mut [S3SlotHdr], bit: u64, promote_threshold: u8) {
        while let Some(&e) = self.small.front() {
            let ea = hdr[e.slot as usize].acc;
            let freq = derived_freq(e.f0, ea, e.mark, 3);
            if freq > promote_threshold {
                // Promote to M; access counts are cleared during the move.
                self.small.pop_front();
                self.main.push_back(S3Entry {
                    slot: e.slot,
                    mark: ea,
                    f0: 0,
                });
                if self.main.len() as u64 > self.m_capacity {
                    self.evict_main(hdr, bit);
                }
            } else {
                self.small.pop_front();
                hdr[e.slot as usize].res &= !bit;
                self.ghost_insert(hdr, bit, e.slot);
                self.evictions += 1;
                return;
            }
        }
        // S drained without evicting anything: fall back to M.
        if !self.main.is_empty() {
            self.evict_main(hdr, bit);
        }
    }

    fn make_room(&mut self, hdr: &mut [S3SlotHdr], bit: u64, promote_threshold: u8) {
        while (self.small.len() + self.main.len()) as u64 + 1 > self.capacity {
            if self.small.len() as u64 >= self.s_capacity || self.main.is_empty() {
                self.evict_small(hdr, bit, promote_threshold);
            } else {
                self.evict_main(hdr, bit);
            }
            if self.small.is_empty() && self.main.is_empty() {
                break;
            }
        }
    }

    fn insert(&mut self, hdr: &mut [S3SlotHdr], bit: u64, slot: u32, a: u32, promote: u8) {
        self.misses += 1;
        // Ghost membership is decided before making room: the eviction loop
        // inserts into the ghost itself and could otherwise displace exactly
        // the entry being looked up.
        let in_ghost = hdr[slot as usize].ghost & bit != 0;
        self.make_room(hdr, bit, promote);
        if in_ghost {
            hdr[slot as usize].ghost &= !bit;
            self.ghost_hits += 1;
            self.main.push_back(S3Entry { slot, mark: a, f0: 0 });
            hdr[slot as usize].res |= bit;
            // A ghost-hit insert into M can overflow M; trim one object now,
            // exactly like `DenseS3Fifo::insert`.
            if self.main.len() as u64 > self.m_capacity {
                self.evict_main(hdr, bit);
            }
        } else {
            self.small.push_back(S3Entry { slot, mark: a, f0: 0 });
            hdr[slot as usize].res |= bit;
        }
        // Warm the likely victim of this lane's next miss.
        if let Some(e) = self.small.front() {
            prefetch_read(hdr, e.slot as usize);
        }
    }
}

/// Multi-capacity S3-FIFO over pure-`Get` unit-size streams, lane-for-lane
/// decision-identical to [`super::s3fifo::MrcS3Fifo`] (and so to
/// [`crate::dense::DenseS3Fifo`]).
pub struct MrcTurboS3Fifo {
    caps: Vec<u64>,
    cfg: S3FifoConfig,
    mask: u64,
    hdr: Vec<S3SlotHdr>,
    lanes: Vec<S3Lane>,
    gets: u64,
}

impl MrcTurboS3Fifo {
    /// Creates paper-default lanes (S = 10 % of capacity, ghost sized to M).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty, contains a zero, or
    /// has more than [`MAX_TURBO_LANES`] points.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_config(capacities, S3FifoConfig::default(), ids)
    }

    /// Creates one S3-FIFO lane per grid capacity with explicit queue
    /// ratios, deriving each lane's S/M/ghost split exactly like the
    /// single-capacity dense policy.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] for an invalid grid (see [`Self::new`]) or a
    /// `small_ratio` outside `(0, 1)` / negative `ghost_ratio`.
    pub fn with_config(
        capacities: &[u64],
        cfg: S3FifoConfig,
        ids: &Arc<DenseIds>,
    ) -> Result<Self, CacheError> {
        validate_turbo_grid(capacities)?;
        if !(cfg.small_ratio > 0.0 && cfg.small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {}",
                cfg.small_ratio
            )));
        }
        if cfg.ghost_ratio < 0.0 {
            return Err(CacheError::InvalidParameter(
                "ghost_ratio must be >= 0".into(),
            ));
        }
        Ok(MrcTurboS3Fifo {
            caps: capacities.to_vec(),
            mask: lane_mask(capacities.len()),
            hdr: vec![S3SlotHdr::default(); ids.len()],
            lanes: capacities
                .iter()
                .map(|&capacity| {
                    let s_capacity =
                        ((capacity as f64 * cfg.small_ratio).round() as u64).max(1);
                    let m_capacity = capacity.saturating_sub(s_capacity).max(1);
                    let ghost_cap = (m_capacity as f64 * cfg.ghost_ratio).round() as u64;
                    S3Lane {
                        capacity,
                        s_capacity,
                        m_capacity,
                        ghost_cap,
                        small: VecDeque::new(),
                        main: VecDeque::new(),
                        ghost_fifo: VecDeque::new(),
                        ghost_used: 0,
                        ghost_hits: 0,
                        misses: 0,
                        evictions: 0,
                    }
                })
                .collect(),
            cfg,
            gets: 0,
        })
    }

    /// One request's worth of work — the slot is all a pure-`Get`
    /// unit-size request carries (see `impl_mrc_replay_pure_get`).
    #[inline]
    fn step(&mut self, slot: u32) {
        self.gets += 1;
        let h = &mut self.hdr[slot as usize];
        h.acc += 1;
        let a = h.acc;
        let mut miss = !h.res & self.mask;
        let promote = self.cfg.promote_threshold;
        let (hdr, lanes) = (&mut self.hdr, &mut self.lanes);
        while miss != 0 {
            let lane = miss.trailing_zeros() as usize;
            miss &= miss - 1;
            lanes[lane].insert(hdr, 1u64 << lane, slot, a, promote);
        }
    }
}

impl MultiCapacityPolicy for MrcTurboS3Fifo {
    fn name(&self) -> String {
        format!("S3-FIFO({:.2})", self.cfg.small_ratio)
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        debug_assert_eq!(req.op, Op::Get, "turbo MRC requires pure-Get traces");
        debug_assert_eq!(req.size, 1, "turbo MRC requires unit sizes");
        self.step(slot);
    }

    fn prefetch(&self, slot: u32) {
        prefetch_read(&self.hdr, slot as usize);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.lanes
            .iter()
            .map(|l| PolicyStats {
                gets: self.gets,
                misses: l.misses,
                evictions: l.evictions,
                get_bytes: self.gets,
                miss_bytes: l.misses,
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        for (lane, l) in self.lanes.iter().enumerate() {
            let bit = 1u64 << lane;
            // No small/main-capacity assertions — single-object trims can
            // overshoot transiently, matching the dense policy.
            if (l.small.len() + l.main.len()) as u64 > l.capacity {
                return Err(format!(
                    "turbo S3-FIFO lane {lane}: {} queued entries exceed capacity {}",
                    l.small.len() + l.main.len(),
                    l.capacity
                ));
            }
            let mut seen = vec![false; self.hdr.len()];
            for e in l.small.iter().chain(l.main.iter()) {
                let s = e.slot as usize;
                if seen[s] {
                    return Err(format!("turbo S3-FIFO lane {lane}: slot {s} queued twice"));
                }
                seen[s] = true;
                if self.hdr[s].res & bit == 0 {
                    return Err(format!(
                        "turbo S3-FIFO lane {lane}: slot {s} queued but not marked resident"
                    ));
                }
                if self.hdr[s].ghost & bit != 0 {
                    return Err(format!(
                        "turbo S3-FIFO lane {lane}: slot {s} both resident and ghost-marked"
                    ));
                }
                if e.mark > self.hdr[s].acc {
                    return Err(format!("turbo S3-FIFO lane {lane}: mark ahead of counter"));
                }
                if e.f0 > 3 {
                    return Err(format!(
                        "turbo S3-FIFO lane {lane}: folded freq {} exceeds cap 3",
                        e.f0
                    ));
                }
            }
            let marked = self.hdr.iter().filter(|h| h.res & bit != 0).count();
            if marked != l.small.len() + l.main.len() {
                return Err(format!(
                    "turbo S3-FIFO lane {lane}: {marked} resident marks vs {} queued",
                    l.small.len() + l.main.len()
                ));
            }
            if l.ghost_used != l.ghost_fifo.len() as u64 {
                return Err(format!(
                    "turbo S3-FIFO lane {lane}: ghost_used {} vs {} ghost entries",
                    l.ghost_used,
                    l.ghost_fifo.len()
                ));
            }
            if l.ghost_used > l.ghost_cap {
                return Err(format!(
                    "turbo S3-FIFO lane {lane}: ghost charge {} exceeds cap {}",
                    l.ghost_used, l.ghost_cap
                ));
            }
            let ghost_marked = self.hdr.iter().filter(|h| h.ghost & bit != 0).count();
            if ghost_marked > l.ghost_fifo.len() {
                return Err(format!(
                    "turbo S3-FIFO lane {lane}: {ghost_marked} ghost marks vs {} entries",
                    l.ghost_fifo.len()
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay_pure_get!();
}

#[cfg(test)]
mod tests {
    use super::super::super::{DenseClock, DenseS3Fifo, DenseSieve};
    use super::super::{MrcClock, MrcS3Fifo, MrcSieve};
    use super::*;
    use cache_types::DensePolicy;

    const GRID: [u64; 8] = [1, 2, 3, 5, 9, 9, 17, 40];

    /// A skewed pure-`Get` unit-size stream with its interned slot sequence.
    fn workload(len: usize, universe: u64) -> (Vec<Request>, Vec<u32>, Arc<DenseIds>) {
        let mut state = 0xB5E1_77A9_21C4_D30Fu64;
        let mut reqs = Vec::with_capacity(len);
        for t in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let roll = state >> 33;
            let id = if roll % 2 == 0 {
                roll % (universe / 8).max(1)
            } else {
                roll % universe
            };
            reqs.push(Request {
                time: t as u64,
                id,
                size: 1,
                op: Op::Get,
            });
        }
        let (ids, slots) = DenseIds::intern(reqs.iter().map(|r| r.id));
        (reqs, slots, Arc::new(ids))
    }

    /// Replays `turbo` and, per grid point, a fresh single-capacity dense
    /// policy, asserting identical statistics.
    fn assert_matches_dense<P, F>(turbo: &mut dyn MultiCapacityPolicy, build: F)
    where
        P: DensePolicy,
        F: Fn(u64) -> P,
    {
        let (reqs, slots, _) = workload(6_000, 120);
        turbo.replay(&slots, &reqs, true);
        turbo.validate().expect("turbo invariants hold");
        // Invariant: validate only fails on an engine bug this test exists
        // to catch.
        let lanes = turbo.lane_stats();
        for (lane, &cap) in GRID.iter().enumerate() {
            let mut dense = build(cap);
            dense.replay(&slots, &reqs, true, &mut |_, _| {});
            assert_eq!(lanes[lane], dense.stats(), "capacity {cap}");
        }
    }

    #[test]
    fn turbo_clock_matches_per_capacity_dense() {
        for bits in [1u8, 2] {
            let (_, _, ids) = workload(6_000, 120);
            let mut turbo = MrcTurboClock::new(&GRID, bits, &ids).expect("valid grid");
            // Invariant: GRID is non-empty, zero-free, and under 64 points.
            assert_matches_dense(&mut turbo, |cap| {
                DenseClock::new(cap, bits, &ids).expect("capacity > 0")
                // Invariant: every GRID capacity is positive.
            });
        }
    }

    #[test]
    fn turbo_sieve_matches_per_capacity_dense() {
        let (_, _, ids) = workload(6_000, 120);
        let mut turbo = MrcTurboSieve::new(&GRID, &ids).expect("valid grid");
        // Invariant: GRID is non-empty, zero-free, and under 64 points.
        assert_matches_dense(&mut turbo, |cap| {
            DenseSieve::new(cap, &ids).expect("capacity > 0")
            // Invariant: every GRID capacity is positive.
        });
    }

    #[test]
    fn turbo_s3fifo_matches_per_capacity_dense() {
        for ratio in [0.1f64, 0.25] {
            let cfg = S3FifoConfig {
                small_ratio: ratio,
                ..Default::default()
            };
            let (_, _, ids) = workload(6_000, 120);
            let mut turbo =
                MrcTurboS3Fifo::with_config(&GRID, cfg, &ids).expect("valid grid");
            // Invariant: GRID is non-empty, zero-free, and under 64 points.
            assert_matches_dense(&mut turbo, |cap| {
                DenseS3Fifo::with_config(cap, cfg, &ids).expect("capacity > 0")
                // Invariant: every GRID capacity is positive.
            });
        }
    }

    /// The turbo engines agree with the linked ganged lanes — the two
    /// multi-capacity representations must be interchangeable on the
    /// streams both accept.
    #[test]
    fn turbo_matches_linked_gang() {
        let (reqs, slots, ids) = workload(5_000, 96);
        let run = |engine: &mut dyn MultiCapacityPolicy| {
            engine.replay(&slots, &reqs, true);
            engine.lane_stats()
        };
        let mut pairs: Vec<(Box<dyn MultiCapacityPolicy>, Box<dyn MultiCapacityPolicy>)> = vec![
            (
                Box::new(MrcTurboClock::new(&GRID, 1, &ids).expect("valid grid")),
                Box::new(MrcClock::new(&GRID, 1, &ids).expect("valid grid")),
            ),
            (
                Box::new(MrcTurboSieve::new(&GRID, &ids).expect("valid grid")),
                Box::new(MrcSieve::new(&GRID, &ids).expect("valid grid")),
            ),
            (
                Box::new(MrcTurboS3Fifo::new(&GRID, &ids).expect("valid grid")),
                Box::new(MrcS3Fifo::new(&GRID, &ids).expect("valid grid")),
            ),
            // Invariant: GRID is non-empty, zero-free, and under 64 points.
        ];
        for (turbo, linked) in &mut pairs {
            let name = linked.name();
            assert_eq!(turbo.name(), name);
            assert_eq!(run(turbo.as_mut()), run(linked.as_mut()), "{name}");
        }
    }

    #[test]
    fn rejects_degenerate_grids_and_configs() {
        let (_, _, ids) = workload(10, 4);
        assert!(MrcTurboClock::new(&[], 1, &ids).is_err());
        assert!(MrcTurboClock::new(&[4, 0], 1, &ids).is_err());
        assert!(MrcTurboClock::new(&[4], 0, &ids).is_err());
        assert!(MrcTurboSieve::new(&vec![1u64; 65], &ids).is_err());
        assert!(MrcTurboS3Fifo::with_config(
            &[4],
            S3FifoConfig {
                small_ratio: 1.5,
                ..Default::default()
            },
            &ids
        )
        .is_err());
        assert!(MrcTurboS3Fifo::with_config(
            &[4],
            S3FifoConfig {
                ghost_ratio: -0.5,
                ..Default::default()
            },
            &ids
        )
        .is_err());
    }

    /// Duplicate and unsorted grid entries stay independent lanes.
    #[test]
    fn duplicate_lanes_agree() {
        let (reqs, slots, ids) = workload(2_000, 64);
        let mut turbo = MrcTurboSieve::new(&[9, 3, 9, 1], &ids).expect("valid grid");
        // Invariant: the grid above is non-empty, zero-free, and small.
        turbo.replay(&slots, &reqs, true);
        let lanes = turbo.lane_stats();
        assert_eq!(lanes[0], lanes[2], "duplicate capacities agree");
        assert!(lanes[3].misses >= lanes[1].misses);
    }
}

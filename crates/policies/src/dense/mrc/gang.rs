//! Interleaved per-capacity lanes and the single-queue multi-capacity
//! engines (FIFO, CLOCK, SIEVE).
//!
//! Layout: for a grid of `k` capacities, all per-`(slot, lane)` state is
//! stored lane-major *within* a slot — `state[slot*k + lane]` — so applying
//! one request to every lane walks one contiguous `k`-byte row instead of
//! `k` scattered 64-byte [`super::super::slab::Slot`]s. The hit path reads
//! only the state row; intrusive links and recorded sizes live in separate
//! interleaved `u32` arrays touched only when a lane misses or evicts.
//!
//! Every lane replicates the decision logic of its single-capacity dense
//! sibling statement for statement (same eviction scan order, same
//! uncacheable test against the *lane's* capacity, same `Set`/`Delete`
//! semantics), which is what makes the per-point results bit-identical to a
//! per-capacity sweep.

use super::{impl_mrc_replay, validate_grid, MultiCapacityPolicy};
use cache_ds::{DenseIds, NIL};
use cache_types::{CacheError, Op, PolicyStats, Request};
use std::sync::Arc;

/// The interleaved per-`(slot, lane)` arrays shared by the ganged engines.
///
/// `state` is policy-defined with the single convention that `0` means
/// "absent from this lane". `prev`/`next` thread one intrusive queue per
/// lane (S3-FIFO threads two — a slot is in at most one data queue per
/// lane, so the links are shared exactly like [`super::super::slab::Slot`]
/// links are shared between S and M).
pub(crate) struct Lanes {
    /// Number of lanes (grid points).
    pub k: usize,
    /// Policy-defined per-`(slot, lane)` byte; 0 = absent.
    pub state: Vec<u8>,
    /// Queue link toward the tail-to-head direction (`NIL` at the tail).
    pub prev: Vec<u32>,
    /// Queue link toward the head-to-tail direction (`NIL` at the head).
    pub next: Vec<u32>,
    /// Object size recorded at insertion, per lane (lanes can disagree:
    /// a `Set` may fit in one lane and not another).
    pub size: Vec<u32>,
}

impl Lanes {
    pub(crate) fn new(slots: usize, k: usize) -> Self {
        Lanes {
            k,
            state: vec![0; slots * k],
            prev: vec![NIL; slots * k],
            next: vec![NIL; slots * k],
            size: vec![0; slots * k],
        }
    }

    /// Index of `(slot, lane)` in every interleaved array.
    #[inline]
    pub(crate) fn at(&self, slot: u32, lane: usize) -> usize {
        slot as usize * self.k + lane
    }

    /// Warms the state row of `slot` (pure prefetch hint).
    #[inline]
    pub(crate) fn warm_row(&self, slot: u32) {
        cache_ds::prefetch_read(&self.state, slot as usize * self.k);
    }

    // ---- per-lane intrusive queue ops, mirroring `PackedQueue` ---------

    /// Inserts detached slot `s` at the head of `q` (lane `lane`).
    #[inline]
    pub(crate) fn push_front(&mut self, q: &mut LaneQueue, lane: usize, s: u32) {
        let i = self.at(s, lane);
        debug_assert!(self.prev[i] == NIL && self.next[i] == NIL);
        let old_head = q.head;
        self.next[i] = old_head;
        self.prev[i] = NIL;
        if old_head != NIL {
            let h = self.at(old_head, lane);
            self.prev[h] = s;
        } else {
            q.tail = s;
        }
        q.head = s;
        q.len += 1;
    }

    #[inline]
    fn unlink(&mut self, q: &mut LaneQueue, lane: usize, s: u32) {
        let i = self.at(s, lane);
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            let pi = self.at(p, lane);
            self.next[pi] = n;
        } else {
            q.head = n;
        }
        if n != NIL {
            let ni = self.at(n, lane);
            self.prev[ni] = p;
        } else {
            q.tail = p;
        }
    }

    /// Detaches slot `s`, which must be in `q`.
    #[inline]
    pub(crate) fn remove(&mut self, q: &mut LaneQueue, lane: usize, s: u32) {
        self.unlink(q, lane, s);
        let i = self.at(s, lane);
        self.prev[i] = NIL;
        self.next[i] = NIL;
        q.len -= 1;
    }

    /// Moves slot `s`, which must be in `q`, to the head.
    #[inline]
    pub(crate) fn move_to_front(&mut self, q: &mut LaneQueue, lane: usize, s: u32) {
        if q.head == s {
            return;
        }
        self.unlink(q, lane, s);
        let i = self.at(s, lane);
        let old_head = q.head;
        self.prev[i] = NIL;
        self.next[i] = old_head;
        if old_head != NIL {
            let h = self.at(old_head, lane);
            self.prev[h] = s;
        } else {
            q.tail = s;
        }
        q.head = s;
    }

    /// The neighbour of `s` toward the head, or `None` when `s` is the head.
    #[inline]
    pub(crate) fn toward_head(&self, lane: usize, s: u32) -> Option<u32> {
        let p = self.prev[self.at(s, lane)];
        if p == NIL {
            None
        } else {
            Some(p)
        }
    }

    /// Iterates `q` head → tail (validation only; not a hot path).
    pub(crate) fn iter<'a>(
        &'a self,
        q: &LaneQueue,
        lane: usize,
    ) -> impl Iterator<Item = u32> + 'a {
        let mut cur = q.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = cur;
            cur = self.next[self.at(s, lane)];
            Some(s)
        })
    }
}

/// Head/tail/len of one lane's intrusive queue (links live in [`Lanes`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneQueue {
    pub head: u32,
    pub tail: u32,
    pub len: u32,
}

impl LaneQueue {
    pub(crate) const fn new() -> Self {
        LaneQueue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tail (oldest) slot, or `None` when empty.
    #[inline]
    pub(crate) fn tail(&self) -> Option<u32> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }
}

/// Per-lane bookkeeping shared by the single-queue engines.
struct Lane {
    capacity: u64,
    used: u64,
    queue: LaneQueue,
    stats: PolicyStats,
}

impl Lane {
    fn new(capacity: u64) -> Self {
        Lane {
            capacity,
            used: 0,
            queue: LaneQueue::new(),
            stats: PolicyStats::default(),
        }
    }
}

/// Structural validation shared by the single-queue engines: per lane, the
/// links walk exactly `len` slots, every walked slot is marked resident
/// (`resident(state) == true`), byte accounting matches, no `(slot, lane)`
/// outside the queue is marked, and the capacity bound holds — the lane-wise
/// counterpart of `validate_packed_queue`.
fn validate_lanes(
    name: &str,
    lanes: &Lanes,
    metas: &[Lane],
    resident: impl Fn(u8) -> bool,
) -> Result<(), String> {
    for (lane, meta) in metas.iter().enumerate() {
        if meta.used > meta.capacity {
            return Err(format!(
                "{name} lane {lane}: used {} > capacity {}",
                meta.used, meta.capacity
            ));
        }
        let mut bytes = 0u64;
        let mut count = 0u32;
        for slot in lanes.iter(&meta.queue, lane) {
            let i = lanes.at(slot, lane);
            if !resident(lanes.state[i]) {
                return Err(format!(
                    "{name} lane {lane}: queued slot {slot} not marked resident"
                ));
            }
            bytes += u64::from(lanes.size[i]);
            count += 1;
        }
        if count != meta.queue.len {
            return Err(format!(
                "{name} lane {lane}: links walk {count} slots but len says {}",
                meta.queue.len
            ));
        }
        if bytes != meta.used {
            return Err(format!(
                "{name} lane {lane}: queued bytes {bytes} != accounted {}",
                meta.used
            ));
        }
        let marked = lanes
            .state
            .iter()
            .skip(lane)
            .step_by(lanes.k)
            .filter(|&&st| resident(st))
            .count();
        if marked != count as usize {
            return Err(format!(
                "{name} lane {lane}: {marked} slots marked resident but {count} queued"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

const FIFO_RESIDENT: u8 = 1;

/// Multi-capacity FIFO: one ganged lane per grid point, mirroring
/// [`super::super::DenseFifo`] per lane.
///
/// This is the FIFO engine for traces the exact engine cannot handle
/// (writes, deletes, or honored sizes); `cache_sim::mrc::simulate_mrc`
/// prefers [`super::MrcExactFifo`] when its preconditions hold.
pub struct MrcFifo {
    caps: Vec<u64>,
    lanes: Lanes,
    metas: Vec<Lane>,
}

impl MrcFifo {
    /// Creates one FIFO lane per grid capacity over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_grid(capacities)?;
        Ok(MrcFifo {
            caps: capacities.to_vec(),
            lanes: Lanes::new(ids.len(), capacities.len()),
            metas: capacities.iter().map(|&c| Lane::new(c)).collect(),
        })
    }

    fn evict_one(&mut self, lane: usize) {
        let meta = &mut self.metas[lane];
        if let Some(tail) = meta.queue.tail() {
            self.lanes.remove(&mut self.metas[lane].queue, lane, tail);
            let i = self.lanes.at(tail, lane);
            self.lanes.state[i] = 0;
            self.metas[lane].used -= u64::from(self.lanes.size[i]);
            self.metas[lane].stats.evictions += 1;
        }
    }

    fn insert(&mut self, lane: usize, slot: u32, req: &Request) {
        while self.metas[lane].used + u64::from(req.size) > self.metas[lane].capacity
            && !self.metas[lane].queue.is_empty()
        {
            self.evict_one(lane);
        }
        self.lanes.push_front(&mut self.metas[lane].queue, lane, slot);
        let i = self.lanes.at(slot, lane);
        self.lanes.state[i] = FIFO_RESIDENT;
        self.lanes.size[i] = req.size;
        self.metas[lane].used += u64::from(req.size);
    }

    fn delete(&mut self, lane: usize, slot: u32) {
        let i = self.lanes.at(slot, lane);
        if std::mem::replace(&mut self.lanes.state[i], 0) == FIFO_RESIDENT {
            self.lanes.remove(&mut self.metas[lane].queue, lane, slot);
            self.metas[lane].used -= u64::from(self.lanes.size[i]);
        }
    }
}

impl MultiCapacityPolicy for MrcFifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        let base = slot as usize * self.lanes.k;
        match req.op {
            Op::Get => {
                for lane in 0..self.lanes.k {
                    if self.lanes.state[base + lane] == FIFO_RESIDENT {
                        self.metas[lane].stats.record_get(req.size, false);
                    } else if u64::from(req.size) > self.metas[lane].capacity {
                        self.metas[lane].stats.record_get(req.size, true);
                    } else {
                        self.metas[lane].stats.record_get(req.size, true);
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Set => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                    if u64::from(req.size) <= self.metas[lane].capacity {
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Delete => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                }
            }
        }
    }

    fn prefetch(&self, slot: u32) {
        self.lanes.warm_row(slot);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.metas.iter().map(|m| m.stats).collect()
    }

    fn validate(&self) -> Result<(), String> {
        validate_lanes("FIFO", &self.lanes, &self.metas, |st| st == FIFO_RESIDENT)
    }

    impl_mrc_replay!();
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

/// Residency bit of a CLOCK lane's state byte; the low 7 bits hold the
/// reference counter (CLOCK's `bits` parameter is 1..=7, so it fits).
const CLOCK_RES: u8 = 0x80;

/// Multi-capacity CLOCK: one ganged lane per grid point, mirroring
/// [`super::super::DenseClock`] per lane (including the `bits`-bit counter).
pub struct MrcClock {
    caps: Vec<u64>,
    max_freq: u8,
    lanes: Lanes,
    metas: Vec<Lane>,
}

impl MrcClock {
    /// Creates one CLOCK lane per grid capacity with a `bits`-bit counter.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero, or
    /// `bits` is 0 or > 7.
    pub fn new(capacities: &[u64], bits: u8, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_grid(capacities)?;
        if bits == 0 || bits > 7 {
            return Err(CacheError::InvalidParameter(format!(
                "bits must be in 1..=7, got {bits}"
            )));
        }
        Ok(MrcClock {
            caps: capacities.to_vec(),
            max_freq: (1u8 << bits) - 1,
            lanes: Lanes::new(ids.len(), capacities.len()),
            metas: capacities.iter().map(|&c| Lane::new(c)).collect(),
        })
    }

    fn evict_one(&mut self, lane: usize) {
        while let Some(tail) = self.metas[lane].queue.tail() {
            let i = self.lanes.at(tail, lane);
            let freq = self.lanes.state[i] & !CLOCK_RES;
            if freq > 0 {
                self.lanes.state[i] = CLOCK_RES | (freq - 1);
                self.lanes.move_to_front(&mut self.metas[lane].queue, lane, tail);
            } else {
                self.lanes.remove(&mut self.metas[lane].queue, lane, tail);
                self.lanes.state[i] = 0;
                self.metas[lane].used -= u64::from(self.lanes.size[i]);
                self.metas[lane].stats.evictions += 1;
                return;
            }
        }
    }

    fn insert(&mut self, lane: usize, slot: u32, req: &Request) {
        while self.metas[lane].used + u64::from(req.size) > self.metas[lane].capacity
            && !self.metas[lane].queue.is_empty()
        {
            self.evict_one(lane);
        }
        self.lanes.push_front(&mut self.metas[lane].queue, lane, slot);
        let i = self.lanes.at(slot, lane);
        self.lanes.state[i] = CLOCK_RES;
        self.lanes.size[i] = req.size;
        self.metas[lane].used += u64::from(req.size);
    }

    fn delete(&mut self, lane: usize, slot: u32) {
        let i = self.lanes.at(slot, lane);
        if std::mem::replace(&mut self.lanes.state[i], 0) & CLOCK_RES != 0 {
            self.lanes.remove(&mut self.metas[lane].queue, lane, slot);
            self.metas[lane].used -= u64::from(self.lanes.size[i]);
        }
    }
}

impl MultiCapacityPolicy for MrcClock {
    fn name(&self) -> String {
        if self.max_freq == 1 {
            "CLOCK".into()
        } else {
            format!("CLOCK-{}bit", (self.max_freq + 1).trailing_zeros())
        }
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        let base = slot as usize * self.lanes.k;
        match req.op {
            Op::Get => {
                for lane in 0..self.lanes.k {
                    let st = self.lanes.state[base + lane];
                    if st & CLOCK_RES != 0 {
                        let freq = ((st & !CLOCK_RES) + 1).min(self.max_freq);
                        self.lanes.state[base + lane] = CLOCK_RES | freq;
                        self.metas[lane].stats.record_get(req.size, false);
                    } else if u64::from(req.size) > self.metas[lane].capacity {
                        self.metas[lane].stats.record_get(req.size, true);
                    } else {
                        self.metas[lane].stats.record_get(req.size, true);
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Set => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                    if u64::from(req.size) <= self.metas[lane].capacity {
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Delete => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                }
            }
        }
    }

    fn prefetch(&self, slot: u32) {
        self.lanes.warm_row(slot);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.metas.iter().map(|m| m.stats).collect()
    }

    fn validate(&self) -> Result<(), String> {
        validate_lanes(
            &MultiCapacityPolicy::name(self),
            &self.lanes,
            &self.metas,
            |st| st & CLOCK_RES != 0,
        )?;
        for (i, &st) in self.lanes.state.iter().enumerate() {
            if st & CLOCK_RES != 0 && st & !CLOCK_RES > self.max_freq {
                return Err(format!(
                    "CLOCK: state index {i} freq {} exceeds cap {}",
                    st & !CLOCK_RES,
                    self.max_freq
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay!();
}

// ---------------------------------------------------------------------------
// SIEVE
// ---------------------------------------------------------------------------

/// Residency bit of a SIEVE lane's state byte; bit 0 is the visited flag.
const SIEVE_RES: u8 = 0x80;
const SIEVE_VISITED: u8 = 0x01;

/// Multi-capacity SIEVE: one ganged lane per grid point, mirroring
/// [`super::super::DenseSieve`] per lane (hand invariants included).
pub struct MrcSieve {
    caps: Vec<u64>,
    lanes: Lanes,
    metas: Vec<Lane>,
    /// Per-lane hand: next eviction candidate, `NIL` = start at the tail.
    hands: Vec<u32>,
}

impl MrcSieve {
    /// Creates one SIEVE lane per grid capacity over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_grid(capacities)?;
        Ok(MrcSieve {
            caps: capacities.to_vec(),
            lanes: Lanes::new(ids.len(), capacities.len()),
            metas: capacities.iter().map(|&c| Lane::new(c)).collect(),
            hands: vec![NIL; capacities.len()],
        })
    }

    fn evict_one(&mut self, lane: usize) {
        // Resume from the hand, or from the tail at start / after wrap.
        let mut cur = if self.hands[lane] != NIL {
            Some(self.hands[lane])
        } else {
            self.metas[lane].queue.tail()
        };
        while let Some(s) = cur {
            let i = self.lanes.at(s, lane);
            if self.lanes.state[i] & SIEVE_VISITED != 0 {
                self.lanes.state[i] = SIEVE_RES;
                // Move toward the head; wrap to the tail at the end.
                cur = self
                    .lanes
                    .toward_head(lane, s)
                    .or_else(|| self.metas[lane].queue.tail());
            } else {
                // Evict; the hand moves to the neighbour toward the head.
                self.hands[lane] = self.lanes.toward_head(lane, s).unwrap_or(NIL);
                self.lanes.remove(&mut self.metas[lane].queue, lane, s);
                self.lanes.state[i] = 0;
                self.metas[lane].used -= u64::from(self.lanes.size[i]);
                self.metas[lane].stats.evictions += 1;
                return;
            }
        }
    }

    fn insert(&mut self, lane: usize, slot: u32, req: &Request) {
        while self.metas[lane].used + u64::from(req.size) > self.metas[lane].capacity
            && !self.metas[lane].queue.is_empty()
        {
            self.evict_one(lane);
        }
        self.lanes.push_front(&mut self.metas[lane].queue, lane, slot);
        let i = self.lanes.at(slot, lane);
        self.lanes.state[i] = SIEVE_RES;
        self.lanes.size[i] = req.size;
        self.metas[lane].used += u64::from(req.size);
    }

    fn delete(&mut self, lane: usize, slot: u32) {
        let i = self.lanes.at(slot, lane);
        if std::mem::replace(&mut self.lanes.state[i], 0) & SIEVE_RES != 0 {
            if self.hands[lane] == slot {
                self.hands[lane] = self.lanes.toward_head(lane, slot).unwrap_or(NIL);
            }
            self.lanes.remove(&mut self.metas[lane].queue, lane, slot);
            self.metas[lane].used -= u64::from(self.lanes.size[i]);
        }
    }
}

impl MultiCapacityPolicy for MrcSieve {
    fn name(&self) -> String {
        "SIEVE".into()
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        let base = slot as usize * self.lanes.k;
        match req.op {
            Op::Get => {
                for lane in 0..self.lanes.k {
                    if self.lanes.state[base + lane] & SIEVE_RES != 0 {
                        self.lanes.state[base + lane] = SIEVE_RES | SIEVE_VISITED;
                        self.metas[lane].stats.record_get(req.size, false);
                    } else if u64::from(req.size) > self.metas[lane].capacity {
                        self.metas[lane].stats.record_get(req.size, true);
                    } else {
                        self.metas[lane].stats.record_get(req.size, true);
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Set => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                    if u64::from(req.size) <= self.metas[lane].capacity {
                        self.insert(lane, slot, req);
                    }
                }
            }
            Op::Delete => {
                for lane in 0..self.lanes.k {
                    self.delete(lane, slot);
                }
            }
        }
    }

    fn prefetch(&self, slot: u32) {
        self.lanes.warm_row(slot);
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.metas.iter().map(|m| m.stats).collect()
    }

    fn validate(&self) -> Result<(), String> {
        validate_lanes("SIEVE", &self.lanes, &self.metas, |st| st & SIEVE_RES != 0)?;
        for (lane, &hand) in self.hands.iter().enumerate() {
            if hand != NIL && self.lanes.state[self.lanes.at(hand, lane)] & SIEVE_RES == 0 {
                return Err(format!(
                    "SIEVE lane {lane}: hand points at non-resident slot {hand}"
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay!();
}

#[cfg(test)]
mod tests {
    use super::super::super::{DenseClock, DenseFifo, DenseSieve};
    use super::*;
    use cache_types::DensePolicy;

    /// A skewed Get/Set/Delete stream with an interned slot sequence.
    fn workload(len: usize, universe: u64, max_size: u32) -> (Vec<Request>, Vec<u32>, Arc<DenseIds>) {
        let mut state = 0xA24B_AED4_963E_E407u64;
        let mut reqs = Vec::with_capacity(len);
        for t in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            let id = if roll % 2 == 0 {
                roll % (universe / 8).max(1)
            } else {
                roll % universe
            };
            let op = match roll % 10 {
                0 => Op::Set,
                1 => Op::Delete,
                _ => Op::Get,
            };
            reqs.push(Request {
                id,
                size: 1 + (roll % u64::from(max_size)) as u32,
                time: t as u64,
                op,
            });
        }
        let (ids, slots) = DenseIds::intern(reqs.iter().map(|r| r.id));
        (reqs, slots, Arc::new(ids))
    }

    /// Replays `engine` and one dense sibling per capacity over the same
    /// stream and asserts per-lane stats (and miss-ratio bits) are equal.
    fn assert_lanes_match<M, D>(
        engine: &mut M,
        mut dense_at: impl FnMut(u64) -> D,
        reqs: &[Request],
        slots: &[u32],
        ignore_size: bool,
    ) where
        M: MultiCapacityPolicy,
        D: DensePolicy,
    {
        engine.replay(slots, reqs, ignore_size);
        engine.validate().expect("ganged invariants hold");
        // Invariant: validate only fails on an engine bug under test.
        let lanes = engine.lane_stats();
        for (lane, &cap) in engine.capacities().iter().enumerate() {
            let mut dense = dense_at(cap);
            dense.replay(slots, reqs, ignore_size, &mut |_, _| {});
            assert_eq!(lanes[lane], dense.stats(), "capacity {cap}");
            assert_eq!(
                lanes[lane].miss_ratio().to_bits(),
                dense.stats().miss_ratio().to_bits(),
                "capacity {cap}"
            );
        }
    }

    const GRID: [u64; 8] = [1, 2, 3, 5, 9, 9, 17, 40];

    #[test]
    fn fifo_lanes_match_dense_fifo() {
        for (max_size, ignore) in [(1, true), (6, false)] {
            let (reqs, slots, ids) = workload(3000, 64, max_size);
            let mut m = MrcFifo::new(&GRID, &ids).expect("valid grid");
            // Invariant: GRID is non-empty and zero-free.
            assert_lanes_match(
                &mut m,
                |cap| DenseFifo::new(cap, &ids).expect("capacity > 0"),
                // Invariant: every GRID capacity is positive.
                &reqs,
                &slots,
                ignore,
            );
        }
    }

    #[test]
    fn clock_lanes_match_dense_clock() {
        for bits in [1u8, 2] {
            for (max_size, ignore) in [(1, true), (6, false)] {
                let (reqs, slots, ids) = workload(3000, 64, max_size);
                let mut m = MrcClock::new(&GRID, bits, &ids).expect("valid grid and bits");
                // Invariant: GRID is non-empty and zero-free; bits in 1..=7.
                assert_lanes_match(
                    &mut m,
                    |cap| DenseClock::new(cap, bits, &ids).expect("capacity > 0"),
                    // Invariant: every GRID capacity is positive.
                    &reqs,
                    &slots,
                    ignore,
                );
            }
        }
    }

    #[test]
    fn sieve_lanes_match_dense_sieve() {
        for (max_size, ignore) in [(1, true), (6, false)] {
            let (reqs, slots, ids) = workload(3000, 64, max_size);
            let mut m = MrcSieve::new(&GRID, &ids).expect("valid grid");
            // Invariant: GRID is non-empty and zero-free.
            assert_lanes_match(
                &mut m,
                |cap| DenseSieve::new(cap, &ids).expect("capacity > 0"),
                // Invariant: every GRID capacity is positive.
                &reqs,
                &slots,
                ignore,
            );
        }
    }

    #[test]
    fn names_and_grids_round_trip() {
        let (_, _, ids) = workload(10, 8, 1);
        let m = MrcFifo::new(&[4], &ids).expect("valid grid");
        // Invariant: a single positive capacity is a valid grid.
        assert_eq!(MultiCapacityPolicy::name(&m), "FIFO");
        assert_eq!(m.capacities(), &[4]);
        let c1 = MrcClock::new(&[4], 1, &ids).expect("valid grid and bits");
        let c2 = MrcClock::new(&[4], 2, &ids).expect("valid grid and bits");
        // Invariant: bits 1 and 2 are within 1..=7.
        assert_eq!(MultiCapacityPolicy::name(&c1), "CLOCK");
        assert_eq!(MultiCapacityPolicy::name(&c2), "CLOCK-2bit");
        assert_eq!(
            MultiCapacityPolicy::name(&MrcSieve::new(&[4], &ids).expect("valid grid")),
            // Invariant: a single positive capacity is a valid grid.
            "SIEVE"
        );
        assert!(MrcFifo::new(&[], &ids).is_err());
        assert!(MrcClock::new(&[1], 0, &ids).is_err());
        assert!(MrcClock::new(&[1], 8, &ids).is_err());
        assert!(MrcSieve::new(&[0], &ids).is_err());
    }
}

//! The exact single-pass FIFO MRC engine.
//!
//! For a pure-`Get`, unit-size stream, a FIFO of capacity `C` holds exactly
//! the last `C` *insertions* — a hit never reorders the queue, and an object
//! is reinserted only after its previous copy has been evicted, so the last
//! `C` insertions are distinct live objects. Keep one insertion counter `n`
//! per capacity and, per `(object, capacity)`, the index of the object's
//! latest insertion: the object is resident iff that index lies in the
//! window `(n - C, n]`. Hit/miss at every grid point then costs a compare
//! and (on miss) a store per lane — no queues, no links, no eviction scan.
//!
//! This is the place where CIPARSim's cache-intersection property is exact
//! rather than approximate, which is why `simulate_mrc` routes eligible
//! FIFO curves here and everything else to the ganged lanes in
//! [`super::gang`].

use super::{impl_mrc_replay_pure_get, validate_grid, MultiCapacityPolicy};
use cache_ds::DenseIds;
use cache_types::{CacheError, Op, PolicyStats, Request};
use std::sync::Arc;

/// Exact multi-capacity FIFO over pure-`Get` unit-size streams.
///
/// Produces, per grid capacity, statistics bit-identical to replaying
/// [`super::super::DenseFifo`] at that capacity with `ignore_size` — the
/// property test in `crates/sim/tests/mrc_equivalence.rs` and the MRC
/// differential in `cache-check` pin this.
///
/// Preconditions (checked with `debug_assert!` here, enforced by the
/// `simulate_mrc` routing): every request is a `Get` of size 1, and the
/// trace has fewer than `u32::MAX` requests (insertion indices are stored
/// as `u32` per `(slot, lane)` to keep the hit path row one cache line
/// wide for typical grids).
pub struct MrcExactFifo {
    caps: Vec<u64>,
    /// Lanes per slot row.
    k: usize,
    /// Latest 1-based insertion index per `(slot, lane)`, interleaved as
    /// `ins[slot*k + lane]`; 0 = never inserted.
    ins: Vec<u32>,
    /// Per-lane insertion counter; equals that lane's miss count.
    n: Vec<u64>,
    /// Per-lane eviction horizon `max(0, n - cap)`: an index is resident
    /// iff it is strictly greater, which folds the `v != 0` and
    /// `v + cap > n` tests into one `u32` compare on the hit path (`v = 0`
    /// is never `> thresh` because `thresh >= 0`, and for `n < cap` the
    /// window `v + cap > n` always holds for live indices).
    thresh: Vec<u32>,
    /// Shared read counter (every lane sees every `Get`).
    gets: u64,
}

impl MrcExactFifo {
    /// Creates one FIFO lane per grid capacity over the interned domain.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the grid is empty or contains a zero.
    pub fn new(capacities: &[u64], ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        validate_grid(capacities)?;
        Ok(MrcExactFifo {
            caps: capacities.to_vec(),
            k: capacities.len(),
            ins: vec![0; ids.len() * capacities.len()],
            n: vec![0; capacities.len()],
            thresh: vec![0; capacities.len()],
            gets: 0,
        })
    }

    /// One request's worth of work — the slot is all a pure-`Get`
    /// unit-size request carries (see `impl_mrc_replay_pure_get`).
    #[inline]
    fn step(&mut self, slot: u32) {
        self.gets += 1;
        let base = slot as usize * self.k;
        let row = &mut self.ins[base..base + self.k];
        // Branchless all-hit screen first: resident iff the latest
        // insertion is past the eviction horizon (see `thresh`), one u32
        // compare per lane with no data dependence, so the loop vectorizes
        // and the common hit-everywhere request never enters the update
        // loop below.
        let mut all_hit = true;
        for (v, t) in row.iter().zip(self.thresh.iter()) {
            all_hit &= *v > *t;
        }
        if all_hit {
            return; // FIFO does not touch state on a hit
        }
        for (lane, v) in row.iter_mut().enumerate() {
            if *v > self.thresh[lane] {
                continue;
            }
            let n = self.n[lane] + 1;
            self.n[lane] = n;
            debug_assert!(n < u64::from(u32::MAX), "insertion index overflows u32");
            *v = n as u32;
            self.thresh[lane] = n.saturating_sub(self.caps[lane]) as u32;
        }
    }
}

impl MultiCapacityPolicy for MrcExactFifo {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacities(&self) -> &[u64] {
        &self.caps
    }

    fn request_mrc(&mut self, slot: u32, req: &Request) {
        debug_assert_eq!(req.op, Op::Get, "exact FIFO MRC requires pure-Get traces");
        debug_assert_eq!(req.size, 1, "exact FIFO MRC requires unit sizes");
        self.step(slot);
    }

    fn prefetch(&self, slot: u32) {
        // A k-lane row spans ceil(k/16) cache lines (u32 indices); warm
        // them all, not just the first.
        let base = slot as usize * self.k;
        let mut off = 0;
        while off < self.k {
            cache_ds::prefetch_read(&self.ins, base + off);
            off += 16;
        }
    }

    fn lane_stats(&self) -> Vec<PolicyStats> {
        self.caps
            .iter()
            .zip(self.n.iter())
            .map(|(&cap, &n)| PolicyStats {
                gets: self.gets,
                misses: n,
                // Unit sizes: evictions = insertions beyond what fits.
                evictions: n - n.min(cap),
                get_bytes: self.gets,
                miss_bytes: n,
            })
            .collect()
    }

    fn validate(&self) -> Result<(), String> {
        for (lane, (&cap, &n)) in self.caps.iter().zip(self.n.iter()).enumerate() {
            if u64::from(self.thresh[lane]) != n.saturating_sub(cap) {
                return Err(format!(
                    "exact FIFO lane {lane}: threshold {} != max(0, {n} - {cap})",
                    self.thresh[lane]
                ));
            }
            let resident = self
                .ins
                .iter()
                .skip(lane)
                .step_by(self.k)
                .filter(|&&v| v != 0 && u64::from(v) + cap > n)
                .count() as u64;
            if resident != n.min(cap) {
                return Err(format!(
                    "exact FIFO lane {lane} (cap {cap}): {resident} residents, expected {}",
                    n.min(cap)
                ));
            }
        }
        Ok(())
    }

    impl_mrc_replay_pure_get!();
}

#[cfg(test)]
mod tests {
    use super::super::super::DenseFifo;
    use super::*;
    use cache_types::DensePolicy;

    fn get(id: u64, time: u64) -> Request {
        Request {
            time,
            id,
            size: 1,
            op: Op::Get,
        }
    }

    /// A small skewed pure-Get stream with an interned slot sequence.
    fn workload(len: usize, universe: u64) -> (Vec<Request>, Vec<u32>, Arc<DenseIds>) {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut reqs = Vec::with_capacity(len);
        for t in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            // Half the accesses hit a hot eighth of the universe.
            let id = if roll % 2 == 0 {
                roll % (universe / 8).max(1)
            } else {
                roll % universe
            };
            reqs.push(get(id, t as u64));
        }
        let (ids, slots) = DenseIds::intern(reqs.iter().map(|r| r.id));
        (reqs, slots, Arc::new(ids))
    }

    #[test]
    fn matches_per_capacity_dense_fifo() {
        let (reqs, slots, ids) = workload(4000, 96);
        let caps = [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89, 96, 200];
        let mut exact = MrcExactFifo::new(&caps, &ids).expect("valid grid");
        // Invariant: caps is non-empty and zero-free, so `new` cannot fail.
        exact.replay(&slots, &reqs, true);
        exact.validate().expect("exact FIFO invariants hold");
        // Invariant: validate only fails on an engine bug this test exists
        // to catch.
        let lanes = exact.lane_stats();
        for (lane, &cap) in caps.iter().enumerate() {
            let mut dense = DenseFifo::new(cap, &ids).expect("capacity > 0");
            // Invariant: every grid capacity above is positive.
            dense.replay(&slots, &reqs, true, &mut |_, _| {});
            assert_eq!(lanes[lane], dense.stats(), "capacity {cap}");
            assert_eq!(
                lanes[lane].miss_ratio().to_bits(),
                dense.stats().miss_ratio().to_bits(),
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn duplicate_and_unsorted_grid_entries_are_independent_lanes() {
        let (reqs, slots, ids) = workload(1500, 48);
        let caps = [9u64, 3, 9, 1];
        let mut exact = MrcExactFifo::new(&caps, &ids).expect("valid grid");
        // Invariant: caps is non-empty and zero-free, so `new` cannot fail.
        exact.replay(&slots, &reqs, true);
        let lanes = exact.lane_stats();
        assert_eq!(lanes[0], lanes[2], "duplicate capacities agree");
        assert!(lanes[3].misses >= lanes[1].misses);
        assert_eq!(exact.capacities(), &caps);
        assert_eq!(MultiCapacityPolicy::name(&exact), "FIFO");
    }

    #[test]
    fn rejects_degenerate_grids() {
        let (_, _, ids) = workload(10, 4);
        assert!(MrcExactFifo::new(&[], &ids).is_err());
        assert!(MrcExactFifo::new(&[4, 0, 2], &ids).is_err());
    }
}

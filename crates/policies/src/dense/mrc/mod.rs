//! Multi-capacity dense engines: one trace pass, a whole miss-ratio curve.
//!
//! The per-capacity sweep replays the full trace once per cache size, so a
//! 32-point miss-ratio curve costs 32 trace traversals — and the traversal,
//! not the policy arithmetic, is where the time goes. The engines here
//! compute every point of the curve in a *single* pass, two ways:
//!
//! - [`MrcExactFifo`] exploits FIFO's insertion-index structure. A FIFO of
//!   capacity `C` over a pure-`Get` unit-size stream contains exactly the
//!   objects whose latest insertion index lies in the last `C` insertions,
//!   so one per-capacity insertion counter plus a per-object index row
//!   answers hit/miss at every capacity with two integer ops per lane — no
//!   queues at all (CIPARSim's cache-intersection observation, specialised
//!   to FIFO where it is exact).
//! - [`MrcTurboClock`], [`MrcTurboSieve`], and [`MrcTurboS3Fifo`] handle
//!   the pure-`Get` unit-size case (the common one for capacity planning)
//!   with a per-slot residency bitmap, a shared access counter from which
//!   reference/visited state is *derived* at scan time, and array-backed
//!   queues — hits touch one cache line for the whole grid (the `turbo`
//!   module docs carry the derivation argument).
//! - [`MrcFifo`], [`MrcClock`], [`MrcSieve`], and [`MrcS3Fifo`] gang one
//!   *lane* per capacity through an interleaved state layout: all per-object
//!   bytes for the whole capacity grid sit contiguously (`state[slot*k+lane]`),
//!   so a `Get` that hits in every lane touches one or two cache lines total
//!   instead of one resident [`super::slab::Slot`] line per capacity. Links
//!   and sizes live in separate interleaved arrays touched only on the miss
//!   and eviction paths. Each lane makes byte-for-byte the decisions of the
//!   corresponding single-capacity dense policy ([`super::DenseFifo`], …);
//!   `crates/sim/tests/mrc_equivalence.rs` and `cache-check`'s MRC
//!   differential hold them bit-identical.
//!
//! The simulator front door is `cache_sim::mrc::simulate_mrc`, which picks
//! the exact engine when its preconditions hold (FIFO, pure `Get`, unit
//! sizes) and the ganged engines otherwise.

mod exact;
mod gang;
mod s3fifo;
mod turbo;

pub use exact::MrcExactFifo;
pub use gang::{MrcClock, MrcFifo, MrcSieve};
pub use s3fifo::MrcS3Fifo;
pub use turbo::{MrcTurboClock, MrcTurboS3Fifo, MrcTurboSieve, MAX_TURBO_LANES};

pub(crate) use gang::{LaneQueue, Lanes};

use cache_types::{CacheError, PolicyStats, Request};

/// A policy simulated at many capacities simultaneously.
///
/// One instance owns a *lane* per entry of its capacity grid; every request
/// is applied to all lanes, and each lane must make exactly the decisions
/// the single-capacity dense policy of the same name would make at that
/// capacity. Lanes are fully independent — duplicate or unsorted grid
/// entries are legal and simply produce identical or unsorted lanes.
pub trait MultiCapacityPolicy {
    /// Human-readable algorithm name — matches the keyed/dense variant.
    fn name(&self) -> String;

    /// The capacity grid, in construction order (one lane per entry).
    fn capacities(&self) -> &[u64];

    /// Processes one request whose object was interned at `slot`, updating
    /// every lane.
    fn request_mrc(&mut self, slot: u32, req: &Request);

    /// Warms the per-slot state row for a request arriving shortly (pure
    /// prefetch hint, like [`cache_types::DensePolicy::prefetch`]).
    fn prefetch(&self, _slot: u32) {}

    /// Per-lane statistics, parallel to [`MultiCapacityPolicy::capacities`].
    fn lane_stats(&self) -> Vec<PolicyStats>;

    /// Checks structural invariants across all lanes (test/verification
    /// hook, may be O(slots × lanes)). The default performs no checks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Replays a whole interned request stream through every lane.
    ///
    /// The default loops through [`MultiCapacityPolicy::request_mrc`] behind
    /// dynamic dispatch; concrete engines override it with a monomorphized
    /// [`mrc_replay_loop`] so the per-request path inlines. With
    /// `ignore_size`, requests are replayed at size 1 without materializing
    /// a copy of the trace.
    ///
    /// # Panics
    ///
    /// Panics when `slots` and `requests` have different lengths.
    fn replay(&mut self, slots: &[u32], requests: &[Request], ignore_size: bool) {
        assert_eq!(slots.len(), requests.len(), "slot/request length mismatch");
        for (&slot, r) in slots.iter().zip(requests.iter()) {
            let req = if ignore_size {
                Request { size: 1, ..(*r) }
            } else {
                *r
            };
            self.request_mrc(slot, &req);
        }
    }
}

/// Shared capacity-grid validation for the multi-capacity constructors.
pub(crate) fn validate_grid(capacities: &[u64]) -> Result<(), CacheError> {
    if capacities.is_empty() {
        return Err(CacheError::InvalidParameter(
            "capacity grid must not be empty".into(),
        ));
    }
    if capacities.contains(&0) {
        return Err(CacheError::InvalidCapacity(
            "every grid capacity must be > 0".into(),
        ));
    }
    Ok(())
}

/// The monomorphized replay loop every engine's
/// [`MultiCapacityPolicy::replay`] override delegates to — same shape and
/// lookahead as [`super::replay_loop`], minus eviction records (curve
/// points need only the per-lane counters).
#[inline]
pub(crate) fn mrc_replay_loop<P: MultiCapacityPolicy>(
    policy: &mut P,
    slots: &[u32],
    requests: &[Request],
    ignore_size: bool,
) {
    assert_eq!(slots.len(), requests.len(), "slot/request length mismatch");
    for (i, (&slot, r)) in slots.iter().zip(requests.iter()).enumerate() {
        if let Some(&ahead) = slots.get(i + super::LOOKAHEAD) {
            policy.prefetch(ahead);
        }
        let req = if ignore_size {
            Request { size: 1, ..(*r) }
        } else {
            *r
        };
        policy.request_mrc(slot, &req);
    }
}

/// Implements [`MultiCapacityPolicy::replay`] as a monomorphized
/// [`mrc_replay_loop`] call; used inside each engine's trait impl.
macro_rules! impl_mrc_replay {
    () => {
        fn replay(
            &mut self,
            slots: &[u32],
            requests: &[cache_types::Request],
            ignore_size: bool,
        ) {
            crate::dense::mrc::mrc_replay_loop(self, slots, requests, ignore_size);
        }
    };
}
pub(crate) use impl_mrc_replay;

/// Implements [`MultiCapacityPolicy::replay`] for the pure-`Get` engines
/// (exact FIFO and the turbo lanes): on the streams they accept, a request
/// carries no information beyond its slot, so the hot loop streams the
/// `u32` slot sequence only — no per-request `Request` copy, no op/size
/// dispatch. The stream preconditions (every request a `Get`, unit sizes
/// unless `ignore_size`) are enforced by the `simulate_mrc` routing and
/// debug-checked wholesale here; the engine's inherent `step(slot)` must
/// match its `request_mrc` body.
macro_rules! impl_mrc_replay_pure_get {
    () => {
        fn replay(
            &mut self,
            slots: &[u32],
            requests: &[cache_types::Request],
            ignore_size: bool,
        ) {
            assert_eq!(slots.len(), requests.len(), "slot/request length mismatch");
            debug_assert!(
                requests.iter().all(|r| r.op == cache_types::Op::Get),
                "pure-Get MRC engine replayed with writes"
            );
            debug_assert!(
                ignore_size || requests.iter().all(|r| r.size == 1),
                "pure-Get MRC engine replayed with honored non-unit sizes"
            );
            let _ = ignore_size;
            for (i, &slot) in slots.iter().enumerate() {
                if let Some(&ahead) = slots.get(i + crate::dense::mrc::PURE_GET_LOOKAHEAD) {
                    self.prefetch(ahead);
                }
                self.step(slot);
            }
        }
    };
}
pub(crate) use impl_mrc_replay_pure_get;

/// Prefetch distance for the pure-`Get` replay loop. Deeper than the
/// general [`super::LOOKAHEAD`]: these engines' per-request work is a
/// handful of cycles once the slot row is resident, so the loop runs far
/// ahead of the memory system and the prefetches need a longer lead to
/// complete before use.
pub(crate) const PURE_GET_LOOKAHEAD: usize = 32;

//! Dense mirror of [`s3fifo::S3Fifo`] (Algorithm 1 of the paper).
//!
//! Lives here rather than in the `s3fifo` crate because the dense registry
//! ([`crate::registry::build_dense`]) and the shared dense plumbing are in
//! this crate; the algorithm is copied step for step from
//! `crates/core/src/policy.rs` and the equivalence test holds the two
//! implementations bit-identical.
//!
//! Slot-state conventions (see [`super::slab::Slot`]): `tag` is the queue
//! tag (`ABSENT`/`SMALL`/`MAIN`), `freq` the two-bit access counter.

use super::{impl_dense_replay, DenseSlab, PackedQueue, SlotGhost};
use cache_ds::DenseIds;
use cache_types::{CacheError, DensePolicy, Eviction, Op, Outcome, PolicyStats, Request};
use s3fifo::S3FifoConfig;
use std::sync::Arc;

/// Which data queue a slot currently lives in.
const ABSENT: u8 = 0;
const SMALL: u8 = 1;
const MAIN: u8 = 2;

/// Dense mirror of the S3-FIFO eviction policy.
pub struct DenseS3Fifo {
    capacity: u64,
    s_capacity: u64,
    m_capacity: u64,
    cfg: S3FifoConfig,

    slab: DenseSlab,
    /// Small queue; head = most recent insert, tail = next eviction.
    small: PackedQueue,
    /// Main queue, same orientation.
    main: PackedQueue,
    ghost: SlotGhost,

    s_used: u64,
    m_used: u64,
    stats: PolicyStats,
    ghost_hits: u64,
}

impl DenseS3Fifo {
    /// Creates an S3-FIFO cache with default parameters (S = 10 %).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] when `capacity == 0`.
    pub fn new(capacity: u64, ids: &Arc<DenseIds>) -> Result<Self, CacheError> {
        Self::with_config(capacity, S3FifoConfig::default(), ids)
    }

    /// Creates an S3-FIFO cache with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the capacity is zero or the small-queue
    /// ratio is outside `(0, 1)`.
    pub fn with_config(
        capacity: u64,
        cfg: S3FifoConfig,
        ids: &Arc<DenseIds>,
    ) -> Result<Self, CacheError> {
        Self::with_config_domain(capacity, cfg, ids.len())
    }

    /// [`DenseS3Fifo::with_config`] over a pre-sized dense domain
    /// `0..domain` with no interning table (the streaming replayer's entry
    /// point — `.ctr` ids are already dense). Decision-identical to
    /// [`DenseS3Fifo::with_config`].
    ///
    /// # Errors
    ///
    /// Same as [`DenseS3Fifo::with_config`].
    pub fn with_config_domain(
        capacity: u64,
        cfg: S3FifoConfig,
        domain: usize,
    ) -> Result<Self, CacheError> {
        if capacity == 0 {
            return Err(CacheError::InvalidCapacity("capacity must be > 0".into()));
        }
        if !(cfg.small_ratio > 0.0 && cfg.small_ratio < 1.0) {
            return Err(CacheError::InvalidParameter(format!(
                "small_ratio must be in (0,1), got {}",
                cfg.small_ratio
            )));
        }
        if cfg.ghost_ratio < 0.0 {
            return Err(CacheError::InvalidParameter(
                "ghost_ratio must be >= 0".into(),
            ));
        }
        let s_capacity = ((capacity as f64 * cfg.small_ratio).round() as u64).max(1);
        let m_capacity = capacity.saturating_sub(s_capacity).max(1);
        let ghost_cap = (m_capacity as f64 * cfg.ghost_ratio).round() as u64;
        let slab = DenseSlab::with_domain(domain);
        Ok(DenseS3Fifo {
            capacity,
            s_capacity,
            m_capacity,
            cfg,
            ghost: SlotGhost::new(slab.len(), ghost_cap),
            slab,
            small: PackedQueue::new(),
            main: PackedQueue::new(),
            s_used: 0,
            m_used: 0,
            stats: PolicyStats::default(),
            ghost_hits: 0,
        })
    }

    /// Number of misses that hit in the ghost queue (inserted directly to M).
    pub fn ghost_hits(&self) -> u64 {
        self.ghost_hits
    }

    /// Warms both queues' next eviction candidates (pure prefetch hint).
    #[inline]
    fn prefetch_extra(&self) {
        self.slab.warm_tail(&self.small);
        self.slab.warm_tail(&self.main);
    }

    fn used_total(&self) -> u64 {
        self.s_used + self.m_used
    }

    fn len_total(&self) -> usize {
        (self.small.len() + self.main.len()) as usize
    }

    /// Evicts one object from `S`: the tail moves to `M` when its capped
    /// frequency exceeds the promote threshold, otherwise it becomes a ghost
    /// (Algorithm 1, `EVICTS`).
    fn evict_small(&mut self, evicted: &mut Vec<Eviction>) {
        while let Some(tail) = self.small.tail() {
            let t = tail as usize;
            let size = self.slab.size(tail);
            if self.slab.slots[t].freq > self.cfg.promote_threshold {
                // Move to M; access bits are cleared during the move (§4.1).
                self.small.remove(&mut self.slab.slots, tail);
                self.s_used -= u64::from(size);
                self.main.push_front(&mut self.slab.slots, tail);
                self.slab.slots[t].tag = MAIN;
                self.slab.slots[t].freq = 0;
                self.m_used += u64::from(size);
                if self.m_used > self.m_capacity {
                    self.evict_main(evicted);
                }
            } else {
                self.small.remove(&mut self.slab.slots, tail);
                self.s_used -= u64::from(size);
                self.slab.slots[t].tag = ABSENT;
                self.ghost.insert(tail, size);
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(tail, true));
                return;
            }
        }
        // S drained without evicting anything: fall back to M.
        if !self.main.is_empty() {
            self.evict_main(evicted);
        }
    }

    /// Evicts one object from `M` with two-bit FIFO-reinsertion
    /// (Algorithm 1, `EVICTM`).
    fn evict_main(&mut self, evicted: &mut Vec<Eviction>) {
        while let Some(tail) = self.main.tail() {
            let t = tail as usize;
            if self.slab.slots[t].freq > 0 {
                // Reinsert at the head with frequency decreased by one.
                self.main.move_to_front(&mut self.slab.slots, tail);
                self.slab.slots[t].freq -= 1;
            } else {
                self.main.remove(&mut self.slab.slots, tail);
                self.m_used -= u64::from(self.slab.size(tail));
                self.slab.slots[t].tag = ABSENT;
                self.stats.evictions += 1;
                evicted.push(self.slab.eviction(tail, false));
                return;
            }
        }
    }

    /// Frees space until `need` more bytes fit (Algorithm 1, `INSERT`'s
    /// eviction loop): evict from `S` when it is at or over target (or `M` is
    /// empty), otherwise from `M`.
    fn make_room(&mut self, need: u32, evicted: &mut Vec<Eviction>) {
        while self.used_total() + u64::from(need) > self.capacity {
            if self.s_used >= self.s_capacity || self.main.is_empty() {
                self.evict_small(evicted);
            } else {
                self.evict_main(evicted);
            }
            if self.len_total() == 0 {
                break;
            }
        }
    }

    fn insert(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) {
        // Ghost membership is decided before making room: the eviction loop
        // below inserts into the ghost itself and could otherwise displace
        // exactly the entry being looked up.
        let in_ghost = self.ghost.contains(slot);
        self.make_room(req.size, evicted);
        let queue = if in_ghost {
            self.ghost.remove(slot);
            self.ghost_hits += 1;
            self.m_used += u64::from(req.size);
            self.main.push_front(&mut self.slab.slots, slot);
            MAIN
        } else {
            self.s_used += u64::from(req.size);
            self.small.push_front(&mut self.slab.slots, slot);
            SMALL
        };
        let s = &mut self.slab.slots[slot as usize];
        s.tag = queue;
        s.freq = 0;
        s.on_insert(req);
        // A ghost-hit insert into M can overflow M; trim one object now.
        // With unit sizes this restores `m_used <= m_capacity` exactly; with
        // sized objects a single-object trim can leave M transiently over
        // budget (still bounded by `used() <= capacity`), matching the keyed
        // implementation step for step.
        if queue == MAIN && self.m_used > self.m_capacity {
            self.evict_main(evicted);
        }
    }

    fn delete(&mut self, slot: u32) {
        match std::mem::replace(&mut self.slab.slots[slot as usize].tag, ABSENT) {
            SMALL => {
                self.small.remove(&mut self.slab.slots, slot);
                self.s_used -= u64::from(self.slab.size(slot));
            }
            MAIN => {
                self.main.remove(&mut self.slab.slots, slot);
                self.m_used -= u64::from(self.slab.size(slot));
            }
            _ => {}
        }
    }
}

impl DensePolicy for DenseS3Fifo {
    fn name(&self) -> String {
        format!("S3-FIFO({:.2})", self.cfg.small_ratio)
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used_total()
    }

    fn len(&self) -> usize {
        self.len_total()
    }

    fn request_dense(&mut self, slot: u32, req: &Request, evicted: &mut Vec<Eviction>) -> Outcome {
        match req.op {
            Op::Get => {
                if self.slab.slots[slot as usize].tag != ABSENT {
                    // Cache hit: atomically bump the capped counter (§4.1).
                    let s = &mut self.slab.slots[slot as usize];
                    s.freq = (s.freq + 1).min(3);
                    s.touch(req.time);
                    self.stats.record_get(req.size, false);
                    Outcome::Hit
                } else if u64::from(req.size) > self.capacity {
                    self.stats.record_get(req.size, true);
                    Outcome::Uncacheable
                } else {
                    self.stats.record_get(req.size, true);
                    self.insert(slot, req, evicted);
                    Outcome::Miss
                }
            }
            Op::Set => {
                // Overwrite: drop any existing entry, then insert fresh.
                self.delete(slot);
                if u64::from(req.size) <= self.capacity {
                    self.insert(slot, req, evicted);
                }
                Outcome::NotRead
            }
            Op::Delete => {
                self.delete(slot);
                Outcome::NotRead
            }
        }
    }

    impl_dense_replay!(ghost);

    fn validate(&self) -> Result<(), String> {
        if self.used_total() > self.capacity {
            return Err(format!(
                "used {} > capacity {}",
                self.used_total(),
                self.capacity
            ));
        }
        // No `m_used <= m_capacity` assertion: promotions and ghost-hit
        // inserts trim M by one object, which with sized objects can leave M
        // over budget until the next trim (found by cache-check's
        // differential fuzzer; the keyed implementation behaves identically).
        let mut queued = 0usize;
        for (queue, tag, used, name) in [
            (&self.small, SMALL, self.s_used, "small"),
            (&self.main, MAIN, self.m_used, "main"),
        ] {
            let mut bytes = 0u64;
            let mut count = 0u32;
            for slot in queue.iter(&self.slab.slots) {
                let s = &self.slab.slots[slot as usize];
                if s.tag != tag {
                    return Err(format!(
                        "slot {slot} sits in {name} but is tagged {}",
                        s.tag
                    ));
                }
                if s.freq > 3 {
                    return Err(format!("slot {slot} freq {} exceeds 2-bit cap", s.freq));
                }
                if self.ghost.contains(slot) {
                    return Err(format!("slot {slot} is both resident and in the ghost"));
                }
                bytes += u64::from(s.size);
                count += 1;
                queued += 1;
            }
            if count != queue.len() {
                return Err(format!(
                    "{name} links walk {count} slots but len says {}",
                    queue.len()
                ));
            }
            if bytes != used {
                return Err(format!("{name} bytes {bytes} != accounted {used}"));
            }
        }
        let tagged = self
            .slab
            .slots
            .iter()
            .filter(|s| s.tag != ABSENT)
            .count();
        if tagged != queued {
            return Err(format!(
                "{tagged} slots carry a residency tag but {queued} are queued"
            ));
        }
        self.ghost.validate().map_err(|e| format!("ghost: {e}"))
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

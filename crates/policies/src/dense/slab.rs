//! Packed per-slot storage for the dense policies.
//!
//! The first dense layout kept parallel `Vec`s (residency, links, sizes,
//! access times, counters), so one cache hit touched five or six scattered
//! cache lines — no better than the keyed `HashMap` node it replaced. Here
//! everything a request needs lives in a single 40-byte [`Slot`], so the hot
//! path costs one line for the slot plus one per queue neighbour.
//!
//! [`PackedQueue`] is [`cache_ds::DenseQueue`] re-targeted at the intrusive
//! `prev`/`next` fields inside `[Slot]`, with identical semantics and
//! orientation (head = newest, tail = next eviction); a differential test
//! below holds the two in lockstep.

use cache_ds::NIL;
use cache_types::{Eviction, Request};

/// All per-object state of a dense policy, one cache line's worth.
///
/// `tag` and `freq` are policy-defined: residency flags, queue tags, SLRU
/// segment indices, CLOCK/S3-FIFO counters, the SIEVE visited bit. The only
/// shared convention is `tag == 0` ⇒ not resident.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
pub(crate) struct Slot {
    /// Neighbour toward the tail-to-head direction (`NIL` at the tail).
    pub prev: u32,
    /// Neighbour toward the head-to-tail direction (`NIL` at the head).
    pub next: u32,
    /// Object size at insertion.
    pub size: u32,
    /// Accesses after insertion.
    pub hits: u32,
    /// Logical insertion time.
    pub insert_time: u64,
    /// Logical time of the most recent access.
    pub last_access: u64,
    /// Original object id, recorded at insertion so evictions can emit a
    /// real [`Eviction::id`] without a random read into the interning
    /// table's slot → id array (a guaranteed cache miss per eviction).
    pub orig: u64,
    /// Policy-defined residency / queue / segment tag; 0 = absent.
    pub tag: u8,
    /// Policy-defined counter or flag.
    pub freq: u8,
}

impl Slot {
    const EMPTY: Slot = Slot {
        prev: NIL,
        next: NIL,
        size: 0,
        hits: 0,
        insert_time: 0,
        last_access: 0,
        orig: 0,
        tag: 0,
        freq: 0,
    };

    /// Resets the bookkeeping fields on (re)insertion, matching
    /// `crate::util::Meta` / the keyed entries.
    #[inline]
    pub fn on_insert(&mut self, req: &Request) {
        self.orig = req.id;
        self.size = req.size;
        self.insert_time = req.time;
        self.last_access = req.time;
        self.hits = 0;
    }

    /// Records a hit at logical time `now`.
    #[inline]
    pub fn touch(&mut self, now: u64) {
        self.hits += 1;
        self.last_access = now;
    }
}

/// The slot array every dense policy stores its per-object state in.
///
/// Original ids travel inside each [`Slot`] (written on insertion, when the
/// id is already in a register), so no slot → id table is consulted on the
/// replay path.
pub(crate) struct DenseSlab {
    /// One [`Slot`] per interned id.
    pub slots: Vec<Slot>,
}

impl DenseSlab {
    /// A slab over a pre-sized dense domain `0..domain`, with no interning
    /// table behind it. Interned construction passes `ids.len()`; the
    /// out-of-core streaming replayer passes the `.ctr` header's id space —
    /// `.ctr` records arrive with already-dense ids, so no table ever
    /// exists. Constructors only consume the table's *length*, and the hot
    /// path reads original ids out of the slots themselves.
    pub(crate) fn with_domain(domain: usize) -> Self {
        DenseSlab {
            slots: vec![Slot::EMPTY; domain],
        }
    }

    /// Number of slots in the dense domain.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Object size recorded at `slot`'s insertion.
    #[inline]
    pub(crate) fn size(&self, slot: u32) -> u32 {
        self.slots[slot as usize].size
    }

    /// Warms one slot's cache line (pure prefetch hint, no state change).
    #[inline]
    pub(crate) fn warm_slot(&self, s: u32) {
        cache_ds::prefetch_read(&self.slots, s as usize);
    }

    /// Warms the slot `q` would evict next. Eviction candidates sit at queue
    /// tails, untouched since insertion and therefore cold; warming them on
    /// every request keeps the eviction scan off the demand-miss path.
    #[inline]
    pub(crate) fn warm_tail(&self, q: &PackedQueue) {
        if let Some(t) = q.tail() {
            self.warm_slot(t);
        }
    }

    /// Builds the [`Eviction`] record for `slot` (cold path).
    #[inline]
    pub(crate) fn eviction(&self, slot: u32, from_probationary: bool) -> Eviction {
        let s = &self.slots[slot as usize];
        Eviction {
            id: s.orig,
            size: s.size,
            insert_time: s.insert_time,
            last_access_time: s.last_access,
            freq: s.hits,
            from_probationary,
        }
    }
}

/// Head/tail/len view of one queue threaded through `[Slot]` links.
///
/// Same contract as [`cache_ds::DenseQueue`]: all O(1), `push_front` only
/// detached slots, `remove`/`move_to_front` only members of *this* queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackedQueue {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for PackedQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl PackedQueue {
    /// An empty queue.
    pub(crate) const fn new() -> Self {
        PackedQueue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of queued slots.
    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.len
    }

    /// True when no slots are queued.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tail (oldest) slot, or `None` when empty.
    #[inline]
    pub(crate) fn tail(&self) -> Option<u32> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }

    /// The neighbour of `s` toward the head, or `None` when `s` is the head.
    #[inline]
    pub(crate) fn toward_head(&self, slots: &[Slot], s: u32) -> Option<u32> {
        let p = slots[s as usize].prev;
        if p == NIL {
            None
        } else {
            Some(p)
        }
    }

    /// Inserts detached slot `s` at the head.
    #[inline]
    pub(crate) fn push_front(&mut self, slots: &mut [Slot], s: u32) {
        debug_assert!(slots[s as usize].prev == NIL && slots[s as usize].next == NIL);
        let old_head = self.head;
        slots[s as usize].next = old_head;
        slots[s as usize].prev = NIL;
        if old_head != NIL {
            slots[old_head as usize].prev = s;
        } else {
            self.tail = s;
        }
        self.head = s;
        self.len += 1;
    }

    #[inline]
    fn unlink(&mut self, slots: &mut [Slot], s: u32) {
        let Slot { prev: p, next: n, .. } = slots[s as usize];
        if p != NIL {
            slots[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            slots[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    /// Removes and returns the tail slot.
    #[inline]
    pub(crate) fn pop_back(&mut self, slots: &mut [Slot]) -> Option<u32> {
        if self.tail == NIL {
            return None;
        }
        let s = self.tail;
        self.unlink(slots, s);
        slots[s as usize].prev = NIL;
        slots[s as usize].next = NIL;
        self.len -= 1;
        Some(s)
    }

    /// Detaches slot `s`, which must be in this queue.
    #[inline]
    pub(crate) fn remove(&mut self, slots: &mut [Slot], s: u32) {
        self.unlink(slots, s);
        slots[s as usize].prev = NIL;
        slots[s as usize].next = NIL;
        self.len -= 1;
    }

    /// Moves slot `s`, which must be in this queue, to the head.
    #[inline]
    pub(crate) fn move_to_front(&mut self, slots: &mut [Slot], s: u32) {
        if self.head == s {
            return;
        }
        self.unlink(slots, s);
        let old_head = self.head;
        slots[s as usize].prev = NIL;
        slots[s as usize].next = old_head;
        if old_head != NIL {
            slots[old_head as usize].prev = s;
        } else {
            self.tail = s;
        }
        self.head = s;
    }

    /// Iterates slots head → tail (validation and differential tests only;
    /// not a hot path).
    pub(crate) fn iter<'a>(&'a self, slots: &'a [Slot]) -> impl Iterator<Item = u32> + 'a {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = cur;
            cur = slots[s as usize].next;
            Some(s)
        })
    }
}

/// Structural validation shared by the single-queue dense policies: the
/// intrusive links walk exactly `queue.len()` slots, every walked slot
/// carries `resident_tag` (and respects `max_freq` when given), byte
/// accounting matches, no slot outside the queue is tagged resident, and the
/// capacity bound holds. Mirrors `crate::util::validate_single_queue`.
pub(crate) fn validate_packed_queue(
    name: &str,
    capacity: u64,
    used: u64,
    slab: &DenseSlab,
    queue: &PackedQueue,
    resident_tag: u8,
    max_freq: Option<u8>,
) -> Result<(), String> {
    if used > capacity {
        return Err(format!("{name}: used {used} > capacity {capacity}"));
    }
    let mut bytes = 0u64;
    let mut count = 0u32;
    for slot in queue.iter(&slab.slots) {
        let s = &slab.slots[slot as usize];
        if s.tag != resident_tag {
            return Err(format!(
                "{name}: queued slot {slot} tagged {} instead of {resident_tag}",
                s.tag
            ));
        }
        if let Some(cap) = max_freq {
            if s.freq > cap {
                return Err(format!(
                    "{name}: slot {slot} freq {} exceeds cap {cap}",
                    s.freq
                ));
            }
        }
        bytes += u64::from(s.size);
        count += 1;
    }
    if count != queue.len() {
        return Err(format!(
            "{name}: links walk {count} slots but len says {}",
            queue.len()
        ));
    }
    let tagged = slab.slots.iter().filter(|s| s.tag != 0).count();
    if tagged != count as usize {
        return Err(format!(
            "{name}: {tagged} slots carry a residency tag but {count} are queued"
        ));
    }
    if bytes != used {
        return Err(format!("{name}: queued bytes {bytes} != accounted {used}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_ds::{DenseLinks, DenseQueue, SplitMix64};

    #[test]
    fn slot_is_at_most_one_cache_line() {
        assert!(std::mem::size_of::<Slot>() <= 64);
    }

    #[test]
    fn differential_against_dense_queue() {
        // Random push/pop/promote/remove interleavings must match the
        // reference DenseQueue (itself differentially tested against DList).
        let n = 64usize;
        let mut rng = SplitMix64::new(0x51AB);
        let mut slots = vec![Slot::EMPTY; n];
        let mut pq = PackedQueue::new();
        let mut links = DenseLinks::new(n);
        let mut dq = DenseQueue::new();
        let mut queued = vec![false; n];
        for _ in 0..10_000 {
            let s = rng.next_below(n as u64) as u32;
            match rng.next_below(4) {
                0 => {
                    if !queued[s as usize] {
                        pq.push_front(&mut slots, s);
                        dq.push_front(&mut links, s);
                        queued[s as usize] = true;
                    }
                }
                1 => {
                    let a = pq.pop_back(&mut slots);
                    let b = dq.pop_back(&mut links);
                    assert_eq!(a, b);
                    if let Some(x) = a {
                        queued[x as usize] = false;
                    }
                }
                2 => {
                    if queued[s as usize] {
                        pq.move_to_front(&mut slots, s);
                        dq.move_to_front(&mut links, s);
                    }
                }
                _ => {
                    if queued[s as usize] {
                        pq.remove(&mut slots, s);
                        dq.remove(&mut links, s);
                        queued[s as usize] = false;
                    }
                }
            }
            assert_eq!(pq.len(), dq.len());
            assert_eq!(pq.tail(), dq.tail());
        }
        let got: Vec<u32> = pq.iter(&slots).collect();
        let want: Vec<u32> = dq.iter(&links).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn toward_head_matches_orientation() {
        let mut slots = vec![Slot::EMPTY; 4];
        let mut q = PackedQueue::new();
        for s in [1u32, 2, 3] {
            q.push_front(&mut slots, s); // head 3, 2, 1 tail
        }
        assert_eq!(q.toward_head(&slots, 1), Some(2));
        assert_eq!(q.toward_head(&slots, 3), None);
        assert_eq!(q.tail(), Some(1));
    }
}

//! Slot-indexed ghost FIFO mirroring [`crate::util::GhostList`] and
//! `s3fifo`'s `GhostFifo` exactly — including their tombstone quirks.
//!
//! Both keyed ghosts share the same semantics: `insert` pushes a FIFO entry
//! only when the id was not already *marked* present, then trims oldest
//! entries while over byte capacity; `remove` only clears the mark, leaving
//! the FIFO entry behind as a tombstone that stays charged against capacity
//! until it reaches the front. A tombstoned id can be re-inserted (a second
//! FIFO entry appears), and when the stale entry later pops it clears the
//! mark of the *newer* entry too. That quirk is deliberate here: dense and
//! keyed paths must make identical decisions, so the quirk is replicated,
//! not fixed.

use std::collections::VecDeque;

/// A byte-bounded FIFO ghost over dense slots.
pub(crate) struct SlotGhost {
    fifo: VecDeque<(u32, u32)>,
    /// Per-slot presence mark — the dense counterpart of the keyed `IdSet`.
    present: Vec<bool>,
    used: u64,
    capacity: u64,
}

impl SlotGhost {
    pub(crate) fn new(slots: usize, capacity: u64) -> Self {
        SlotGhost {
            fifo: VecDeque::new(),
            present: vec![false; slots],
            used: 0,
            capacity,
        }
    }

    #[inline]
    pub(crate) fn contains(&self, slot: u32) -> bool {
        self.present[slot as usize]
    }

    /// Warms the presence mark for `slot` ahead of its request — every miss
    /// consults [`SlotGhost::contains`], and the mark array is large enough
    /// to fall out of cache between touches. Observable-state-free, like
    /// [`cache_types::DensePolicy::prefetch`].
    #[inline]
    pub(crate) fn warm(&self, slot: u32) {
        cache_ds::prefetch_read(&self.present, slot as usize);
    }

    /// Inserts `slot`; evicts oldest entries beyond capacity.
    pub(crate) fn insert(&mut self, slot: u32, size: u32) {
        if self.capacity == 0 {
            return;
        }
        if !self.present[slot as usize] {
            self.present[slot as usize] = true;
            self.fifo.push_back((slot, size));
            self.used += u64::from(size);
        }
        while self.used > self.capacity {
            if let Some((old, sz)) = self.fifo.pop_front() {
                // `used` charges every FIFO entry, including tombstones left
                // by `remove`, so the subtraction is unconditional.
                self.used -= u64::from(sz);
                self.present[old as usize] = false;
            } else {
                break;
            }
        }
    }

    /// Removes the mark (ghost hit); the FIFO slot becomes a tombstone.
    pub(crate) fn remove(&mut self, slot: u32) -> bool {
        std::mem::replace(&mut self.present[slot as usize], false)
    }

    /// Structural self-check mirroring `GhostList::validate`: the byte
    /// charge matches the FIFO slots (tombstones included), the window bound
    /// holds, and every marked slot owns a FIFO entry.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.used > self.capacity {
            return Err(format!(
                "ghost used {} > capacity {}",
                self.used, self.capacity
            ));
        }
        let bytes: u64 = self.fifo.iter().map(|&(_, s)| u64::from(s)).sum();
        if bytes != self.used {
            return Err(format!("ghost slot bytes {bytes} != accounted {}", self.used));
        }
        let marked = self.present.iter().filter(|&&p| p).count();
        let live = self
            .fifo
            .iter()
            .filter(|&&(s, _)| self.present[s as usize])
            .count();
        if live < marked {
            return Err(format!(
                "ghost marks {marked} slots but only {live} own FIFO entries"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_keyed_ghost_semantics() {
        // Differential check against the keyed GhostList on a random-ish
        // op stream: contains/remove results must agree at every step.
        let mut dense = SlotGhost::new(64, 10);
        let mut keyed = crate::util::GhostList::new(10);
        let mut state = 0x9E37_79B9u64;
        for step in 0..5000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = ((state >> 33) % 64) as u32;
            let id = u64::from(slot) + 1000; // slot↔id bijection
            match (state >> 20) % 3 {
                0 => {
                    dense.insert(slot, 1 + (slot % 3));
                    keyed.insert(id, 1 + (slot % 3));
                }
                1 => {
                    assert_eq!(dense.remove(slot), keyed.remove(id), "step {step}");
                }
                _ => {
                    assert_eq!(dense.contains(slot), keyed.contains(id), "step {step}");
                }
            }
        }
        for slot in 0..64u32 {
            assert_eq!(
                dense.contains(slot),
                keyed.contains(u64::from(slot) + 1000),
                "final state diverged at slot {slot}"
            );
        }
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut g = SlotGhost::new(8, 0);
        g.insert(3, 1);
        assert!(!g.contains(3));
    }

    #[test]
    fn tombstone_stays_charged() {
        let mut g = SlotGhost::new(8, 3);
        g.insert(0, 1);
        g.insert(1, 1);
        g.insert(2, 1);
        assert!(g.remove(1));
        // The tombstone still occupies a byte: inserting one more evicts the
        // oldest live entry (slot 0) rather than fitting for free.
        g.insert(3, 1);
        assert!(!g.contains(0));
        assert!(g.contains(2) && g.contains(3));
    }
}
